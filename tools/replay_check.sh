#!/bin/sh
# replay_check.sh BUILD_DIR [WORK_DIR]
#
# Record/replay smoke (docs/FRONTEND.md). Records a small fig10 sweep
# (fft only, 16 tiles, scale 1) with `--record`, replays the recorded
# widir-mtrace-v1 trace through the full-fidelity frontend, and diffs
# the replayed stats against the recording run's own sweep document
# (bench/replay_trace --diff; host_* and frontend fields excluded).
# Any divergence fails: full-fidelity replay is contractually
# byte-identical to the recorded run. The fast direct-to-L1 replayer
# then re-drives the same trace as a liveness check -- its contract is
# the op mix, not cycle timing, so it is not diffed here (the
# FastReplay tests pin the op counts).
#
# WORK_DIR keeps the trace and all three JSON documents; the CI
# replay-smoke lane publishes it as an artifact.
set -eu

build="${1:?usage: replay_check.sh BUILD_DIR [WORK_DIR]}"
work="${2:-$(mktemp -d /tmp/widir_replay.XXXXXX)}"
mkdir -p "$work"

fig10="$build/bench/fig10_scalability"
replay="$build/bench/replay_trace"
for bin in "$fig10" "$replay"; do
    if [ ! -x "$bin" ]; then
        echo "replay_check: missing binary $bin" >&2
        exit 2
    fi
done

echo "== record: fig10 (fft, 16 tiles, scale 1) -> $work"
WIDIR_BENCH_APPS=fft WIDIR_BENCH_SCALE=1 WIDIR_BENCH_OUT="$work" \
    "$fig10" --tiles 16 --record "$work/traces"

# Spec index 0 of the sweep is results[0] of the document -- the pair
# the --diff below compares.
trace=$(ls "$work"/traces/0_*.mtrace 2>/dev/null | head -n 1)
ref="$work/fig10_scalability.json"
if [ -z "$trace" ] || [ ! -f "$ref" ]; then
    echo "replay_check: recording produced no trace or no JSON" >&2
    exit 2
fi

echo "== replay (full fidelity): $trace"
"$replay" --trace-in "$trace" --replay full \
    --out "$work/replay_full.json" --diff "$ref"

echo "== replay (fast, direct-to-L1): $trace"
"$replay" --trace-in "$trace" --replay fast \
    --out "$work/replay_fast.json"

echo "replay_check: OK ($work)"
