#!/bin/sh
# docs-check: docs/PROTOCOL.md must mention every enumerator of the
# protocol-facing enums. Run from anywhere: pass the repo root as $1.
# Registered as the `docs_check` CTest (tests/CMakeLists.txt) so the
# reference cannot drift when a message type or state is added.
set -u

root="${1:-.}"
doc="$root/docs/PROTOCOL.md"
if [ ! -f "$doc" ]; then
    echo "docs-check: missing $doc" >&2
    exit 1
fi

fail=0

# extract_enum <file> <EnumName>: print one enumerator per line.
# Handles single-line (`enum class E { A, B };`) and multi-line bodies,
# strips //-comments and `= value` initializers.
extract_enum() {
    awk -v enum="$2" '
        $0 ~ "enum class " enum "([^A-Za-z0-9_]|$)" {
            active = 1; body = 0; done = 0
        }
        active {
            line = $0
            sub(/\/\/.*/, "", line)
            if (!body) {
                if (index(line, "{") == 0) next
                sub(/^[^{]*{/, "", line)
                body = 1
            }
            if (line ~ /}/) { sub(/}.*/, "", line); done = 1 }
            n = split(line, parts, ",")
            for (i = 1; i <= n; i++) {
                name = parts[i]
                sub(/=.*/, "", name)
                gsub(/[^A-Za-z0-9_]/, "", name)
                if (name != "") print name
            }
            if (done) { active = 0 }
        }
    ' "$1"
}

check_enum() {
    file="$1"
    enum="$2"
    names=$(extract_enum "$root/$file" "$enum")
    if [ -z "$names" ]; then
        echo "docs-check: found no enumerators for $enum in $file" >&2
        fail=1
        return
    fi
    for name in $names; do
        if ! grep -qw "$name" "$doc"; then
            echo "docs-check: $enum::$name ($file) is not documented" \
                 "in docs/PROTOCOL.md" >&2
            fail=1
        fi
    done
}

check_enum src/core/messages.h MsgType
check_enum src/core/messages.h GrantState
check_enum src/core/l1_controller.h L1State
check_enum src/core/directory_controller.h DirState
check_enum src/core/directory_controller.h TxnType
check_enum src/wireless/frame.h FrameKind

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED (update docs/PROTOCOL.md)" >&2
    exit 1
fi
echo "docs-check: OK"
