#!/bin/sh
# docs-check: the reference docs must mention every enumerator of the
# user-facing enums -- docs/PROTOCOL.md for the protocol, docs/TRACING.md
# for the trace schema, docs/FAULTS.md for the fault model -- and the
# generated transition-table section of PROTOCOL.md must match the
# protocol table compiled into the simulator. Run from anywhere: pass
# the repo root as $1 and (optionally) the built gen_protocol_docs
# binary as $2. Registered as the `docs_check` CTest
# (tests/CMakeLists.txt) so the references cannot drift when a message
# type, state, trace kind, or fault knob is added.
set -u

root="${1:-.}"
gen="${2:-}"
for d in docs/PROTOCOL.md docs/TRACING.md docs/FAULTS.md \
         docs/FRONTEND.md; do
    if [ ! -f "$root/$d" ]; then
        echo "docs-check: missing $root/$d" >&2
        exit 1
    fi
done

fail=0

# extract_enum <file> <EnumName>: print one enumerator per line.
# Handles single-line (`enum class E { A, B };`) and multi-line bodies,
# strips //-comments and `= value` initializers.
extract_enum() {
    awk -v enum="$2" '
        $0 ~ "enum class " enum "([^A-Za-z0-9_]|$)" {
            active = 1; body = 0; done = 0
        }
        active {
            line = $0
            sub(/\/\/.*/, "", line)
            if (!body) {
                if (index(line, "{") == 0) next
                sub(/^[^{]*{/, "", line)
                body = 1
            }
            if (line ~ /}/) { sub(/}.*/, "", line); done = 1 }
            n = split(line, parts, ",")
            for (i = 1; i <= n; i++) {
                name = parts[i]
                sub(/=.*/, "", name)
                gsub(/[^A-Za-z0-9_]/, "", name)
                if (name != "") print name
            }
            if (done) { active = 0 }
        }
    ' "$1"
}

# check_enum <header> <EnumName> <doc>: every enumerator must appear
# (as a whole word) in the named reference document.
check_enum() {
    file="$1"
    enum="$2"
    doc="$root/${3:-docs/PROTOCOL.md}"
    names=$(extract_enum "$root/$file" "$enum")
    if [ -z "$names" ]; then
        echo "docs-check: found no enumerators for $enum in $file" >&2
        fail=1
        return
    fi
    for name in $names; do
        if ! grep -qw "$name" "$doc"; then
            echo "docs-check: $enum::$name ($file) is not documented" \
                 "in ${doc#"$root"/}" >&2
            fail=1
        fi
    done
}

check_enum src/core/messages.h MsgType
check_enum src/core/messages.h GrantState
check_enum src/core/protocol_table.h L1State
check_enum src/core/protocol_table.h DirState
check_enum src/core/protocol_table.h DirTxnType
check_enum src/core/protocol_table.h L1Event
check_enum src/core/protocol_table.h DirEvent
check_enum src/core/protocol_table.h L1Action
check_enum src/core/protocol_table.h DirAction
check_enum src/wireless/frame.h FrameKind
check_enum src/sim/trace.h TraceKind docs/TRACING.md
check_enum src/sim/trace.h TraceComponent docs/TRACING.md
check_enum src/fault/fault.h FrameFate docs/FAULTS.md
check_enum src/frontend/mtrace.h OpKind docs/FRONTEND.md
check_enum src/cpu/op_sink.h SyncNote docs/FRONTEND.md
check_enum src/frontend/frontend.h FrontendKind docs/FRONTEND.md

# The generated transition-relation section must be byte-identical to
# what the compiled-in protocol table renders (docs == code).
if [ -n "$gen" ]; then
    if ! "$gen" --check "$root/docs/PROTOCOL.md"; then
        echo "docs-check: generated PROTOCOL.md section is stale" \
             "(run: $gen --update docs/PROTOCOL.md)" >&2
        fail=1
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "docs-check: FAILED (update docs/PROTOCOL.md)" >&2
    exit 1
fi
echo "docs-check: OK"
