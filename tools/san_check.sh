#!/bin/sh
# san_check.sh SOURCE_DIR [BUILD_DIR]
#
# Sanitizer gate: configures a dedicated build tree with
# -DWIDIR_SANITIZE=ON (AddressSanitizer + UBSan, see the root
# CMakeLists.txt), builds it, and runs the default tier-1 ctest suite
# inside it. Opt-in configurations (`perf`, `asan`) are skipped
# automatically because a plain `ctest` run never selects them.
#
# Registered as the `san_check` CTest (CONFIGURATIONS asan): run it
# with `ctest -C asan -R san_check`, or invoke this script directly.
# The sanitized tree lives next to the source by default so repeat
# runs are incremental.

set -eu

SRC=${1:?usage: san_check.sh SOURCE_DIR [BUILD_DIR]}
BUILD=${2:-$SRC/build-asan}
JOBS=${WIDIR_SAN_JOBS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)}

echo "configuring sanitized build in $BUILD..."
cmake -S "$SRC" -B "$BUILD" -DWIDIR_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "building ($JOBS jobs)..."
cmake --build "$BUILD" -j "$JOBS" >/dev/null

echo "running tier-1 tests under ASan+UBSan..."
cd "$BUILD"
# halt_on_error: UBSan findings must fail the run, not just print.
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=0} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1} \
    ctest --output-on-failure -j "$JOBS"
