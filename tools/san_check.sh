#!/bin/sh
# san_check.sh SOURCE_DIR [BUILD_DIR] [MODE]
#
# Sanitizer gate: configures a dedicated build tree for MODE, builds
# it, and runs the default tier-1 ctest suite inside it. Opt-in
# configurations (`perf`, `asan`, `tsan`) are skipped automatically
# because a plain `ctest` run never selects them.
#
# MODE:
#   asan (default)  -DWIDIR_SANITIZE=ON: AddressSanitizer + UBSan.
#   tsan            -DWIDIR_SANITIZE_THREAD=ON: ThreadSanitizer, and
#                   the suite runs with WIDIR_SIM_THREADS=4 so every
#                   runExperiment-backed test exercises the bound/weave
#                   parallel kernel's worker pool (src/sim/domains.h)
#                   on top of the SweepRunner pool.
#
# Registered as the `san_check` CTest (CONFIGURATIONS asan) and
# `tsan_check` (CONFIGURATIONS tsan): run with
# `ctest -C asan -R san_check` / `ctest -C tsan -R tsan_check`, or
# invoke this script directly. The sanitized trees live next to the
# source by default so repeat runs are incremental.

set -eu

SRC=${1:?usage: san_check.sh SOURCE_DIR [BUILD_DIR] [MODE]}
MODE=${3:-asan}
BUILD=${2:-$SRC/build-$MODE}
JOBS=${WIDIR_SAN_JOBS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)}

case "$MODE" in
asan) CONFIG_FLAG=-DWIDIR_SANITIZE=ON ;;
tsan) CONFIG_FLAG=-DWIDIR_SANITIZE_THREAD=ON ;;
*)
    echo "san_check.sh: unknown mode '$MODE' (want asan or tsan)" >&2
    exit 2
    ;;
esac

echo "configuring $MODE build in $BUILD..."
cmake -S "$SRC" -B "$BUILD" "$CONFIG_FLAG" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "building ($JOBS jobs)..."
cmake --build "$BUILD" -j "$JOBS" >/dev/null

cd "$BUILD"
if [ "$MODE" = tsan ]; then
    echo "running tier-1 tests under TSan (WIDIR_SIM_THREADS=4)..."
    TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
    WIDIR_SIM_THREADS=4 \
        ctest --output-on-failure -j "$JOBS"
else
    echo "running tier-1 tests under ASan+UBSan..."
    # halt_on_error: UBSan findings must fail the run, not just print.
    ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=0} \
    UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1} \
        ctest --output-on-failure -j "$JOBS"
fi
