/**
 * @file
 * Render the protocol transition table (core/protocol_table.h) as the
 * generated section of docs/PROTOCOL.md, so the documented transition
 * relation is derived from the same rows that drive the controllers
 * and the trace-legality checker.
 *
 * Modes:
 *   gen_protocol_docs --emit               print the section to stdout
 *   gen_protocol_docs --check  <PROTOCOL.md>   exit 1 if the file's
 *                                          marked section is stale
 *   gen_protocol_docs --update <PROTOCOL.md>   rewrite the marked
 *                                          section in place
 *
 * The section lives between the marker lines below; everything outside
 * the markers is hand-written prose and is never touched.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/protocol_table.h"

namespace {

using namespace widir;
using namespace widir::coherence;

constexpr const char *kBeginMarker =
    "<!-- BEGIN GENERATED: protocol-table (tools/gen_protocol_docs;"
    " do not edit by hand) -->";
constexpr const char *kEndMarker =
    "<!-- END GENERATED: protocol-table -->";

std::string
flagText(std::uint8_t flags)
{
    if ((flags & kRuleFaultOnly) && (flags & kRuleUnreachable))
        return "fault-only, unreachable";
    if (flags & kRuleFaultOnly)
        return "fault-only";
    if (flags & kRuleUnreachable)
        return "unreachable";
    return "";
}

/** The legality matrix for one domain as a markdown table. */
template <typename State, typename LegalFn>
std::string
legalityMatrix(std::size_t num_states, const char *(*name)(State),
               LegalFn legal)
{
    std::string out = "| from \\ to |";
    for (std::size_t t = 0; t < num_states; ++t)
        out += std::string(" ") + name(static_cast<State>(t)) + " |";
    out += "\n|---|";
    for (std::size_t t = 0; t < num_states; ++t)
        out += "---|";
    out += "\n";
    for (std::size_t f = 0; f < num_states; ++f) {
        out += std::string("| **") + name(static_cast<State>(f)) +
               "** |";
        for (std::size_t t = 0; t < num_states; ++t) {
            bool ok = legal(static_cast<State>(f),
                            static_cast<State>(t));
            out += ok ? " yes |" : " - |";
        }
        out += "\n";
    }
    return out;
}

std::string
generatedSection()
{
    std::string out;
    out += kBeginMarker;
    out += "\n\n";
    out += "The tables below are rendered from the rule arrays in\n"
           "`src/core/protocol_table.cc` -- the same rows that drive\n"
           "controller dispatch and `sys::checkTraceLegality`. Rows\n"
           "with a trace note are *traced edges*: the controller emits\n"
           "a transition record with exactly that note when the row\n"
           "fires. Rows without a note are tolerated no-ops or\n"
           "transient bookkeeping; `fault-only` rows require fault\n"
           "injection (docs/FAULTS.md) and `unreachable` rows are\n"
           "protocol-impossible cells kept so dispatch is total (the\n"
           "handlers assert they never fire).\n\n";

    out += "### L1 transition legality (derived)\n\n";
    out += legalityMatrix<L1State>(kNumL1States, l1StateName,
                                   l1EdgeLegal);
    out += "\nSelf-loops are intentionally absent: the L1 never "
           "traces a same-state edge.\n\n";

    out += "### Directory transition legality (derived)\n\n";
    out += legalityMatrix<DirState>(kNumDirStates, dirStateName,
                                    dirEdgeLegal);
    out += "\nThe two self-loops are real protocol events: `EM -> EM` "
           "is the owner hand-off (`FwdGetX`) and `W -> W` covers "
           "SharerCount changes (`PutW`, `join`).\n\n";

    out += "### L1 rules (Table I)\n\n";
    out += "| From | Event | Action | To | Trace note | Flags |\n";
    out += "|---|---|---|---|---|---|\n";
    for (const L1Rule &r : l1Rules()) {
        out += std::string("| ") + l1StateName(r.from) + " | " +
               l1EventName(r.event) + " | " + l1ActionName(r.action) +
               " | " + l1StateName(r.to) + " | " +
               (r.note ? (std::string("`") + r.note + "`") : "-") +
               " | " + flagText(r.flags) + " |\n";
    }
    out += "\n### Directory rules (Table II)\n\n";
    out += "| From | Event | Action | To | Trace note | Flags |\n";
    out += "|---|---|---|---|---|---|\n";
    for (const DirRule &r : dirRules()) {
        out += std::string("| ") + dirStateName(r.from) + " | " +
               dirEventName(r.event) + " | " + dirActionName(r.action) +
               " | " + dirStateName(r.to) + " | " +
               (r.note ? (std::string("`") + r.note + "`") : "-") +
               " | " + flagText(r.flags) + " |\n";
    }
    out += "\n";
    out += kEndMarker;
    out += "\n";
    return out;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream f(path);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

/**
 * Split @p doc around the marked section. Returns false (with a
 * message) when the markers are missing or malformed.
 */
bool
splitDoc(const std::string &doc, std::string &before,
         std::string &inside, std::string &after)
{
    std::size_t b = doc.find(kBeginMarker);
    std::size_t e = doc.find(kEndMarker);
    if (b == std::string::npos || e == std::string::npos || e < b) {
        std::fprintf(stderr,
                     "gen_protocol_docs: marker lines not found "
                     "(expected '%s' ... '%s')\n",
                     kBeginMarker, kEndMarker);
        return false;
    }
    std::size_t end = e + std::strlen(kEndMarker);
    if (end < doc.size() && doc[end] == '\n')
        ++end;
    before = doc.substr(0, b);
    inside = doc.substr(b, end - b);
    after = doc.substr(end);
    return true;
}

int
emitMode()
{
    std::fputs(generatedSection().c_str(), stdout);
    return 0;
}

int
checkMode(const std::string &path)
{
    std::string doc;
    if (!readFile(path, doc)) {
        std::fprintf(stderr, "gen_protocol_docs: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::string before, inside, after;
    if (!splitDoc(doc, before, inside, after))
        return 1;
    if (inside != generatedSection()) {
        std::fprintf(stderr,
                     "gen_protocol_docs: %s generated section is "
                     "stale\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

int
updateMode(const std::string &path)
{
    std::string doc;
    if (!readFile(path, doc)) {
        std::fprintf(stderr, "gen_protocol_docs: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::string before, inside, after;
    if (!splitDoc(doc, before, inside, after))
        return 1;
    std::string next = before + generatedSection() + after;
    if (next == doc) {
        std::printf("gen_protocol_docs: %s already current\n",
                    path.c_str());
        return 0;
    }
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "gen_protocol_docs: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    f << next;
    std::printf("gen_protocol_docs: updated %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--emit") == 0)
        return emitMode();
    if (argc == 3 && std::strcmp(argv[1], "--check") == 0)
        return checkMode(argv[2]);
    if (argc == 3 && std::strcmp(argv[1], "--update") == 0)
        return updateMode(argv[2]);
    std::fprintf(stderr,
                 "usage: %s --emit | --check <PROTOCOL.md> | "
                 "--update <PROTOCOL.md>\n",
                 argv[0]);
    return 2;
}
