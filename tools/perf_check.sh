#!/bin/sh
# perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]
# perf_check.sh --rss FIG10_BINARY [SLACK]
#
# Host-perf gate for the event kernel (docs/PERF.md). Runs the
# micro_simkernel benchmark suite, then:
#
#  1. HARD CHECK: for every BM_Legacy<X> / BM_<X> pair in the fresh
#     run, the hybrid kernel must be at least MIN_SPEEDUP (default 2.0)
#     times faster than the legacy replica. Both sides are measured in
#     the same process seconds apart, so the ratio is stable across
#     machines and load -- this is the check that gates.
#
#  2. DRIFT REPORT: compares the fresh items/sec against the committed
#     baseline JSON (bench/BENCH_simkernel.json). Absolute throughput
#     depends on the machine, so large drift only prints a warning and
#     never fails the check.
#
# Registered as the `perf_check` CTest (CONFIGURATIONS perf): run it
# with `ctest -C perf -R perf_check`, never in the default tier-1 run.

set -u

# --- footprint mode: perf_check.sh --rss FIG10_BINARY [SLACK] --------
#
# Runs the fig10 sweep (fft only, scale 1, classic kernel) at 64 and
# 256 tiles in separate processes and reads the `host_peak_rss_kb`
# line each prints (bench/common.h reads VmHWM, so no GNU time needed).
# Gates on peak RSS growing at most linearly in the tile count: 4x the
# tiles may cost at most 4 * SLACK (default 1.5) times the memory.
# The flat/SoA hot state (docs/PERF.md) is what makes this hold; a
# reintroduced per-line heap allocation fails here before it shows up
# as wall time. Ratio of two same-process measurements, so it is
# stable across machines -- unlike section 2's absolute throughput.
if [ "${1:-}" = "--rss" ]; then
    FIG10=${2:?usage: perf_check.sh --rss FIG10_BINARY [SLACK]}
    SLACK=${3:-1.5}
    # A tree built without the bench targets (e.g. a tests-only CI
    # lane) has no fig10 binary; that is a configuration gap, not a
    # footprint regression, so skip loudly instead of failing.
    if [ ! -x "$FIG10" ]; then
        echo "perf_check: SKIP -- fig10 binary not found at $FIG10" \
             "(build the bench targets to enable the RSS gate)"
        exit 0
    fi
    OUT=$(mktemp -d /tmp/widir_rss.XXXXXX)
    trap 'rm -rf "$OUT"' EXIT
    rss_at() {
        WIDIR_BENCH_APPS=fft WIDIR_BENCH_SCALE=1 WIDIR_BENCH_OUT="$OUT" \
            "$FIG10" --tiles "$1" |
            sed -n 's/^host_peak_rss_kb \([0-9][0-9]*\)$/\1/p'
    }
    echo "running $FIG10 at 64 and 256 tiles..."
    RSS64=$(rss_at 64)
    RSS256=$(rss_at 256)
    if [ -z "$RSS64" ] || [ -z "$RSS256" ] || [ "$RSS64" = 0 ]; then
        echo "perf_check: no host_peak_rss_kb from $FIG10" >&2
        exit 1
    fi
    awk -v a="$RSS64" -v b="$RSS256" -v s="$SLACK" 'BEGIN {
        r = b / a; lim = 4 * s;
        ok = r <= lim;
        printf "%s  fig10 peak RSS: %d KB @64 tiles -> %d KB @256 tiles (%.2fx, need <= %.1fx)\n",
               ok ? "PASS" : "FAIL", a, b, r, lim;
        exit ok ? 0 : 1 }'
    exit $?
fi

BINARY=${1:?usage: perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]}
BASELINE=${2:?usage: perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]}
MIN_SPEEDUP=${3:-${WIDIR_PERF_MIN_SPEEDUP:-2.0}}

FRESH=$(mktemp /tmp/widir_bench.XXXXXX.json)
trap 'rm -f "$FRESH"' EXIT

echo "running $BINARY (this takes a minute)..."
"$BINARY" --json="$FRESH" --benchmark_min_time=0.5 >/dev/null 2>&1 || {
    echo "perf_check: benchmark run failed" >&2
    exit 1
}

# items_per_second NAME FILE -> value (our own line-per-entry schema).
ips() {
    sed -n "s/.*\"name\": \"$1\", \"items_per_second\": \([^,]*\),.*/\1/p" "$2"
}

fail=0

# --- 1. hybrid vs in-binary legacy replica ---------------------------
for legacy in $(sed -n 's/.*"name": "\(BM_Legacy[A-Za-z]*\)",.*/\1/p' "$FRESH"); do
    new=$(printf '%s' "$legacy" | sed 's/^BM_Legacy/BM_/')
    legacy_ips=$(ips "$legacy" "$FRESH")
    new_ips=$(ips "$new" "$FRESH")
    if [ -z "$legacy_ips" ] || [ -z "$new_ips" ]; then
        echo "perf_check: missing pair for $legacy" >&2
        fail=1
        continue
    fi
    ok=$(awk -v n="$new_ips" -v l="$legacy_ips" -v min="$MIN_SPEEDUP" \
        'BEGIN { r = l > 0 ? n / l : 0;
                 printf "%.2f %d", r, (r >= min) ? 1 : 0 }')
    ratio=${ok% *}
    pass=${ok#* }
    if [ "$pass" = 1 ]; then
        echo "PASS  $new: ${ratio}x over legacy (need >= ${MIN_SPEEDUP}x)"
    else
        echo "FAIL  $new: ${ratio}x over legacy (need >= ${MIN_SPEEDUP}x)" >&2
        fail=1
    fi
done

# --- 2. drift vs committed baseline (warn only) ----------------------
if [ -f "$BASELINE" ]; then
    for name in $(sed -n 's/.*"name": "\(BM_[A-Za-z]*\)",.*/\1/p' "$BASELINE"); do
        base_ips=$(ips "$name" "$BASELINE")
        cur_ips=$(ips "$name" "$FRESH")
        [ -n "$base_ips" ] && [ -n "$cur_ips" ] || continue
        awk -v c="$cur_ips" -v b="$base_ips" -v n="$name" 'BEGIN {
            if (b > 0 && c < 0.5 * b)
                printf "WARN  %s: %.3g items/s vs %.3g in the committed baseline (different machine, or a regression?)\n", n, c, b
        }'
    done
else
    echo "WARN  no committed baseline at $BASELINE (drift report skipped)"
fi

exit $fail
