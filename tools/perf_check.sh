#!/bin/sh
# perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]
#
# Host-perf gate for the event kernel (docs/PERF.md). Runs the
# micro_simkernel benchmark suite, then:
#
#  1. HARD CHECK: for every BM_Legacy<X> / BM_<X> pair in the fresh
#     run, the hybrid kernel must be at least MIN_SPEEDUP (default 2.0)
#     times faster than the legacy replica. Both sides are measured in
#     the same process seconds apart, so the ratio is stable across
#     machines and load -- this is the check that gates.
#
#  2. DRIFT REPORT: compares the fresh items/sec against the committed
#     baseline JSON (bench/BENCH_simkernel.json). Absolute throughput
#     depends on the machine, so large drift only prints a warning and
#     never fails the check.
#
# Registered as the `perf_check` CTest (CONFIGURATIONS perf): run it
# with `ctest -C perf -R perf_check`, never in the default tier-1 run.

set -u

BINARY=${1:?usage: perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]}
BASELINE=${2:?usage: perf_check.sh BINARY BASELINE_JSON [MIN_SPEEDUP]}
MIN_SPEEDUP=${3:-${WIDIR_PERF_MIN_SPEEDUP:-2.0}}

FRESH=$(mktemp /tmp/widir_bench.XXXXXX.json)
trap 'rm -f "$FRESH"' EXIT

echo "running $BINARY (this takes a minute)..."
"$BINARY" --json="$FRESH" --benchmark_min_time=0.5 >/dev/null 2>&1 || {
    echo "perf_check: benchmark run failed" >&2
    exit 1
}

# items_per_second NAME FILE -> value (our own line-per-entry schema).
ips() {
    sed -n "s/.*\"name\": \"$1\", \"items_per_second\": \([^,]*\),.*/\1/p" "$2"
}

fail=0

# --- 1. hybrid vs in-binary legacy replica ---------------------------
for legacy in $(sed -n 's/.*"name": "\(BM_Legacy[A-Za-z]*\)",.*/\1/p' "$FRESH"); do
    new=$(printf '%s' "$legacy" | sed 's/^BM_Legacy/BM_/')
    legacy_ips=$(ips "$legacy" "$FRESH")
    new_ips=$(ips "$new" "$FRESH")
    if [ -z "$legacy_ips" ] || [ -z "$new_ips" ]; then
        echo "perf_check: missing pair for $legacy" >&2
        fail=1
        continue
    fi
    ok=$(awk -v n="$new_ips" -v l="$legacy_ips" -v min="$MIN_SPEEDUP" \
        'BEGIN { r = l > 0 ? n / l : 0;
                 printf "%.2f %d", r, (r >= min) ? 1 : 0 }')
    ratio=${ok% *}
    pass=${ok#* }
    if [ "$pass" = 1 ]; then
        echo "PASS  $new: ${ratio}x over legacy (need >= ${MIN_SPEEDUP}x)"
    else
        echo "FAIL  $new: ${ratio}x over legacy (need >= ${MIN_SPEEDUP}x)" >&2
        fail=1
    fi
done

# --- 2. drift vs committed baseline (warn only) ----------------------
if [ -f "$BASELINE" ]; then
    for name in $(sed -n 's/.*"name": "\(BM_[A-Za-z]*\)",.*/\1/p' "$BASELINE"); do
        base_ips=$(ips "$name" "$BASELINE")
        cur_ips=$(ips "$name" "$FRESH")
        [ -n "$base_ips" ] && [ -n "$cur_ips" ] || continue
        awk -v c="$cur_ips" -v b="$base_ips" -v n="$name" 'BEGIN {
            if (b > 0 && c < 0.5 * b)
                printf "WARN  %s: %.3g items/s vs %.3g in the committed baseline (different machine, or a regression?)\n", n, c, b
        }'
    done
else
    echo "WARN  no committed baseline at $BASELINE (drift report skipped)"
fi

exit $fail
