/**
 * @file
 * Regenerates Fig. 8: execution time of WiDir normalized to Baseline
 * for 64-, 32- and 16-core runs, with each bar split into memory-stall
 * cycles and the rest. The paper reports average execution-time
 * reductions of ~22% (64 cores), ~11% (32) and ~4% (16), and an
 * average Baseline memory-stall share near 65% at 64 cores.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t scale = sys::benchScale(4);
    const std::uint32_t core_counts[] = {64, 32, 16};

    Options opt("fig8_exec_time", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    // bi[c][a] / wi[c][a]: indices per core count x app.
    std::vector<std::vector<std::size_t>> bi, wi;
    for (std::uint32_t cores : core_counts) {
        std::vector<std::size_t> brow, wrow;
        for (const AppInfo *app : apps) {
            brow.push_back(sweep.add(*app, Protocol::BaselineMESI,
                                     cores, scale));
            wrow.push_back(sweep.add(*app, Protocol::WiDir, cores,
                                     scale));
        }
        bi.push_back(std::move(brow));
        wi.push_back(std::move(wrow));
    }
    sweep.run();

    banner("Fig. 8: normalized execution time (memory stall + rest)",
           "Figure 8 (a,b,c)");

    for (std::size_t c = 0; c < std::size(core_counts); ++c) {
        std::printf("\n--- %u cores ---\n", core_counts[c]);
        std::printf("%-14s %10s %7s | %10s %7s | %8s\n", "app",
                    "base.cyc", "stall%", "widir.cyc", "stall%",
                    "norm");
        std::vector<double> ratios;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const auto &base = sweep[bi[c][i]];
            const auto &widir = sweep[wi[c][i]];
            double norm = base.cycles
                ? static_cast<double>(widir.cycles) /
                      static_cast<double>(base.cycles)
                : 1.0;
            ratios.push_back(norm);
            std::printf("%-14s %10llu %6.1f%% | %10llu %6.1f%% |"
                        " %8.3f\n",
                        apps[i]->name,
                        static_cast<unsigned long long>(base.cycles),
                        100.0 * base.memStallFraction(),
                        static_cast<unsigned long long>(widir.cycles),
                        100.0 * widir.memStallFraction(), norm);
        }
        std::printf("average normalized time at %u cores: %.3f\n",
                    core_counts[c], mean(ratios));
    }
    std::printf("---\n(paper averages: 0.78 at 64, 0.89 at 32, "
                "0.96 at 16 cores)\n");
    sweep.writeJson("fig8_exec_time");
    return 0;
}
