/**
 * @file
 * Regenerates Fig. 8: execution time of WiDir normalized to Baseline
 * for 64-, 32- and 16-core runs, with each bar split into memory-stall
 * cycles and the rest. The paper reports average execution-time
 * reductions of ~22% (64 cores), ~11% (32) and ~4% (16), and an
 * average Baseline memory-stall share near 65% at 64 cores.
 */

#include "common.h"

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t scale = sys::benchScale(4);

    banner("Fig. 8: normalized execution time (memory stall + rest)",
           "Figure 8 (a,b,c)");

    for (std::uint32_t cores : {64u, 32u, 16u}) {
        std::printf("\n--- %u cores ---\n", cores);
        std::printf("%-14s %10s %7s | %10s %7s | %8s\n", "app",
                    "base.cyc", "stall%", "widir.cyc", "stall%",
                    "norm");
        std::vector<double> ratios;
        for (const AppInfo *app : benchApps()) {
            auto base = run(*app, Protocol::BaselineMESI, cores, scale);
            auto widir = run(*app, Protocol::WiDir, cores, scale);
            double norm = base.cycles
                ? static_cast<double>(widir.cycles) /
                      static_cast<double>(base.cycles)
                : 1.0;
            ratios.push_back(norm);
            std::printf("%-14s %10llu %6.1f%% | %10llu %6.1f%% |"
                        " %8.3f\n",
                        app->name,
                        static_cast<unsigned long long>(base.cycles),
                        100.0 * base.memStallFraction(),
                        static_cast<unsigned long long>(widir.cycles),
                        100.0 * widir.memStallFraction(), norm);
        }
        std::printf("average normalized time at %u cores: %.3f\n",
                    cores, mean(ratios));
    }
    std::printf("---\n(paper averages: 0.78 at 64, 0.89 at 32, "
                "0.96 at 16 cores)\n");
    return 0;
}
