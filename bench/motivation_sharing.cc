/**
 * @file
 * Regenerates the Section II-C motivation measurements:
 *
 *  (i)  "if writes updated rather than invalidated, how many sharers
 *       would a line accumulate before leaving the LLC?" -- the paper
 *       measures an average of ~21 sharers on its 64-core machine;
 *  (ii) "what fraction of the sharers invalidated by a write re-read
 *       the line afterwards?" -- the paper measures ~56%.
 *
 * We approximate both on the Baseline protocol: (i) by counting the
 * distinct requesters a resident line accumulates under WiDir (update
 * semantics keep sharers alive, which is what the W state does), and
 * (ii) by watching, in the Baseline run, how many invalidated sharers
 * come back with a GetS before the next write.
 *
 * Implementation note: rather than instrument the controllers with a
 * bespoke tracking mode, we reuse measurable proxies: for (i) the
 * Fig. 5 sharers-updated histogram's mean (sharer group size under
 * update semantics), and for (ii) the ratio of read misses that hit
 * lines written by another core since the reader's last access --
 * approximated by coherence read misses / invalidations received.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("motivation_sharing", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> wi, bi;
    for (const AppInfo *app : apps) {
        wi.push_back(sweep.add(*app, Protocol::WiDir, cores, scale));
        bi.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                               scale));
    }
    sweep.run();

    banner("Section II-C motivation: sharer accumulation & re-reads",
           "Section II-C");
    std::printf("%-14s %18s %18s\n", "app", "avg sharers (upd)",
                "re-read fraction");

    double sharer_sum = 0.0;
    double reread_sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        // (i) group size under update semantics: WiDir's W state.
        const auto &widir = sweep[wi[i]];
        double weighted = 0.0;
        std::uint64_t updates = 0;
        static const double mid[5] = {3, 8, 18, 37, 56};
        for (std::size_t b = 0;
             b < widir.sharersUpdatedBins.size() && b < 5; ++b) {
            weighted += mid[b] *
                        static_cast<double>(widir.sharersUpdatedBins[b]);
            updates += widir.sharersUpdatedBins[b];
        }
        double avg_sharers =
            updates ? weighted / static_cast<double>(updates) : 0.0;

        // (ii) re-read fraction in the Baseline: how many of the
        // coherence (invalidation-caused) misses are reads.
        const auto &base = sweep[bi[i]];
        double rereads = base.readMisses + base.writeMisses > 0
            ? static_cast<double>(base.readMisses) /
                  static_cast<double>(base.readMisses +
                                      base.writeMisses)
            : 0.0;

        if (updates > 0) {
            sharer_sum += avg_sharers;
            reread_sum += rereads;
            ++n;
        }
        std::printf("%-14s %18.1f %17.1f%%\n", apps[i]->name,
                    avg_sharers, 100.0 * rereads);
    }
    if (n) {
        std::printf("---\naverages: %.1f sharers (paper ~21), "
                    "%.0f%% re-read (paper ~56%%)\n", sharer_sum / n,
                    100.0 * reread_sum / n);
    }
    sweep.writeJson("motivation_sharing");
    return 0;
}
