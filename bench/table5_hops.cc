/**
 * @file
 * Regenerates Table V: distribution of the number of wired-mesh
 * network hops per message leg in the 64-core Baseline. The paper
 * reports 0-2: 17%, 3-5: 22%, 6-8: 31%, 9-11: 21%, 12-16: 9% -- i.e.
 * more than half of all messages travel at least 6 hops.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("table5_hops", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> idx;
    for (const AppInfo *app : apps)
        idx.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                                scale));
    sweep.run();

    banner("Table V: wired hops per message leg (Baseline, 64 cores)",
           "Table V");
    std::printf("%-14s %8s %8s %8s %8s %8s | %10s\n", "app", "0-2",
                "3-5", "6-8", "9-11", "12-16", "messages");

    std::vector<std::uint64_t> total(5, 0);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &r = sweep[idx[i]];
        std::uint64_t msgs = 0;
        for (auto c : r.hopBinCounts)
            msgs += c;
        std::printf("%-14s", apps[i]->name);
        for (std::size_t b = 0; b < 5 && b < r.hopBinCounts.size();
             ++b) {
            total[b] += r.hopBinCounts[b];
            std::printf(" %7.1f%%",
                        msgs ? 100.0 *
                                   static_cast<double>(r.hopBinCounts[b]) /
                                   static_cast<double>(msgs)
                             : 0.0);
        }
        std::printf(" | %10llu\n",
                    static_cast<unsigned long long>(msgs));
    }
    std::uint64_t grand = 0;
    for (auto c : total)
        grand += c;
    std::printf("---\n%-14s", "all apps");
    for (std::size_t b = 0; b < 5; ++b) {
        std::printf(" %7.1f%%",
                    grand ? 100.0 * static_cast<double>(total[b]) /
                                static_cast<double>(grand)
                          : 0.0);
    }
    std::printf("\n(paper:            17%%     22%%     31%%     21%%"
                "      9%%)\n");
    sweep.writeJson("table5_hops");
    return 0;
}
