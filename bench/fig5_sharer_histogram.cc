/**
 * @file
 * Regenerates Fig. 5: histogram of the number of sharers updated by
 * each wireless write in WiDir (bins: <=5, 6-10, 11-25, 26-49, 50+).
 * The paper reports ~36% of updates reach <=5 sharers and ~37% reach
 * 50+ (locks/barriers shared by everyone).
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("fig5_sharer_histogram", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> idx;
    for (const AppInfo *app : apps)
        idx.push_back(sweep.add(*app, Protocol::WiDir, cores, scale));
    sweep.run();

    banner("Fig. 5: sharers updated per wireless write (WiDir)",
           "Figure 5");
    std::printf("%-14s %8s %8s %8s %8s %8s | %9s\n", "app", "<=5",
                "6-10", "11-25", "26-49", "50+", "updates");

    std::vector<std::uint64_t> total(5, 0);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &r = sweep[idx[i]];
        std::uint64_t updates = 0;
        for (auto c : r.sharersUpdatedBins)
            updates += c;
        std::printf("%-14s", apps[i]->name);
        for (std::size_t b = 0; b < 5 && b < r.sharersUpdatedBins.size();
             ++b) {
            double frac = updates
                ? 100.0 * static_cast<double>(r.sharersUpdatedBins[b]) /
                      static_cast<double>(updates)
                : 0.0;
            total[b] += r.sharersUpdatedBins[b];
            std::printf(" %7.1f%%", frac);
        }
        std::printf(" | %9llu\n",
                    static_cast<unsigned long long>(updates));
    }
    std::uint64_t grand = 0;
    for (auto c : total)
        grand += c;
    std::printf("---\naverage        ");
    for (std::size_t b = 0; b < 5; ++b) {
        std::printf(" %7.1f%%",
                    grand ? 100.0 * static_cast<double>(total[b]) /
                                static_cast<double>(grand)
                          : 0.0);
    }
    std::printf("\n(paper averages: <=5 ~36%%, 50+ ~37%%)\n");
    sweep.writeJson("fig5_sharer_histogram");
    return 0;
}
