/**
 * @file
 * Regenerates Fig. 7: overall latency of memory operations (cycles
 * from ROB entry to ROB retirement, summed over all loads and all
 * stores) in WiDir and Baseline, normalized to Baseline. The paper
 * reports an average total-latency reduction of ~35%.
 */

#include "common.h"

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    banner("Fig. 7: normalized total memory-op latency (loads+stores)",
           "Figure 7");
    std::printf("%-14s %12s %12s %12s %12s | %8s\n", "app", "base.ld",
                "base.st", "widir.ld", "widir.st", "norm");

    std::vector<double> ratios;
    for (const AppInfo *app : benchApps()) {
        auto base = run(*app, Protocol::BaselineMESI, cores, scale);
        auto widir = run(*app, Protocol::WiDir, cores, scale);
        double base_total = static_cast<double>(base.loadLatencySum +
                                                base.storeLatencySum);
        double widir_total = static_cast<double>(widir.loadLatencySum +
                                                 widir.storeLatencySum);
        double norm = base_total > 0.0 ? widir_total / base_total : 1.0;
        ratios.push_back(norm);
        std::printf("%-14s %12llu %12llu %12llu %12llu | %8.3f\n",
                    app->name,
                    static_cast<unsigned long long>(base.loadLatencySum),
                    static_cast<unsigned long long>(base.storeLatencySum),
                    static_cast<unsigned long long>(widir.loadLatencySum),
                    static_cast<unsigned long long>(widir.storeLatencySum),
                    norm);
    }
    std::printf("---\naverage normalized memory latency: %.3f "
                "(paper: ~0.65, i.e. 35%% lower)\n",
                mean(ratios));
    return 0;
}
