/**
 * @file
 * Regenerates Fig. 7: overall latency of memory operations (cycles
 * from ROB entry to ROB retirement, summed over all loads and all
 * stores) in WiDir and Baseline, normalized to Baseline. The paper
 * reports an average total-latency reduction of ~35%.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("fig7_mem_latency", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> bi, wi;
    for (const AppInfo *app : apps) {
        bi.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                               scale));
        wi.push_back(sweep.add(*app, Protocol::WiDir, cores, scale));
    }
    sweep.run();

    banner("Fig. 7: normalized total memory-op latency (loads+stores)",
           "Figure 7");
    std::printf("%-14s %12s %12s %12s %12s | %8s\n", "app", "base.ld",
                "base.st", "widir.ld", "widir.st", "norm");

    std::vector<double> ratios;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &base = sweep[bi[i]];
        const auto &widir = sweep[wi[i]];
        double base_total = static_cast<double>(base.loadLatencySum +
                                                base.storeLatencySum);
        double widir_total = static_cast<double>(widir.loadLatencySum +
                                                 widir.storeLatencySum);
        double norm = base_total > 0.0 ? widir_total / base_total : 1.0;
        ratios.push_back(norm);
        std::printf("%-14s %12llu %12llu %12llu %12llu | %8.3f\n",
                    apps[i]->name,
                    static_cast<unsigned long long>(base.loadLatencySum),
                    static_cast<unsigned long long>(base.storeLatencySum),
                    static_cast<unsigned long long>(widir.loadLatencySum),
                    static_cast<unsigned long long>(widir.storeLatencySum),
                    norm);
    }
    std::printf("---\naverage normalized memory latency: %.3f "
                "(paper: ~0.65, i.e. 35%% lower)\n",
                mean(ratios));
    sweep.writeJson("fig7_mem_latency");
    return 0;
}
