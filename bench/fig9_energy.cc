/**
 * @file
 * Regenerates Fig. 9: energy consumed by WiDir and Baseline,
 * normalized to Baseline, broken into core / L1 / L2+directory /
 * wired NoC / WNoC. The paper reports ~21% lower energy for WiDir on
 * average, with the WNoC contributing ~5.9% of WiDir's energy, and a
 * Baseline split near 60% core / 5% L1 / 20% L2+dir / 15% NoC.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("fig9_energy", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> bi, wi;
    for (const AppInfo *app : apps) {
        bi.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                               scale));
        wi.push_back(sweep.add(*app, Protocol::WiDir, cores, scale));
    }
    sweep.run();

    banner("Fig. 9: normalized energy breakdown", "Figure 9");
    std::printf("%-14s | %-31s | %-37s | %6s\n", "app",
                "baseline shares (co/l1/l2/noc)",
                "widir shares (co/l1/l2/noc/wnoc)", "norm");

    std::vector<double> ratios;
    double base_share[4] = {0, 0, 0, 0};
    double widir_wnoc_share = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &base = sweep[bi[i]];
        const auto &widir = sweep[wi[i]];
        double bt = base.energy.total();
        double wt = widir.energy.total();
        double norm = bt > 0.0 ? wt / bt : 1.0;
        ratios.push_back(norm);
        base_share[0] += base.energy.core / bt;
        base_share[1] += base.energy.l1 / bt;
        base_share[2] += base.energy.l2dir / bt;
        base_share[3] += base.energy.noc / bt;
        widir_wnoc_share += widir.energy.wnoc / wt;
        ++n;
        std::printf("%-14s | %5.1f%% %5.1f%% %5.1f%% %5.1f%%      | "
                    "%5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %6.3f\n",
                    apps[i]->name, 100 * base.energy.core / bt,
                    100 * base.energy.l1 / bt,
                    100 * base.energy.l2dir / bt,
                    100 * base.energy.noc / bt,
                    100 * widir.energy.core / wt,
                    100 * widir.energy.l1 / wt,
                    100 * widir.energy.l2dir / wt,
                    100 * widir.energy.noc / wt,
                    100 * widir.energy.wnoc / wt, norm);
    }
    std::printf("---\naverage normalized energy: %.3f "
                "(paper ~0.79);  baseline shares core/l1/l2/noc = "
                "%.0f/%.0f/%.0f/%.0f%% (paper ~60/5/20/15);  "
                "WNoC share of WiDir: %.1f%% (paper ~5.9%%)\n",
                mean(ratios), 100 * base_share[0] / n,
                100 * base_share[1] / n, 100 * base_share[2] / n,
                100 * base_share[3] / n, 100 * widir_wnoc_share / n);
    sweep.writeJson("fig9_energy");
    return 0;
}
