/**
 * @file
 * Shared helpers for the experiment benches (bench/fig*_* and
 * bench/table*_*). Each bench binary regenerates one table or figure
 * of the paper: it collects the relevant (app x protocol x cores)
 * configurations, runs them concurrently through sys::SweepRunner
 * (results are bit-identical to serial runs), prints the same rows or
 * series the paper reports, and dumps every ExperimentResult to
 * bench/out/<name>.json (widir-sweep-v1 schema, see
 * src/system/report.h) so the perf trajectory is machine-readable.
 *
 * Command line:
 *   --jobs N            worker threads for the sweep
 *   --trace             capture a protocol trace per configuration and
 *                       export Chrome trace-event JSON files next to
 *                       the stats (docs/TRACING.md)
 *   --trace-window=LO:HI  restrict tracing to cycles [LO, HI]
 *                       (implies --trace)
 *
 * Environment:
 *   WIDIR_BENCH_SCALE   work multiplier (default per bench)
 *   WIDIR_BENCH_CORES   override the core count where applicable
 *   WIDIR_BENCH_APPS    comma-separated subset of app names
 *   WIDIR_BENCH_JOBS    worker threads (--jobs wins; default: all
 *                       hardware threads)
 *   WIDIR_BENCH_OUT     JSON output directory (default bench/out)
 *   WIDIR_TRACE         non-empty and not "0": same as --trace
 *   WIDIR_TRACE_WINDOW  LO:HI cycle window (same as --trace-window)
 */

#ifndef WIDIR_BENCH_COMMON_H
#define WIDIR_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "system/experiment.h"
#include "system/report.h"
#include "system/sweep.h"
#include "workload/registry.h"

namespace widir::bench {

using coherence::Protocol;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using workload::AppInfo;

/** Apps to run: all 20, or the WIDIR_BENCH_APPS subset. */
inline std::vector<const AppInfo *>
benchApps()
{
    std::vector<const AppInfo *> selected;
    const char *env = std::getenv("WIDIR_BENCH_APPS");
    if (!env || !*env) {
        for (const auto &app : workload::allApps())
            selected.push_back(&app);
        return selected;
    }
    bool any_requested = false;
    std::string list(env);
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::size_t end = comma == std::string::npos ? list.size() : comma;
        std::string name = list.substr(pos, end - pos);
        // Trim surrounding whitespace; skip empty tokens so trailing
        // or doubled commas are harmless.
        std::size_t b = name.find_first_not_of(" \t");
        std::size_t e = name.find_last_not_of(" \t");
        name = b == std::string::npos
            ? std::string()
            : name.substr(b, e - b + 1);
        if (!name.empty()) {
            any_requested = true;
            if (const AppInfo *app = workload::findApp(name))
                selected.push_back(app);
            else
                std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (any_requested && selected.empty()) {
        std::fprintf(stderr,
                     "WIDIR_BENCH_APPS='%s' matched no known app\n", env);
        std::exit(2);
    }
    return selected;
}

/** Core count override. */
inline std::uint32_t
benchCores(std::uint32_t fallback)
{
    if (const char *env = std::getenv("WIDIR_BENCH_CORES")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<std::uint32_t>(v);
    }
    return fallback;
}

/** JSON/trace output directory: WIDIR_BENCH_OUT or bench/out. */
inline std::string
benchOutDir()
{
    const char *dir = std::getenv("WIDIR_BENCH_OUT");
    return dir && *dir ? dir : "bench/out";
}

/** Trace capture settings for one bench invocation. */
struct TraceOpts
{
    bool on = false;
    sim::Tick lo = 0;
    sim::Tick hi = sim::kTickNever;
    std::string name; ///< bench name, used for trace file naming
};

/**
 * Trace knobs: --trace / --trace-window=LO:HI beat WIDIR_TRACE /
 * WIDIR_TRACE_WINDOW. A window implies tracing on.
 */
inline TraceOpts
benchTrace(int argc, char **argv, const char *bench_name)
{
    TraceOpts opts;
    opts.name = bench_name;
    auto window = [&opts](const char *val) {
        char *end = nullptr;
        unsigned long long lo = std::strtoull(val, &end, 10);
        if (!end || *end != ':') {
            std::fprintf(stderr,
                         "trace window must be LO:HI, got '%s'\n", val);
            std::exit(2);
        }
        unsigned long long hi = std::strtoull(end + 1, nullptr, 10);
        opts.lo = static_cast<sim::Tick>(lo);
        opts.hi = static_cast<sim::Tick>(hi);
        opts.on = true;
    };
    if (const char *env = std::getenv("WIDIR_TRACE"))
        opts.on = *env && std::strcmp(env, "0") != 0;
    if (const char *env = std::getenv("WIDIR_TRACE_WINDOW"))
        window(env);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--trace"))
            opts.on = true;
        else if (!std::strncmp(arg, "--trace-window=", 15))
            window(arg + 15);
        else if (!std::strcmp(arg, "--trace-window")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--trace-window requires LO:HI\n");
                std::exit(2);
            }
            window(argv[++i]);
        }
    }
    return opts;
}

/** Sweep worker count: --jobs N beats WIDIR_BENCH_JOBS beats auto. */
inline unsigned
benchJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = nullptr;
        if (!std::strcmp(arg, "--jobs")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs requires a value\n");
                std::exit(2);
            }
            val = argv[i + 1];
        } else if (!std::strncmp(arg, "--jobs=", 7))
            val = arg + 7;
        if (val) {
            long v = std::strtol(val, nullptr, 10);
            if (v > 0)
                return static_cast<unsigned>(v);
            std::fprintf(stderr, "invalid --jobs value '%s'\n", val);
            std::exit(2);
        }
    }
    return sys::defaultJobs();
}

/**
 * The bench pattern: phase 1 add()s every configuration (remembering
 * the returned index), run() executes them all on the thread pool,
 * then the printing code reads results back by index -- identical to
 * the old serial run-as-you-print flow, just batched.
 */
class Sweep
{
  public:
    explicit Sweep(unsigned jobs, TraceOpts trace = {})
        : runner_(jobs), trace_(std::move(trace))
    {
    }

    /** Queue one configuration; returns its result index. */
    std::size_t
    add(const AppInfo &app, Protocol proto, std::uint32_t cores,
        std::uint32_t scale, std::uint32_t max_wired_sharers = 3,
        std::uint32_t update_count_threshold = 0)
    {
        ExperimentSpec spec;
        spec.app = &app;
        spec.protocol = proto;
        spec.cores = cores;
        spec.scale = scale;
        spec.maxWiredSharers = max_wired_sharers;
        spec.updateCountThreshold = update_count_threshold;
        if (trace_.on) {
            spec.trace = true;
            spec.traceStart = trace_.lo;
            spec.traceEnd = trace_.hi;
            char tag[64];
            std::snprintf(tag, sizeof(tag), ".%zu_%s_%s_%uc",
                          specs_.size(), app.name,
                          proto == Protocol::WiDir ? "widir"
                                                   : "baseline",
                          cores);
            spec.traceFile = benchOutDir() + "/" +
                             (trace_.name.empty() ? "sweep"
                                                  : trace_.name) +
                             tag + ".trace.json";
        }
        specs_.push_back(spec);
        return specs_.size() - 1;
    }

    /** Run every queued spec (in parallel, results in add() order). */
    void
    run()
    {
        results_ = runner_.run(specs_);
        if (trace_.on)
            std::printf("[%zu Chrome traces -> %s/%s.*.trace.json]\n",
                        specs_.size(), benchOutDir().c_str(),
                        trace_.name.empty() ? "sweep"
                                            : trace_.name.c_str());
    }

    const ExperimentResult &
    operator[](std::size_t i) const
    {
        return results_.at(i);
    }

    const std::vector<ExperimentResult> &results() const
    {
        return results_;
    }

    std::size_t size() const { return specs_.size(); }
    unsigned jobs() const { return runner_.jobs(); }

    /**
     * Dump every result to <WIDIR_BENCH_OUT|bench/out>/<name>.json
     * and report where it went.
     */
    void
    writeJson(const char *bench_name) const
    {
        std::string path = benchOutDir() + "/" + bench_name + ".json";
        if (sys::writeResultsJson(path, bench_name, results_))
            std::printf("[%zu results -> %s]\n", results_.size(),
                        path.c_str());
    }

  private:
    sys::SweepRunner runner_;
    TraceOpts trace_;
    std::vector<ExperimentSpec> specs_;
    std::vector<ExperimentResult> results_;
};

/** Run one app under one protocol with bench-standard settings. */
inline ExperimentResult
run(const AppInfo &app, Protocol proto, std::uint32_t cores,
    std::uint32_t scale, std::uint32_t max_wired_sharers = 3)
{
    ExperimentSpec spec;
    spec.app = &app;
    spec.protocol = proto;
    spec.cores = cores;
    spec.scale = scale;
    spec.maxWiredSharers = max_wired_sharers;
    return sys::runExperiment(spec);
}

/** Header banner naming the experiment being regenerated. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n  (reproduces %s of the WiDir paper, HPCA 2021)\n",
                what, paper_ref);
    std::printf("==============================================="
                "=====================\n");
}

/** Geometric mean helper for normalized ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace widir::bench

#endif // WIDIR_BENCH_COMMON_H
