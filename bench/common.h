/**
 * @file
 * Shared helpers for the experiment benches (bench/fig*_* and
 * bench/table*_*). Each bench binary regenerates one table or figure
 * of the paper: it collects the relevant (app x protocol x cores)
 * configurations, runs them concurrently through sys::SweepRunner
 * (results are bit-identical to serial runs), prints the same rows or
 * series the paper reports, and dumps every ExperimentResult to
 * bench/out/<name>.json (widir-sweep-v1 schema, see
 * src/system/report.h) so the perf trajectory is machine-readable.
 *
 * Every bench accepts the same command line, parsed by bench::Options
 * from one declarative flag table (--help prints it):
 *   --jobs N              worker threads for the sweep
 *   --sim-threads N       host threads for the bound/weave parallel
 *                         kernel inside each simulation (docs/PERF.md;
 *                         0 = classic single-queue kernel)
 *   --trace               capture a protocol trace per configuration
 *                         and export Chrome trace-event JSON files
 *                         next to the stats (docs/TRACING.md)
 *   --trace-window LO:HI  restrict tracing to cycles [LO, HI]
 *                         (implies --trace)
 *   --ber B               wireless frame bit-error rate
 *                         (docs/FAULTS.md; repeatable where a bench
 *                         sweeps it, e.g. sensitivity_ber)
 *   --preamble-loss P     per-frame preamble-loss probability
 *   --tone-loss P         per-observation tone-pulse-loss probability
 *   --burst B:ENTER[:EXIT]  Gilbert-Elliott burst noise: burst-state
 *                         BER plus enter/exit probabilities
 *   --fault-retries N     per-transmission retry budget
 *   --fault-seed N        extra seed folded into the fault RNG stream
 *   --tiles N             tile count (repeatable; benches that sweep
 *                         core counts, e.g. fig10_scalability, replace
 *                         their default list with the given values)
 *   --mesh-concentration C  tiles per mesh router (concentrated mesh)
 *   --wireless-channels N frequency-multiplexed data sub-channels
 *   --home-map M          directory sharding: interleave | hash
 *   --record DIR          record a widir-mtrace-v1 trace per
 *                         configuration into DIR (docs/FRONTEND.md)
 *   --replay full|fast    replay trace-driven apps through the core
 *                         model (full) or straight into the L1s (fast)
 *   --trace-in FILE       register FILE (mtrace or text format) as
 *                         workload "trace:<stem>" and select it via
 *                         WIDIR_BENCH_APPS when that is unset
 *
 * Environment (flags win over environment):
 *   WIDIR_BENCH_SCALE   work multiplier (default per bench)
 *   WIDIR_BENCH_CORES   override the core count where applicable
 *   WIDIR_BENCH_APPS    comma-separated subset of app names
 *   WIDIR_BENCH_JOBS    worker threads (--jobs wins; default: all
 *                       hardware threads)
 *   WIDIR_SIM_THREADS   bound/weave kernel threads per simulation
 *                       (--sim-threads wins; default 0 = classic
 *                       kernel)
 *   WIDIR_BENCH_OUT     JSON output directory (default bench/out)
 *   WIDIR_TRACE         non-empty and not "0": same as --trace
 *   WIDIR_TRACE_WINDOW  LO:HI cycle window (same as --trace-window)
 */

#ifndef WIDIR_BENCH_COMMON_H
#define WIDIR_BENCH_COMMON_H

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "system/experiment.h"
#include "system/report.h"
#include "system/sweep.h"
#include "workload/registry.h"

namespace widir::bench {

using coherence::Protocol;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using workload::AppInfo;

/** Apps to run: all 20, or the WIDIR_BENCH_APPS subset. */
inline std::vector<const AppInfo *>
benchApps()
{
    std::vector<const AppInfo *> selected;
    const char *env = std::getenv("WIDIR_BENCH_APPS");
    if (!env || !*env) {
        for (const auto &app : workload::allApps())
            selected.push_back(&app);
        return selected;
    }
    bool any_requested = false;
    std::string list(env);
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::size_t end = comma == std::string::npos ? list.size() : comma;
        std::string name = list.substr(pos, end - pos);
        // Trim surrounding whitespace; skip empty tokens so trailing
        // or doubled commas are harmless.
        std::size_t b = name.find_first_not_of(" \t");
        std::size_t e = name.find_last_not_of(" \t");
        name = b == std::string::npos
            ? std::string()
            : name.substr(b, e - b + 1);
        if (!name.empty()) {
            any_requested = true;
            if (const AppInfo *app = workload::findApp(name))
                selected.push_back(app);
            else
                std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (any_requested && selected.empty()) {
        std::fprintf(stderr,
                     "WIDIR_BENCH_APPS='%s' matched no known app\n", env);
        std::exit(2);
    }
    return selected;
}

/** Core count override. */
inline std::uint32_t
benchCores(std::uint32_t fallback)
{
    if (const char *env = std::getenv("WIDIR_BENCH_CORES")) {
        long v = 0;
        if (sys::parseEnvInt(env, 1, 1'000'000, v))
            return static_cast<std::uint32_t>(v);
        std::fprintf(stderr, "ignoring invalid WIDIR_BENCH_CORES='%s'\n",
                     env);
    }
    return fallback;
}

/** JSON/trace output directory: WIDIR_BENCH_OUT or bench/out. */
inline std::string
benchOutDir()
{
    const char *dir = std::getenv("WIDIR_BENCH_OUT");
    return dir && *dir ? dir : "bench/out";
}

/**
 * Parsed command line for one bench binary.
 *
 * The constructor consumes argv against one declarative flag table
 * (the same table generates --help), applies the WIDIR_TRACE /
 * WIDIR_TRACE_WINDOW environment fallbacks, and exits with a usage
 * message on any unknown flag -- every bench therefore rejects typos
 * instead of silently ignoring them.
 */
class Options
{
  public:
    Options(const char *bench_name, int argc, char **argv)
        : name_(bench_name)
    {
        struct Flag
        {
            const char *name;                      ///< e.g. "--jobs"
            const char *operand;                   ///< null: no operand
            const char *help;
            std::function<void(const char *)> parse;
        };
        const Flag flags[] = {
            {"--jobs", "N", "worker threads for the sweep",
             [this](const char *v) {
                 long n = 0;
                 if (!sys::parseEnvInt(v, 1, 4096, n))
                     die("invalid --jobs value '%s'", v);
                 jobs_ = static_cast<unsigned>(n);
             }},
            {"--sim-threads", "N",
             "bound/weave kernel threads inside each simulation "
             "(0 = classic kernel)",
             [this](const char *v) {
                 long n = 0;
                 if (!sys::parseEnvInt(v, 0, 4096, n))
                     die("invalid --sim-threads value '%s'", v);
                 simThreads_ = static_cast<unsigned>(n);
                 simThreadsSet_ = true;
             }},
            {"--trace", nullptr,
             "capture + export a protocol trace per configuration",
             [this](const char *) { traceOn_ = true; }},
            {"--trace-window", "LO:HI",
             "restrict tracing to a cycle window (implies --trace)",
             [this](const char *v) { parseWindow(v); }},
            {"--ber", "B",
             "wireless frame bit-error rate (repeatable)",
             [this](const char *v) {
                 double b = parseProb("--ber", v);
                 fault_.ber = b;
                 bers_.push_back(b);
             }},
            {"--preamble-loss", "P",
             "per-frame preamble-loss probability",
             [this](const char *v) {
                 fault_.preambleLossProb = parseProb("--preamble-loss", v);
             }},
            {"--tone-loss", "P",
             "per-observation tone-pulse-loss probability",
             [this](const char *v) {
                 fault_.toneLossProb = parseProb("--tone-loss", v);
             }},
            {"--burst", "B:ENTER[:EXIT]",
             "Gilbert-Elliott burst noise: BER in the burst state "
             "plus enter/exit probabilities",
             [this](const char *v) { parseBurst(v); }},
            {"--fault-retries", "N",
             "per-transmission retry budget before wired fallback",
             [this](const char *v) {
                 long n = std::strtol(v, nullptr, 10);
                 if (n <= 0)
                     die("invalid --fault-retries value '%s'", v);
                 fault_.retryBudget = static_cast<std::uint32_t>(n);
             }},
            {"--fault-seed", "N",
             "extra seed folded into the fault RNG stream",
             [this](const char *v) {
                 fault_.seed = std::strtoull(v, nullptr, 10);
             }},
            {"--tiles", "N",
             "tile (core) count; repeatable where a bench sweeps core "
             "counts (e.g. fig10_scalability)",
             [this](const char *v) {
                 long n = 0;
                 if (!sys::parseEnvInt(v, 1, 1'000'000, n))
                     die("invalid --tiles value '%s'", v);
                 tiles_.push_back(static_cast<std::uint32_t>(n));
             }},
            {"--mesh-concentration", "C",
             "tiles per mesh router (concentrated mesh; must divide "
             "the tile count)",
             [this](const char *v) {
                 long n = 0;
                 if (!sys::parseEnvInt(v, 1, 4096, n))
                     die("invalid --mesh-concentration value '%s'", v);
                 meshConcentration_ = static_cast<std::uint32_t>(n);
             }},
            {"--wireless-channels", "N",
             "frequency-multiplexed wireless data sub-channels",
             [this](const char *v) {
                 long n = 0;
                 if (!sys::parseEnvInt(v, 1, 4096, n))
                     die("invalid --wireless-channels value '%s'", v);
                 wirelessChannels_ = static_cast<std::uint32_t>(n);
             }},
            {"--home-map", "interleave|hash",
             "directory-bank sharding policy",
             [this](const char *v) {
                 if (!std::strcmp(v, "interleave"))
                     homeMap_ = mem::HomeMap::Interleave;
                 else if (!std::strcmp(v, "hash"))
                     homeMap_ = mem::HomeMap::Hash;
                 else
                     die("invalid --home-map value '%s'", v);
             }},
            {"--record", "DIR",
             "record a widir-mtrace-v1 trace per configuration into "
             "DIR (docs/FRONTEND.md)",
             [this](const char *v) {
                 if (!*v)
                     die("--record wants a directory");
                 recordDir_ = v;
             }},
            {"--replay", "full|fast",
             "replay trace-driven apps through the core model (full) "
             "or straight into the L1s (fast)",
             [this](const char *v) {
                 if (!std::strcmp(v, "full"))
                     replayKind_ = frontend::FrontendKind::ReplayFull;
                 else if (!std::strcmp(v, "fast"))
                     replayKind_ = frontend::FrontendKind::ReplayFast;
                 else
                     die("invalid --replay value '%s' (want full|fast)",
                         v);
                 replaySet_ = true;
             }},
            {"--trace-in", "FILE",
             "register FILE (mtrace or text format) as workload "
             "'trace:<stem>'; selected via WIDIR_BENCH_APPS when unset",
             [this](const char *v) {
                 if (!*v)
                     die("--trace-in wants a file");
                 traceIn_ = v;
             }},
        };

        if (const char *env = std::getenv("WIDIR_TRACE"))
            traceOn_ = *env && std::strcmp(env, "0") != 0;
        if (const char *env = std::getenv("WIDIR_TRACE_WINDOW"))
            parseWindow(env);

        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
                printHelp(flags, sizeof(flags) / sizeof(flags[0]));
                std::exit(0);
            }
            const Flag *match = nullptr;
            const char *inline_val = nullptr;
            for (const Flag &f : flags) {
                std::size_t n = std::strlen(f.name);
                if (!std::strcmp(arg, f.name)) {
                    match = &f;
                    break;
                }
                if (f.operand && !std::strncmp(arg, f.name, n) &&
                    arg[n] == '=') {
                    match = &f;
                    inline_val = arg + n + 1;
                    break;
                }
            }
            if (!match)
                die("unknown flag '%s' (try --help)", arg);
            if (!match->operand) {
                match->parse(nullptr);
                continue;
            }
            if (!inline_val) {
                if (i + 1 >= argc)
                    die("%s requires %s", match->name, match->operand);
                inline_val = argv[++i];
            }
            match->parse(inline_val);
        }

        if (std::string err = fault_.validate(); !err.empty())
            die("invalid fault options: %s", err.c_str());

        // --sim-threads wins over WIDIR_SIM_THREADS, including an
        // explicit 0 (classic kernel): clear the env knob so
        // runExperiment's fallback cannot re-enable the domain
        // kernel. Runs before any sweep worker exists, so mutating
        // the environment is safe.
        if (simThreadsSet_ && simThreads_ == 0)
            unsetenv("WIDIR_SIM_THREADS");

        // --trace-in makes the external trace a first-class workload:
        // register it as "trace:<stem>" and, when the user did not
        // pick an app subset, select exactly it -- so any bench runs
        // the external trace through its standard sweep. Like
        // --sim-threads above, this env write precedes the workers.
        if (!traceIn_.empty()) {
            std::string stem = traceIn_;
            if (std::size_t slash = stem.find_last_of('/');
                slash != std::string::npos)
                stem.erase(0, slash + 1);
            if (std::size_t dot = stem.find_last_of('.');
                dot != std::string::npos && dot > 0)
                stem.erase(dot);
            traceApp_ = "trace:" + stem;
            workload::registerTraceApp(traceApp_, traceIn_);
            const char *sel = std::getenv("WIDIR_BENCH_APPS");
            if (!sel || !*sel)
                setenv("WIDIR_BENCH_APPS", traceApp_.c_str(), 1);
        }
    }

    const std::string &name() const { return name_; }
    /** Worker threads; 0 lets SweepRunner pick sys::defaultJobs(). */
    unsigned jobs() const { return jobs_; }
    /**
     * Bound/weave kernel threads per simulation; 0 defers to
     * WIDIR_SIM_THREADS (or the classic kernel) in runExperiment.
     */
    unsigned simThreads() const { return simThreads_; }

    /// @name Tracing (mapped onto sys::TraceOptions per spec)
    /// @{
    bool traceOn() const { return traceOn_; }
    sim::Tick traceStart() const { return traceLo_; }
    sim::Tick traceEnd() const { return traceHi_; }
    /// @}

    /** Fault spec assembled from the fault flags (default: clean). */
    const fault::FaultSpec &fault() const { return fault_; }

    /** Every --ber value, in order (sensitivity_ber sweeps these). */
    const std::vector<double> &berList() const { return bers_; }

    /** Every --tiles value, in order (empty: bench default counts). */
    const std::vector<std::uint32_t> &tilesList() const
    {
        return tiles_;
    }

    /// @name Scale-out topology knobs (applied sweep-wide)
    /// @{
    std::uint32_t meshConcentration() const
    {
        return meshConcentration_;
    }
    std::uint32_t wirelessChannels() const { return wirelessChannels_; }
    mem::HomeMap homeMap() const { return homeMap_; }
    /// @}

    /// @name Frontend selection (docs/FRONTEND.md)
    /// @{
    /** Trace output directory; empty when --record was not given. */
    const std::string &recordDir() const { return recordDir_; }
    /** True when --replay was given (replayKind() is then valid). */
    bool replaySet() const { return replaySet_; }
    frontend::FrontendKind replayKind() const { return replayKind_; }
    /** Registered app name for --trace-in, "" without the flag. */
    const std::string &traceApp() const { return traceApp_; }
    /// @}

  private:
    [[noreturn]] void
    die(const char *fmt, ...)
    {
        va_list ap;
        va_start(ap, fmt);
        std::fprintf(stderr, "%s: ", name_.c_str());
        std::vfprintf(stderr, fmt, ap);
        std::fprintf(stderr, "\n");
        va_end(ap);
        std::exit(2);
    }

    void
    parseWindow(const char *val)
    {
        char *end = nullptr;
        unsigned long long lo = std::strtoull(val, &end, 10);
        if (!end || *end != ':')
            die("trace window must be LO:HI, got '%s'", val);
        unsigned long long hi = std::strtoull(end + 1, nullptr, 10);
        traceLo_ = static_cast<sim::Tick>(lo);
        traceHi_ = static_cast<sim::Tick>(hi);
        traceOn_ = true;
    }

    double
    parseProb(const char *flag, const char *val)
    {
        char *end = nullptr;
        double p = std::strtod(val, &end);
        if (!end || end == val || *end != '\0' || !(p >= 0.0) ||
            !(p <= 1.0))
            die("%s wants a probability in [0,1], got '%s'", flag, val);
        return p;
    }

    void
    parseBurst(const char *val)
    {
        // B:ENTER[:EXIT]; EXIT keeps its FaultSpec default if omitted.
        std::string s(val);
        std::size_t c1 = s.find(':');
        if (c1 == std::string::npos)
            die("--burst wants B:ENTER[:EXIT], got '%s'", val);
        std::size_t c2 = s.find(':', c1 + 1);
        fault_.burstBer = parseProb("--burst", s.substr(0, c1).c_str());
        std::string enter = c2 == std::string::npos
            ? s.substr(c1 + 1)
            : s.substr(c1 + 1, c2 - c1 - 1);
        fault_.burstEnterProb = parseProb("--burst", enter.c_str());
        if (c2 != std::string::npos)
            fault_.burstExitProb =
                parseProb("--burst", s.substr(c2 + 1).c_str());
    }

    template <typename FlagT>
    void
    printHelp(const FlagT *flags, std::size_t n)
    {
        std::printf("usage: %s [flags]\n\n"
                    "Regenerates one experiment of the WiDir paper; "
                    "see bench/common.h\nfor the WIDIR_BENCH_* "
                    "environment knobs.\n\nflags:\n",
                    name_.c_str());
        for (std::size_t i = 0; i < n; ++i) {
            char left[48];
            std::snprintf(left, sizeof(left), "%s%s%s", flags[i].name,
                          flags[i].operand ? " " : "",
                          flags[i].operand ? flags[i].operand : "");
            std::printf("  %-28s %s\n", left, flags[i].help);
        }
        std::printf("  %-28s %s\n", "--help", "this message");
    }

    std::string name_;
    unsigned jobs_ = 0;
    unsigned simThreads_ = 0;
    bool simThreadsSet_ = false;
    bool traceOn_ = false;
    sim::Tick traceLo_ = 0;
    sim::Tick traceHi_ = sim::kTickNever;
    fault::FaultSpec fault_;
    std::vector<double> bers_;
    std::vector<std::uint32_t> tiles_;
    std::uint32_t meshConcentration_ = 1;
    std::uint32_t wirelessChannels_ = 1;
    mem::HomeMap homeMap_ = mem::HomeMap::Interleave;
    std::string recordDir_;
    bool replaySet_ = false;
    frontend::FrontendKind replayKind_ =
        frontend::FrontendKind::ReplayFull;
    std::string traceIn_;
    std::string traceApp_;
};

/**
 * The bench pattern: phase 1 add()s every configuration (remembering
 * the returned index), run() executes them all on the thread pool,
 * then the printing code reads results back by index -- identical to
 * the old serial run-as-you-print flow, just batched.
 *
 * Sweep applies the bench-wide Options (tracing, fault injection) to
 * every queued spec, so a single --ber flag faults the whole sweep.
 */
class Sweep
{
  public:
    explicit Sweep(const Options &opt)
        : runner_(opt.jobs()), name_(opt.name()),
          traceOn_(opt.traceOn()), traceLo_(opt.traceStart()),
          traceHi_(opt.traceEnd()), fault_(opt.fault()),
          simThreads_(opt.simThreads()),
          meshConcentration_(opt.meshConcentration()),
          wirelessChannels_(opt.wirelessChannels()),
          homeMap_(opt.homeMap()), recordDir_(opt.recordDir()),
          replaySet_(opt.replaySet()), replayKind_(opt.replayKind())
    {
    }

    /** Queue one configuration; returns its result index. */
    std::size_t
    add(const AppInfo &app, Protocol proto, std::uint32_t cores,
        std::uint32_t scale, std::uint32_t max_wired_sharers = 3,
        std::uint32_t update_count_threshold = 0)
    {
        ExperimentSpec spec;
        spec.app = &app;
        spec.protocol = proto;
        spec.cores = cores;
        spec.scale = scale;
        spec.maxWiredSharers = max_wired_sharers;
        spec.updateCountThreshold = update_count_threshold;
        spec.fault = fault_; // sweep-wide fault flags apply
        return addSpec(std::move(spec));
    }

    /**
     * Queue a fully custom spec. Only the sweep-wide trace options are
     * layered on top; the caller owns the FaultSpec (sensitivity_ber
     * sweeps its own BER per row and relies on that).
     */
    std::size_t
    addSpec(ExperimentSpec spec)
    {
        if (spec.simThreads == 0)
            spec.simThreads = simThreads_; // --sim-threads sweep-wide
        // Topology flags apply sweep-wide unless the spec already
        // carries a non-default value of its own.
        if (spec.meshConcentration == 1)
            spec.meshConcentration = meshConcentration_;
        if (spec.wirelessChannels == 1)
            spec.wirelessChannels = wirelessChannels_;
        if (spec.homeMap == mem::HomeMap::Interleave)
            spec.homeMap = homeMap_;
        // Frontend flags apply sweep-wide where they make sense:
        // --record to kernel apps (a trace app has nothing to record),
        // --replay to trace-driven apps (their trace supplies the
        // machine-or-text input; kernel apps have no trace to replay).
        if (spec.frontend == frontend::FrontendKind::Coroutine &&
            spec.app != nullptr) {
            const bool trace_app = spec.app->traceSource != nullptr;
            if (!recordDir_.empty() && !trace_app) {
                spec.frontend = frontend::FrontendKind::Record;
                char tag[64];
                std::snprintf(tag, sizeof(tag), "%zu_%s_%s_%uc",
                              specs_.size(), spec.app->name,
                              spec.protocol == Protocol::WiDir
                                  ? "widir"
                                  : "baseline",
                              spec.cores);
                spec.recordPath = recordDir_ + "/" + tag + ".mtrace";
            }
            if (replaySet_ && trace_app)
                spec.frontend = replayKind_;
        }
        if (traceOn_) {
            spec.trace.enabled = true;
            spec.trace.start = traceLo_;
            spec.trace.end = traceHi_;
            char tag[64];
            std::snprintf(tag, sizeof(tag), ".%zu_%s_%s_%uc",
                          specs_.size(), spec.app ? spec.app->name : "?",
                          spec.protocol == Protocol::WiDir ? "widir"
                                                           : "baseline",
                          spec.cores);
            spec.trace.file = benchOutDir() + "/" +
                              (name_.empty() ? "sweep" : name_) + tag +
                              ".trace.json";
        }
        specs_.push_back(std::move(spec));
        return specs_.size() - 1;
    }

    /** Run every queued spec (in parallel, results in add() order). */
    void
    run()
    {
        results_ = runner_.run(specs_);
        if (traceOn_)
            std::printf("[%zu Chrome traces -> %s/%s.*.trace.json]\n",
                        specs_.size(), benchOutDir().c_str(),
                        name_.empty() ? "sweep" : name_.c_str());
    }

    const ExperimentResult &
    operator[](std::size_t i) const
    {
        return results_.at(i);
    }

    const std::vector<ExperimentResult> &results() const
    {
        return results_;
    }

    std::size_t size() const { return specs_.size(); }
    unsigned jobs() const { return runner_.jobs(); }

    /**
     * Dump every result to <WIDIR_BENCH_OUT|bench/out>/<name>.json
     * and report where it went.
     */
    void
    writeJson(const char *bench_name) const
    {
        std::string path = benchOutDir() + "/" + bench_name + ".json";
        if (sys::writeResultsJson(path, bench_name, results_))
            std::printf("[%zu results -> %s]\n", results_.size(),
                        path.c_str());
    }

  private:
    sys::SweepRunner runner_;
    std::string name_;
    bool traceOn_;
    sim::Tick traceLo_;
    sim::Tick traceHi_;
    fault::FaultSpec fault_;
    unsigned simThreads_;
    std::uint32_t meshConcentration_;
    std::uint32_t wirelessChannels_;
    mem::HomeMap homeMap_;
    std::string recordDir_;
    bool replaySet_;
    frontend::FrontendKind replayKind_;
    std::vector<ExperimentSpec> specs_;
    std::vector<ExperimentResult> results_;
};

/** Run one app under one protocol with bench-standard settings. */
inline ExperimentResult
run(const AppInfo &app, Protocol proto, std::uint32_t cores,
    std::uint32_t scale, std::uint32_t max_wired_sharers = 3)
{
    ExperimentSpec spec;
    spec.app = &app;
    spec.protocol = proto;
    spec.cores = cores;
    spec.scale = scale;
    spec.maxWiredSharers = max_wired_sharers;
    return sys::runExperiment(spec);
}

/** Header banner naming the experiment being regenerated. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n  (reproduces %s of the WiDir paper, HPCA 2021)\n",
                what, paper_ref);
    std::printf("==============================================="
                "=====================\n");
}

/** Geometric mean helper for normalized ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/**
 * Peak resident set of this process in KiB (Linux VmHWM), 0 when
 * unknown. The scale-out benches print it as `host_peak_rss_kb N` so
 * tools/perf_check.sh --rss can gate footprint growth without needing
 * GNU time on the host (docs/PERF.md). A host-side figure like the
 * host_* JSON fields: never part of the widir-sweep-v1 stats.
 */
inline std::uint64_t
hostPeakRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    std::uint64_t kb = 0;
    char line[128];
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::sscanf(line, "VmHWM: %llu",
                        reinterpret_cast<unsigned long long *>(&kb)) ==
            1)
            break;
    }
    std::fclose(f);
    return kb;
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace widir::bench

#endif // WIDIR_BENCH_COMMON_H
