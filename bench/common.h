/**
 * @file
 * Shared helpers for the experiment benches (bench/fig*_* and
 * bench/table*_*). Each bench binary regenerates one table or figure
 * of the paper: it runs the relevant (app x protocol x cores)
 * configurations through sys::runExperiment and prints the same rows
 * or series the paper reports.
 *
 * Environment:
 *   WIDIR_BENCH_SCALE   work multiplier (default per bench)
 *   WIDIR_BENCH_CORES   override the core count where applicable
 *   WIDIR_BENCH_APPS    comma-separated subset of app names
 */

#ifndef WIDIR_BENCH_COMMON_H
#define WIDIR_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "system/experiment.h"
#include "workload/registry.h"

namespace widir::bench {

using coherence::Protocol;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using workload::AppInfo;

/** Apps to run: all 20, or the WIDIR_BENCH_APPS subset. */
inline std::vector<const AppInfo *>
benchApps()
{
    std::vector<const AppInfo *> selected;
    const char *env = std::getenv("WIDIR_BENCH_APPS");
    if (!env || !*env) {
        for (const auto &app : workload::allApps())
            selected.push_back(&app);
        return selected;
    }
    std::string list(env);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t comma = list.find(',', pos);
        std::string name = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (const AppInfo *app = workload::findApp(name))
            selected.push_back(app);
        else
            std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return selected;
}

/** Core count override. */
inline std::uint32_t
benchCores(std::uint32_t fallback)
{
    if (const char *env = std::getenv("WIDIR_BENCH_CORES")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<std::uint32_t>(v);
    }
    return fallback;
}

/** Run one app under one protocol with bench-standard settings. */
inline ExperimentResult
run(const AppInfo &app, Protocol proto, std::uint32_t cores,
    std::uint32_t scale, std::uint32_t max_wired_sharers = 3)
{
    ExperimentSpec spec;
    spec.app = &app;
    spec.protocol = proto;
    spec.cores = cores;
    spec.scale = scale;
    spec.maxWiredSharers = max_wired_sharers;
    return sys::runExperiment(spec);
}

/** Header banner naming the experiment being regenerated. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n  (reproduces %s of the WiDir paper, HPCA 2021)\n",
                what, paper_ref);
    std::printf("==============================================="
                "=====================\n");
}

/** Geometric mean helper for normalized ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace widir::bench

#endif // WIDIR_BENCH_COMMON_H
