/**
 * @file
 * BER sensitivity of WiDir under wireless fault injection
 * (docs/FAULTS.md). The paper assumes a raw wireless BER of 1e-15 --
 * effectively error-free at on-chip frame sizes (Section V-A cites the
 * transceiver literature) -- so faults are not part of its evaluation;
 * this bench asks the follow-on question: how gracefully does the
 * protocol degrade when the channel is worse than designed for?
 *
 * For each app we sweep the frame bit-error rate (default decades
 * 1e-6..1e-3, or the --ber list) on top of any other fault flags, plus
 * a clean BER=0 reference row, and report execution time normalized to
 * that reference together with the resilience counters: frame CRC
 * errors, retries, budget-exhausted drops, and wired fallbacks.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    Options opt("sensitivity_ber", argc, argv);
    std::uint32_t scale = sys::benchScale(2);
    std::uint32_t cores = benchCores(64);

    std::vector<double> bers = opt.berList();
    if (bers.empty())
        bers = {1e-6, 1e-5, 1e-4, 1e-3};
    bers.insert(bers.begin(), 0.0); // clean reference row

    auto apps = benchApps();
    Sweep sweep(opt);
    // rows[b][a]: result index per BER x app.
    std::vector<std::vector<std::size_t>> rows;
    for (double ber : bers) {
        std::vector<std::size_t> row;
        for (const AppInfo *app : apps) {
            ExperimentSpec spec;
            spec.app = app;
            spec.protocol = Protocol::WiDir;
            spec.cores = cores;
            spec.scale = scale;
            spec.fault = opt.fault();
            spec.fault.ber = ber;
            row.push_back(sweep.addSpec(std::move(spec)));
        }
        rows.push_back(std::move(row));
    }
    sweep.run();

    banner("BER sensitivity: WiDir under wireless fault injection",
           "the Section V-A error-free-channel assumption");

    std::printf("%u cores, scale %u, retry budget %u\n\n", cores, scale,
                opt.fault().retryBudget);
    std::printf("%10s %9s %12s %10s %8s %10s %10s\n", "BER",
                "norm.time", "crcErrors", "retries", "drops",
                "fallbacks", "toneRetry");
    for (std::size_t b = 0; b < bers.size(); ++b) {
        std::vector<double> ratios;
        std::uint64_t crc = 0, retries = 0, drops = 0, fallbacks = 0,
                      tone = 0;
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const auto &clean = sweep[rows[0][a]];
            const auto &r = sweep[rows[b][a]];
            ratios.push_back(clean.cycles
                                 ? static_cast<double>(r.cycles) /
                                       static_cast<double>(clean.cycles)
                                 : 1.0);
            crc += r.frameCrcErrors;
            retries += r.faultRetries;
            drops += r.frameFaultDrops;
            fallbacks += r.wirelessFallbacks;
            tone += r.toneRetries;
        }
        std::printf("%10.1e %9.3f %12llu %10llu %8llu %10llu %10llu\n",
                    bers[b], geomean(ratios),
                    static_cast<unsigned long long>(crc),
                    static_cast<unsigned long long>(retries),
                    static_cast<unsigned long long>(drops),
                    static_cast<unsigned long long>(fallbacks),
                    static_cast<unsigned long long>(tone));
    }
    std::printf("---\n(norm.time is the geomean over %zu apps, "
                "normalized per app to the BER=0 row)\n",
                apps.size());
    sweep.writeJson("sensitivity_ber");
    return 0;
}
