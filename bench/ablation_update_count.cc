/**
 * @file
 * Ablation: the UpdateCount self-invalidation threshold (Section
 * III-B2 -- the design choice DESIGN.md calls out).
 *
 * The threshold decides how long a passive sharer stays in a wireless
 * group while updates stream past it. Too low and active groups churn
 * (self-invalidate + rejoin); too high and stale sharers force every
 * write to keep broadcasting to caches that will never read it, and
 * W->S downgrades become rare. The paper fixes it at a 2-bit counter;
 * this bench sweeps it and reports execution time, wireless updates,
 * self-invalidations and downgrades on a mixed subset of apps.
 */

#include "common.h"

#include "system/checker.h"
#include "system/manycore.h"

namespace {

using namespace widir;
using namespace widir::bench;

struct Row
{
    sim::Tick cycles = 0;
    std::uint64_t selfInv = 0;
    std::uint64_t updates = 0;
    std::uint64_t toShared = 0;
};

Row
runWithThreshold(const AppInfo &app, std::uint32_t cores,
                 std::uint32_t scale, std::uint32_t threshold)
{
    sys::SystemConfig cfg = sys::SystemConfig::widir(cores);
    cfg.protocol.updateCountThreshold = threshold;
    sys::Manycore m(cfg);
    workload::WorkloadParams p;
    p.scale = scale;
    Row row;
    row.cycles = m.run(workload::makeProgram(app, p), 2'000'000'000ull);
    auto violations = sys::checkCoherence(m);
    if (!violations.empty())
        sim::fatal("ablation run incoherent: %s",
                   violations.front().c_str());
    row.selfInv = m.l1Totals().selfInvalidations;
    row.updates = m.l1Totals().wirelessWrites;
    row.toShared = m.dirTotals().toShared;
    return row;
}

} // namespace

int
main()
{
    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(2);

    banner("Ablation: UpdateCount self-invalidation threshold",
           "Section III-B2 design choice");

    const char *subset[] = {"radiosity", "barnes", "canneal",
                            "ocean-nc", "raytrace"};
    for (const char *name : subset) {
        const AppInfo *app = workload::findApp(name);
        if (!app)
            continue;
        std::printf("\n%s\n", app->name);
        std::printf("%-10s %10s %10s %10s %10s\n", "threshold",
                    "cycles", "self-inv", "wir.upd", "W->S");
        for (std::uint32_t thr : {2u, 3u, 4u, 8u, 16u}) {
            Row r = runWithThreshold(*app, cores, scale, thr);
            std::printf("%-10u %10llu %10llu %10llu %10llu\n", thr,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.selfInv),
                        static_cast<unsigned long long>(r.updates),
                        static_cast<unsigned long long>(r.toShared));
        }
    }
    std::printf("\n(expected: self-invalidations fall monotonically "
                "with the threshold;\n execution time is flattest "
                "around the paper's 2-bit counter)\n");
    return 0;
}
