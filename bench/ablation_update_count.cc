/**
 * @file
 * Ablation: the UpdateCount self-invalidation threshold (Section
 * III-B2 -- the design choice DESIGN.md calls out).
 *
 * The threshold decides how long a passive sharer stays in a wireless
 * group while updates stream past it. Too low and active groups churn
 * (self-invalidate + rejoin); too high and stale sharers force every
 * write to keep broadcasting to caches that will never read it, and
 * W->S downgrades become rare. The paper fixes it at a 2-bit counter;
 * this bench sweeps it and reports execution time, wireless updates,
 * self-invalidations and downgrades on a mixed subset of apps.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(2);
    const std::uint32_t thresholds[] = {2, 3, 4, 8, 16};

    const char *subset[] = {"radiosity", "barnes", "canneal",
                            "ocean-nc", "raytrace"};
    std::vector<const AppInfo *> apps;
    for (const char *name : subset) {
        if (const AppInfo *app = workload::findApp(name))
            apps.push_back(app);
    }

    Options opt("ablation_update_count", argc, argv);
    Sweep sweep(opt);
    std::vector<std::vector<std::size_t>> idx; // [app][threshold]
    for (const AppInfo *app : apps) {
        std::vector<std::size_t> row;
        for (std::uint32_t thr : thresholds)
            row.push_back(sweep.add(*app, Protocol::WiDir, cores,
                                    scale, 3, thr));
        idx.push_back(std::move(row));
    }
    sweep.run();

    banner("Ablation: UpdateCount self-invalidation threshold",
           "Section III-B2 design choice");

    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::printf("\n%s\n", apps[a]->name);
        std::printf("%-10s %10s %10s %10s %10s\n", "threshold",
                    "cycles", "self-inv", "wir.upd", "W->S");
        for (std::size_t t = 0; t < std::size(thresholds); ++t) {
            const auto &r = sweep[idx[a][t]];
            std::printf("%-10u %10llu %10llu %10llu %10llu\n",
                        thresholds[t],
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(
                            r.selfInvalidations),
                        static_cast<unsigned long long>(
                            r.wirelessWrites),
                        static_cast<unsigned long long>(r.toShared));
        }
    }
    std::printf("\n(expected: self-invalidations fall monotonically "
                "with the threshold;\n execution time is flattest "
                "around the paper's 2-bit counter)\n");
    sweep.writeJson("ablation_update_count");
    return 0;
}
