/**
 * @file
 * Regenerates Table VI + Fig. 10 (right): sensitivity of WiDir to the
 * MaxWiredSharers threshold (2, 3, 4, 5) at 64 cores. For each value
 * it reports (i) the average execution-time speedup of WiDir over
 * Baseline and (ii) the wireless-collision probability. The paper
 * reports Sp. 1.22/1.43/1.38/1.31x and collision probabilities
 * 6.93/3.14/2.24/1.70% for MaxWiredSharers = 2/3/4/5: switching
 * earlier puts more lines in wireless mode and collides more;
 * switching later wastes opportunities.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);
    const std::uint32_t thresholds[] = {2, 3, 4, 5};

    Options opt("table6_sensitivity", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    // Baseline reference per app (independent of the threshold), then
    // one WiDir run per (threshold x app).
    std::vector<std::size_t> bi;
    std::vector<std::vector<std::size_t>> wi;
    for (const AppInfo *app : apps)
        bi.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                               scale));
    for (std::uint32_t mws : thresholds) {
        std::vector<std::size_t> row;
        for (const AppInfo *app : apps)
            row.push_back(sweep.add(*app, Protocol::WiDir, cores,
                                    scale, mws));
        wi.push_back(std::move(row));
    }
    sweep.run();

    banner("Table VI: MaxWiredSharers sensitivity (64 cores)",
           "Table VI");

    std::printf("%-16s %12s %12s\n", "MaxWiredSharers", "speedup",
                "coll.prob");
    for (std::size_t t = 0; t < std::size(thresholds); ++t) {
        std::vector<double> speedups;
        double coll_num = 0.0;
        int coll_n = 0;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const auto &r = sweep[wi[t][i]];
            speedups.push_back(
                static_cast<double>(sweep[bi[i]].cycles) /
                static_cast<double>(r.cycles));
            coll_num += r.collisionProbability;
            ++coll_n;
        }
        std::printf("%-16u %11.2fx %11.2f%%\n", thresholds[t],
                    geomean(speedups),
                    100.0 * coll_num / (coll_n ? coll_n : 1));
    }
    std::printf("---\n(paper: 1.22x/6.93%%, 1.43x/3.14%%, "
                "1.38x/2.24%%, 1.31x/1.70%% for 2/3/4/5)\n");
    sweep.writeJson("table6_sensitivity");
    return 0;
}
