/**
 * @file
 * Regenerates Table VI + Fig. 10 (right): sensitivity of WiDir to the
 * MaxWiredSharers threshold (2, 3, 4, 5) at 64 cores. For each value
 * it reports (i) the average execution-time speedup of WiDir over
 * Baseline and (ii) the wireless-collision probability. The paper
 * reports Sp. 1.22/1.43/1.38/1.31x and collision probabilities
 * 6.93/3.14/2.24/1.70% for MaxWiredSharers = 2/3/4/5: switching
 * earlier puts more lines in wireless mode and collides more;
 * switching later wastes opportunities.
 */

#include "common.h"

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    banner("Table VI: MaxWiredSharers sensitivity (64 cores)",
           "Table VI");

    // Baseline reference per app (independent of the threshold).
    std::vector<double> base_cycles;
    auto the_apps = benchApps();
    for (const AppInfo *app : the_apps) {
        auto r = run(*app, Protocol::BaselineMESI, cores, scale);
        base_cycles.push_back(static_cast<double>(r.cycles));
    }

    std::printf("%-16s %12s %12s\n", "MaxWiredSharers", "speedup",
                "coll.prob");
    for (std::uint32_t mws : {2u, 3u, 4u, 5u}) {
        std::vector<double> speedups;
        double coll_num = 0.0;
        int coll_n = 0;
        for (std::size_t i = 0; i < the_apps.size(); ++i) {
            auto r = run(*the_apps[i], Protocol::WiDir, cores, scale,
                         mws);
            speedups.push_back(base_cycles[i] /
                               static_cast<double>(r.cycles));
            coll_num += r.collisionProbability;
            ++coll_n;
        }
        std::printf("%-16u %11.2fx %11.2f%%\n", mws,
                    geomean(speedups),
                    100.0 * coll_num / (coll_n ? coll_n : 1));
    }
    std::printf("---\n(paper: 1.22x/6.93%%, 1.43x/3.14%%, "
                "1.38x/2.24%%, 1.31x/1.70%% for 2/3/4/5)\n");
    return 0;
}
