/**
 * @file
 * Regenerates Fig. 6: L1 misses-per-kilo-instruction of WiDir and
 * Baseline, normalized to Baseline, split into read and write misses.
 * The paper reports an average MPKI reduction of ~15%.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("fig6_mpki", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> bi, wi;
    for (const AppInfo *app : apps) {
        bi.push_back(sweep.add(*app, Protocol::BaselineMESI, cores, scale));
        wi.push_back(sweep.add(*app, Protocol::WiDir, cores, scale));
    }
    sweep.run();

    banner("Fig. 6: normalized MPKI (read + write), WiDir vs Baseline",
           "Figure 6");
    std::printf("%-14s %8s %8s | %8s %8s | %10s\n", "app", "base.rd",
                "base.wr", "widir.rd", "widir.wr", "norm.total");

    std::vector<double> ratios;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &base = sweep[bi[i]];
        const auto &widir = sweep[wi[i]];
        double norm = base.mpki() > 0.0 ? widir.mpki() / base.mpki()
                                        : 1.0;
        ratios.push_back(norm);
        std::printf("%-14s %8.2f %8.2f | %8.2f %8.2f | %10.3f\n",
                    apps[i]->name, base.readMpki(), base.writeMpki(),
                    widir.readMpki(), widir.writeMpki(), norm);
    }
    std::printf("---\naverage normalized MPKI: %.3f  "
                "(paper: ~0.85, i.e. 15%% lower than Baseline)\n",
                mean(ratios));
    sweep.writeJson("fig6_mpki");
    return 0;
}
