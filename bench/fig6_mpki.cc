/**
 * @file
 * Regenerates Fig. 6: L1 misses-per-kilo-instruction of WiDir and
 * Baseline, normalized to Baseline, split into read and write misses.
 * The paper reports an average MPKI reduction of ~15%.
 */

#include "common.h"

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    banner("Fig. 6: normalized MPKI (read + write), WiDir vs Baseline",
           "Figure 6");
    std::printf("%-14s %8s %8s | %8s %8s | %10s\n", "app", "base.rd",
                "base.wr", "widir.rd", "widir.wr", "norm.total");

    std::vector<double> ratios;
    for (const AppInfo *app : benchApps()) {
        auto base = run(*app, Protocol::BaselineMESI, cores, scale);
        auto widir = run(*app, Protocol::WiDir, cores, scale);
        double norm = base.mpki() > 0.0 ? widir.mpki() / base.mpki()
                                        : 1.0;
        ratios.push_back(norm);
        std::printf("%-14s %8.2f %8.2f | %8.2f %8.2f | %10.3f\n",
                    app->name, base.readMpki(), base.writeMpki(),
                    widir.readMpki(), widir.writeMpki(), norm);
    }
    std::printf("---\naverage normalized MPKI: %.3f  "
                "(paper: ~0.85, i.e. 15%% lower than Baseline)\n",
                mean(ratios));
    return 0;
}
