/**
 * @file
 * Regenerates Table IV: the evaluated applications characterized by
 * their L1 misses-per-kilo-instruction under the Baseline protocol.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    Options opt("table4_app_mpki", argc, argv);
    auto apps = benchApps();
    Sweep sweep(opt);
    std::vector<std::size_t> idx;
    for (const AppInfo *app : apps)
        idx.push_back(sweep.add(*app, Protocol::BaselineMESI, cores,
                                scale));
    sweep.run();

    banner("Table IV: application L1 MPKI under Baseline",
           "Table IV");
    std::printf("%-14s %-9s %10s %10s %8s\n", "app", "suite",
                "mpki(sim)", "mpki(ppr)", "cycles");

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &r = sweep[idx[i]];
        std::printf("%-14s %-9s %10.2f %10.2f %8llu\n", apps[i]->name,
                    apps[i]->suite, r.mpki(), apps[i]->paperMpki,
                    static_cast<unsigned long long>(r.cycles));
    }
    sweep.writeJson("table4_app_mpki");
    return 0;
}
