/**
 * @file
 * Regenerates Table IV: the evaluated applications characterized by
 * their L1 misses-per-kilo-instruction under the Baseline protocol.
 */

#include "common.h"

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t cores = benchCores(64);
    std::uint32_t scale = sys::benchScale(4);

    banner("Table IV: application L1 MPKI under Baseline",
           "Table IV");
    std::printf("%-14s %-9s %10s %10s %8s\n", "app", "suite",
                "mpki(sim)", "mpki(ppr)", "cycles");

    for (const AppInfo *app : benchApps()) {
        auto r = run(*app, Protocol::BaselineMESI, cores, scale);
        std::printf("%-14s %-9s %10.2f %10.2f %8llu\n", app->name,
                    app->suite, r.mpki(), app->paperMpki,
                    static_cast<unsigned long long>(r.cycles));
    }
    return 0;
}
