/**
 * @file
 * Standalone record/replay driver (docs/FRONTEND.md): runs one trace
 * file -- widir-mtrace-v1 or the text ingestion format -- through a
 * replay frontend and optionally byte-diffs the resulting stats
 * against a reference widir-sweep-v1 document (e.g. the one the
 * recording run wrote). The full-fidelity contract is that the diff is
 * empty modulo the host_* fields and the frontend echo block, which
 * describe the host process and the stimulus plumbing rather than the
 * simulated machine.
 *
 *   replay_trace --trace-in FILE [--replay full|fast]
 *                [--protocol widir|baseline] [--tiles N] [--scale N]
 *                [--sim-threads N] [--out FILE.json] [--diff REF.json]
 *
 * The machine flags only matter for headerless text traces; a recorded
 * trace carries its machine and overrides them. Exits 0 on success,
 * 1 when --diff finds a mismatch, 2 on usage or I/O errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common.h"
#include "frontend/frontend.h"

namespace {

using widir::sys::json::Value;

[[noreturn]] void
usage(const char *why)
{
    std::fprintf(stderr,
                 "replay_trace: %s\n"
                 "usage: replay_trace --trace-in FILE "
                 "[--replay full|fast]\n"
                 "       [--protocol widir|baseline] [--tiles N] "
                 "[--scale N]\n"
                 "       [--sim-threads N] [--out FILE.json] "
                 "[--diff REF.json]\n",
                 why);
    std::exit(2);
}

/** Result-object fields excluded from the fidelity diff. */
bool
ignoredKey(const std::string &key)
{
    return key.rfind("host_", 0) == 0 || key == "frontend";
}

/**
 * First differing path between two result objects ("" when equal).
 * Ignored keys are skipped at every object level (they only occur at
 * the top, but skipping everywhere keeps the walk uniform).
 */
std::string
firstDiff(const Value &a, const Value &b, const std::string &path)
{
    if (a.type != b.type)
        return path + " (type)";
    switch (a.type) {
      case Value::Type::Object: {
        for (const auto &[key, av] : a.object) {
            if (ignoredKey(key))
                continue;
            const Value *bv = b.find(key);
            if (bv == nullptr)
                return path + "/" + key + " (missing in reference)";
            if (std::string d = firstDiff(av, *bv, path + "/" + key);
                !d.empty())
                return d;
        }
        for (const auto &[key, bv] : b.object) {
            if (!ignoredKey(key) && a.find(key) == nullptr)
                return path + "/" + key + " (missing in replay)";
        }
        return "";
      }
      case Value::Type::Array: {
        if (a.array.size() != b.array.size())
            return path + " (length)";
        for (std::size_t i = 0; i < a.array.size(); ++i) {
            std::string elem =
                path + "[" + std::to_string(i) + "]";
            if (std::string d = firstDiff(a.array[i], b.array[i], elem);
                !d.empty())
                return d;
        }
        return "";
      }
      case Value::Type::Number:
        // %.17g round-trips doubles exactly, so equality is exact.
        return a.number == b.number && a.uinteger == b.uinteger
            ? ""
            : path;
      case Value::Type::String:
        return a.string == b.string ? "" : path;
      case Value::Type::Bool:
        return a.boolean == b.boolean ? "" : path;
      case Value::Type::Null:
        return "";
    }
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace widir;
    using frontend::FrontendKind;

    std::string trace_in, out_path, diff_path;
    FrontendKind kind = FrontendKind::ReplayFull;
    coherence::Protocol proto = coherence::Protocol::WiDir;
    std::uint32_t tiles = 64;
    std::uint32_t scale = 1;
    unsigned sim_threads = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto operand = [&]() -> const char * {
            if (i + 1 >= argc)
                usage("missing operand");
            return argv[++i];
        };
        if (!std::strcmp(arg, "--trace-in")) {
            trace_in = operand();
        } else if (!std::strcmp(arg, "--replay")) {
            const char *v = operand();
            if (!std::strcmp(v, "full"))
                kind = FrontendKind::ReplayFull;
            else if (!std::strcmp(v, "fast"))
                kind = FrontendKind::ReplayFast;
            else
                usage("--replay wants full|fast");
        } else if (!std::strcmp(arg, "--protocol")) {
            const char *v = operand();
            if (!std::strcmp(v, "widir"))
                proto = coherence::Protocol::WiDir;
            else if (!std::strcmp(v, "baseline"))
                proto = coherence::Protocol::BaselineMESI;
            else
                usage("--protocol wants widir|baseline");
        } else if (!std::strcmp(arg, "--tiles")) {
            long n = 0;
            if (!sys::parseEnvInt(operand(), 1, 1'000'000, n))
                usage("invalid --tiles value");
            tiles = static_cast<std::uint32_t>(n);
        } else if (!std::strcmp(arg, "--scale")) {
            long n = 0;
            if (!sys::parseEnvInt(operand(), 1, 1'000'000, n))
                usage("invalid --scale value");
            scale = static_cast<std::uint32_t>(n);
        } else if (!std::strcmp(arg, "--sim-threads")) {
            long n = 0;
            if (!sys::parseEnvInt(operand(), 0, 4096, n))
                usage("invalid --sim-threads value");
            sim_threads = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--out")) {
            out_path = operand();
        } else if (!std::strcmp(arg, "--diff")) {
            diff_path = operand();
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage("replay one trace file");
        } else {
            usage("unknown flag");
        }
    }
    if (trace_in.empty())
        usage("--trace-in is required");

    sys::ExperimentSpec spec;
    spec.app = workload::registerTraceApp("trace:replay", trace_in);
    spec.protocol = proto;
    spec.cores = tiles;
    spec.scale = scale;
    spec.frontend = kind;
    spec.simThreads = sim_threads;
    sys::ExperimentResult r = sys::runExperiment(spec);

    std::printf("%s %s: %s replay of %s\n", r.app.c_str(),
                coherence::protocolName(r.protocol),
                frontend::frontendKindName(r.frontendKind),
                trace_in.c_str());
    std::printf("  cycles %llu  instructions %llu  loads %llu  "
                "stores %llu  events %llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.loads),
                static_cast<unsigned long long>(r.stores),
                static_cast<unsigned long long>(r.executedEvents));

    if (!out_path.empty() &&
        !sys::writeResultsJson(out_path, "replay_trace", {r}))
        return 2;

    if (!diff_path.empty()) {
        std::ifstream f(diff_path);
        if (!f) {
            std::fprintf(stderr, "replay_trace: cannot read %s\n",
                         diff_path.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        Value ref;
        std::string err;
        if (!sys::json::parse(ss.str(), ref, &err)) {
            std::fprintf(stderr, "replay_trace: %s: %s\n",
                         diff_path.c_str(), err.c_str());
            return 2;
        }
        const Value *results = ref.find("results");
        const Value *want = results != nullptr && results->isArray() &&
                !results->array.empty()
            ? &results->array.front()
            : &ref; // allow a bare result object too
        Value got;
        if (!sys::json::parse(resultToJson(r), got, &err)) {
            std::fprintf(stderr, "replay_trace: self-parse: %s\n",
                         err.c_str());
            return 2;
        }
        std::string diff = firstDiff(got, *want, "");
        if (!diff.empty()) {
            std::fprintf(stderr,
                         "replay_trace: stats diverge from %s at %s\n",
                         diff_path.c_str(), diff.c_str());
            return 1;
        }
        std::printf("  stats match %s (modulo host_*/frontend)\n",
                    diff_path.c_str());
    }
    return 0;
}
