/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: event
 * queue throughput, cache array lookups, mesh message routing, and
 * wireless channel arbitration. These measure host performance of the
 * infrastructure (not simulated metrics) and guard against
 * regressions that would make the experiment suite slow.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.h"
#include "noc/mesh.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "wireless/data_channel.h"

namespace {

using namespace widir;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i) {
            q.scheduleAt(static_cast<sim::Tick>(i * 3 % 997),
                         [&sum] { ++sum; });
        }
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    mem::CacheArray cache(64 * 1024, 2);
    mem::LineData d;
    for (std::uint64_t i = 0; i < 512; ++i) {
        sim::Addr a = i * 64;
        cache.fill(cache.pickVictim(a), a, 1, d);
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto *e = cache.lookup((i++ % 512) * 64);
        benchmark::DoNotOptimize(e);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_MeshSend(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        noc::MeshConfig cfg;
        cfg.numNodes = 64;
        noc::Mesh mesh(s, cfg);
        int delivered = 0;
        for (sim::NodeId n = 0; n < 64; ++n)
            mesh.send(n, 63 - n, 584, [&delivered] { ++delivered; });
        s.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MeshSend);

void
BM_WirelessArbitration(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        wireless::DataChannelConfig cfg;
        cfg.numNodes = 64;
        wireless::DataChannel ch(s, cfg);
        int committed = 0;
        for (sim::NodeId n = 0; n < 16; ++n) {
            wireless::Frame f;
            f.src = n;
            f.kind = wireless::FrameKind::WirUpd;
            f.lineAddr = 0x1000 + n * 64;
            f.wordAddr = f.lineAddr;
            ch.transmit(f, [&committed] { ++committed; });
        }
        s.run();
        benchmark::DoNotOptimize(committed);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_WirelessArbitration);

} // namespace

BENCHMARK_MAIN();
