/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: event
 * queue throughput under the schedule distributions real experiments
 * produce, message-pool round trips, cache array lookups, mesh message
 * routing, and wireless channel arbitration. These measure host
 * performance of the infrastructure (not simulated metrics) and guard
 * against regressions that would make the experiment suite slow.
 *
 * The BM_Legacy* benchmarks run the same workloads on a local replica
 * of the pre-calendar-wheel kernel (std::priority_queue of
 * std::function closures), so every run measures the hybrid kernel's
 * speedup against its predecessor on the same machine --
 * tools/perf_check.sh asserts that ratio stays above its threshold.
 *
 * Extra modes on top of the usual --benchmark_* flags:
 *   --selftest       run every workload once at small scale, verify
 *                    checksums, ordering against the legacy kernel,
 *                    and hot-path allocation-freedom; exit nonzero on
 *                    any mismatch (registered as a CTest smoke test)
 *   --json=PATH      after the benchmarks run, write name +
 *                    items_per_second per benchmark as a
 *                    widir-bench-v1 JSON document (see docs/PERF.md)
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "core/messages.h"
#include "mem/cache_array.h"
#include "noc/mesh.h"
#include "sim/event_queue.h"
#include "sim/inline_event.h"
#include "sim/simulator.h"
#include "wireless/data_channel.h"

namespace {

using namespace widir;

// ---------------------------------------------------------------------
// The pre-refit kernel, kept verbatim as the measurement reference:
// one std::priority_queue ordered by (tick, seq), std::function
// closures (heap-allocated beyond ~16 captured bytes).

class LegacyEventQueue
{
  public:
    void
    scheduleAt(sim::Tick when, std::function<void()> fn)
    {
        heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    void
    schedule(sim::Tick delay, std::function<void()> fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    bool
    run(sim::Tick limit = sim::kTickNever)
    {
        while (!heap_.empty()) {
            if (heap_.top().when > limit) {
                now_ = std::max(now_, limit);
                return false;
            }
            auto fn = std::move(const_cast<Entry &>(heap_.top()).fn);
            now_ = heap_.top().when;
            heap_.pop();
            ++executed_;
            fn();
        }
        return true;
    }

    sim::Tick now() const { return now_; }
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        sim::Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
    sim::Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

// ---------------------------------------------------------------------
// Event-queue workloads, templated over the queue so the hybrid kernel
// and the legacy replica run byte-for-byte the same schedule stream.
// Each returns a checksum the selftest compares across kernels.

/**
 * The historical throughput workload: a burst of pre-scheduled events.
 * Takes the queue by reference so benchmarks can reuse one queue
 * across iterations -- a simulation runs billions of events through a
 * single queue, so steady-state (warm slot capacities, no
 * construction) is the representative regime.
 */
template <typename Queue>
std::uint64_t
burstInto(Queue &q, int n_events)
{
    std::uint64_t sum = 0;
    for (int i = 0; i < n_events; ++i) {
        q.schedule(static_cast<sim::Tick>(i * 3 % 997),
                   [&sum] { ++sum; });
    }
    q.run();
    return sum;
}

template <typename Queue>
std::uint64_t
burstWorkload(int n_events)
{
    Queue q;
    return burstInto(q, n_events);
}

/**
 * Steady-state protocol shape: 64 agents each self-reschedule through
 * the short latencies that dominate real runs (L1 hits, directory
 * lookups, mesh hops, LLC data, wireless frames, NACK retries).
 */
inline constexpr sim::Tick kShortDelays[8] = {1, 2, 2, 3, 5, 10, 16, 80};

template <typename Queue>
struct Agent
{
    Queue *q;
    std::uint64_t *fired;
    std::uint64_t remaining;
    std::uint32_t idx;
    bool far_mix; ///< every 16th hop goes past the wheel window

    void
    hop()
    {
        ++*fired;
        if (remaining == 0)
            return;
        --remaining;
        sim::Tick d = kShortDelays[idx++ & 7];
        if (far_mix && (idx & 15) == 0)
            d = 1500; // DRAM-bank queueing / deep backoff territory
        Agent *self = this;
        q->schedule(d, [self] { self->hop(); });
    }
};

template <typename Queue>
std::uint64_t
steadyStateInto(Queue &q, int n_events, bool far_mix)
{
    constexpr int kAgents = 64;
    std::uint64_t fired = 0;
    std::vector<Agent<Queue>> agents(
        static_cast<std::size_t>(kAgents));
    std::uint64_t per_agent =
        static_cast<std::uint64_t>(n_events) / kAgents;
    for (int a = 0; a < kAgents; ++a) {
        agents[static_cast<std::size_t>(a)] = Agent<Queue>{
            &q, &fired, per_agent, static_cast<std::uint32_t>(a),
            far_mix};
        Agent<Queue> *self = &agents[static_cast<std::size_t>(a)];
        q.schedule(static_cast<sim::Tick>(a % 7 + 1),
                   [self] { self->hop(); });
    }
    q.run();
    // fired alone checks across kernels; the time delta does too, but
    // only relative to the start of this call (queues are reused).
    return fired;
}

template <typename Queue>
std::uint64_t
steadyStateWorkload(int n_events, bool far_mix)
{
    Queue q;
    std::uint64_t fired = steadyStateInto(q, n_events, far_mix);
    return fired + q.now(); // fresh queue: end time checks too
}

/**
 * Broadcast shape: each round schedules 64 same-tick deliveries (a
 * wireless frame arriving at every node at once), a few cycles apart.
 */
template <typename Queue>
std::uint64_t
fanoutInto(Queue &q, int n_events)
{
    constexpr int kNodes = 64;
    std::uint64_t sum = 0;
    int rounds = n_events / kNodes;
    for (int r = 0; r < rounds; ++r) {
        // Delay pattern stays inside the wheel window; distinct rounds
        // may alias onto the same tick, which only adds more same-tick
        // traffic -- the shape under test.
        sim::Tick delay = static_cast<sim::Tick>(r % 200) * 5 + 5;
        for (int n = 0; n < kNodes; ++n) {
            std::uint64_t tag =
                static_cast<std::uint64_t>(r) * kNodes +
                static_cast<std::uint64_t>(n);
            q.schedule(delay, [&sum, tag] { sum += tag; });
        }
    }
    q.run();
    return sum;
}

template <typename Queue>
std::uint64_t
fanoutWorkload(int n_events)
{
    Queue q;
    return fanoutInto(q, n_events);
}

/**
 * The fabric's message path: acquire a pooled message, schedule a
 * delivery capturing only the 4-byte slot index, release on delivery.
 */
std::uint64_t
messagePoolWorkload(int n_events)
{
    sim::Simulator s(1);
    coherence::MsgPool pool;
    std::uint64_t sum = 0;
    for (int i = 0; i < n_events; ++i) {
        coherence::Msg m{};
        m.src = static_cast<sim::NodeId>(i % 64);
        m.dst = static_cast<sim::NodeId>((i * 7) % 64);
        m.line = static_cast<sim::Addr>(i) * 64;
        std::uint32_t slot = pool.acquire(m);
        s.scheduleInline(static_cast<sim::Tick>(i % 13 + 1),
                         [&pool, &sum, slot] {
                             sum += pool.at(slot).line;
                             pool.release(slot);
                         });
    }
    s.run();
    return sum + pool.live();
}

/** Order-recording workload: proves cross-kernel execution order. */
template <typename Queue>
std::vector<std::uint64_t>
orderProbe()
{
    Queue q;
    std::vector<std::uint64_t> order;
    std::uint64_t tag = 0;
    // Mix near, far, and same-tick events, including reschedules from
    // inside events, to exercise every ordering boundary.
    for (sim::Tick t : {sim::Tick{3}, sim::Tick{3}, sim::Tick{2000},
                        sim::Tick{1023}, sim::Tick{1024},
                        sim::Tick{3}}) {
        std::uint64_t id = tag++;
        q.scheduleAt(t, [&order, id] { order.push_back(id); });
    }
    std::uint64_t id = tag++;
    q.schedule(7, [&q, &order, id] {
        order.push_back(id);
        for (int i = 0; i < 4; ++i) {
            std::uint64_t nested = 100 + static_cast<std::uint64_t>(i);
            q.schedule(static_cast<sim::Tick>(i % 2),
                       [&order, nested] { order.push_back(nested); });
        }
    });
    q.run();
    return order;
}

// ---------------------------------------------------------------------
// Benchmarks.

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(burstInto(q, 1000));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_LegacyEventQueueScheduleRun(benchmark::State &state)
{
    LegacyEventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(burstInto(q, 1000));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyEventQueueScheduleRun);

void
BM_EventQueueSteadyState(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(steadyStateInto(q, 64000, false));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_EventQueueSteadyState);

void
BM_LegacyEventQueueSteadyState(benchmark::State &state)
{
    LegacyEventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(steadyStateInto(q, 64000, false));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_LegacyEventQueueSteadyState);

void
BM_EventQueueMixedHorizon(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(steadyStateInto(q, 64000, true));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_EventQueueMixedHorizon);

void
BM_LegacyEventQueueMixedHorizon(benchmark::State &state)
{
    LegacyEventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(steadyStateInto(q, 64000, true));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_LegacyEventQueueMixedHorizon);

void
BM_EventQueueSameTickFanout(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(fanoutInto(q, 64000));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_EventQueueSameTickFanout);

void
BM_LegacyEventQueueSameTickFanout(benchmark::State &state)
{
    LegacyEventQueue q;
    for (auto _ : state)
        benchmark::DoNotOptimize(fanoutInto(q, 64000));
    state.SetItemsProcessed(state.iterations() * 64000);
}
BENCHMARK(BM_LegacyEventQueueSameTickFanout);

void
BM_MessagePoolRoundTrip(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(messagePoolWorkload(10000));
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_MessagePoolRoundTrip);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    mem::CacheArray cache(64 * 1024, 2);
    mem::LineData d;
    for (std::uint64_t i = 0; i < 512; ++i) {
        sim::Addr a = i * 64;
        cache.fill(cache.pickVictim(a), a, 1, d);
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto *e = cache.lookup((i++ % 512) * 64);
        benchmark::DoNotOptimize(e);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_MeshSend(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        noc::MeshConfig cfg;
        cfg.numNodes = 64;
        noc::Mesh mesh(s, cfg);
        int delivered = 0;
        for (sim::NodeId n = 0; n < 64; ++n)
            mesh.send(n, 63 - n, 584, [&delivered] { ++delivered; });
        s.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MeshSend);

void
BM_WirelessArbitration(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        wireless::DataChannelConfig cfg;
        cfg.numNodes = 64;
        wireless::DataChannel ch(s, cfg);
        int committed = 0;
        for (sim::NodeId n = 0; n < 16; ++n) {
            wireless::Frame f;
            f.src = n;
            f.kind = wireless::FrameKind::WirUpd;
            f.lineAddr = 0x1000 + n * 64;
            f.wordAddr = f.lineAddr;
            ch.transmit(f, [&committed] { ++committed; });
        }
        s.run();
        benchmark::DoNotOptimize(committed);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_WirelessArbitration);

// ---------------------------------------------------------------------
// Selftest: the workloads above, once, at small scale, with the
// invariants the benchmarks rely on checked instead of timed.

#define SELFTEST_CHECK(cond, ...)                                      \
    do {                                                               \
        if (!(cond)) {                                                 \
            std::fprintf(stderr, "selftest FAIL (%s:%d): ", __FILE__,  \
                         __LINE__);                                    \
            std::fprintf(stderr, __VA_ARGS__);                         \
            std::fprintf(stderr, "\n");                                \
            return 1;                                                  \
        }                                                              \
    } while (0)

int
runSelftest()
{
    SELFTEST_CHECK(burstWorkload<sim::EventQueue>(1000) == 1000,
                   "burst checksum");
    SELFTEST_CHECK(burstWorkload<sim::EventQueue>(1000) ==
                       burstWorkload<LegacyEventQueue>(1000),
                   "burst: hybrid != legacy");

    SELFTEST_CHECK(steadyStateWorkload<sim::EventQueue>(6400, false) ==
                       steadyStateWorkload<LegacyEventQueue>(6400,
                                                             false),
                   "steady-state: hybrid != legacy");
    SELFTEST_CHECK(steadyStateWorkload<sim::EventQueue>(6400, true) ==
                       steadyStateWorkload<LegacyEventQueue>(6400,
                                                             true),
                   "mixed-horizon: hybrid != legacy");
    SELFTEST_CHECK(fanoutWorkload<sim::EventQueue>(6400) ==
                       fanoutWorkload<LegacyEventQueue>(6400),
                   "fanout: hybrid != legacy");

    // Execution order (not just checksums) must match the reference
    // kernel event for event.
    SELFTEST_CHECK(orderProbe<sim::EventQueue>() ==
                       orderProbe<LegacyEventQueue>(),
                   "event order diverges from the legacy kernel");

    // The hot path must not allocate: every closure the steady-state,
    // fanout and message-pool workloads schedule fits the inline
    // buffer (the acceptance criterion in docs/PERF.md).
    std::uint64_t before = sim::InlineEvent::heapFallbacks();
    steadyStateWorkload<sim::EventQueue>(6400, true);
    fanoutWorkload<sim::EventQueue>(6400);
    std::uint64_t pool_sum = messagePoolWorkload(1000);
    SELFTEST_CHECK(sim::InlineEvent::heapFallbacks() == before,
                   "hot-path workload heap-allocated a closure");
    // messagePoolWorkload folds pool.live() into its checksum; a
    // leaked slot shifts the sum.
    SELFTEST_CHECK(pool_sum == messagePoolWorkload(1000),
                   "message pool workload not reproducible");

    std::printf("micro_simkernel selftest OK\n");
    return 0;
}

// ---------------------------------------------------------------------
// JSON export: capture per-benchmark items/sec while still printing
// the normal console table, then write the widir-bench-v1 document.

struct BenchResult
{
    std::string name;
    double itemsPerSecond;
    double realTimeNs;
    std::int64_t iterations;
};

class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<BenchResult> results;

  protected:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            BenchResult r;
            r.name = run.benchmark_name();
            auto it = run.counters.find("items_per_second");
            r.itemsPerSecond =
                it == run.counters.end() ? 0.0 : it->second.value;
            r.realTimeNs = run.iterations == 0
                ? 0.0
                : run.real_accumulated_time * 1e9 /
                      static_cast<double>(run.iterations);
            r.iterations = run.iterations;
            results.push_back(std::move(r));
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }
};

bool
writeBenchJson(const std::string &path,
               const std::vector<BenchResult> &results)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    f << "{\n  \"schema\": \"widir-bench-v1\",\n"
      << "  \"name\": \"micro_simkernel\",\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        char line[256];
        std::snprintf(line, sizeof(line),
                      "%s\n    {\"name\": \"%s\", "
                      "\"items_per_second\": %.6g, "
                      "\"real_time_ns\": %.6g, "
                      "\"iterations\": %lld}",
                      i ? "," : "", r.name.c_str(), r.itemsPerSecond,
                      r.realTimeNs,
                      static_cast<long long>(r.iterations));
        f << line;
    }
    f << "\n  ]\n}\n";
    return static_cast<bool>(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    bool selftest = false;
    // Strip our own flags before benchmark::Initialize sees them.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--selftest"))
            selftest = true;
        else if (!std::strncmp(argv[i], "--json=", 7))
            json_path = argv[i] + 7;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    if (selftest)
        return runSelftest();

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty()) {
        if (!writeBenchJson(json_path, reporter.results))
            return 1;
        std::printf("[%zu benchmarks -> %s]\n",
                    reporter.results.size(), json_path.c_str());
    }
    return 0;
}
