/**
 * @file
 * Regenerates Fig. 10 (left): average execution speedup of WiDir and
 * Baseline as the core count grows (4, 16, 32, 64), relative to the
 * 4-core Baseline. The paper shows the two curves tracking up to 16
 * cores and diverging at 32-64 cores: WiDir is the more scalable
 * protocol.
 *
 * Speedups are computed per app relative to that app's 4-core
 * Baseline run, then averaged (geometric mean).
 */

#include "common.h"

#include <map>

int
main()
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t scale = sys::benchScale(4);
    const std::uint32_t core_counts[] = {4, 16, 32, 64};

    banner("Fig. 10: speedup over the 4-core Baseline", "Figure 10");

    // Per-app 4-core baseline reference.
    std::map<std::string, double> reference;
    for (const AppInfo *app : benchApps()) {
        auto r = run(*app, Protocol::BaselineMESI, 4, scale);
        reference[app->name] = static_cast<double>(r.cycles);
    }

    std::printf("%-8s %14s %14s\n", "cores", "baseline", "widir");
    for (std::uint32_t cores : core_counts) {
        std::vector<double> base_speedups, widir_speedups;
        for (const AppInfo *app : benchApps()) {
            double ref = reference[app->name];
            auto base = run(*app, Protocol::BaselineMESI, cores, scale);
            auto widir = run(*app, Protocol::WiDir, cores, scale);
            base_speedups.push_back(
                ref / static_cast<double>(base.cycles));
            widir_speedups.push_back(
                ref / static_cast<double>(widir.cycles));
        }
        std::printf("%-8u %14.2f %14.2f\n", cores,
                    geomean(base_speedups), geomean(widir_speedups));
    }
    std::printf("---\n(paper: curves overlap through 16 cores, then "
                "WiDir pulls ahead at 32-64)\n");
    return 0;
}
