/**
 * @file
 * Regenerates Fig. 10 (left): average execution speedup of WiDir and
 * Baseline as the core count grows (4, 16, 32, 64), relative to the
 * 4-core Baseline. The paper shows the two curves tracking up to 16
 * cores and diverging at 32-64 cores: WiDir is the more scalable
 * protocol.
 *
 * Speedups are computed per app relative to that app's 4-core
 * Baseline run, then averaged (geometric mean). The 4-core Baseline
 * run doubles as the reference, so the whole figure is one sweep of
 * apps x protocols x core counts.
 */

#include "common.h"

int
main(int argc, char **argv)
{
    using namespace widir;
    using namespace widir::bench;

    std::uint32_t scale = sys::benchScale(4);

    Options opt("fig10_scalability", argc, argv);
    auto apps = benchApps();
    // --tiles replaces the paper's core-count sweep, e.g.
    //   fig10_scalability --tiles 64 --tiles 256 --tiles 1024
    // scales the figure out to the manycore sizes the flat/SoA hot
    // state was built for (docs/PERF.md); the first count is the
    // speedup reference.
    std::vector<std::uint32_t> core_counts = {4, 16, 32, 64};
    if (!opt.tilesList().empty())
        core_counts = opt.tilesList();
    Sweep sweep(opt);
    // bi[c][a] / wi[c][a]: indices per core count x app; the 4-core
    // Baseline row is also the per-app reference.
    std::vector<std::vector<std::size_t>> bi, wi;
    for (std::uint32_t cores : core_counts) {
        std::vector<std::size_t> brow, wrow;
        for (const AppInfo *app : apps) {
            brow.push_back(sweep.add(*app, Protocol::BaselineMESI,
                                     cores, scale));
            wrow.push_back(sweep.add(*app, Protocol::WiDir, cores,
                                     scale));
        }
        bi.push_back(std::move(brow));
        wi.push_back(std::move(wrow));
    }
    sweep.run();

    banner("Fig. 10: speedup over the 4-core Baseline", "Figure 10");

    std::printf("%-8s %14s %14s\n", "cores", "baseline", "widir");
    for (std::size_t c = 0; c < core_counts.size(); ++c) {
        std::vector<double> base_speedups, widir_speedups;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            double ref = static_cast<double>(sweep[bi[0][i]].cycles);
            base_speedups.push_back(
                ref / static_cast<double>(sweep[bi[c][i]].cycles));
            widir_speedups.push_back(
                ref / static_cast<double>(sweep[wi[c][i]].cycles));
        }
        std::printf("%-8u %14.2f %14.2f\n", core_counts[c],
                    geomean(base_speedups), geomean(widir_speedups));
    }
    std::printf("---\n(paper: curves overlap through 16 cores, then "
                "WiDir pulls ahead at 32-64)\n");
    sweep.writeJson("fig10_scalability");
    // Host footprint for the whole sweep; tools/perf_check.sh --rss
    // compares this across tile counts (separate processes) to gate
    // super-linear growth.
    std::printf("host_peak_rss_kb %llu\n",
                static_cast<unsigned long long>(hostPeakRssKb()));
    return 0;
}
