/**
 * @file
 * Scenario: lock and barrier contention -- the synchronization
 * patterns the paper's introduction motivates.
 *
 * A contended spin lock is the canonical "group of cores frequently
 * reading and writing a shared variable": waiters spin on the lock
 * word, the holder writes it on release, and under an invalidation
 * protocol every release triggers an invalidation storm followed by a
 * pile of re-read misses. WiDir moves the lock word to the Wireless
 * state: a release is one broadcast update and every waiter's next
 * probe is a local hit.
 *
 * The example sweeps the number of contending cores and prints the
 * lock hand-off throughput under both protocols.
 */

#include <cstdio>

#include "system/manycore.h"
#include "workload/addr_map.h"
#include "workload/sync.h"

using namespace widir;
using cpu::Task;
using cpu::Thread;
namespace syn = workload::sync;

namespace {

constexpr sim::Addr kLock = workload::AddrMap::globalLock(0);
constexpr sim::Addr kShared = workload::AddrMap::sharedLine(40);
constexpr int kAcquiresPerCore = 10;

/** Contenders serialize through one lock around a small critical
 *  section; remaining cores stay idle. */
Task
lockStorm(Thread &t, std::uint32_t contenders)
{
    if (t.id() >= contenders)
        co_return;
    for (int i = 0; i < kAcquiresPerCore; ++i) {
        co_await syn::lockAcquire(t, kLock);
        // Critical section: touch the protected data.
        co_await t.fetchAdd(kShared, 1);
        co_await t.compute(40);
        co_await syn::lockRelease(t, kLock);
        co_await t.compute(120); // non-critical work
    }
    co_return;
}

double
handoffsPerKcycle(coherence::Protocol protocol,
                  std::uint32_t contenders)
{
    sys::SystemConfig cfg = protocol == coherence::Protocol::WiDir
        ? sys::SystemConfig::widir(64)
        : sys::SystemConfig::baseline(64);
    sys::Manycore machine(cfg);
    sim::Tick cycles = machine.run([contenders](Thread &t) {
        return lockStorm(t, contenders);
    });
    double total_acquires =
        static_cast<double>(contenders) * kAcquiresPerCore;
    return 1000.0 * total_acquires / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    std::printf("Lock hand-offs per 1000 cycles (64-core machine)\n");
    std::printf("%-12s %12s %12s %8s\n", "contenders", "baseline",
                "widir", "gain");
    for (std::uint32_t contenders : {2u, 4u, 8u, 16u, 32u, 64u}) {
        double base = handoffsPerKcycle(
            coherence::Protocol::BaselineMESI, contenders);
        double widir =
            handoffsPerKcycle(coherence::Protocol::WiDir, contenders);
        std::printf("%-12u %12.2f %12.2f %7.2fx\n", contenders, base,
                    widir, widir / base);
    }
    return 0;
}
