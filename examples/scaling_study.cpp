/**
 * @file
 * Scenario: protocol scalability study (a miniature of Fig. 10).
 *
 * Runs one of the paper's application analogs across machine sizes
 * and prints absolute cycles and the WiDir:Baseline ratio per size.
 * Usage:
 *
 *   $ ./build/examples/scaling_study [app-name]   (default: radiosity)
 *
 * Expected behaviour per the paper: at small core counts the wired
 * mesh is cheap and few lines have enough sharers to go wireless, so
 * the two protocols track; as the machine grows, WiDir pulls ahead.
 */

#include <cstdio>
#include <cstring>

#include "system/experiment.h"

using namespace widir;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "radiosity";
    const workload::AppInfo *app = workload::findApp(name);
    if (!app) {
        std::fprintf(stderr, "unknown app '%s'; known apps:\n", name);
        for (const auto &a : workload::allApps())
            std::fprintf(stderr, "  %s\n", a.name);
        return 1;
    }

    std::printf("Scaling study: %s (%s)\n  pattern: %s\n\n", app->name,
                app->suite, app->pattern);
    std::printf("%-8s %14s %14s %10s\n", "cores", "baseline.cyc",
                "widir.cyc", "ratio");

    for (std::uint32_t cores : {4u, 8u, 16u, 32u, 64u}) {
        sys::ExperimentSpec spec;
        spec.app = app;
        spec.cores = cores;
        spec.scale = sys::benchScale(2);

        spec.protocol = coherence::Protocol::BaselineMESI;
        auto base = sys::runExperiment(spec);
        spec.protocol = coherence::Protocol::WiDir;
        auto widir = sys::runExperiment(spec);

        std::printf("%-8u %14llu %14llu %10.3f\n", cores,
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(widir.cycles),
                    static_cast<double>(widir.cycles) /
                        static_cast<double>(base.cycles));
    }
    return 0;
}
