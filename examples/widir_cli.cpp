/**
 * @file
 * widir_cli: command-line driver for single experiments.
 *
 *   $ ./build/examples/widir_cli --app radiosity --protocol widir \
 *         --cores 64 --scale 2 --seed 7 [--max-wired-sharers 3]
 *
 * Prints one self-describing block of every metric the evaluation
 * uses: cycles, instruction counts, MPKI split, memory-stall share,
 * memory-op latencies, hop distribution, wireless activity, collision
 * probability and the energy breakdown. `--list` enumerates the
 * applications.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "system/experiment.h"

using namespace widir;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--app NAME] [--protocol baseline|widir]\n"
        "          [--cores N] [--scale N] [--seed N]\n"
        "          [--max-wired-sharers N] [--list]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    sys::ExperimentSpec spec;
    std::string app_name = "radiosity";
    spec.protocol = coherence::Protocol::WiDir;
    spec.cores = 64;
    spec.scale = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", what);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--app") {
            app_name = next("--app");
        } else if (arg == "--protocol") {
            std::string p = next("--protocol");
            if (p == "baseline") {
                spec.protocol = coherence::Protocol::BaselineMESI;
            } else if (p == "widir") {
                spec.protocol = coherence::Protocol::WiDir;
            } else {
                std::fprintf(stderr, "unknown protocol '%s'\n",
                             p.c_str());
                return 1;
            }
        } else if (arg == "--cores") {
            spec.cores = static_cast<std::uint32_t>(
                std::strtoul(next("--cores"), nullptr, 10));
        } else if (arg == "--scale") {
            spec.scale = static_cast<std::uint32_t>(
                std::strtoul(next("--scale"), nullptr, 10));
        } else if (arg == "--seed") {
            spec.seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (arg == "--max-wired-sharers") {
            spec.maxWiredSharers = static_cast<std::uint32_t>(
                std::strtoul(next("--max-wired-sharers"), nullptr, 10));
        } else if (arg == "--list") {
            for (const auto &a : workload::allApps()) {
                std::printf("%-14s %-9s paper-mpki=%5.2f  %s\n", a.name,
                            a.suite, a.paperMpki, a.pattern);
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    spec.app = workload::findApp(app_name);
    if (!spec.app) {
        std::fprintf(stderr,
                     "unknown app '%s' (try --list)\n",
                     app_name.c_str());
        return 1;
    }

    auto r = sys::runExperiment(spec);

    std::printf("app                 %s (%s)\n", spec.app->name,
                spec.app->suite);
    std::printf("protocol            %s\n",
                spec.protocol == coherence::Protocol::WiDir
                    ? "WiDir"
                    : "Baseline MESI Dir_3_B");
    std::printf("cores / scale       %u / %u   seed %llu\n", spec.cores,
                spec.scale,
                static_cast<unsigned long long>(spec.seed));
    std::printf("cycles              %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions        %llu (%.2f IPC aggregate)\n",
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0);
    std::printf("loads / stores      %llu / %llu\n",
                static_cast<unsigned long long>(r.loads),
                static_cast<unsigned long long>(r.stores));
    std::printf("MPKI (rd+wr)        %.2f (%.2f + %.2f)\n", r.mpki(),
                r.readMpki(), r.writeMpki());
    std::printf("memory stall        %.1f%% of core cycles\n",
                100.0 * r.memStallFraction());
    std::printf("mem-op latency sum  loads %llu, stores %llu\n",
                static_cast<unsigned long long>(r.loadLatencySum),
                static_cast<unsigned long long>(r.storeLatencySum));
    std::printf("wired messages      %llu, hops/leg",
                static_cast<unsigned long long>(r.wiredMessages));
    static const char *hop_names[5] = {"0-2", "3-5", "6-8", "9-11",
                                       "12-16"};
    std::uint64_t msgs = 0;
    for (auto c : r.hopBinCounts)
        msgs += c;
    for (std::size_t b = 0; b < r.hopBinCounts.size() && b < 5; ++b) {
        std::printf(" %s:%.0f%%", hop_names[b],
                    msgs ? 100.0 *
                               static_cast<double>(r.hopBinCounts[b]) /
                               static_cast<double>(msgs)
                         : 0.0);
    }
    std::printf("\n");
    if (spec.protocol == coherence::Protocol::WiDir) {
        std::printf("wireless            %llu updates, S->W %llu, "
                    "W->S %llu, coll.prob %.2f%%\n",
                    static_cast<unsigned long long>(r.wirelessWrites),
                    static_cast<unsigned long long>(r.toWireless),
                    static_cast<unsigned long long>(r.toShared),
                    100.0 * r.collisionProbability);
        std::uint64_t upd = 0;
        for (auto c : r.sharersUpdatedBins)
            upd += c;
        static const char *bin_names[5] = {"<=5", "6-10", "11-25",
                                           "26-49", "50+"};
        std::printf("sharers per update ");
        for (std::size_t b = 0;
             b < r.sharersUpdatedBins.size() && b < 5; ++b) {
            std::printf(" %s:%.0f%%", bin_names[b],
                        upd ? 100.0 *
                                  static_cast<double>(
                                      r.sharersUpdatedBins[b]) /
                                  static_cast<double>(upd)
                            : 0.0);
        }
        std::printf("\n");
    }
    double et = r.energy.total();
    std::printf("energy breakdown    core %.0f%%, L1 %.0f%%, "
                "L2+dir %.0f%%, NoC %.0f%%, WNoC %.0f%%\n",
                100 * r.energy.core / et, 100 * r.energy.l1 / et,
                100 * r.energy.l2dir / et, 100 * r.energy.noc / et,
                100 * r.energy.wnoc / et);
    return 0;
}
