/**
 * @file
 * Scenario: watching the protocol work, message by message.
 *
 * Enables the fabric's wired-message trace and the wireless channel's
 * frame trace, then walks a 8-core machine through the lifecycle the
 * paper describes:
 *
 *   1. cores 0..2 read a line      -> wired GetS, S state
 *   2. core 3 reads it             -> S->W: BrWirUpgr + census
 *   3. core 0 writes it            -> WirUpd broadcast
 *   4. core 4 reads it             -> W->W wired join (WirUpgr/Ack)
 *   5. cores stop touching it      -> UpdateCount PutWs, W->S
 *
 * Run it and read the annotated trace on stderr.
 */

#include <cstdio>

#include "system/manycore.h"

using namespace widir;
using cpu::Task;
using cpu::Thread;

namespace {

constexpr sim::Addr kLine = 0x300000;
constexpr sim::Addr kGate = 0x300040;

Task
script(Thread &t)
{
    // Step gate: serialize phases across cores.
    auto gate = [&t](std::uint64_t phase) -> Task {
        for (;;) {
            std::uint64_t v = co_await t.load(kGate);
            if (v >= phase)
                break;
            co_await t.idle(16);
        }
    };

    if (t.id() <= 2) {
        // Phase t.id(): read one after another.
        co_await gate(t.id());
        std::fprintf(stderr, "--- core %u reads the line (wired)\n",
                     t.id());
        co_await t.loadNb(kLine);
        co_await t.fence();
        co_await t.fetchAdd(kGate, 1);
    } else if (t.id() == 3) {
        co_await gate(3);
        std::fprintf(stderr,
                     "--- core 3 reads: 4th sharer -> S->W census\n");
        co_await t.loadNb(kLine);
        co_await t.fence();
        co_await t.fetchAdd(kGate, 1);
    } else if (t.id() == 4) {
        co_await gate(4);
        std::fprintf(stderr, "--- core 4 joins the wireless group\n");
        co_await t.loadNb(kLine);
        co_await t.fence();
        co_await t.fetchAdd(kGate, 1);
    } else if (t.id() == 5) {
        co_await gate(5);
        std::fprintf(stderr,
                     "--- core 5 writes: WirUpd broadcasts, passive "
                     "sharers start aging out\n");
        for (int i = 0; i < 8; ++i) {
            co_await t.store(kLine, 100 + i);
            co_await t.fence();
            co_await t.idle(40);
        }
        co_await t.fetchAdd(kGate, 1);
    }
    co_return;
}

} // namespace

int
main()
{
    sys::SystemConfig cfg = sys::SystemConfig::widir(8);
    sys::Manycore machine(cfg);
    machine.fabric().setTrace(true);
    machine.dataChannel()->setTrace(true);

    sim::Tick cycles =
        machine.run([](Thread &t) { return script(t); });
    std::printf("done in %llu cycles; final line state at dir: %s\n",
                static_cast<unsigned long long>(cycles),
                coherence::dirStateName(
                    machine.dir(machine.fabric().homeOf(kLine))
                        .stateOf(kLine)));
    return 0;
}
