/**
 * @file
 * Quickstart: build a 64-core WiDir machine, run a tiny program on
 * every core, and print the headline statistics.
 *
 *   $ ./build/examples/quickstart
 *
 * The program is a miniature of the sharing pattern the paper
 * targets: all cores repeatedly read and write one shared counter.
 * Under the baseline MESI protocol every write invalidates all the
 * sharers; under WiDir the line moves to the Wireless state and each
 * write becomes a single broadcast update.
 */

#include <cstdio>

#include "system/manycore.h"

using namespace widir;
using cpu::Task;
using cpu::Thread;

namespace {

constexpr sim::Addr kCounter = 0x100000;

/**
 * Every core repeatedly increments the shared counter and then polls
 * it until the whole round completes -- a barrier-style pattern in
 * which all 64 cores keep reading a word that each of them writes.
 * The polling keeps every sharer "actively interested", so under
 * WiDir the line stays in the Wireless state and each increment is a
 * single broadcast; under the baseline each increment invalidates 63
 * caches which all miss on their next poll.
 */
Task
hotCounter(Thread &t)
{
    constexpr int kRounds = 8;
    for (std::uint64_t round = 1; round <= kRounds; ++round) {
        co_await t.fetchAdd(kCounter, 1);
        for (;;) {
            std::uint64_t seen = co_await t.load(kCounter);
            if (seen >= round * t.numThreads())
                break;
            co_await t.idle(8);
        }
        co_await t.compute(100); // private work between rounds
    }
    co_return;
}

sim::Tick
runOn(coherence::Protocol protocol)
{
    sys::SystemConfig cfg = protocol == coherence::Protocol::WiDir
        ? sys::SystemConfig::widir(64)
        : sys::SystemConfig::baseline(64);
    sys::Manycore machine(cfg);
    sim::Tick cycles =
        machine.run([](Thread &t) { return hotCounter(t); });

    auto l1 = machine.l1Totals();
    auto dir = machine.dirTotals();
    std::printf("  cycles:            %llu\n",
                static_cast<unsigned long long>(cycles));
    std::printf("  L1 misses:         %llu\n",
                static_cast<unsigned long long>(l1.readMisses +
                                                l1.writeMisses));
    std::printf("  invalidations:     %llu\n",
                static_cast<unsigned long long>(dir.invsSent));
    std::printf("  S->W transitions:  %llu\n",
                static_cast<unsigned long long>(dir.toWireless));
    std::printf("  wireless updates:  %llu\n",
                static_cast<unsigned long long>(l1.wirelessWrites));
    return cycles;
}

} // namespace

int
main()
{
    std::printf("== Baseline (MESI Dir_3_B, wired mesh only)\n");
    sim::Tick base = runOn(coherence::Protocol::BaselineMESI);

    std::printf("== WiDir (MESI + Wireless state)\n");
    sim::Tick widir = runOn(coherence::Protocol::WiDir);

    std::printf("\nWiDir / Baseline execution time: %.2f\n",
                static_cast<double>(widir) / static_cast<double>(base));
    return 0;
}
