/**
 * @file
 * Scenario: writing your own workload against the public API.
 *
 * Thread programs are C++20 coroutines over the cpu::Thread
 * awaitables; the workload::sync library provides locks and barriers
 * built from the same simulated memory operations. This example
 * implements a small producer/consumer ring with a shared head/tail
 * pair plus a global progress counter, runs it under both protocols,
 * and validates the functional results (the simulator carries real
 * data through the coherence protocol).
 */

#include <cstdio>

#include "system/checker.h"
#include "system/manycore.h"
#include "workload/addr_map.h"
#include "workload/sync.h"

using namespace widir;
using cpu::Task;
using cpu::Thread;
using workload::AddrMap;
namespace syn = workload::sync;

namespace {

constexpr sim::Addr kRingBase = AddrMap::sharedArray(30);
constexpr sim::Addr kHead = AddrMap::sharedLine(50);   // consumer claim
constexpr sim::Addr kTail = AddrMap::sharedLine(51);   // producer claim
constexpr sim::Addr kSum = AddrMap::sharedLine(52);    // checksum
constexpr std::uint64_t kRingSlots = 64; // one line per slot
constexpr std::uint64_t kItems = 256;

sim::Addr
slotAddr(std::uint64_t idx)
{
    return kRingBase + (idx % kRingSlots) * mem::kLineBytes;
}

/**
 * Even threads produce, odd threads consume. Producers claim a slot
 * index with an atomic, write the item and publish it; consumers
 * claim indices and spin until their slot's sequence number appears.
 */
Task
ringBody(Thread &t)
{
    if ((t.id() & 1) == 0) {
        for (;;) {
            std::uint64_t idx = co_await t.fetchAdd(kTail, 1);
            if (idx >= kItems)
                break;
            // Wait for the slot to be free (sequence lags by a ring).
            if (idx >= kRingSlots) {
                co_await syn::spinUntilAtLeast(t, kHead,
                                               idx - kRingSlots + 1);
            }
            co_await t.compute(80); // "produce" the item
            co_await t.store(slotAddr(idx) + 8, idx + 1000);
            co_await t.fence();
            co_await t.store(slotAddr(idx), idx + 1); // publish seq
            co_await t.fence();
        }
    } else {
        for (;;) {
            std::uint64_t idx = co_await t.fetchAdd(kHead, 1);
            if (idx >= kItems)
                break;
            co_await syn::spinUntilEquals(t, slotAddr(idx), idx + 1);
            std::uint64_t payload = co_await t.load(slotAddr(idx) + 8);
            co_await t.fetchAdd(kSum, payload);
            co_await t.compute(60); // "consume"
        }
    }
    co_return;
}

} // namespace

int
main()
{
    for (auto protocol : {coherence::Protocol::BaselineMESI,
                          coherence::Protocol::WiDir}) {
        bool wireless = protocol == coherence::Protocol::WiDir;
        sys::SystemConfig cfg = wireless ? sys::SystemConfig::widir(16)
                                         : sys::SystemConfig::baseline(16);
        sys::Manycore machine(cfg);
        sim::Tick cycles =
            machine.run([](Thread &t) { return ringBody(t); });

        // Functional validation: every produced payload was summed
        // exactly once. Expected sum = sum_{i=0}^{255} (i + 1000).
        std::uint64_t expect = 0;
        for (std::uint64_t i = 0; i < kItems; ++i)
            expect += i + 1000;
        std::uint64_t got = machine.memory().peekLine(kSum).word(kSum);
        // The line may still live in a cache; flush view via checker
        // accessors.
        for (sim::NodeId n = 0; n < machine.numCores(); ++n) {
            std::uint64_t v;
            if (machine.l1(n).stateOf(kSum) != coherence::L1State::I &&
                machine.l1(n).peekWord(kSum, v)) {
                got = v;
            }
        }
        if (auto *e = machine.dir(machine.fabric().homeOf(kSum))
                          .llc()
                          .lookup(kSum)) {
            if (machine.dir(machine.fabric().homeOf(kSum)).stateOf(kSum)
                    != coherence::DirState::EM) {
                got = e->data.word(kSum);
            }
        }

        auto violations = sys::checkCoherence(machine);
        std::printf("%-9s cycles=%8llu checksum=%s coherent=%s\n",
                    wireless ? "WiDir" : "Baseline",
                    static_cast<unsigned long long>(cycles),
                    got == expect ? "OK" : "BAD",
                    violations.empty() ? "yes" : "NO");
        if (got != expect) {
            std::printf("  expected %llu got %llu\n",
                        static_cast<unsigned long long>(expect),
                        static_cast<unsigned long long>(got));
            return 1;
        }
    }
    return 0;
}
