/**
 * @file
 * Unit tests for the wireless NoC: BRS MAC timing, collision handling
 * with exponential back-off, selective jamming (including false
 * positives), cancellation, and the ToneAck census.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "wireless/data_channel.h"
#include "wireless/tone_channel.h"

namespace {

using namespace widir;
using wireless::DataChannel;
using wireless::DataChannelConfig;
using wireless::Frame;
using wireless::FrameKind;
using wireless::ToneChannel;

DataChannelConfig
cfg(std::uint32_t nodes = 8)
{
    DataChannelConfig c;
    c.numNodes = nodes;
    return c;
}

Frame
updFrame(sim::NodeId src, sim::Addr line)
{
    Frame f;
    f.src = src;
    f.kind = FrameKind::WirUpd;
    f.lineAddr = line;
    f.wordAddr = line;
    f.value = 1;
    return f;
}

TEST(DataChannel, LoneFrameTiming)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    sim::Tick commit_at = 0;
    std::vector<sim::Tick> rx_at;
    for (sim::NodeId n = 0; n < 8; ++n) {
        ch.setReceiver(n, [&rx_at, &s](const Frame &) {
            rx_at.push_back(s.now());
        });
    }
    ch.transmit(updFrame(0, 0x1000), [&] { commit_at = s.now(); });
    s.run();
    // Table III: 4-cycle transfer + 1-cycle collision detect. Commit
    // (guaranteed transmission) after preamble + detect.
    EXPECT_EQ(commit_at, 2u);
    ASSERT_EQ(rx_at.size(), 8u); // every node, including the sender
    for (auto t : rx_at)
        EXPECT_EQ(t, 5u);
    EXPECT_EQ(ch.successes(), 1u);
    EXPECT_EQ(ch.collisionEvents(), 0u);
}

TEST(DataChannel, BackToBackFramesSerialize)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    std::vector<sim::Tick> commits;
    ch.transmit(updFrame(0, 0x1000), [&] { commits.push_back(s.now()); });
    s.schedule(1, [&] {
        // Arrives while the medium is busy: carrier sense defers it,
        // no collision.
        ch.transmit(updFrame(1, 0x2000),
                    [&] { commits.push_back(s.now()); });
    });
    s.run();
    ASSERT_EQ(commits.size(), 2u);
    EXPECT_EQ(commits[0], 2u);
    EXPECT_EQ(commits[1], 7u); // second frame starts at 5, commits at 7
    EXPECT_EQ(ch.collisionEvents(), 0u);
}

TEST(DataChannel, SimultaneousStartCollides)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    std::vector<sim::Tick> commits;
    ch.transmit(updFrame(0, 0x1000), [&] { commits.push_back(s.now()); });
    ch.transmit(updFrame(1, 0x2000), [&] { commits.push_back(s.now()); });
    s.run();
    ASSERT_EQ(commits.size(), 2u);
    EXPECT_GE(ch.collisionEvents(), 1u);
    // Both eventually commit, at distinct times.
    EXPECT_NE(commits[0], commits[1]);
    EXPECT_EQ(ch.successes(), 2u);
}

TEST(DataChannel, ManyCollidersAllEventuallySucceed)
{
    sim::Simulator s;
    DataChannel ch(s, cfg(16));
    int done = 0;
    for (sim::NodeId n = 0; n < 16; ++n)
        ch.transmit(updFrame(n, 0x1000 + n * 64), [&] { ++done; });
    s.run();
    EXPECT_EQ(done, 16);
    EXPECT_EQ(ch.successes(), 16u);
    EXPECT_GE(ch.collisionEvents(), 1u);
    EXPECT_GT(ch.collisionProbability(), 0.0);
}

TEST(DataChannel, SupersededEvalNeverDuplicatesWork)
{
    // Regression for the scheduleEval generation counter: colliders
    // park an arbitration pass in the future (their back-off), then a
    // fresh transmit supersedes it with an earlier pass. The stale
    // callback must return without evaluating -- each frame commits
    // once and is delivered exactly once per node, with no phantom
    // arbitration in between.
    sim::Simulator s;
    DataChannel ch(s, cfg(4));
    std::vector<int> rx_count(4, 0);
    for (sim::NodeId n = 0; n < 4; ++n)
        ch.setReceiver(n, [&rx_count, n](const Frame &) {
            ++rx_count[n];
        });
    int commits = 0;
    ch.transmit(updFrame(0, 0x1000), [&] { ++commits; });
    ch.transmit(updFrame(1, 0x2000), [&] { ++commits; });
    // While the colliders back off, more senders keep arriving and
    // rescheduling the arbitration earlier.
    for (sim::Tick t = 1; t <= 3; ++t) {
        s.schedule(t, [&ch, &commits, t] {
            Frame f;
            f.src = 2;
            f.kind = FrameKind::WirUpd;
            f.lineAddr = 0x3000 + t * 64;
            f.wordAddr = f.lineAddr;
            f.value = t;
            ch.transmit(f, [&commits] { ++commits; });
        });
    }
    s.run();
    EXPECT_EQ(commits, 5);
    EXPECT_EQ(ch.successes(), 5u);
    for (sim::NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(rx_count[n], 5) << "node " << n;
}

TEST(DataChannel, JammingBlocksMatchingLine)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    auto jam = ch.startJamming(0, 0x1000);
    sim::Tick commit_at = 0;
    ch.transmit(updFrame(1, 0x1000), [&] { commit_at = s.now(); });
    // Let it bang against the jammer for a while, then lift the jam.
    s.schedule(200, [&] { ch.stopJamming(jam); });
    s.run();
    EXPECT_GT(commit_at, 200u);
    EXPECT_GE(ch.jamRejects(), 1u);
}

TEST(DataChannel, JammingLetsOtherLinesThrough)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    auto jam = ch.startJamming(0, 0x1000);
    sim::Tick commit_at = 0;
    ch.transmit(updFrame(1, 0x2000), [&] { commit_at = s.now(); });
    s.run();
    EXPECT_EQ(commit_at, 2u);
    EXPECT_EQ(ch.jamRejects(), 0u);
    ch.stopJamming(jam);
}

TEST(DataChannel, JammingBlocksColocatedSenderToo)
{
    // The core on the jamming directory's own node is not exempt.
    sim::Simulator s;
    DataChannel ch(s, cfg());
    auto jam = ch.startJamming(0, 0x1000);
    sim::Tick commit_at = 0;
    ch.transmit(updFrame(0, 0x1000), [&] { commit_at = s.now(); });
    s.schedule(100, [&] { ch.stopJamming(jam); });
    s.run();
    EXPECT_GT(commit_at, 100u);
}

TEST(DataChannel, JammingNeverBlocksControlFrames)
{
    // Directory control traffic (here a WirDwgr for the SAME line)
    // passes even while the line's updates are jammed.
    sim::Simulator s;
    DataChannel ch(s, cfg());
    auto jam = ch.startJamming(0, 0x1000);
    Frame f;
    f.src = 1;
    f.kind = FrameKind::WirDwgr;
    f.lineAddr = 0x1000;
    sim::Tick commit_at = 0;
    ch.transmit(f, [&] { commit_at = s.now(); });
    s.run();
    EXPECT_EQ(commit_at, 2u);
    ch.stopJamming(jam);
}

TEST(DataChannel, JammingFalsePositiveOnAliasedAddress)
{
    sim::Simulator s;
    DataChannelConfig c = cfg();
    c.jamAddrBits = 4; // aggressive aliasing for the test
    DataChannel ch(s, c);
    // Lines 0x1000 and 0x1000 + 16*64 share the low 4 line-number bits.
    auto jam = ch.startJamming(0, 0x1000);
    sim::Tick commit_at = 0;
    ch.transmit(updFrame(1, 0x1000 + 16 * 64),
                [&] { commit_at = s.now(); });
    s.schedule(100, [&] { ch.stopJamming(jam); });
    s.run();
    EXPECT_GT(commit_at, 100u); // false positive blocked it
    EXPECT_GE(ch.jamRejects(), 1u);
}

TEST(DataChannel, CancelPendingStopsTransmission)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    // Busy the channel first so the victim stays queued.
    ch.transmit(updFrame(0, 0x1000), nullptr);
    bool committed = false;
    int delivered = 0;
    for (sim::NodeId n = 0; n < 8; ++n) {
        ch.setReceiver(n, [&delivered](const Frame &f) {
            if (f.src == 1)
                ++delivered;
        });
    }
    auto token = ch.transmit(updFrame(1, 0x2000),
                             [&] { committed = true; });
    s.schedule(1, [&] { EXPECT_TRUE(ch.cancelPending(token)); });
    s.run();
    EXPECT_FALSE(committed);
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(ch.successes(), 1u);
}

TEST(DataChannel, BusyCyclesTracked)
{
    sim::Simulator s;
    DataChannel ch(s, cfg());
    ch.transmit(updFrame(0, 0x1000), nullptr);
    s.run();
    EXPECT_EQ(ch.busyCycles(), 5u);
}

TEST(ToneChannel, CensusCompletesAfterAllDrop)
{
    sim::Simulator s;
    ToneChannel tone(s, 4);
    sim::Tick silent_at = 0;
    tone.beginCensus(4, [&] { silent_at = s.now(); });
    for (int i = 0; i < 4; ++i) {
        s.schedule(static_cast<sim::Tick>(10 + i), [&] {
            tone.raise();
            tone.drop();
        });
    }
    s.run();
    // Last drop at t=13, one-cycle tone latency -> silent at 14.
    EXPECT_EQ(silent_at, 14u);
    EXPECT_EQ(tone.censuses(), 1u);
}

TEST(ToneChannel, ZeroParticipantCensusIsImmediate)
{
    sim::Simulator s;
    ToneChannel tone(s, 4);
    sim::Tick silent_at = sim::kTickNever;
    tone.beginCensus(0, [&] { silent_at = s.now(); });
    s.run();
    EXPECT_EQ(silent_at, 1u);
}

TEST(DataChannel, CollisionStormIsDeterministic)
{
    // Two identical 24-sender storms (a second wave lands mid-backoff)
    // must resolve in exactly the same order at the same ticks: every
    // BRS back-off draw comes from the channel's own seeded RNG
    // stream, never from global state.
    auto storm = [] {
        std::vector<std::pair<sim::Tick, sim::NodeId>> commits;
        sim::Simulator s;
        DataChannel ch(s, cfg(24));
        for (sim::NodeId n = 0; n < 16; ++n)
            ch.transmit(updFrame(n, 0x1000 + n * 64),
                        [&commits, &s, n] {
                            commits.emplace_back(s.now(), n);
                        });
        s.schedule(7, [&commits, &s, &ch] {
            for (sim::NodeId n = 16; n < 24; ++n)
                ch.transmit(updFrame(n, 0x1000 + n * 64),
                            [&commits, &s, n] {
                                commits.emplace_back(s.now(), n);
                            });
        });
        s.run();
        return commits;
    };
    auto first = storm();
    auto second = storm();
    EXPECT_EQ(first.size(), 24u);
    EXPECT_EQ(first, second);
}

TEST(DataChannel, SaturatedBackoffStillSerializesAndDrains)
{
    // Cap the exponential window at a single doubling: a 16-way storm
    // keeps redrawing from the same tiny window and collides over and
    // over. The MAC must not livelock, every frame must commit exactly
    // once, and committed frames must still be spaced at least a full
    // frame time apart (one medium, no overlap).
    sim::Simulator s;
    DataChannelConfig c = cfg(16);
    c.maxBackoffExp = 1;
    DataChannel ch(s, c);
    std::vector<sim::Tick> commits;
    for (sim::NodeId n = 0; n < 16; ++n)
        ch.transmit(updFrame(n, 0x1000 + n * 64),
                    [&] { commits.push_back(s.now()); });
    s.run();
    ASSERT_EQ(commits.size(), 16u);
    for (std::size_t i = 1; i < commits.size(); ++i)
        EXPECT_GE(commits[i] - commits[i - 1], 5u);
    EXPECT_EQ(ch.successes(), 16u);
    EXPECT_GE(ch.collisionEvents(), 1u);
}

TEST(ToneChannel, OverlappingCensusesShareSilence)
{
    // The wired-OR cannot separate concurrent censuses: both complete
    // when the whole channel falls silent (conservative).
    sim::Simulator s;
    ToneChannel tone(s, 4);
    sim::Tick done_a = 0, done_b = 0;
    tone.beginCensus(2, [&] { done_a = s.now(); });
    s.schedule(3, [&] { tone.beginCensus(2, [&] { done_b = s.now(); }); });
    s.schedule(5, [&] { tone.drop(); tone.drop(); });   // census A
    s.schedule(20, [&] { tone.drop(); tone.drop(); });  // census B
    s.run();
    // A's own obligations finished at 5, but the channel stays loud
    // until B's finish at 20 -> both observe silence at 21.
    EXPECT_EQ(done_a, 21u);
    EXPECT_EQ(done_b, 21u);
}

TEST(ToneChannel, ManyOverlappingCensusesResolveTogether)
{
    // Census storm: five censuses piled onto the wired-OR at staggered
    // ticks. None can tell its own cohort's silence from the others',
    // so all five complete at the single global silence edge after the
    // very last drop.
    sim::Simulator s;
    ToneChannel tone(s, 8);
    std::vector<sim::Tick> done;
    for (int c = 0; c < 5; ++c) {
        s.schedule(static_cast<sim::Tick>(c * 3), [&] {
            tone.beginCensus(2, [&] { done.push_back(s.now()); });
        });
        s.schedule(static_cast<sim::Tick>(30 + c * 4), [&] {
            tone.drop();
            tone.drop();
        });
    }
    s.run();
    ASSERT_EQ(done.size(), 5u);
    for (sim::Tick t : done)
        EXPECT_EQ(t, 47u); // last pair drops at 46, 1-cycle latency
    EXPECT_EQ(tone.censuses(), 5u);
}

} // namespace
