/**
 * @file
 * Negative tests for sys::checkCoherence: corrupt a quiesced Manycore
 * through the test back-doors (L1 CacheArray fill, directory
 * mutableEntryForTest, LLC data mutation) and assert the checker
 * reports each invariant class. A checker that only ever sees healthy
 * machines is untested; these prove it actually fires.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "system/checker.h"
#include "system/manycore.h"

namespace {

using namespace widir;
using coherence::DirState;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kA = 0x100000;
constexpr Addr kFlag = 0x200040; // different line (and different home)

bool
anyContains(const std::vector<std::string> &violations, const char *needle)
{
    return std::any_of(violations.begin(), violations.end(),
                       [&](const std::string &v) {
                           return v.find(needle) != std::string::npos;
                       });
}

std::string
joined(const std::vector<std::string> &violations)
{
    std::string out;
    for (const auto &v : violations)
        out += v + "\n";
    return out;
}

/** core 0 writes kA; cores 1..2 read it afterwards (S-shared at rest). */
Task
sharedReaders(Thread &t)
{
    if (t.id() == 0) {
        co_await t.store(kA, 0xabcdu);
        co_await t.fence();
        co_await t.fetchAdd(kFlag, 1);
        co_await t.fence();
    } else if (t.id() <= 2) {
        for (;;) {
            if (co_await t.load(kFlag) >= 1)
                break;
            co_await t.compute(20);
        }
        std::uint64_t v = co_await t.load(kA);
        EXPECT_EQ(v, 0xabcdu);
    }
    co_return;
}

TEST(Checker, CleanMachinePassesAllInvariants)
{
    Manycore m(SystemConfig::widir(4));
    m.run(sharedReaders);
    std::vector<std::string> v = sys::checkCoherence(m);
    EXPECT_TRUE(v.empty()) << joined(v);
}

// Invariant class 1: single-writer / multiple-reader. Forge a second
// M copy behind the directory's back and the checker must flag it.
TEST(Checker, DetectsForgedSecondModifiedCopy)
{
    Manycore m(SystemConfig::widir(4));
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.store(kA, 7);
            co_await t.fence();
        }
        co_return;
    });
    ASSERT_EQ(m.l1(0).stateOf(kA), L1State::M);
    ASSERT_TRUE(sys::checkCoherence(m).empty());

    // Node 2 never touched kA; plant a fake dirty-M copy there.
    mem::CacheArray &arr = m.l1(2).array();
    mem::CacheEntry *frame = arr.pickVictim(kA);
    ASSERT_NE(frame, nullptr);
    mem::LineData forged;
    forged.setWord(kA, 99);
    arr.fill(frame, kA, static_cast<std::uint8_t>(L1State::M), forged);

    std::vector<std::string> v = sys::checkCoherence(m);
    EXPECT_TRUE(anyContains(v, "SWMR violated")) << joined(v);
}

// Invariant class 2: the W-state census. Decrement the directory's
// SharerCount below the number of live wireless copies.
TEST(Checker, DetectsUndercountedWirelessSharerCount)
{
    SystemConfig cfg = SystemConfig::widir(4);
    cfg.protocol.maxWiredSharers = 1; // 2 sharers force the W upgrade
    Manycore m(cfg);
    m.run([](Thread &t) -> Task {
        if (t.id() == 1 || t.id() == 2) {
            co_await t.load(kA);
            co_await t.fence();
            co_await t.fetchAdd(kFlag, 1);
            co_await t.fence();
        } else if (t.id() == 0) {
            for (;;) {
                if (co_await t.load(kFlag) >= 2)
                    break;
                co_await t.compute(20);
            }
            // Two wired sharers > maxWiredSharers: this store runs the
            // census and moves the line to W.
            co_await t.store(kA, 5);
            co_await t.fence();
        }
        co_return;
    });
    sim::NodeId home = m.fabric().homeOf(kA);
    ASSERT_EQ(m.dir(home).stateOf(kA), DirState::W);
    ASSERT_TRUE(sys::checkCoherence(m).empty());

    coherence::DirEntry &e = m.dir(home).mutableEntryForTest(mem::lineAlign(kA));
    ASSERT_GT(e.sharerCount, 0u);
    e.sharerCount -= 1;

    std::vector<std::string> v = sys::checkCoherence(m);
    EXPECT_TRUE(anyContains(v, "SharerCount")) << joined(v);
}

// Invariant class 3: value coherence. Corrupt the LLC's copy of an
// S-shared line so it no longer matches the L1 copies (or memory).
TEST(Checker, DetectsStaleLlcData)
{
    Manycore m(SystemConfig::widir(4));
    m.run(sharedReaders);
    ASSERT_TRUE(sys::checkCoherence(m).empty());

    sim::NodeId home = m.fabric().homeOf(kA);
    mem::CacheEntry *llcLine = m.dir(home).llc().lookup(kA);
    ASSERT_NE(llcLine, nullptr);
    llcLine->data.setWord(kA, 0xdeadu);

    std::vector<std::string> v = sys::checkCoherence(m);
    EXPECT_TRUE(anyContains(v, "differs from LLC")) << joined(v);
}

// Bonus corruption: flip the directory entry to I while copies remain
// cached -- the "directory says I" arm of the state cross-check.
TEST(Checker, DetectsDirectoryStateDroppedToInvalid)
{
    Manycore m(SystemConfig::widir(4));
    m.run(sharedReaders);
    ASSERT_TRUE(sys::checkCoherence(m).empty());

    sim::NodeId home = m.fabric().homeOf(kA);
    coherence::DirEntry &e = m.dir(home).mutableEntryForTest(mem::lineAlign(kA));
    ASSERT_NE(e.state, DirState::I);
    e.state = DirState::I;

    std::vector<std::string> v = sys::checkCoherence(m);
    EXPECT_TRUE(anyContains(v, "directory says I")) << joined(v);
}

} // namespace
