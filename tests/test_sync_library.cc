/**
 * @file
 * Tests of the workload synchronization library: mutual exclusion of
 * the spin lock, sense-reversing barrier correctness across phases,
 * spin helpers and the shared task counter -- under BOTH protocols,
 * since these primitives are exactly the access patterns WiDir
 * rewires.
 */

#include <gtest/gtest.h>

#include "system/checker.h"
#include "system/manycore.h"
#include "workload/addr_map.h"
#include "workload/sync.h"

namespace {

using namespace widir;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;
using workload::AddrMap;
namespace syn = workload::sync;

SystemConfig
machine(bool wireless, std::uint32_t cores)
{
    return wireless ? SystemConfig::widir(cores)
                    : SystemConfig::baseline(cores);
}

constexpr Addr kProtected = AddrMap::sharedLine(60);
constexpr Addr kScratch = AddrMap::sharedLine(61);

/** Classic mutual-exclusion check: non-atomic read-modify-write under
 *  the lock must still produce an exact count. */
Task
lockedIncrements(Thread &t, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await syn::lockAcquire(t, AddrMap::globalLock(0));
        // NON-atomic RMW: load, compute, store. Only mutual exclusion
        // makes this correct.
        std::uint64_t v = co_await t.load(kProtected);
        co_await t.compute(20);
        co_await t.store(kProtected, v + 1);
        co_await syn::lockRelease(t, AddrMap::globalLock(0));
        co_await t.compute(30);
    }
    co_return;
}

class SyncP : public ::testing::TestWithParam<bool>
{
};

TEST_P(SyncP, SpinLockProvidesMutualExclusion)
{
    Manycore m(machine(GetParam(), 8));
    constexpr int kIters = 12;
    m.run([](Thread &t) { return lockedIncrements(t, kIters); });

    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < 8 && !found; ++n) {
        if (m.l1(n).stateOf(kProtected) != coherence::L1State::I)
            found = m.l1(n).peekWord(kProtected, v);
    }
    if (!found) {
        auto &home = m.dir(m.fabric().homeOf(kProtected));
        if (auto *e = home.llc().lookup(kProtected))
            v = e->data.word(kProtected);
        else
            v = m.memory().peekLine(kProtected).word(kProtected);
    }
    EXPECT_EQ(v, 8u * kIters);
    auto violations = sys::checkCoherence(m);
    for (const auto &viol : violations)
        ADD_FAILURE() << viol;
}

/** Barrier phases must not bleed: each thread writes phase p only
 *  after everyone wrote phase p-1. */
Task
barrierPhases(Thread &t, int phases)
{
    bool sense = false;
    Addr mine = kScratch + 64 + static_cast<Addr>(t.id()) * 8;
    for (int p = 1; p <= phases; ++p) {
        co_await t.store(mine, static_cast<std::uint64_t>(p));
        co_await t.fence();
        co_await syn::globalBarrier(t, sense);
        // After the barrier, every thread's slot shows >= p.
        for (std::uint32_t other = 0; other < t.numThreads(); ++other) {
            std::uint64_t v = co_await t.load(
                kScratch + 64 + static_cast<Addr>(other) * 8);
            EXPECT_GE(v, static_cast<std::uint64_t>(p))
                << "thread " << t.id() << " phase " << p << " saw "
                << other;
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

TEST_P(SyncP, SenseReversingBarrierSeparatesPhases)
{
    Manycore m(machine(GetParam(), 8));
    m.run([](Thread &t) { return barrierPhases(t, 5); });
    auto violations = sys::checkCoherence(m);
    for (const auto &viol : violations)
        ADD_FAILURE() << viol;
}

TEST_P(SyncP, TaskCounterHandsOutEveryIndexOnce)
{
    Manycore m(machine(GetParam(), 8));
    constexpr std::uint64_t kTasks = 64;
    // Each claimed index marks a distinct shared word; afterwards all
    // must be marked exactly once (sum == kTasks).
    m.run([](Thread &t) -> Task {
        for (;;) {
            std::uint64_t idx =
                co_await syn::taskPop(t, AddrMap::taskQueueHead(5));
            if (idx >= kTasks)
                break;
            co_await t.fetchAdd(AddrMap::sharedArray(20) + idx * 8, 1);
            co_await t.compute(25);
        }
        co_await t.fence();
        co_return;
    });
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < kTasks; ++i) {
        Addr a = AddrMap::sharedArray(20) + i * 8;
        std::uint64_t v = 0;
        bool found = false;
        for (sim::NodeId n = 0; n < 8 && !found; ++n) {
            if (m.l1(n).stateOf(a) != coherence::L1State::I)
                found = m.l1(n).peekWord(a, v);
        }
        if (!found) {
            auto &home = m.dir(m.fabric().homeOf(a));
            if (auto *e = home.llc().lookup(a))
                v = e->data.word(a);
            else
                v = m.memory().peekLine(a).word(a);
        }
        EXPECT_EQ(v, 1u) << "task " << i;
        sum += v;
    }
    EXPECT_EQ(sum, kTasks);
}

TEST_P(SyncP, SpinHelpersObserveWrittenValues)
{
    Manycore m(machine(GetParam(), 2));
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.compute(500);
            co_await t.store(kScratch, 3);
            co_await t.fence();
            co_await t.store(kScratch + 8, 10);
            co_await t.fence();
        } else {
            co_await syn::spinUntilEquals(t, kScratch, 3);
            co_await syn::spinUntilAtLeast(t, kScratch + 8, 10);
        }
        co_return;
    });
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, SyncP, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "WiDir" : "Baseline";
                         });

TEST(SyncLibrary, LockHandoffFasterUnderWiDirWhenContended)
{
    auto run = [](bool wireless) {
        Manycore m(machine(wireless, 32));
        return m.run(
            [](Thread &t) { return lockedIncrements(t, 6); });
    };
    sim::Tick base = run(false);
    sim::Tick widir = run(true);
    // 32 contenders on one lock: WiDir must not be slower, and should
    // usually be clearly faster (the paper's headline pattern).
    EXPECT_LT(widir, base * 11 / 10);
}

} // namespace
