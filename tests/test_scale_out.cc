/**
 * @file
 * Scale-out machinery: MsgPool reservation, the concentrated mesh,
 * directory home-site hashing, multi-channel wireless selection, and
 * the ExperimentSpec plumbing that exposes the knobs. The flat/SoA
 * containers themselves are covered by test_flat_map.cc; this file
 * pins the topology layer built on top of them (docs/PERF.md).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/messages.h"
#include "mem/address.h"
#include "noc/mesh.h"
#include "sim/simulator.h"
#include "system/report.h"
#include "workload/registry.h"

namespace {

using namespace widir;

// ---------------------------------------------------------------- MsgPool

TEST(MsgPool, ReservePrePopulatesFreeSlots)
{
    coherence::MsgPool pool;
    pool.reserve(64);
    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.grewBeyondReserve(), 0u);
}

TEST(MsgPool, ChurnWithinReserveNeverGrows)
{
    coherence::MsgPool pool;
    pool.reserve(32);
    coherence::Msg m{};
    // Steady-state traffic: never more than 32 in flight at once.
    std::vector<std::uint32_t> held;
    for (int round = 0; round < 50; ++round) {
        while (held.size() < 32)
            held.push_back(pool.acquire(m));
        while (held.size() > 5) {
            pool.release(held.back());
            held.pop_back();
        }
    }
    EXPECT_EQ(pool.capacity(), 32u);
    EXPECT_EQ(pool.grewBeyondReserve(), 0u);
}

TEST(MsgPool, GrowthPastReserveIsVisible)
{
    coherence::MsgPool pool;
    pool.reserve(4);
    coherence::Msg m{};
    std::vector<std::uint32_t> held;
    for (int i = 0; i < 7; ++i)
        held.push_back(pool.acquire(m));
    EXPECT_EQ(pool.grewBeyondReserve(), 3u);
    for (std::uint32_t idx : held)
        pool.release(idx);
    // The pool never shrinks; the watermark excess is a high-water mark.
    EXPECT_EQ(pool.grewBeyondReserve(), 3u);
}

// ------------------------------------------------- concentrated mesh

noc::MeshConfig
meshCfg(std::uint32_t nodes, std::uint32_t conc)
{
    noc::MeshConfig c;
    c.numNodes = nodes;
    c.concentration = conc;
    return c;
}

TEST(ConcentratedMesh, RouterGridShrinksByConcentration)
{
    sim::Simulator s;
    noc::Mesh m(s, meshCfg(64, 4));
    EXPECT_EQ(m.numRouters(), 16u);
    EXPECT_EQ(m.width(), 4u);
    EXPECT_EQ(m.height(), 4u);

    noc::Mesh m1(s, meshCfg(64, 1));
    EXPECT_EQ(m1.numRouters(), 64u);
    EXPECT_EQ(m1.width(), 8u);
}

TEST(ConcentratedMesh, TilesSharingARouterAreZeroHops)
{
    sim::Simulator s;
    noc::Mesh m(s, meshCfg(16, 4));
    // Tiles 0-3 hang off router 0; 12-15 off router 3.
    EXPECT_EQ(m.hopCount(0, 3), 0u);
    EXPECT_EQ(m.hopCount(12, 15), 0u);
    EXPECT_GT(m.hopCount(0, 15), 0u);
}

TEST(ConcentratedMesh, HopCountsAreRouterManhattan)
{
    sim::Simulator s;
    noc::Mesh c(s, meshCfg(64, 4)); // 4x4 router grid
    // Tile 0 (router 0 at (0,0)) to tile 63 (router 15 at (3,3)).
    EXPECT_EQ(c.hopCount(0, 63), 6u);
    // Concentration 1 must agree with the classic tile-grid distance.
    noc::Mesh flat(s, meshCfg(64, 1));
    EXPECT_EQ(flat.hopCount(0, 63), 14u);
}

TEST(ConcentratedMesh, ConcentrationOneMatchesClassicEverywhere)
{
    sim::Simulator s;
    noc::Mesh classic(s, meshCfg(16, 1));
    for (sim::NodeId a = 0; a < 16; ++a)
        for (sim::NodeId b = 0; b < 16; ++b)
            EXPECT_EQ(classic.hopCount(a, b),
                      (std::abs(int(a % 4) - int(b % 4)) +
                       std::abs(int(a / 4) - int(b / 4))))
                << "pair " << a << "->" << b;
}

// ------------------------------------------------- home-site hashing

TEST(HomeMap, InterleaveMatchesClassicHomeNode)
{
    for (sim::Addr a = 0; a < (1u << 16); a += 64)
        EXPECT_EQ(mem::homeNodeOf(a, 64, mem::HomeMap::Interleave),
                  mem::homeNode(a, 64));
}

TEST(HomeMap, HashIsDeterministicAndInRange)
{
    for (sim::Addr a = 0; a < (1u << 16); a += 64) {
        sim::NodeId h = mem::homeNodeOf(a, 64, mem::HomeMap::Hash);
        EXPECT_LT(h, 64u);
        EXPECT_EQ(h, mem::homeNodeOf(a, 64, mem::HomeMap::Hash));
    }
}

TEST(HomeMap, HashSpreadsSequentialLinesAcrossBanks)
{
    // Sequential lines land on the *same* bank under interleave only
    // every num_nodes lines; the hash must hit most banks within a
    // small window without degenerating to one.
    std::set<sim::NodeId> banks;
    for (sim::Addr a = 0; a < 64u * 256u; a += 64)
        banks.insert(mem::homeNodeOf(a, 64, mem::HomeMap::Hash));
    EXPECT_GT(banks.size(), 48u); // ~all 64 banks in 256 lines
}

TEST(HomeMap, HashIgnoresOffsetWithinLine)
{
    EXPECT_EQ(mem::homeNodeOf(0x1000, 64, mem::HomeMap::Hash),
              mem::homeNodeOf(0x103f, 64, mem::HomeMap::Hash));
}

// ------------------------------------------------- spec validation

TEST(ScaleOutSpec, ValidationCatchesBadTopology)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("fft");
    ASSERT_NE(spec.app, nullptr);
    spec.cores = 16;

    spec.meshConcentration = 3; // does not divide 16
    EXPECT_NE(spec.validate().find("meshConcentration"),
              std::string::npos);
    spec.meshConcentration = 0;
    EXPECT_NE(spec.validate().find("meshConcentration"),
              std::string::npos);
    spec.meshConcentration = 4;
    spec.wirelessChannels = 0;
    EXPECT_NE(spec.validate().find("wirelessChannels"),
              std::string::npos);
    spec.wirelessChannels = 4;
    EXPECT_EQ(spec.validate(), "");
}

// ------------------------------------------------- end-to-end smoke

sys::ExperimentSpec
scaleOutSpec(coherence::Protocol proto)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("fft");
    spec.protocol = proto;
    spec.cores = 16;
    spec.scale = 1;
    spec.seed = 11;
    spec.meshConcentration = 4;
    spec.wirelessChannels = 4;
    spec.homeMap = mem::HomeMap::Hash;
    return spec;
}

std::string
statsFor(sys::ExperimentSpec spec, unsigned threads)
{
    spec.simThreads = threads;
    sys::ExperimentResult r = sys::runExperiment(spec);
    r.hostSeconds = 0.0;
    r.hostEventsPerSec = 0.0;
    return sys::resultToJson(r);
}

TEST(ScaleOutSmoke, WiDirRunsCoherentlyWithAllKnobs)
{
    // runExperiment fatals if the coherence checker finds a violation,
    // so completing at all is the assertion; spot-check the echo.
    sys::ExperimentResult r =
        sys::runExperiment(scaleOutSpec(coherence::Protocol::WiDir));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.meshConcentration, 4u);
    EXPECT_EQ(r.wirelessChannels, 4u);
    EXPECT_EQ(r.homeMap, mem::HomeMap::Hash);
    EXPECT_NE(sys::resultToJson(r).find("\"topology\""),
              std::string::npos);
}

TEST(ScaleOutSmoke, BaselineRunsCoherentlyWithAllKnobs)
{
    sys::ExperimentResult r = sys::runExperiment(
        scaleOutSpec(coherence::Protocol::BaselineMESI));
    EXPECT_GT(r.cycles, 0u);
}

TEST(ScaleOutSmoke, DomainKernelIsThreadCountInvariant)
{
    // The bound/weave kernel's determinism contract must hold with the
    // concentrated mesh, hashed homes and multi-channel WNoC active.
    sys::ExperimentSpec spec = scaleOutSpec(coherence::Protocol::WiDir);
    EXPECT_EQ(statsFor(spec, 1), statsFor(spec, 2));
}

} // namespace
