/**
 * @file
 * Regression tests for the protocol races found during bring-up, each
 * reduced to a directed scenario:
 *
 *  - phantom sharers from eviction notifications arriving mid-join
 *    (PutS/PutW accounting while the line is W),
 *  - in-flight S grants crossing a BrWirUpgr census (fillAsW),
 *  - stale is-sharer flags on retried upgrades,
 *  - batched W->W joins under read bursts,
 *  - wireless write/RMW squash on WirInv and WirDwgr,
 *  - LLC recall (WirInv) with concurrent writers.
 */

#include <gtest/gtest.h>

#include "system/checker.h"
#include "system/manycore.h"

namespace {

using namespace widir;
using coherence::DirState;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kA = 0xA00000;
constexpr Addr kCnt = kA + 64;

void
expectCoherent(Manycore &m, const char *what)
{
    auto violations = sys::checkCoherence(m);
    for (const auto &v : violations)
        ADD_FAILURE() << what << ": " << v;
}

/**
 * Regression: a sharer whose PutS crossed the S->W transition while a
 * later join transaction was in flight used to leak a phantom
 * SharerCount, deadlocking the eventual W->S downgrade. The scenario
 * needs eviction pressure; a tiny L1 plus streaming provides it.
 */
TEST(WiDirRaces, EvictionNotificationsNeverLeakSharerCount)
{
    SystemConfig cfg = SystemConfig::widir(8);
    cfg.l1.sizeBytes = 2048; // 16 sets x 2 ways: heavy eviction churn
    Manycore m(cfg);
    m.run([](Thread &t) -> Task {
        for (int round = 0; round < 12; ++round) {
            // Everyone touches the hot line...
            co_await t.loadNb(kA);
            co_await t.fetchAdd(kCnt, 1);
            // ...then streams enough lines to evict it (same L1 set).
            for (int i = 1; i <= 3; ++i) {
                co_await t.loadNb(kA + static_cast<Addr>(i) * 16 * 64);
            }
            co_await t.fence();
            co_await t.compute(t.rng().below(60));
        }
        co_return;
    });
    expectCoherent(m, "eviction churn");
    // The machine quiesced (run() would have fataled otherwise) and
    // the exact counter survived.
    Addr home_cnt = m.fabric().homeOf(kCnt);
    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < 8 && !found; ++n) {
        if (m.l1(n).stateOf(kCnt) != L1State::I)
            found = m.l1(n).peekWord(kCnt, v);
    }
    if (!found) {
        if (auto *e = m.dir(home_cnt).llc().lookup(kCnt))
            v = e->data.word(kCnt);
        else
            v = m.memory().peekLine(kCnt).word(kCnt);
    }
    EXPECT_EQ(v, 8u * 12u);
}

/**
 * A read burst from every core onto a just-shared line: the first
 * three take pointers, the fourth triggers the census, and the rest
 * join -- partly batched under one join transaction. SharerCount must
 * equal the real number of W copies afterwards.
 */
TEST(WiDirRaces, ReadBurstJoinsAreCountedExactly)
{
    Manycore m(SystemConfig::widir(16));
    m.run([](Thread &t) -> Task {
        co_await t.loadNb(kA);
        co_await t.fence();
        // Keep polling so nobody self-invalidates before the end.
        for (int i = 0; i < 6; ++i) {
            co_await t.loadNb(kA);
            co_await t.idle(20);
        }
        co_return;
    });
    expectCoherent(m, "read burst");
    auto &home = m.dir(m.fabric().homeOf(kA));
    if (home.stateOf(kA) == DirState::W) {
        std::uint32_t holders = 0;
        for (sim::NodeId n = 0; n < 16; ++n) {
            if (m.l1(n).stateOf(kA) == L1State::W)
                ++holders;
        }
        EXPECT_EQ(home.entryOf(kA)->sharerCount, holders);
        EXPECT_EQ(holders, 16u);
    }
}

/**
 * Writers keep updating a W line while the home LLC evicts it: the
 * WirInv must squash pending wireless writes, which retry through the
 * wired path and re-allocate the line; no update may be lost.
 */
TEST(WiDirRaces, WirInvSquashesAndRetriesWriters)
{
    SystemConfig cfg = SystemConfig::widir(8);
    cfg.llc.sizeBytes = 4096; // 8 sets x 8 ways per slice
    Manycore m(cfg);
    constexpr int kAdds = 10;
    m.run([](Thread &t) -> Task {
        // All cores join the hot line's group and hammer it...
        for (int i = 0; i < kAdds; ++i) {
            co_await t.fetchAdd(kA, 1);
            co_await t.compute(t.rng().below(40));
        }
        // ...while core 0 thrashes the home slice's set to force the
        // dir entry out (stride: 8 nodes x 8 sets x 64B).
        if (t.id() == 0) {
            for (int i = 1; i <= 10; ++i) {
                co_await t.loadNb(kA + static_cast<Addr>(i) * 64 * 64);
                co_await t.fence();
            }
        }
        co_return;
    });
    expectCoherent(m, "recall under write");
    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < 8 && !found; ++n) {
        L1State st = m.l1(n).stateOf(kA);
        if (st == L1State::M || st == L1State::E || st == L1State::W)
            found = m.l1(n).peekWord(kA, v);
    }
    if (!found) {
        auto &home = m.dir(m.fabric().homeOf(kA));
        if (auto *e = home.llc().lookup(kA))
            v = e->data.word(kA);
        else
            v = m.memory().peekLine(kA).word(kA);
    }
    EXPECT_EQ(v, 8u * kAdds);
}

/**
 * The W->S downgrade triggered while writers still have traffic in
 * their write buffers: squashed writes must re-issue as wired
 * upgrades and none may vanish.
 */
TEST(WiDirRaces, DowngradeDoesNotLoseWrites)
{
    Manycore m(SystemConfig::widir(8));
    m.run([](Thread &t) -> Task {
        // Form a full group.
        co_await t.loadNb(kA);
        co_await t.fence();
        // Half the cores leave by going idle (UpdateCount will drop
        // them as the others write), eventually forcing W->S while
        // stores are still flowing.
        if (t.id() < 4) {
            for (int i = 0; i < 20; ++i) {
                co_await t.fetchAdd(kA + 8, 1);
                co_await t.compute(30);
            }
        } else {
            co_await t.compute(4000);
        }
        co_return;
    });
    expectCoherent(m, "downgrade under write");
    Addr word = kA + 8;
    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < 8 && !found; ++n) {
        L1State st = m.l1(n).stateOf(word);
        if (st != L1State::I && st != L1State::S)
            found = m.l1(n).peekWord(word, v);
    }
    if (!found) {
        auto &home = m.dir(m.fabric().homeOf(word));
        if (auto *e = home.llc().lookup(word))
            v = e->data.word(word);
        else
            v = m.memory().peekLine(word).word(word);
    }
    EXPECT_EQ(v, 4u * 20u);
}

/**
 * Stale is-sharer flags: a core's upgrade races an invalidation and a
 * subsequent S->W transition. The retry must carry a fresh flag so the
 * W directory serves it rather than discarding it (the hang found in
 * bring-up).
 */
TEST(WiDirRaces, StaleSharerUpgradeEventuallyCompletes)
{
    Manycore m(SystemConfig::widir(8));
    m.run([](Thread &t) -> Task {
        // Everyone alternates reads and writes of one line with random
        // pauses; this reproduces the invalidate-then-transition
        // interleavings statistically. The proof is termination plus
        // an exact final sum.
        for (int i = 0; i < 15; ++i) {
            if (t.rng().chance(0.5)) {
                co_await t.loadNb(kA);
            } else {
                co_await t.fetchAdd(kA, 1);
            }
            co_await t.compute(t.rng().below(80));
        }
        co_await t.fence();
        co_return;
    });
    expectCoherent(m, "stale sharer");
}

/** Two hot lines transition simultaneously: overlapping censuses. */
TEST(WiDirRaces, ConcurrentTransitionsOnDifferentLines)
{
    Manycore m(SystemConfig::widir(16));
    m.run([](Thread &t) -> Task {
        Addr line = (t.id() & 1) ? kA : kA + 128;
        co_await t.loadNb(line);
        co_await t.loadNb((t.id() & 1) ? kA + 128 : kA);
        co_await t.fence();
        for (int i = 0; i < 4; ++i) {
            co_await t.loadNb(line);
            co_await t.idle(16);
        }
        co_return;
    });
    expectCoherent(m, "concurrent censuses");
    EXPECT_GE(m.dirTotals().toWireless, 2u);
}

} // namespace
