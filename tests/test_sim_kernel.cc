/**
 * @file
 * Unit tests for the discrete-event kernel: event ordering, time
 * advancement, RNG determinism, statistics containers.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_event.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace {

using namespace widir;

/** Scoped EventQueue::setForceHeapForTest (restores on destruction). */
struct ForceHeapGuard
{
    explicit ForceHeapGuard(bool on)
    {
        sim::EventQueue::setForceHeapForTest(on);
    }
    ~ForceHeapGuard() { sim::EventQueue::setForceHeapForTest(false); }
};

TEST(EventQueue, ExecutesInTimeOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.scheduleAt(10, [&] { order.push_back(2); });
    q.scheduleAt(5, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(3); });
    EXPECT_TRUE(q.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(7, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    sim::EventQueue q;
    int fired = 0;
    q.scheduleAt(1, [&] {
        ++fired;
        q.schedule(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    sim::EventQueue q;
    bool late = false;
    q.scheduleAt(100, [&] { late = true; });
    EXPECT_FALSE(q.run(50));
    EXPECT_FALSE(late);
    EXPECT_TRUE(q.run(100));
    EXPECT_TRUE(late);
}

TEST(EventQueue, CountsExecutedEvents)
{
    sim::EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(static_cast<sim::Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    sim::Rng a(42, 7);
    sim::Rng b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent)
{
    sim::Rng a(42, 1);
    sim::Rng b(42, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    sim::Rng r(3, 3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    sim::Rng r(9, 1);
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    sim::Rng r(5, 5);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        hit_lo |= (v == 3);
        hit_hi |= (v == 5);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Simulator, DerivedRngsAreStable)
{
    sim::Simulator s1(99);
    sim::Simulator s2(99);
    auto r1 = s1.makeRng(4);
    auto r2 = s2.makeRng(4);
    EXPECT_EQ(r1.next(), r2.next());
}

TEST(Stats, AverageBasics)
{
    sim::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, BinnedHistogramBins)
{
    // Fig. 5 bins: <=5, 6-10, 11-25, 26-49, 50+.
    sim::BinnedHistogram h({5, 10, 25, 49}, true);
    h.sample(0);
    h.sample(5);
    h.sample(6);
    h.sample(25);
    h.sample(26);
    h.sample(49);
    h.sample(50);
    h.sample(1000);
    ASSERT_EQ(h.bins().size(), 5u);
    EXPECT_EQ(h.bins()[0].count, 2u);
    EXPECT_EQ(h.bins()[1].count, 1u);
    EXPECT_EQ(h.bins()[2].count, 1u);
    EXPECT_EQ(h.bins()[3].count, 2u);
    EXPECT_EQ(h.bins()[4].count, 2u);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
}

TEST(Stats, BinnedHistogramWeightedMean)
{
    sim::BinnedHistogram h({10}, true);
    h.sample(4, 3); // weight 3
    h.sample(10, 1);
    EXPECT_DOUBLE_EQ(h.mean(), (4.0 * 3 + 10.0) / 4.0);
}

TEST(Stats, BinnedHistogramWeightedSumSurvivesUint64Overflow)
{
    // Regression: weighted_sum_ accumulated v * weight in uint64_t.
    // Tick-scale values with merged-slice weights overflow that
    // silently -- two samples of (2^40, 2^25) already wrap 2^65 past
    // 64 bits -- corrupting mean() with no other symptom. The
    // accumulator is 128-bit now.
    sim::BinnedHistogram h({100}, true);
    const std::uint64_t v = 1ull << 40;
    const std::uint64_t w = 1ull << 25;
    h.sample(v, w);
    h.sample(v, w);
    EXPECT_EQ(h.total(), 2 * w);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(v));
}

TEST(Stats, BinnedHistogramClosedTopClampIsCounted)
{
    // open_top=false: above-range samples clamp into the last bin,
    // and clamped() records how much was clamped (it used to be
    // silent). The unbinned mean still uses the true sample value.
    sim::BinnedHistogram h({5, 10}, false);
    h.sample(3);
    h.sample(11, 2); // above the last bound: clamped, weight 2
    ASSERT_EQ(h.bins().size(), 2u);
    EXPECT_EQ(h.bins()[1].count, 2u);
    EXPECT_EQ(h.clamped(), 2u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), (3.0 + 11.0 * 2) / 3.0);

    h.reset();
    EXPECT_EQ(h.clamped(), 0u);
}

TEST(Stats, BinnedHistogramOpenTopNeverClamps)
{
    // With open_top=true the last bin spans to UINT64_MAX, so every
    // sample bins normally and the clamp path is unreachable.
    sim::BinnedHistogram h({5}, true);
    h.sample(UINT64_MAX);
    EXPECT_EQ(h.bins().back().count, 1u);
    EXPECT_EQ(h.clamped(), 0u);
}

TEST(Stats, DistributionPercentiles)
{
    sim::Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_NEAR(d.percentile(0.5), 50.0, 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
}

TEST(Stats, DistributionInterleavedSampleAndPercentile)
{
    // The sorted view is cached between percentile calls; new samples
    // must invalidate it or later percentiles read stale data.
    sim::Distribution d;
    d.sample(10.0);
    d.sample(30.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);

    d.sample(5.0); // below the cached min
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    d.sample(99.0); // above the cached max
    EXPECT_DOUBLE_EQ(d.max(), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 30.0);
    // Repeated queries on an unchanged sample set agree.
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 30.0);
    EXPECT_EQ(d.count(), 4u);

    d.reset();
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.min(), 7.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(EventQueue, RunLimitAdvancesNowToLimit)
{
    // Regression: run(limit) used to leave now() at the last executed
    // event, so callers interleaving run(t) with schedule(delay, ...)
    // computed delays from a stale "now".
    sim::EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(100, [&] { ++fired; });
    EXPECT_FALSE(q.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u); // horizon reached, not stuck at 10

    // Delays computed from "now" land where the caller expects.
    q.schedule(25, [&] { ++fired; });
    EXPECT_FALSE(q.run(80));
    EXPECT_EQ(fired, 2); // the 50+25=75 event ran
    EXPECT_EQ(q.now(), 80u);

    // A limit at or before now() must not move time backwards.
    EXPECT_FALSE(q.run(40));
    EXPECT_EQ(q.now(), 80u);

    // Draining past the last event leaves now() at that event.
    EXPECT_TRUE(q.run());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunLimitAdvancesEvenWithNoEligibleEvents)
{
    sim::EventQueue q;
    q.scheduleAt(1000, [] {});
    EXPECT_FALSE(q.run(1));
    EXPECT_EQ(q.now(), 1u);
    EXPECT_FALSE(q.run(999));
    EXPECT_EQ(q.now(), 999u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, SameTickFifoAcrossWheelAndHeap)
{
    // Same-tick events can sit on the wheel and the far-future heap
    // at once; the pop path must interleave them in schedule order
    // exactly as a single totally-ordered queue would.
    sim::EventQueue q;
    std::vector<int> order;
    auto rec = [&order](int i) {
        return [&order, i] { order.push_back(i); };
    };
    q.scheduleAt(50, rec(0)); // wheel
    {
        ForceHeapGuard heap_only(true);
        q.scheduleAt(50, rec(1)); // heap
    }
    q.scheduleAt(50, rec(2)); // wheel
    {
        ForceHeapGuard heap_only(true);
        q.scheduleAt(50, rec(3)); // heap
        q.scheduleAt(50, rec(4)); // heap
    }
    q.scheduleAt(50, rec(5)); // wheel
    EXPECT_TRUE(q.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueue, FarFutureEventsRunInTimeOrder)
{
    // Delays beyond the wheel window land on the heap; order across
    // the wheel/heap boundary must still be strictly by (tick, seq).
    sim::EventQueue q;
    std::vector<sim::Tick> fired;
    for (sim::Tick t : {sim::Tick{5000}, sim::Tick{3000}, sim::Tick{1},
                        sim::Tick{1023}, sim::Tick{1024},
                        sim::Tick{2047}})
        q.scheduleAt(t, [&fired, t] { fired.push_back(t); });
    EXPECT_TRUE(q.run());
    EXPECT_EQ(fired, (std::vector<sim::Tick>{1, 1023, 1024, 2047, 3000,
                                             5000}));
    EXPECT_EQ(q.now(), 5000u);
}

TEST(EventQueue, RunLimitExecutesEventExactlyAtLimit)
{
    // The limit is inclusive: an event at exactly the limit tick runs
    // in this call, and now() lands on the limit whether or not the
    // queue drained. The bound/weave window loop leans on this --
    // every bound phase is run(m) with the window's events at m.
    sim::EventQueue q;
    int fired = 0;
    q.scheduleAt(50, [&] { ++fired; });
    EXPECT_TRUE(q.run(50)); // drained: the at-limit event ran
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);

    q.scheduleAt(60, [&] { ++fired; });
    q.scheduleAt(61, [&] { ++fired; });
    EXPECT_FALSE(q.run(60)); // at-limit event runs, later one stays
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 60u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, WheelRevolutionBoundaryEvent)
{
    // An event at now + kWheelSize - 1 sits in the last bucket the
    // wheel currently covers -- one tick further and it would go to
    // the heap. Popping it after the wheel sweeps a full revolution
    // (minus one) of empty buckets exercises the occupancy-bitmap
    // wraparound at the window edge.
    sim::EventQueue q;
    q.scheduleAt(0, [] {}); // pin now_ to 0 explicitly
    EXPECT_TRUE(q.run());
    constexpr sim::Tick kEdge = sim::EventQueue::kWheelSize - 1;
    bool edge_fired = false;
    q.scheduleAt(kEdge, [&] { edge_fired = true; });
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.run());
    EXPECT_TRUE(edge_fired);
    EXPECT_EQ(q.now(), kEdge);

    // Same edge relative to a non-zero now, with a same-tick heap
    // companion: the (tick, seq) interleave must hold at the window
    // edge too.
    std::vector<int> order;
    q.scheduleAt(q.now() + sim::EventQueue::kWheelSize - 1,
                 [&] { order.push_back(0); });
    {
        ForceHeapGuard heap_only(true);
        q.scheduleAt(q.now() + sim::EventQueue::kWheelSize - 1,
                     [&] { order.push_back(1); });
    }
    EXPECT_TRUE(q.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, AdvanceToMovesIdleClockForward)
{
    // advanceTo is the domain scheduler's clock-lockstep primitive: it
    // may only move an idle queue's clock up to (not past) its next
    // event, and never backwards.
    sim::EventQueue q;
    q.scheduleAt(100, [] {});
    q.advanceTo(40);
    EXPECT_EQ(q.now(), 40u);
    q.advanceTo(10); // never backwards
    EXPECT_EQ(q.now(), 40u);
    q.advanceTo(100); // exactly onto the pending event is legal
    EXPECT_EQ(q.now(), 100u);
    EXPECT_TRUE(q.run());
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(EventQueueDeathTest, AdvanceToPastPendingEventPanics)
{
    sim::EventQueue q;
    q.scheduleAt(100, [] {});
    EXPECT_DEATH(q.advanceTo(101), "skip a pending event");
}

TEST(EventQueue, WheelSlotsReusedAcrossRevolutions)
{
    // A self-rescheduling event walks the wheel through several full
    // revolutions; each slot must come back clean for its next tick.
    sim::EventQueue q;
    constexpr sim::Tick kStep = 1023; // slides one slot per revolution
    constexpr int kHops = 5000;       // ~5 revolutions of 1024 slots
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < kHops)
            q.schedule(kStep, [&chain] { chain(); });
    };
    q.schedule(kStep, [&chain] { chain(); });
    EXPECT_TRUE(q.run());
    EXPECT_EQ(fired, kHops);
    EXPECT_EQ(q.now(), static_cast<sim::Tick>(kStep) * kHops);
    EXPECT_TRUE(q.empty());
}

using EventQueueDeathTest = ::testing::Test;

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    sim::EventQueue q;
    q.scheduleAt(10, [] {});
    EXPECT_TRUE(q.run());
    ASSERT_EQ(q.now(), 10u);
    EXPECT_DEATH(q.scheduleAt(5, [] {}), "scheduled in the past");
}

TEST(InlineEvent, SmallCapturesStayInline)
{
    std::uint64_t before = sim::InlineEvent::heapFallbacks();
    std::array<std::uint64_t, 5> payload{1, 2, 3, 4, 5}; // 40 bytes
    std::uint64_t sum = 0;
    auto fn = [payload, &sum] {
        for (auto v : payload)
            sum += v;
    };
    static_assert(sim::InlineEvent::fitsInline<decltype(fn)>());
    sim::InlineEvent ev(fn);
    EXPECT_TRUE(ev.isInline());
    EXPECT_TRUE(static_cast<bool>(ev));
    ev();
    EXPECT_EQ(sum, 15u);
    EXPECT_EQ(sim::InlineEvent::heapFallbacks(), before);
}

TEST(InlineEvent, OversizedCapturesFallBackToHeap)
{
    std::array<std::uint64_t, 8> payload{}; // 64 bytes: over budget
    payload[7] = 99;
    std::uint64_t got = 0;
    auto fn = [payload, &got] { got = payload[7]; };
    static_assert(!sim::InlineEvent::fitsInline<decltype(fn)>());
    std::uint64_t before = sim::InlineEvent::heapFallbacks();
    sim::InlineEvent ev(fn);
    EXPECT_EQ(sim::InlineEvent::heapFallbacks(), before + 1);
    EXPECT_FALSE(ev.isInline());
    ev();
    EXPECT_EQ(got, 99u);
}

TEST(InlineEvent, MoveTransfersAndDestroysExactlyOnce)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> alive = token;
    {
        sim::InlineEvent a([token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(alive.expired()); // capture keeps it alive

        sim::InlineEvent b(std::move(a));
        EXPECT_FALSE(static_cast<bool>(a)); // moved-from is empty
        EXPECT_TRUE(static_cast<bool>(b));
        EXPECT_FALSE(alive.expired());

        sim::InlineEvent c;
        c = std::move(b);
        EXPECT_FALSE(static_cast<bool>(b));
        EXPECT_FALSE(alive.expired());
        c();
    }
    EXPECT_TRUE(alive.expired()); // destructor released the capture
}

TEST(InlineEvent, QueueHotPathTakesNoHeapFallback)
{
    // The acceptance criterion for the hot path: scheduling typical
    // protocol-shaped closures through scheduleInline never allocates.
    sim::Simulator s(1);
    std::uint64_t before = sim::InlineEvent::heapFallbacks();
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        std::uint64_t a = i, b = i * 2, c = i * 3;
        s.scheduleInline(i % 97, [&sum, a, b, c] { sum += a + b + c; });
    }
    EXPECT_TRUE(s.run());
    EXPECT_EQ(sim::InlineEvent::heapFallbacks(), before);
    EXPECT_EQ(s.queue().executedEvents(), 1000u);
}

} // namespace
