/**
 * @file
 * Cross-scheduler determinism: the hybrid calendar-wheel/heap event
 * queue must produce byte-identical simulation results to a pure
 * (tick, seq) heap. EventQueue::setForceHeapForTest routes every
 * schedule to the far-future heap; running whole experiments in both
 * modes and comparing the serialized widir-sweep-v1 result objects
 * pins the wheel's ordering (including same-tick wheel/heap ties) to
 * the reference semantics.
 *
 * The host_* wall-clock fields are the one legitimate difference
 * between two runs, so they are zeroed before serializing -- exactly
 * the rule docs/PERF.md gives for diffing sweep outputs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/event_queue.h"
#include "system/report.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using sys::ExperimentResult;
using sys::ExperimentSpec;

ExperimentSpec
specFor(const char *app, coherence::Protocol proto)
{
    ExperimentSpec spec;
    spec.app = workload::findApp(app);
    spec.protocol = proto;
    spec.cores = 16;
    spec.scale = 1;
    spec.seed = 7;
    return spec;
}

/** Run @p spec and serialize with the wall-clock fields zeroed. */
std::string
statsJson(const ExperimentSpec &spec, bool force_heap)
{
    sim::EventQueue::setForceHeapForTest(force_heap);
    ExperimentResult r = sys::runExperiment(spec);
    sim::EventQueue::setForceHeapForTest(false);
    r.hostSeconds = 0.0;
    r.hostEventsPerSec = 0.0;
    return sys::resultToJson(r);
}

/** Same, but through the bound/weave kernel with @p threads workers. */
std::string
statsJsonThreaded(ExperimentSpec spec, unsigned threads)
{
    spec.simThreads = threads;
    ExperimentResult r = sys::runExperiment(spec);
    r.hostSeconds = 0.0;
    r.hostEventsPerSec = 0.0;
    return sys::resultToJson(r);
}

class SchedulerDeterminism
    : public ::testing::TestWithParam<
          std::tuple<const char *, coherence::Protocol>>
{
};

TEST_P(SchedulerDeterminism, HybridMatchesPureHeapByteForByte)
{
    auto [app, proto] = GetParam();
    ASSERT_NE(workload::findApp(app), nullptr);
    ExperimentSpec spec = specFor(app, proto);
    std::string hybrid = statsJson(spec, false);
    std::string heap_only = statsJson(spec, true);
    // executed_events, cycles, every histogram, every energy figure:
    // all of it must agree, not just the headline cycle count.
    EXPECT_EQ(hybrid, heap_only);
}

/**
 * The bound/weave kernel (sim/domains.h) defines one canonical event
 * schedule for all simThreads >= 1; the host thread count must be
 * invisible in the results. This is the determinism contract
 * docs/PERF.md states and the one the WIDIR_SIM_THREADS CI lane
 * relies on: stats at 1, 2, and 4 threads are byte-identical.
 */
TEST_P(SchedulerDeterminism, BoundWeaveThreadCountInvisible)
{
    auto [app, proto] = GetParam();
    ASSERT_NE(workload::findApp(app), nullptr);
    ExperimentSpec spec = specFor(app, proto);
    std::string one = statsJsonThreaded(spec, 1);
    std::string two = statsJsonThreaded(spec, 2);
    std::string four = statsJsonThreaded(spec, 4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

/**
 * Same contract for the protocol trace: the record stream (which the
 * legality checker consumes and the Chrome exporter serializes) must
 * not change with the host thread count either. Export the Chrome
 * trace-event JSON at each thread count and compare the files byte
 * for byte -- the exporter serializes records in emission order, so
 * equal files mean an equal stream.
 */
TEST_P(SchedulerDeterminism, BoundWeaveTraceThreadCountInvisible)
{
    auto [app, proto] = GetParam();
    ASSERT_NE(workload::findApp(app), nullptr);
    auto traced = [&](unsigned threads) {
        std::string path = ::testing::TempDir() + "widir_trace_" +
                           std::string(app) + "_" +
                           std::to_string(threads) + ".json";
        ExperimentSpec spec = specFor(app, proto);
        spec.simThreads = threads;
        spec.trace.enabled = true;
        spec.trace.file = path;
        sys::runExperiment(spec);
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << "missing trace file " << path;
        std::ostringstream body;
        body << in.rdbuf();
        std::remove(path.c_str());
        return body.str();
    };
    std::string one = traced(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, traced(2));
    EXPECT_EQ(one, traced(4));
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndProtocols, SchedulerDeterminism,
    ::testing::Values(
        std::make_tuple("radiosity", coherence::Protocol::WiDir),
        std::make_tuple("radiosity", coherence::Protocol::BaselineMESI),
        std::make_tuple("fft", coherence::Protocol::WiDir),
        std::make_tuple("fft", coherence::Protocol::BaselineMESI)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        name += std::get<1>(info.param) == coherence::Protocol::WiDir
                    ? "_widir"
                    : "_baseline";
        return name;
    });

} // namespace
