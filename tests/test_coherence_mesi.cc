/**
 * @file
 * Directed tests of the baseline MESI Dir_3_B protocol running on the
 * full machine (cores + L1s + directory slices + mesh + memory).
 *
 * Programs are written as per-thread coroutines that branch on the
 * thread id; unused cores return immediately.
 */

#include <gtest/gtest.h>

#include "system/manycore.h"

namespace {

using namespace widir;
using coherence::DirState;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kA = 0x100000; // an arbitrary shared word

SystemConfig
smallBaseline(std::uint32_t cores = 4)
{
    SystemConfig cfg = SystemConfig::baseline(cores);
    return cfg;
}

TEST(Mesi, FirstReadGrantsExclusive)
{
    Manycore m(smallBaseline());
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            std::uint64_t v = co_await t.load(kA);
            EXPECT_EQ(v, 0u); // cold memory is zero-filled
        }
        co_return;
    });
    EXPECT_EQ(m.l1(0).stateOf(kA), L1State::E);
    EXPECT_EQ(m.dir(m.fabric().homeOf(kA)).stateOf(kA), DirState::EM);
}

TEST(Mesi, WriteAfterExclusiveIsSilentUpgrade)
{
    Manycore m(smallBaseline());
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.load(kA);
            co_await t.store(kA, 7);
            co_await t.fence();
        }
        co_return;
    });
    EXPECT_EQ(m.l1(0).stateOf(kA), L1State::M);
    std::uint64_t v = 0;
    ASSERT_TRUE(m.l1(0).peekWord(kA, v));
    EXPECT_EQ(v, 7u);
    // Exactly one directory request: the silent E->M upgrade sends
    // nothing.
    EXPECT_EQ(m.dirTotals().getX, 0u);
    EXPECT_EQ(m.dirTotals().getS, 1u);
}

TEST(Mesi, SecondReaderDowngradesOwnerToShared)
{
    Manycore m(smallBaseline());
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.store(kA, 42);
            co_await t.fence();
            co_await t.store(kA + 8, 1); // flag: data ready
            co_await t.fence();
        } else if (t.id() == 1) {
            for (;;) {
                std::uint64_t v_ = co_await t.load(kA + 8);
                if (!(v_ == 0))
                    break;
                co_await t.compute(10);
            }
            std::uint64_t v = co_await t.load(kA);
            EXPECT_EQ(v, 42u);
        }
        co_return;
    });
    // Both cores should end up sharing the line.
    EXPECT_EQ(m.l1(0).stateOf(kA), L1State::S);
    EXPECT_EQ(m.l1(1).stateOf(kA), L1State::S);
    EXPECT_EQ(m.dir(m.fabric().homeOf(kA)).stateOf(kA), DirState::S);
}

TEST(Mesi, WriterInvalidatesSharers)
{
    Manycore m(smallBaseline());
    // Core 0..2 read; then core 3 writes; sharers must lose the line.
    m.run([](Thread &t) -> Task {
        constexpr Addr kFlag = kA + 64; // separate line
        if (t.id() < 3) {
            co_await t.load(kA);
            co_await t.fetchAdd(kFlag, 1); // signal "I have read"
            // Wait for the writer to finish.
            for (;;) {
                std::uint64_t v_ = co_await t.load(kFlag);
                if (!(v_ < 4))
                    break;
                co_await t.compute(20);
            }
        } else {
            for (;;) {
                std::uint64_t v_ = co_await t.load(kFlag);
                if (!(v_ < 3))
                    break;
                co_await t.compute(20);
            }
            co_await t.store(kA, 99);
            co_await t.fence();
            co_await t.fetchAdd(kFlag, 1);
        }
        co_return;
    });
    EXPECT_EQ(m.l1(3).stateOf(kA), L1State::M);
    std::uint64_t v = 0;
    ASSERT_TRUE(m.l1(3).peekWord(kA, v));
    EXPECT_EQ(v, 99u);
    EXPECT_EQ(m.dir(m.fabric().homeOf(kA)).stateOf(kA), DirState::EM);
    EXPECT_GE(m.dirTotals().invsSent, 3u);
}

TEST(Mesi, FourthSharerSetsBroadcastBit)
{
    Manycore m(smallBaseline(8));
    m.run([](Thread &t) -> Task {
        constexpr Addr kCnt = kA + 64;
        if (t.id() < 4) {
            // Serialize the reads so sharer-pointer pressure is exact.
            for (;;) {
                std::uint64_t v_ = co_await t.load(kCnt);
                if (v_ == t.id())
                    break;
                co_await t.compute(20);
            }
            co_await t.load(kA);
            co_await t.fetchAdd(kCnt, 1);
        }
        co_return;
    });
    const auto *e = m.dir(m.fabric().homeOf(kA)).entryOf(kA);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::S);
    // Dir_3_B: 3 pointers, the 4th reader overflows into broadcast.
    EXPECT_TRUE(e->bcast);
    EXPECT_EQ(e->sharers.size(), 3u);
}

TEST(Mesi, RmwIsAtomicAcrossCores)
{
    Manycore m(smallBaseline(8));
    constexpr int kIters = 50;
    m.run([](Thread &t) -> Task {
        for (int i = 0; i < kIters; ++i)
            co_await t.fetchAdd(kA, 1);
        co_return;
    });
    // The final count must be exact: every increment serialized.
    Addr home = m.fabric().homeOf(kA);
    std::uint64_t v = 0;
    bool in_l1 = false;
    for (sim::NodeId n = 0; n < m.numCores(); ++n) {
        if (m.l1(n).stateOf(kA) == L1State::M ||
            m.l1(n).stateOf(kA) == L1State::E) {
            ASSERT_TRUE(m.l1(n).peekWord(kA, v));
            in_l1 = true;
        }
    }
    if (!in_l1) {
        auto *e = m.dir(home).llc().lookup(kA);
        ASSERT_NE(e, nullptr);
        v = e->data.word(kA);
    }
    EXPECT_EQ(v, static_cast<std::uint64_t>(8 * kIters));
}

TEST(Mesi, EvictionWritesBackDirtyData)
{
    SystemConfig cfg = smallBaseline(4);
    cfg.l1.sizeBytes = 1024; // tiny L1: 8 sets x 2 ways
    Manycore m(cfg);
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            // Write a line, then stream enough conflicting lines
            // through its set to force the eviction.
            co_await t.store(kA, 1234);
            co_await t.fence();
            for (int i = 1; i <= 4; ++i) {
                co_await t.loadNb(kA + static_cast<Addr>(i) * 8 * 64);
            }
            co_await t.fence();
        }
        co_return;
    });
    EXPECT_EQ(m.l1(0).stateOf(kA), L1State::I);
    // The dirty line went home with a PutM.
    auto &home = m.dir(m.fabric().homeOf(kA));
    auto *e = home.llc().lookup(kA);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->data.word(kA), 1234u);
    EXPECT_EQ(home.stateOf(kA), DirState::I);
}

TEST(Mesi, ProducerConsumerThroughFlags)
{
    Manycore m(smallBaseline(2));
    constexpr int kRounds = 20;
    m.run([](Thread &t) -> Task {
        constexpr Addr kData = kA;
        constexpr Addr kFlag = kA + 64;
        if (t.id() == 0) {
            for (int i = 1; i <= kRounds; ++i) {
                co_await t.store(kData, static_cast<std::uint64_t>(i));
                co_await t.fence();
                co_await t.store(kFlag, static_cast<std::uint64_t>(i));
                co_await t.fence();
                for (;;) {
                    std::uint64_t v_ = co_await t.load(kFlag + 8);
                    if (v_ == static_cast<std::uint64_t>(i))
                        break;
                    co_await t.compute(10);
                }
            }
        } else {
            for (int i = 1; i <= kRounds; ++i) {
                for (;;) {
                    std::uint64_t v_ = co_await t.load(kFlag);
                    if (v_ == static_cast<std::uint64_t>(i))
                        break;
                    co_await t.compute(10);
                }
                std::uint64_t v = co_await t.load(kData);
                EXPECT_EQ(v, static_cast<std::uint64_t>(i));
                co_await t.store(kFlag + 8,
                                 static_cast<std::uint64_t>(i));
                co_await t.fence();
            }
        }
        co_return;
    });
}

TEST(Mesi, StatsCountMissesAndHits)
{
    Manycore m(smallBaseline(2));
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.load(kA);      // miss
            co_await t.load(kA);      // hit
            co_await t.load(kA + 8);  // hit (same line)
            co_await t.store(kA, 1);  // hit (E->M)
            co_await t.fence();
        }
        co_return;
    });
    const auto &s = m.l1(0).stats();
    EXPECT_EQ(s.loads, 3u);
    EXPECT_EQ(s.readMisses, 1u);
    EXPECT_EQ(s.loadHits, 2u);
    EXPECT_EQ(s.storeHits, 1u);
}

TEST(Mesi, SixtyFourCoreSmoke)
{
    Manycore m(smallBaseline(64));
    sim::Tick cycles = m.run([](Thread &t) -> Task {
        // Everyone bumps a shared counter and reads a shared array.
        co_await t.fetchAdd(kA, 1);
        for (int i = 0; i < 8; ++i)
            co_await t.loadNb(kA + 64 + static_cast<Addr>(i) * 64);
        co_await t.fence();
        co_return;
    });
    EXPECT_GT(cycles, 0u);
    Addr home = m.fabric().homeOf(kA);
    auto *e = m.dir(home).llc().lookup(kA);
    std::uint64_t v = 0;
    if (e && m.dir(home).stateOf(kA) != DirState::EM) {
        v = e->data.word(kA);
    } else {
        for (sim::NodeId n = 0; n < 64; ++n) {
            if (m.l1(n).stateOf(kA) == L1State::M ||
                m.l1(n).stateOf(kA) == L1State::E) {
                m.l1(n).peekWord(kA, v);
            }
        }
    }
    EXPECT_EQ(v, 64u);
}

} // namespace
