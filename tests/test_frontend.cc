/**
 * @file
 * Frontend subsystem tests (docs/FRONTEND.md):
 *
 *  - extraction gate: the coroutine frontend behind the Frontend
 *    interface is byte-identical to a plain run, recording is pure
 *    observation, and full-fidelity replay reproduces the recording --
 *    all pinned across apps x protocols x sim-thread counts;
 *  - widir-mtrace-v1: every record kind round-trips; bad magic, bad
 *    version, unknown kinds, and truncation are rejected loudly;
 *  - text ingestion: the documented grammar parses, and a garbage
 *    matrix (parseEnvInt style) fails with line-numbered errors;
 *  - fast replay: op-exact stats, and external text traces run as
 *    first-class registry workloads under both replay frontends.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "frontend/frontend.h"
#include "frontend/mtrace.h"
#include "system/report.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using frontend::FrontendKind;
using frontend::MemTrace;
using frontend::Op;
using frontend::OpKind;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using workload::AppInfo;

std::string
tmpPath(const std::string &name)
{
    auto dir =
        std::filesystem::temp_directory_path() / "widir_test_frontend";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
}

/**
 * Simulated-machine stats as JSON with the host_* fields and the
 * frontend echo zeroed -- the byte-identity contract compares
 * everything else (docs/FRONTEND.md).
 */
std::string
statsJson(ExperimentResult r)
{
    r.hostSeconds = 0.0;
    r.hostEventsPerSec = 0.0;
    r.hostMsgpoolGrew = 0;
    r.hostMapRehashes = 0;
    r.frontendKind = FrontendKind::Coroutine;
    r.recordPath.clear();
    r.replayPath.clear();
    return sys::resultToJson(r);
}

/**
 * Identity matrix fixture: spec.simThreads drives the kernel choice
 * directly, so WIDIR_SIM_THREADS must not leak in (spec value 0 defers
 * to the environment). Saved and restored around each test.
 */
class FrontendIdentity
    : public ::testing::TestWithParam<
          std::tuple<const char *, coherence::Protocol, unsigned>>
{
  protected:
    void
    SetUp() override
    {
        if (const char *e = std::getenv("WIDIR_SIM_THREADS"))
            saved_ = e;
        unsetenv("WIDIR_SIM_THREADS");
    }

    void
    TearDown() override
    {
        if (saved_)
            setenv("WIDIR_SIM_THREADS", saved_->c_str(), 1);
    }

  private:
    std::optional<std::string> saved_;
};

TEST_P(FrontendIdentity, RecordThenReplayReproducesTheRun)
{
    auto [app_name, proto, sim_threads] = GetParam();
    const AppInfo *app = workload::findApp(app_name);
    ASSERT_NE(app, nullptr);
    std::string path = tmpPath(
        std::string("identity_") + app_name + "_" +
        (proto == coherence::Protocol::WiDir ? "widir" : "baseline") +
        "_st" + std::to_string(sim_threads) + ".mtrace");

    ExperimentSpec base;
    base.app = app;
    base.protocol = proto;
    base.cores = 16;
    base.scale = 1;
    base.simThreads = sim_threads;
    ExperimentResult plain = sys::runExperiment(base);

    // Recording is pure observation: stats byte-identical to plain.
    ExperimentSpec rec_spec = base;
    rec_spec.frontend = FrontendKind::Record;
    rec_spec.recordPath = path;
    ExperimentResult rec = sys::runExperiment(rec_spec);
    EXPECT_EQ(statsJson(plain), statsJson(rec));
    EXPECT_EQ(rec.frontendKind, FrontendKind::Record);
    EXPECT_EQ(rec.recordPath, path);

    // Full-fidelity replay reproduces the recording byte-identically
    // (machine knobs come from the trace header, not this spec).
    ExperimentSpec rep_spec;
    rep_spec.app = app;
    rep_spec.frontend = FrontendKind::ReplayFull;
    rep_spec.replayPath = path;
    rep_spec.protocol = proto;
    rep_spec.cores = 16;
    rep_spec.simThreads = sim_threads;
    ExperimentResult full = sys::runExperiment(rep_spec);
    EXPECT_EQ(statsJson(plain), statsJson(full));
    EXPECT_EQ(full.frontendKind, FrontendKind::ReplayFull);
    EXPECT_EQ(full.replayPath, path);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrontendIdentity,
    ::testing::Combine(::testing::Values("fft", "radiosity"),
                       ::testing::Values(
                           coherence::Protocol::BaselineMESI,
                           coherence::Protocol::WiDir),
                       ::testing::Values(0u, 4u)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char *, coherence::Protocol, unsigned>>
           &info) {
        std::string name = std::get<0>(info.param);
        name += std::get<1>(info.param) == coherence::Protocol::WiDir
            ? "_widir"
            : "_baseline";
        name += "_st" + std::to_string(std::get<2>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Mtrace, EveryKindRoundTrips)
{
    MemTrace t;
    t.header.hasMachine = true;
    t.header.app = "round-trip";
    t.header.protocol = 1;
    t.header.homeMap = 1;
    t.header.cores = 3;
    t.header.scale = 7;
    t.header.maxWiredSharers = 5;
    t.header.updateCountThreshold = 9;
    t.header.meshConcentration = 2;
    t.header.wirelessChannels = 4;
    t.header.seed = 0xDEADBEEFCAFEull;
    t.threads = {
        {{OpKind::Compute, cpu::SyncNote::External, 0, 100, 0},
         {OpKind::Load, cpu::SyncNote::External, 0x10000040, 0, 0},
         {OpKind::LoadNb, cpu::SyncNote::External, 0x10000080, 0, 0},
         {OpKind::Store, cpu::SyncNote::External, 0x100000C0, 42, 0},
         {OpKind::Rmw, cpu::SyncNote::External, 0x10000100, 7, 8},
         // A squashed-and-retried RMW carries its speculative modify
         // evaluations (mtrace.h) -- they must survive the round trip.
         {OpKind::Rmw,
          cpu::SyncNote::External,
          0x10000180,
          3,
          3,
          {{1, 2}, {9, 10}}},
         {OpKind::Idle, cpu::SyncNote::External, 0, 64, 0},
         {OpKind::Fence, cpu::SyncNote::External, 0, 0, 0},
         {OpKind::Sync, cpu::SyncNote::LockAcquire, 0x10000140, 17, 0}},
        {}, // an empty stream must survive too
        {{OpKind::Sync, cpu::SyncNote::BarrierArrive, 0, 33, 0}},
    };
    std::string path = tmpPath("roundtrip.mtrace");
    std::string err;
    ASSERT_TRUE(frontend::writeMtrace(path, t, err)) << err;

    MemTrace back;
    ASSERT_TRUE(frontend::readMtrace(path, back, err)) << err;
    EXPECT_TRUE(back.header.hasMachine);
    EXPECT_EQ(back.header.app, t.header.app);
    EXPECT_EQ(back.header.protocol, t.header.protocol);
    EXPECT_EQ(back.header.homeMap, t.header.homeMap);
    EXPECT_EQ(back.header.cores, t.header.cores);
    EXPECT_EQ(back.header.scale, t.header.scale);
    EXPECT_EQ(back.header.maxWiredSharers, t.header.maxWiredSharers);
    EXPECT_EQ(back.header.updateCountThreshold,
              t.header.updateCountThreshold);
    EXPECT_EQ(back.header.meshConcentration,
              t.header.meshConcentration);
    EXPECT_EQ(back.header.wirelessChannels, t.header.wirelessChannels);
    EXPECT_EQ(back.header.seed, t.header.seed);
    ASSERT_EQ(back.threads, t.threads);
    EXPECT_TRUE(back.hasSync());
    EXPECT_EQ(back.totalOps(), 10u);

    // loadTraceFile must sniff the binary magic and take this path.
    MemTrace sniffed;
    ASSERT_TRUE(frontend::loadTraceFile(path, sniffed, err)) << err;
    EXPECT_EQ(sniffed.threads, t.threads);
}

TEST(Mtrace, RejectsCorruptInput)
{
    // A valid trace to corrupt.
    MemTrace t;
    t.threads = {{{OpKind::Load, cpu::SyncNote::External, 64, 0, 0},
                  {OpKind::Store, cpu::SyncNote::External, 128, 1, 0}}};
    std::string good = tmpPath("good.mtrace");
    std::string err;
    ASSERT_TRUE(frontend::writeMtrace(good, t, err)) << err;
    std::string bytes;
    {
        std::ifstream f(good, std::ios::binary);
        ASSERT_TRUE(f.good());
        bytes.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
    }
    auto write = [](const std::string &path, const std::string &data) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(data.data(),
                static_cast<std::streamsize>(data.size()));
    };
    MemTrace out;

    // Bad magic: readMtrace rejects it outright (loadTraceFile would
    // route it to the text parser, which also rejects it -- binary
    // garbage is not a valid text trace either).
    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    std::string p = tmpPath("bad_magic.mtrace");
    write(p, bad_magic);
    EXPECT_FALSE(frontend::readMtrace(p, out, err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    EXPECT_FALSE(frontend::loadTraceFile(p, out, err));

    // Unsupported version.
    std::string bad_version = bytes;
    bad_version[8] = 99; // varint version field follows the magic
    p = tmpPath("bad_version.mtrace");
    write(p, bad_version);
    EXPECT_FALSE(frontend::readMtrace(p, out, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;

    // Unknown record kind.
    std::string bad_kind = bytes;
    bad_kind[bad_kind.size() - 3] = 0x7f; // the Store record's kind
    p = tmpPath("bad_kind.mtrace");
    write(p, bad_kind);
    EXPECT_FALSE(frontend::readMtrace(p, out, err));

    // Truncation at every byte boundary must fail, never crash or
    // silently succeed with fewer ops.
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        p = tmpPath("truncated.mtrace");
        write(p, bytes.substr(0, cut));
        EXPECT_FALSE(frontend::readMtrace(p, out, err))
            << "cut at " << cut << " bytes";
    }

    // Trailing garbage is rejected too.
    p = tmpPath("trailing.mtrace");
    write(p, bytes + "junk");
    EXPECT_FALSE(frontend::readMtrace(p, out, err));
}

TEST(TextTrace, ParsesTheDocumentedGrammar)
{
    MemTrace t;
    std::string err;
    ASSERT_TRUE(frontend::parseTextTrace("# demo trace\n"
                                         "\n"
                                         "0 R 0x1000\n"
                                         "1 W 4096 77\n"
                                         "1 W 4160\n"
                                         "0 S 1\n"
                                         "3 R 64\n",
                                         t, err))
        << err;
    EXPECT_FALSE(t.header.hasMachine);
    ASSERT_EQ(t.numThreads(), 4u); // max tid 3 -> 4 streams, 2 empty
    ASSERT_EQ(t.threads[0].size(), 2u);
    EXPECT_EQ(t.threads[0][0].kind, OpKind::Load);
    EXPECT_EQ(t.threads[0][0].addr, 0x1000u);
    EXPECT_EQ(t.threads[0][1].kind, OpKind::Sync);
    EXPECT_EQ(t.threads[0][1].a, 1u); // user ordering key
    ASSERT_EQ(t.threads[1].size(), 2u);
    EXPECT_EQ(t.threads[1][0].kind, OpKind::Store);
    EXPECT_EQ(t.threads[1][0].addr, 4096u);
    EXPECT_EQ(t.threads[1][0].a, 77u);
    EXPECT_EQ(t.threads[1][1].a, 0u); // value defaults to 0
    EXPECT_TRUE(t.threads[2].empty());
    EXPECT_TRUE(t.hasSync());
}

TEST(TextTrace, GarbageMatrixFailsWithLineNumbers)
{
    // parseEnvInt style: every malformed input must fail the whole
    // parse -- never be skipped or silently repaired -- and name the
    // offending line.
    const char *bad[] = {
        "R 0x1000",                // missing thread id
        "x R 4096",                // non-numeric thread id
        "-1 R 4096",               // negative thread id
        "0 Q 4096",                // unknown op letter
        "0 R",                     // missing address
        "0 R 64 65",               // excess operand on a read
        "0 W",                     // missing address
        "0 W 64 1 2",              // excess operand on a write
        "0 S",                     // missing sequence key
        "0 S 1 2",                 // excess operand on a sync
        "0 R 0x",                  // empty hex literal
        "0 R 12abc",               // trailing garbage in a number
        "0 R 99999999999999999999", // u64 overflow
        "1048577 R 64",            // thread id over the cap
        "",                        // no operations at all
        "# only a comment\n\n",    // still no operations
    };
    for (const char *text : bad) {
        MemTrace t;
        std::string err;
        EXPECT_FALSE(frontend::parseTextTrace(text, t, err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
    // Line numbers point at the offending line, not the file start.
    MemTrace t;
    std::string err;
    EXPECT_FALSE(
        frontend::parseTextTrace("0 R 64\n1 W 64 1\nbogus line\n", t,
                                 err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(Frontend, KindNamesRoundTrip)
{
    for (FrontendKind k :
         {FrontendKind::Coroutine, FrontendKind::Record,
          FrontendKind::ReplayFull, FrontendKind::ReplayFast}) {
        FrontendKind back{};
        ASSERT_TRUE(frontend::parseFrontendKind(
            frontend::frontendKindName(k), back));
        EXPECT_EQ(back, k);
    }
    FrontendKind out{};
    EXPECT_FALSE(frontend::parseFrontendKind("turbo", out));
}

TEST(Frontend, ValidateTraceRejectsUnreplayable)
{
    MemTrace t;
    EXPECT_FALSE(frontend::validateTrace(t, 4).empty()) << "no threads";

    t.threads.assign(8, {});
    t.threads[0].push_back(
        {OpKind::Load, cpu::SyncNote::External, 64, 0, 0});
    EXPECT_FALSE(frontend::validateTrace(t, 4).empty())
        << "more streams than cores";
    EXPECT_TRUE(frontend::validateTrace(t, 8).empty());

    // A machine-stamped trace must match its machine exactly.
    t.header.hasMachine = true;
    t.header.cores = 16;
    EXPECT_FALSE(frontend::validateTrace(t, 8).empty());
    t.header.cores = 8;
    EXPECT_TRUE(frontend::validateTrace(t, 8).empty());

    // Non-monotone per-thread sync keys would deadlock the gate.
    t.threads[1].push_back(
        {OpKind::Sync, cpu::SyncNote::External, 0, 5, 0});
    t.threads[1].push_back(
        {OpKind::Sync, cpu::SyncNote::External, 0, 4, 0});
    EXPECT_FALSE(frontend::validateTrace(t, 8).empty());
}

TEST(Frontend, SpecValidationCatchesBadCombinations)
{
    const AppInfo *fft = workload::findApp("fft");
    ASSERT_NE(fft, nullptr);
    const AppInfo *tapp = workload::registerTraceApp(
        "trace:validation", tmpPath("nonexistent.trc"));

    ExperimentSpec s;
    s.app = fft;
    s.frontend = FrontendKind::Record;
    EXPECT_NE(s.validate().find("recordPath"), std::string::npos);
    s.recordPath = "x.mtrace";
    EXPECT_TRUE(s.validate().empty()) << s.validate();

    s = ExperimentSpec{};
    s.app = fft;
    s.recordPath = "x.mtrace"; // without frontend=record
    EXPECT_FALSE(s.validate().empty());

    s = ExperimentSpec{};
    s.app = fft;
    s.replayPath = "x.mtrace"; // without a replay frontend
    EXPECT_FALSE(s.validate().empty());

    s = ExperimentSpec{};
    s.app = fft;
    s.frontend = FrontendKind::ReplayFast; // no trace at all
    EXPECT_FALSE(s.validate().empty());

    s = ExperimentSpec{};
    s.app = tapp; // trace app: replay path comes from the registry
    EXPECT_TRUE(s.validate().empty()) << s.validate();
    s.replayPath = "other.trc"; // ...so an explicit one is ambiguous
    EXPECT_FALSE(s.validate().empty());

    s = ExperimentSpec{};
    s.app = tapp;
    s.frontend = FrontendKind::Record; // nothing to record
    s.recordPath = "x.mtrace";
    EXPECT_FALSE(s.validate().empty());
}

TEST(FastReplay, StatsAreOpExact)
{
    // Record a real run, then fast-replay it: the direct-to-L1 driver
    // issues exactly the recorded ops, so loads/stores/instructions
    // are trace-countable.
    const AppInfo *fft = workload::findApp("fft");
    ASSERT_NE(fft, nullptr);
    std::string path = tmpPath("fast.mtrace");
    ExperimentSpec rec;
    rec.app = fft;
    rec.protocol = coherence::Protocol::WiDir;
    rec.cores = 16;
    rec.frontend = FrontendKind::Record;
    rec.recordPath = path;
    ExperimentResult recorded = sys::runExperiment(rec);

    MemTrace t;
    std::string err;
    ASSERT_TRUE(frontend::readMtrace(path, t, err)) << err;
    std::uint64_t loads = 0, stores = 0, rmws = 0, compute = 0;
    for (const auto &ops : t.threads) {
        for (const Op &op : ops) {
            switch (op.kind) {
              case OpKind::Load:
              case OpKind::LoadNb: ++loads; break;
              case OpKind::Store: ++stores; break;
              case OpKind::Rmw: ++rmws; break;
              case OpKind::Compute: compute += op.a; break;
              default: break;
            }
        }
    }

    ExperimentSpec rep;
    rep.app = fft;
    rep.frontend = FrontendKind::ReplayFast;
    rep.replayPath = path;
    ExperimentResult fast = sys::runExperiment(rep);
    EXPECT_EQ(fast.frontendKind, FrontendKind::ReplayFast);
    EXPECT_EQ(fast.loads, loads);
    EXPECT_EQ(fast.stores, stores + rmws);
    EXPECT_EQ(fast.instructions,
              compute + loads + stores + rmws);
    EXPECT_GT(fast.cycles, 0u);
    // Same ops, same machine: the miss totals agree with the recorded
    // run's memory-system footprint in kind (nonzero), though not in
    // timing.
    EXPECT_GT(fast.readMisses + fast.writeMisses, 0u);
    EXPECT_EQ(recorded.loads, fast.loads);
    EXPECT_EQ(recorded.stores, fast.stores);
}

TEST(TextTrace, RunsAsRegistryWorkloadUnderBothReplayers)
{
    // An external text trace is a first-class workload: registered,
    // found, and runnable -- full fidelity re-drives the core model,
    // fast drives the L1s, both honoring the S-token global order.
    std::string path = tmpPath("external.txt");
    {
        std::ofstream f(path, std::ios::trunc);
        f << "# two producers, one consumer line\n"
             "0 W 0x11000000 1\n"
             "0 S 1\n"
             "1 S 2\n"
             "1 R 0x11000000\n"
             "2 R 0x11000040\n"
             "2 W 0x11000040 9\n";
    }
    const AppInfo *app =
        workload::registerTraceApp("trace:external", path);
    ASSERT_NE(app, nullptr);
    ASSERT_EQ(workload::findApp("trace:external"), app);

    for (FrontendKind kind :
         {FrontendKind::ReplayFull, FrontendKind::ReplayFast}) {
        ExperimentSpec s;
        s.app = app;
        s.frontend = kind;
        s.protocol = coherence::Protocol::WiDir;
        s.cores = 4;
        ExperimentResult r = sys::runExperiment(s);
        EXPECT_EQ(r.frontendKind, kind);
        EXPECT_EQ(r.replayPath, path);
        EXPECT_EQ(r.app, "trace:external");
        EXPECT_EQ(r.loads, 2u) << frontend::frontendKindName(kind);
        EXPECT_EQ(r.stores, 2u) << frontend::frontendKindName(kind);
        EXPECT_GT(r.cycles, 0u);
    }

    // The default frontend auto-upgrades to full replay for trace
    // apps -- `--trace-in` workloads run without any extra flags.
    ExperimentSpec s;
    s.app = app;
    s.cores = 4;
    ExperimentResult r = sys::runExperiment(s);
    EXPECT_EQ(r.frontendKind, FrontendKind::ReplayFull);
}

} // namespace
