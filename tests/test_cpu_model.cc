/**
 * @file
 * Unit tests of the core timing model: retirement width, ROB flow
 * control, write-buffer draining, fences, idle (PAUSE), RMW drain
 * semantics and memory-stall accounting -- exercised on a 1-2 core
 * machine so protocol behaviour is deterministic and analyzable.
 */

#include <gtest/gtest.h>

#include "system/manycore.h"

namespace {

using namespace widir;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kA = 0x900000;

SystemConfig
uni()
{
    return SystemConfig::baseline(1);
}

TEST(CpuModel, ComputeRetiresFourWide)
{
    Manycore m(uni());
    sim::Tick cycles = m.run([](Thread &t) -> Task {
        co_await t.compute(4000);
        co_return;
    });
    // 4000 instructions at 4/cycle ~ 1000 cycles (plus small start/end
    // overhead).
    EXPECT_GE(cycles, 950u); // batching boundary effects allowed
    EXPECT_LE(cycles, 1100u);
    EXPECT_EQ(m.cpuTotals().instructions, 4000u);
}

TEST(CpuModel, ComputeCostScalesLinearly)
{
    auto run_n = [](std::uint64_t n) {
        Manycore m(uni());
        return m.run([n](Thread &t) -> Task {
            co_await t.compute(n);
            co_return;
        });
    };
    sim::Tick c1 = run_n(1000);
    sim::Tick c2 = run_n(2000);
    EXPECT_NEAR(static_cast<double>(c2),
                2.0 * static_cast<double>(c1), 60.0);
}

TEST(CpuModel, BlockingLoadStallsAccounted)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        // A cold load: memory round trip dominates; all of it is
        // memory stall (nothing else to retire).
        std::uint64_t v = co_await t.load(kA);
        EXPECT_EQ(v, 0u);
        co_return;
    });
    const auto &s = m.core(0).stats();
    EXPECT_GT(s.memStallCycles, 50u); // ~80-cycle DRAM + mesh
    EXPECT_EQ(s.loads, 1u);
}

TEST(CpuModel, IndependentLoadsOverlap)
{
    // Eight independent non-blocking loads to distinct lines should
    // overlap (memory-level parallelism), not serialize.
    auto run_loads = [](int n) {
        Manycore m(uni());
        return m.run([n](Thread &t) -> Task {
            for (int i = 0; i < n; ++i)
                co_await t.loadNb(kA + static_cast<Addr>(i) * 64);
            co_await t.fence();
            co_return;
        });
    };
    sim::Tick one = run_loads(1);
    sim::Tick eight = run_loads(8);
    EXPECT_LT(eight, 3 * one); // far less than 8x
}

TEST(CpuModel, StoresRetireThroughWriteBuffer)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        for (int i = 0; i < 10; ++i)
            co_await t.store(kA + static_cast<Addr>(i) * 8, i);
        co_await t.fence();
        co_return;
    });
    EXPECT_EQ(m.cpuTotals().stores, 10u);
    // All ten words landed (same line: coalesced protocol-side).
    std::uint64_t v = 0;
    ASSERT_TRUE(m.l1(0).peekWord(kA + 72, v));
    EXPECT_EQ(v, 9u);
}

TEST(CpuModel, FenceDrainsEverything)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        co_await t.store(kA, 7);
        co_await t.fence();
        // After the fence the store must be globally performed: a
        // dependent read sees it without any race.
        std::uint64_t v = co_await t.load(kA);
        EXPECT_EQ(v, 7u);
        co_return;
    });
}

TEST(CpuModel, IdleAdvancesTimeWithoutInstructions)
{
    Manycore m(uni());
    sim::Tick cycles = m.run([](Thread &t) -> Task {
        co_await t.idle(500);
        co_return;
    });
    EXPECT_GE(cycles, 500u);
    EXPECT_EQ(m.cpuTotals().instructions, 0u);
}

TEST(CpuModel, RmwReturnsOldValue)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        co_await t.store(kA, 41);
        co_await t.fence();
        std::uint64_t old = co_await t.fetchAdd(kA, 1);
        EXPECT_EQ(old, 41u);
        std::uint64_t now = co_await t.load(kA);
        EXPECT_EQ(now, 42u);
        co_return;
    });
    EXPECT_EQ(m.cpuTotals().rmws, 1u);
}

TEST(CpuModel, CasSemantics)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        std::uint64_t old = co_await t.cas(kA, 0, 5);
        EXPECT_EQ(old, 0u); // success
        old = co_await t.cas(kA, 0, 9);
        EXPECT_EQ(old, 5u); // failure: value unchanged
        std::uint64_t v = co_await t.load(kA);
        EXPECT_EQ(v, 5u);
        co_return;
    });
}

TEST(CpuModel, SwapExchanges)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        std::uint64_t old = co_await t.swap(kA, 123);
        EXPECT_EQ(old, 0u);
        old = co_await t.swap(kA, 456);
        EXPECT_EQ(old, 123u);
        co_return;
    });
}

TEST(CpuModel, LoadLatencyMeasuredRobEntryToRetire)
{
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        co_await t.loadNb(kA); // cold miss
        co_await t.fence();
        co_await t.loadNb(kA); // hit
        co_await t.fence();
        co_return;
    });
    const auto &s = m.core(0).stats();
    EXPECT_EQ(s.loads, 2u);
    // Sum includes one long (miss) and one short (hit) latency.
    EXPECT_GT(s.loadLatencySum, 80u);
}

TEST(CpuModel, ProgramPerCoreIdsAreDistinct)
{
    Manycore m(SystemConfig::baseline(4));
    m.run([](Thread &t) -> Task {
        co_await t.store(kA + static_cast<Addr>(t.id()) * 64,
                         t.id() + 1);
        co_await t.fence();
        EXPECT_EQ(t.numThreads(), 4u);
        co_return;
    });
    for (sim::NodeId n = 0; n < 4; ++n) {
        std::uint64_t v = 0;
        ASSERT_TRUE(
            m.l1(n).peekWord(kA + static_cast<Addr>(n) * 64, v));
        EXPECT_EQ(v, n + 1u);
    }
}

TEST(CpuModel, SubCoroutinesCompose)
{
    // ValueTask composition through co_await (the sync library relies
    // on this).
    struct Helper
    {
        static cpu::ValueTask<std::uint64_t>
        addTwice(Thread &t, Addr a)
        {
            co_await t.fetchAdd(a, 1);
            std::uint64_t old = co_await t.fetchAdd(a, 1);
            co_return old + 1;
        }
    };
    Manycore m(uni());
    m.run([](Thread &t) -> Task {
        std::uint64_t final_val = co_await Helper::addTwice(t, kA);
        EXPECT_EQ(final_val, 2u);
        co_return;
    });
}

} // namespace
