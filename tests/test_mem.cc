/**
 * @file
 * Unit tests for the memory substrate: address math, cache array
 * (lookup, LRU, locking), MSHRs and the main-memory timing model.
 */

#include <gtest/gtest.h>

#include "mem/address.h"
#include "mem/cache_array.h"
#include "mem/main_memory.h"
#include "mem/mshr.h"
#include "sim/simulator.h"

namespace {

using namespace widir;
using mem::CacheArray;
using mem::CacheEntry;
using mem::LineData;

TEST(Address, LineMath)
{
    EXPECT_EQ(mem::lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(mem::lineNumber(0x1240), 0x49u);
    EXPECT_EQ(mem::wordInLine(0x1200), 0u);
    EXPECT_EQ(mem::wordInLine(0x1238), 7u);
    EXPECT_TRUE(mem::wordAligned(0x1238));
    EXPECT_FALSE(mem::wordAligned(0x1239));
}

TEST(Address, HomeInterleaving)
{
    // Consecutive lines round-robin across nodes.
    for (std::uint32_t n = 0; n < 64; ++n) {
        EXPECT_EQ(mem::homeNode(static_cast<sim::Addr>(n) * 64, 64), n);
    }
    EXPECT_EQ(mem::homeNode(64ull * 64, 64), 0u);
}

TEST(LineData, WordAccess)
{
    LineData d;
    EXPECT_EQ(d.word(0x40), 0u);
    d.setWord(0x48, 0xdeadbeef);
    EXPECT_EQ(d.word(0x48), 0xdeadbeefu);
    EXPECT_EQ(d.word(0x40), 0u);
    EXPECT_EQ(d.wordAt(1), 0xdeadbeefu);
}

TEST(CacheArray, GeometryFromSize)
{
    CacheArray c(64 * 1024, 2); // 64KB 2-way: 512 sets
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.assoc(), 2u);
}

TEST(CacheArray, FillLookupInvalidate)
{
    CacheArray c(1024, 2); // 8 sets
    LineData d;
    d.setWord(0, 7);
    CacheEntry *v = c.pickVictim(0x0);
    ASSERT_NE(v, nullptr);
    c.fill(v, 0x0, 3, d);
    CacheEntry *e = c.lookup(0x8); // same line
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, 3);
    EXPECT_EQ(e->data.word(0x0), 7u);
    c.invalidate(e);
    EXPECT_EQ(c.lookup(0x0), nullptr);
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray c(1024, 2); // 8 sets, 2 ways
    LineData d;
    // Two lines in the same set: set = lineNumber % 8.
    sim::Addr a1 = 0 * 64, a2 = 8 * 64, a3 = 16 * 64;
    c.fill(c.pickVictim(a1), a1, 1, d);
    c.fill(c.pickVictim(a2), a2, 1, d);
    // Touch a1 so a2 is LRU.
    c.touch(c.lookup(a1), 0);
    CacheEntry *victim = c.pickVictim(a3);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->line, a2);
}

TEST(CacheArray, LockedEntriesNotVictimized)
{
    CacheArray c(1024, 2);
    LineData d;
    sim::Addr a1 = 0 * 64, a2 = 8 * 64, a3 = 16 * 64;
    c.fill(c.pickVictim(a1), a1, 1, d);
    c.fill(c.pickVictim(a2), a2, 1, d);
    c.lookup(a1)->locked = true;
    CacheEntry *victim = c.pickVictim(a3);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->line, a2);
    c.lookup(a2)->locked = true;
    EXPECT_EQ(c.pickVictim(a3), nullptr);
}

TEST(CacheArray, OccupancyAndForEach)
{
    CacheArray c(1024, 2);
    LineData d;
    c.fill(c.pickVictim(0), 0, 1, d);
    c.fill(c.pickVictim(64), 64, 2, d);
    EXPECT_EQ(c.occupancy(), 2u);
    int seen = 0;
    c.forEach([&](CacheEntry &) { ++seen; });
    EXPECT_EQ(seen, 2);
}

TEST(Mshr, AllocateFindRelease)
{
    mem::MshrFile m(4);
    EXPECT_EQ(m.find(0x40), nullptr);
    auto &e = m.allocate(0x44, false);
    e.waiters.push_back(11);
    ASSERT_EQ(m.find(0x80), nullptr); // different line
    ASSERT_EQ(m.find(0x7c), &e);      // same line (0x40..0x7f)
    auto waiters = m.release(0x40);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0], 11u);
    EXPECT_EQ(m.find(0x40), nullptr);
}

TEST(Mshr, CapacityTracking)
{
    mem::MshrFile m(2);
    m.allocate(0x000, false);
    EXPECT_FALSE(m.full());
    m.allocate(0x040, true);
    EXPECT_TRUE(m.full());
    m.release(0x000);
    EXPECT_FALSE(m.full());
}

TEST(MainMemory, FunctionalPeekPoke)
{
    sim::Simulator s;
    mem::MainMemory mem(s, {});
    LineData d;
    d.setWord(0x100, 42);
    mem.pokeLine(0x100, d);
    EXPECT_EQ(mem.peekLine(0x108).word(0x100), 42u);
    EXPECT_EQ(mem.peekLine(0x200).word(0x200), 0u); // untouched: zero
}

TEST(MainMemory, TimedReadLatency)
{
    sim::Simulator s;
    mem::MainMemory::Config cfg;
    cfg.roundTripLatency = 80;
    mem::MainMemory mem(s, cfg);
    sim::Tick done_at = 0;
    mem.readLine(0x40, [&](const LineData &) { done_at = s.now(); });
    s.run();
    EXPECT_EQ(done_at, 80u);
    EXPECT_EQ(mem.reads(), 1u);
}

TEST(MainMemory, ControllerBandwidthQueues)
{
    sim::Simulator s;
    mem::MainMemory::Config cfg;
    cfg.numControllers = 1;
    cfg.roundTripLatency = 80;
    cfg.issueInterval = 4;
    mem::MainMemory mem(s, cfg);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i) {
        mem.readLine(static_cast<sim::Addr>(i) * 64,
                     [&](const LineData &) { done.push_back(s.now()); });
    }
    s.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 80u);
    EXPECT_EQ(done[1], 84u);
    EXPECT_EQ(done[2], 88u);
}

TEST(MainMemory, WriteThenReadBack)
{
    sim::Simulator s;
    mem::MainMemory mem(s, {});
    LineData d;
    d.setWord(0x40, 99);
    bool wrote = false;
    mem.writeLine(0x40, d, [&] { wrote = true; });
    s.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(mem.peekLine(0x40).word(0x40), 99u);
    EXPECT_EQ(mem.writes(), 1u);
}

} // namespace
