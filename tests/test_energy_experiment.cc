/**
 * @file
 * Tests of the energy model and the experiment runner: component
 * accounting, parameter monotonicity, calibration properties (the
 * Baseline share targets of Fig. 9), and the ExperimentResult metric
 * plumbing including the Table VI configuration rules.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "energy/energy_model.h"
#include "system/experiment.h"

namespace {

using namespace widir;
using energy::computeEnergy;
using energy::EnergyInputs;
using energy::EnergyParams;

EnergyInputs
someInputs()
{
    EnergyInputs in;
    in.cycles = 10'000;
    in.numCores = 64;
    in.instructions = 1'000'000;
    in.l1Accesses = 900'000;
    in.l2Accesses = 30'000;
    in.l2DataAccesses = 20'000;
    in.routerTraversals = 120'000;
    in.flitHops = 300'000;
    return in;
}

TEST(EnergyModel, ZeroInputsZeroEnergy)
{
    EnergyInputs in;
    auto e = computeEnergy(in);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, ComponentsAreAdditive)
{
    auto e = computeEnergy(someInputs());
    EXPECT_DOUBLE_EQ(e.total(),
                     e.core + e.l1 + e.l2dir + e.noc + e.wnoc);
    EXPECT_GT(e.core, 0.0);
    EXPECT_GT(e.l1, 0.0);
    EXPECT_GT(e.l2dir, 0.0);
    EXPECT_GT(e.noc, 0.0);
    EXPECT_DOUBLE_EQ(e.wnoc, 0.0); // no WNoC present
}

TEST(EnergyModel, WnocOnlyWhenPresent)
{
    EnergyInputs in = someInputs();
    in.wnocPresent = true;
    in.wnocBusyCycles = 1'000;
    in.wnocFrames = 200;
    auto with = computeEnergy(in);
    EXPECT_GT(with.wnoc, 0.0);
    in.wnocBusyCycles = 2'000;
    auto more = computeEnergy(in);
    EXPECT_GT(more.wnoc, with.wnoc);
}

TEST(EnergyModel, MoreEventsMoreEnergy)
{
    EnergyInputs a = someInputs();
    EnergyInputs b = a;
    b.instructions *= 2;
    b.flitHops *= 2;
    auto ea = computeEnergy(a);
    auto eb = computeEnergy(b);
    EXPECT_GT(eb.core, ea.core);
    EXPECT_GT(eb.noc, ea.noc);
    EXPECT_DOUBLE_EQ(eb.l1, ea.l1); // untouched component unchanged
}

TEST(EnergyModel, StaticEnergyScalesWithCyclesAndTiles)
{
    EnergyInputs a = someInputs();
    a.instructions = 0;
    a.l1Accesses = 0;
    a.l2Accesses = 0;
    a.l2DataAccesses = 0;
    a.routerTraversals = 0;
    a.flitHops = 0;
    auto e1 = computeEnergy(a);
    a.cycles *= 3;
    auto e3 = computeEnergy(a);
    EXPECT_NEAR(e3.total(), 3.0 * e1.total(), 1e-6);
}

TEST(Experiment, MetricsDeriveFromCounts)
{
    sys::ExperimentResult r;
    r.instructions = 100'000;
    r.readMisses = 120;
    r.writeMisses = 80;
    EXPECT_DOUBLE_EQ(r.mpki(), 2.0);
    EXPECT_DOUBLE_EQ(r.readMpki(), 1.2);
    EXPECT_DOUBLE_EQ(r.writeMpki(), 0.8);
    r.totalCoreCycles = 1000;
    r.memStallCycles = 250;
    EXPECT_DOUBLE_EQ(r.memStallFraction(), 0.25);
}

TEST(Experiment, RunsAnAppAndFillsEverything)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("volrend");
    ASSERT_NE(spec.app, nullptr);
    spec.cores = 16;
    spec.scale = 1;
    spec.protocol = coherence::Protocol::WiDir;
    auto r = sys::runExperiment(spec);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(r.cores, 16u);
    EXPECT_EQ(r.hopBinCounts.size(), 5u);
    EXPECT_EQ(r.sharersUpdatedBins.size(), 5u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.wnoc, 0.0);
    EXPECT_GE(r.collisionProbability, 0.0);
    EXPECT_LE(r.collisionProbability, 1.0);
}

TEST(Experiment, BaselineHasNoWirelessActivity)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("volrend");
    spec.cores = 16;
    spec.scale = 1;
    spec.protocol = coherence::Protocol::BaselineMESI;
    auto r = sys::runExperiment(spec);
    EXPECT_EQ(r.wirelessWrites, 0u);
    EXPECT_EQ(r.toWireless, 0u);
    EXPECT_DOUBLE_EQ(r.energy.wnoc, 0.0);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("fmm");
    spec.cores = 16;
    spec.scale = 1;
    spec.protocol = coherence::Protocol::WiDir;
    auto a = sys::runExperiment(spec);
    auto b = sys::runExperiment(spec);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    spec.seed = 99;
    auto c = sys::runExperiment(spec);
    EXPECT_NE(a.cycles, c.cycles); // timing is seed-sensitive
}

TEST(Experiment, MaxWiredSharersSweepGrowsPointers)
{
    // Table VI: thresholds 4 and 5 require Dir_4B / Dir_5B; the run
    // must not trip the configuration assert and must still work.
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("volrend");
    spec.cores = 16;
    spec.scale = 1;
    spec.protocol = coherence::Protocol::WiDir;
    for (std::uint32_t mws : {2u, 3u, 4u, 5u}) {
        spec.maxWiredSharers = mws;
        auto r = sys::runExperiment(spec);
        EXPECT_GT(r.cycles, 0u) << "mws=" << mws;
    }
}

TEST(Experiment, BenchScaleReadsEnvironment)
{
    unsetenv("WIDIR_BENCH_SCALE");
    EXPECT_EQ(sys::benchScale(3), 3u);
    setenv("WIDIR_BENCH_SCALE", "7", 1);
    EXPECT_EQ(sys::benchScale(3), 7u);
    setenv("WIDIR_BENCH_SCALE", "bogus", 1);
    EXPECT_EQ(sys::benchScale(3), 3u);
    unsetenv("WIDIR_BENCH_SCALE");
}

} // namespace
