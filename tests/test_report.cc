/**
 * @file
 * JSON report tests: the widir-sweep-v1 document every bench binary
 * writes must parse back, and every ExperimentResult field must
 * round-trip through the writer + parser unchanged.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "system/report.h"
#include "system/sweep.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using sys::ExperimentResult;
using sys::ExperimentSpec;

/** A result with every field populated with distinctive values. */
ExperimentResult
fakeResult()
{
    ExperimentResult r;
    r.app = "fake-app \"quoted\"";
    r.protocol = coherence::Protocol::WiDir;
    r.cores = 64;
    r.seed = 12345;
    r.scale = 3;
    r.maxWiredSharers = 4;
    r.updateCountThreshold = 8;
    r.cycles = 987654321;
    r.instructions = 1000000;
    r.loads = 2222;
    r.stores = 3333;
    r.readMisses = 440;
    r.writeMisses = 550;
    r.memStallCycles = 777;
    r.totalCoreCycles = 987654321ull * 64;
    r.loadLatencySum = 11111;
    r.storeLatencySum = 22222;
    r.hopBinCounts = {1, 2, 3, 4, 5};
    r.wiredMessages = 15;
    r.sharersUpdatedBins = {9, 8, 7, 6, 5};
    r.wirelessWrites = 35;
    r.selfInvalidations = 17;
    r.collisionProbability = 0.03125;
    r.toWireless = 12;
    r.toShared = 13;
    r.energy.core = 1.5;
    r.energy.l1 = 2.25;
    r.energy.l2dir = 3.75;
    r.energy.noc = 4.125;
    r.energy.wnoc = 0.0625;
    r.executedEvents = 424242;
    r.hostSeconds = 0.5;
    r.hostEventsPerSec = 848484.0;
    r.hostMsgpoolGrew = 3;
    r.hostMapRehashes = 9;
    return r;
}

/** Real result from a small simulation (covers live field values). */
ExperimentResult
realResult()
{
    ExperimentSpec spec;
    spec.app = workload::findApp("radiosity");
    spec.protocol = coherence::Protocol::WiDir;
    spec.cores = 16;
    spec.scale = 1;
    return sys::runExperiment(spec);
}

void
expectRoundTrips(const ExperimentResult &r, const sys::json::Value &v)
{
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("app")->string, r.app);
    EXPECT_EQ(v.find("protocol")->string,
              r.protocol == coherence::Protocol::WiDir ? "widir"
                                                       : "baseline");
    EXPECT_EQ(v.find("cores")->asUint(), r.cores);
    EXPECT_EQ(v.find("seed")->asUint(), r.seed);
    EXPECT_EQ(v.find("scale")->asUint(), r.scale);
    EXPECT_EQ(v.find("max_wired_sharers")->asUint(), r.maxWiredSharers);
    EXPECT_EQ(v.find("update_count_threshold")->asUint(),
              r.updateCountThreshold);
    EXPECT_EQ(v.find("cycles")->asUint(), r.cycles);
    EXPECT_EQ(v.find("instructions")->asUint(), r.instructions);
    EXPECT_EQ(v.find("loads")->asUint(), r.loads);
    EXPECT_EQ(v.find("stores")->asUint(), r.stores);
    EXPECT_EQ(v.find("read_misses")->asUint(), r.readMisses);
    EXPECT_EQ(v.find("write_misses")->asUint(), r.writeMisses);
    EXPECT_EQ(v.find("mpki")->number, r.mpki());
    EXPECT_EQ(v.find("read_mpki")->number, r.readMpki());
    EXPECT_EQ(v.find("write_mpki")->number, r.writeMpki());
    EXPECT_EQ(v.find("mem_stall_cycles")->asUint(), r.memStallCycles);
    EXPECT_EQ(v.find("total_core_cycles")->asUint(), r.totalCoreCycles);
    EXPECT_EQ(v.find("mem_stall_fraction")->number,
              r.memStallFraction());
    EXPECT_EQ(v.find("load_latency_sum")->asUint(), r.loadLatencySum);
    EXPECT_EQ(v.find("store_latency_sum")->asUint(), r.storeLatencySum);

    const auto *hops = v.find("hop_bin_counts");
    ASSERT_TRUE(hops && hops->isArray());
    ASSERT_EQ(hops->array.size(), r.hopBinCounts.size());
    for (std::size_t i = 0; i < r.hopBinCounts.size(); ++i)
        EXPECT_EQ(hops->array[i].asUint(), r.hopBinCounts[i]);
    EXPECT_EQ(v.find("wired_messages")->asUint(), r.wiredMessages);

    const auto *bins = v.find("sharers_updated_bins");
    ASSERT_TRUE(bins && bins->isArray());
    ASSERT_EQ(bins->array.size(), r.sharersUpdatedBins.size());
    for (std::size_t i = 0; i < r.sharersUpdatedBins.size(); ++i)
        EXPECT_EQ(bins->array[i].asUint(), r.sharersUpdatedBins[i]);

    EXPECT_EQ(v.find("wireless_writes")->asUint(), r.wirelessWrites);
    EXPECT_EQ(v.find("self_invalidations")->asUint(),
              r.selfInvalidations);
    EXPECT_EQ(v.find("collision_probability")->number,
              r.collisionProbability);
    EXPECT_EQ(v.find("to_wireless")->asUint(), r.toWireless);
    EXPECT_EQ(v.find("to_shared")->asUint(), r.toShared);
    EXPECT_EQ(v.find("executed_events")->asUint(), r.executedEvents);
    EXPECT_EQ(v.find("host_wall_seconds")->number, r.hostSeconds);
    EXPECT_EQ(v.find("host_events_per_sec")->number,
              r.hostEventsPerSec);
    EXPECT_EQ(v.find("host_msgpool_grew")->asUint(), r.hostMsgpoolGrew);
    EXPECT_EQ(v.find("host_map_rehashes")->asUint(), r.hostMapRehashes);

    const auto *energy = v.find("energy");
    ASSERT_TRUE(energy && energy->isObject());
    EXPECT_EQ(energy->find("core")->number, r.energy.core);
    EXPECT_EQ(energy->find("l1")->number, r.energy.l1);
    EXPECT_EQ(energy->find("l2dir")->number, r.energy.l2dir);
    EXPECT_EQ(energy->find("noc")->number, r.energy.noc);
    EXPECT_EQ(energy->find("wnoc")->number, r.energy.wnoc);
    EXPECT_EQ(energy->find("total")->number, r.energy.total());
}

TEST(Report, EveryFieldRoundTrips)
{
    std::vector<ExperimentResult> results = {fakeResult(), realResult()};
    std::string text = sys::resultsToJson("round_trip", results);

    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(text, doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->string, "widir-sweep-v1");
    EXPECT_EQ(doc.find("name")->string, "round_trip");
    const auto *arr = doc.find("results");
    ASSERT_TRUE(arr && arr->isArray());
    ASSERT_EQ(arr->array.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(i);
        expectRoundTrips(results[i], arr->array[i]);
    }
}

TEST(Report, WriteCreatesDirectoriesAndValidJson)
{
    auto dir = std::filesystem::temp_directory_path() /
               "widir_test_report" / "nested";
    std::filesystem::remove_all(dir.parent_path());
    auto path = (dir / "sweep.json").string();

    std::vector<ExperimentResult> results = {fakeResult()};
    ASSERT_TRUE(sys::writeResultsJson(path, "disk_check", results));

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();

    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(ss.str(), doc, &err)) << err;
    EXPECT_EQ(doc.find("name")->string, "disk_check");
    std::filesystem::remove_all(dir.parent_path());
}

TEST(Report, EmptySweepIsValidJson)
{
    std::string text = sys::resultsToJson("empty", {});
    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(text, doc, &err)) << err;
    const auto *arr = doc.find("results");
    ASSERT_TRUE(arr && arr->isArray());
    EXPECT_TRUE(arr->array.empty());
}

TEST(Report, HostileNamesRoundTrip)
{
    // Sweep and app names with every character class the writer must
    // escape: quotes, backslashes, newlines, tabs, CR, and raw control
    // bytes. The emitted document must parse, and the strings must
    // come back byte-for-byte.
    const std::string hostile =
        "ev\"il\\app\nwith\ttabs\rand\x01\x1f ctrl";
    ExperimentResult r = fakeResult();
    r.app = hostile;
    std::string text = sys::resultsToJson(hostile, {r});

    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(text, doc, &err)) << err;
    EXPECT_EQ(doc.find("name")->string, hostile);
    const auto *arr = doc.find("results");
    ASSERT_TRUE(arr && arr->isArray() && arr->array.size() == 1u);
    EXPECT_EQ(arr->array[0].find("app")->string, hostile);
}

TEST(Report, NonFiniteNumbersAreClamped)
{
    // NaN/Inf have no JSON encoding; the writer clamps them to 0 so a
    // pathological host clock can never produce an unparseable sweep.
    ExperimentResult r = fakeResult();
    r.hostSeconds = std::nan("");
    r.hostEventsPerSec = std::numeric_limits<double>::infinity();
    r.collisionProbability = -std::numeric_limits<double>::infinity();
    std::string text = sys::resultsToJson("clamped", {r});

    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(text, doc, &err)) << err;
    const auto &res = doc.find("results")->array[0];
    EXPECT_EQ(res.find("host_wall_seconds")->number, 0.0);
    EXPECT_EQ(res.find("host_events_per_sec")->number, 0.0);
    EXPECT_EQ(res.find("collision_probability")->number, 0.0);
}

TEST(Report, FaultBlockRoundTripsOnlyWhenArmed)
{
    // Clean result: no "fault" key at all (clean sweeps stay
    // byte-identical to pre-fault-injection output).
    ExperimentResult clean = fakeResult();
    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(
        sys::json::parse(sys::resultsToJson("clean", {clean}), doc, &err))
        << err;
    EXPECT_EQ(doc.find("results")->array[0].find("fault"), nullptr);

    // Faulted result: the knob echo and every counter round-trips.
    ExperimentResult r = fakeResult();
    r.faultInjection = true;
    r.fault.ber = 1e-4;
    r.fault.preambleLossProb = 0.01;
    r.fault.toneLossProb = 0.02;
    r.fault.burstBer = 0.5;
    r.fault.burstEnterProb = 0.001;
    r.fault.burstExitProb = 0.125;
    r.fault.frameBits = 96;
    r.fault.retryBudget = 5;
    r.fault.seed = 77;
    r.frameCrcErrors = 11;
    r.framePreambleLosses = 22;
    r.faultRetries = 33;
    r.frameFaultDrops = 44;
    r.toneRetries = 55;
    r.wirelessFallbacks = 66;
    // Reusing `doc` on purpose: parse() must reset the holder, not
    // merge the faulted tree into the clean one parsed above.
    ASSERT_TRUE(
        sys::json::parse(sys::resultsToJson("faulted", {r}), doc, &err))
        << err;
    const auto *f = doc.find("results")->array[0].find("fault");
    ASSERT_TRUE(f && f->isObject());
    EXPECT_EQ(f->find("ber")->number, r.fault.ber);
    EXPECT_EQ(f->find("preamble_loss_prob")->number,
              r.fault.preambleLossProb);
    EXPECT_EQ(f->find("tone_loss_prob")->number, r.fault.toneLossProb);
    EXPECT_EQ(f->find("burst_ber")->number, r.fault.burstBer);
    EXPECT_EQ(f->find("burst_enter_prob")->number,
              r.fault.burstEnterProb);
    EXPECT_EQ(f->find("burst_exit_prob")->number, r.fault.burstExitProb);
    EXPECT_EQ(f->find("frame_bits")->asUint(), r.fault.frameBits);
    EXPECT_EQ(f->find("retry_budget")->asUint(), r.fault.retryBudget);
    EXPECT_EQ(f->find("fault_seed")->asUint(), r.fault.seed);
    EXPECT_EQ(f->find("frame_crc_errors")->asUint(), r.frameCrcErrors);
    EXPECT_EQ(f->find("frame_preamble_losses")->asUint(),
              r.framePreambleLosses);
    EXPECT_EQ(f->find("fault_retries")->asUint(), r.faultRetries);
    EXPECT_EQ(f->find("frame_fault_drops")->asUint(), r.frameFaultDrops);
    EXPECT_EQ(f->find("tone_retries")->asUint(), r.toneRetries);
    EXPECT_EQ(f->find("wireless_fallbacks")->asUint(),
              r.wirelessFallbacks);
}

TEST(Report, FrontendBlockRoundTripsOnlyWhenNonDefault)
{
    // Default (coroutine) runs emit no "frontend" key: classic sweeps
    // stay byte-identical to documents written before frontends
    // existed.
    ExperimentResult plain = fakeResult();
    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(sys::resultsToJson("plain", {plain}),
                                 doc, &err))
        << err;
    EXPECT_EQ(doc.find("results")->array[0].find("frontend"), nullptr);

    // Recording run: kind + record_path, no replay_path.
    ExperimentResult rec = fakeResult();
    rec.frontendKind = frontend::FrontendKind::Record;
    rec.recordPath = "out/traces/fft.mtrace";
    ASSERT_TRUE(sys::json::parse(sys::resultsToJson("rec", {rec}), doc,
                                 &err))
        << err;
    const auto *fb = doc.find("results")->array[0].find("frontend");
    ASSERT_TRUE(fb && fb->isObject());
    EXPECT_EQ(fb->find("kind")->string, "record");
    EXPECT_EQ(fb->find("record_path")->string, rec.recordPath);
    EXPECT_EQ(fb->find("replay_path"), nullptr);

    // Replay run: kind + replay_path, no record_path.
    ExperimentResult rep = fakeResult();
    rep.frontendKind = frontend::FrontendKind::ReplayFast;
    rep.replayPath = "out/traces/fft.mtrace";
    ASSERT_TRUE(sys::json::parse(sys::resultsToJson("rep", {rep}), doc,
                                 &err))
        << err;
    fb = doc.find("results")->array[0].find("frontend");
    ASSERT_TRUE(fb && fb->isObject());
    EXPECT_EQ(fb->find("kind")->string, "replay-fast");
    EXPECT_EQ(fb->find("replay_path")->string, rep.replayPath);
    EXPECT_EQ(fb->find("record_path"), nullptr);
}

TEST(JsonParser, AcceptsScalarsAndNesting)
{
    sys::json::Value v;
    std::string err;
    ASSERT_TRUE(sys::json::parse(
        "{\"a\": [1, -2.5, \"x\\n\", true, false, null], \"b\": {}}",
        v, &err))
        << err;
    const auto *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 6u);
    EXPECT_EQ(a->array[0].asUint(), 1u);
    EXPECT_EQ(a->array[1].number, -2.5);
    EXPECT_FALSE(a->array[1].isInteger);
    EXPECT_EQ(a->array[2].string, "x\n");
    EXPECT_TRUE(a->array[3].boolean);
    EXPECT_FALSE(a->array[4].boolean);
    EXPECT_TRUE(a->array[5].isNull());
    ASSERT_TRUE(v.find("b") && v.find("b")->isObject());
}

TEST(JsonParser, RejectsMalformedInput)
{
    for (const char *bad : {"{\"a\": }", "[1, 2", "{} trailing",
                            "\"unterminated", "", "{1: 2}"}) {
        sys::json::Value v;
        std::string err;
        EXPECT_FALSE(sys::json::parse(bad, v, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

} // namespace
