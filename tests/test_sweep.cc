/**
 * @file
 * SweepRunner tests: a parallel sweep must be a drop-in replacement
 * for running the same specs serially -- results in spec order,
 * field-for-field identical regardless of worker count. This is the
 * guard on runExperiment's re-entrancy: any shared mutable state
 * between concurrent simulations shows up here as a diff (or a
 * crash under a sanitizer).
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/sweep.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using sys::SweepRunner;

ExperimentSpec
spec(const char *app, coherence::Protocol proto, std::uint32_t cores)
{
    ExperimentSpec s;
    s.app = workload::findApp(app);
    EXPECT_NE(s.app, nullptr) << app;
    s.protocol = proto;
    s.cores = cores;
    s.scale = 1;
    return s;
}

/** Mixed 8+ spec batch exercising both protocols and wireless load. */
std::vector<ExperimentSpec>
mixedBatch()
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs;
    for (const char *app : {"radiosity", "barnes", "fft",
                            "blackscholes"}) {
        specs.push_back(spec(app, Protocol::BaselineMESI, 16));
        specs.push_back(spec(app, Protocol::WiDir, 16));
    }
    // A couple of off-default configurations too.
    specs.push_back(spec("radix", Protocol::WiDir, 16));
    specs.back().maxWiredSharers = 2;
    specs.push_back(spec("water-spa", Protocol::WiDir, 16));
    specs.back().updateCountThreshold = 8;
    return specs;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.scale, b.scale);
    EXPECT_EQ(a.maxWiredSharers, b.maxWiredSharers);
    EXPECT_EQ(a.updateCountThreshold, b.updateCountThreshold);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.readMisses, b.readMisses);
    EXPECT_EQ(a.writeMisses, b.writeMisses);
    EXPECT_EQ(a.memStallCycles, b.memStallCycles);
    EXPECT_EQ(a.totalCoreCycles, b.totalCoreCycles);
    EXPECT_EQ(a.loadLatencySum, b.loadLatencySum);
    EXPECT_EQ(a.storeLatencySum, b.storeLatencySum);
    EXPECT_EQ(a.hopBinCounts, b.hopBinCounts);
    EXPECT_EQ(a.wiredMessages, b.wiredMessages);
    EXPECT_EQ(a.sharersUpdatedBins, b.sharersUpdatedBins);
    EXPECT_EQ(a.wirelessWrites, b.wirelessWrites);
    EXPECT_EQ(a.selfInvalidations, b.selfInvalidations);
    EXPECT_EQ(a.collisionProbability, b.collisionProbability);
    EXPECT_EQ(a.toWireless, b.toWireless);
    EXPECT_EQ(a.toShared, b.toShared);
    EXPECT_EQ(a.energy.core, b.energy.core);
    EXPECT_EQ(a.energy.l1, b.energy.l1);
    EXPECT_EQ(a.energy.l2dir, b.energy.l2dir);
    EXPECT_EQ(a.energy.noc, b.energy.noc);
    EXPECT_EQ(a.energy.wnoc, b.energy.wnoc);
}

TEST(SweepRunner, ResolvesJobCount)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, EmptySweep)
{
    SweepRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(SweepRunner, ParallelMatchesSerialFieldForField)
{
    auto specs = mixedBatch();
    ASSERT_GE(specs.size(), 8u);

    auto serial = SweepRunner(1).run(specs);
    auto parallel = SweepRunner(4).run(specs);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].app->name);
        // Order preserved: slot i belongs to spec i.
        EXPECT_EQ(serial[i].app, specs[i].app->name);
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(SweepRunner, MoreWorkersThanSpecs)
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("blackscholes", Protocol::WiDir, 16),
        spec("fft", Protocol::BaselineMESI, 16),
    };
    auto serial = SweepRunner(1).run(specs);
    auto wide = SweepRunner(8).run(specs);
    ASSERT_EQ(wide.size(), 2u);
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(serial[i], wide[i]);
}

TEST(SweepRunner, RepeatedRunsAreDeterministic)
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("barnes", Protocol::WiDir, 16),
    };
    SweepRunner runner(2);
    auto first = runner.run(specs);
    auto second = runner.run(specs);
    expectIdentical(first[0], second[0]);
}

} // namespace
