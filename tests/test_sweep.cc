/**
 * @file
 * SweepRunner tests: a parallel sweep must be a drop-in replacement
 * for running the same specs serially -- results in spec order,
 * field-for-field identical regardless of worker count. This is the
 * guard on runExperiment's re-entrancy: any shared mutable state
 * between concurrent simulations shows up here as a diff (or a
 * crash under a sanitizer).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "system/sweep.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using sys::ExperimentResult;
using sys::ExperimentSpec;
using sys::SweepRunner;

ExperimentSpec
spec(const char *app, coherence::Protocol proto, std::uint32_t cores)
{
    ExperimentSpec s;
    s.app = workload::findApp(app);
    EXPECT_NE(s.app, nullptr) << app;
    s.protocol = proto;
    s.cores = cores;
    s.scale = 1;
    return s;
}

/** Mixed 8+ spec batch exercising both protocols and wireless load. */
std::vector<ExperimentSpec>
mixedBatch()
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs;
    for (const char *app : {"radiosity", "barnes", "fft",
                            "blackscholes"}) {
        specs.push_back(spec(app, Protocol::BaselineMESI, 16));
        specs.push_back(spec(app, Protocol::WiDir, 16));
    }
    // A couple of off-default configurations too.
    specs.push_back(spec("radix", Protocol::WiDir, 16));
    specs.back().maxWiredSharers = 2;
    specs.push_back(spec("water-spa", Protocol::WiDir, 16));
    specs.back().updateCountThreshold = 8;
    return specs;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.scale, b.scale);
    EXPECT_EQ(a.maxWiredSharers, b.maxWiredSharers);
    EXPECT_EQ(a.updateCountThreshold, b.updateCountThreshold);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.readMisses, b.readMisses);
    EXPECT_EQ(a.writeMisses, b.writeMisses);
    EXPECT_EQ(a.memStallCycles, b.memStallCycles);
    EXPECT_EQ(a.totalCoreCycles, b.totalCoreCycles);
    EXPECT_EQ(a.loadLatencySum, b.loadLatencySum);
    EXPECT_EQ(a.storeLatencySum, b.storeLatencySum);
    EXPECT_EQ(a.hopBinCounts, b.hopBinCounts);
    EXPECT_EQ(a.wiredMessages, b.wiredMessages);
    EXPECT_EQ(a.sharersUpdatedBins, b.sharersUpdatedBins);
    EXPECT_EQ(a.wirelessWrites, b.wirelessWrites);
    EXPECT_EQ(a.selfInvalidations, b.selfInvalidations);
    EXPECT_EQ(a.collisionProbability, b.collisionProbability);
    EXPECT_EQ(a.toWireless, b.toWireless);
    EXPECT_EQ(a.toShared, b.toShared);
    EXPECT_EQ(a.energy.core, b.energy.core);
    EXPECT_EQ(a.energy.l1, b.energy.l1);
    EXPECT_EQ(a.energy.l2dir, b.energy.l2dir);
    EXPECT_EQ(a.energy.noc, b.energy.noc);
    EXPECT_EQ(a.energy.wnoc, b.energy.wnoc);
}

TEST(SweepRunner, ResolvesJobCount)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, EmptySweep)
{
    SweepRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(SweepRunner, ParallelMatchesSerialFieldForField)
{
    auto specs = mixedBatch();
    ASSERT_GE(specs.size(), 8u);

    auto serial = SweepRunner(1).run(specs);
    auto parallel = SweepRunner(4).run(specs);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].app->name);
        // Order preserved: slot i belongs to spec i.
        EXPECT_EQ(serial[i].app, specs[i].app->name);
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(SweepRunner, MoreWorkersThanSpecs)
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("blackscholes", Protocol::WiDir, 16),
        spec("fft", Protocol::BaselineMESI, 16),
    };
    auto serial = SweepRunner(1).run(specs);
    auto wide = SweepRunner(8).run(specs);
    ASSERT_EQ(wide.size(), 2u);
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(serial[i], wide[i]);
}

TEST(SweepRunner, RepeatedRunsAreDeterministic)
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("barnes", Protocol::WiDir, 16),
    };
    SweepRunner runner(2);
    auto first = runner.run(specs);
    auto second = runner.run(specs);
    expectIdentical(first[0], second[0]);
}

TEST(SweepRunner, WorkerExceptionIsRethrownWithSpecName)
{
    // Regression: an exception escaping a worker thread used to hit
    // std::terminate and kill the whole process with no report. It is
    // now captured, the pool joins, and the calling thread sees the
    // original exception nested under a runtime_error naming the
    // failing spec. Exercised through the run_fn test seam because
    // the production sim reports errors via sim::fatal (which exits),
    // not exceptions.
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("fft", Protocol::BaselineMESI, 16),
        spec("radiosity", Protocol::WiDir, 16),
        spec("barnes", Protocol::WiDir, 16),
        spec("blackscholes", Protocol::BaselineMESI, 16),
    };
    auto boom = [](const ExperimentSpec &s) -> ExperimentResult {
        if (std::string(s.app->name) == "radiosity")
            throw std::runtime_error("disk full");
        ExperimentResult r;
        r.app = s.app->name;
        return r;
    };

    for (unsigned jobs : {1u, 3u}) {
        SCOPED_TRACE(jobs);
        SweepRunner runner(jobs);
        try {
            runner.run(specs, boom);
            FAIL() << "expected the worker exception to propagate";
        } catch (const std::runtime_error &outer) {
            EXPECT_NE(std::string(outer.what()).find("radiosity"),
                      std::string::npos)
                << outer.what();
            try {
                std::rethrow_if_nested(outer);
                FAIL() << "original exception not nested";
            } catch (const std::runtime_error &inner) {
                EXPECT_STREQ(inner.what(), "disk full");
            }
        }
    }
}

TEST(SweepRunner, CleanRunThroughSeamReturnsAllResults)
{
    using coherence::Protocol;
    std::vector<ExperimentSpec> specs = {
        spec("fft", Protocol::BaselineMESI, 16),
        spec("barnes", Protocol::WiDir, 16),
    };
    SweepRunner runner(2);
    auto results =
        runner.run(specs, [](const ExperimentSpec &s) {
            ExperimentResult r;
            r.app = s.app->name;
            return r;
        });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].app, "fft");
    EXPECT_EQ(results[1].app, "barnes");
}

TEST(EnvParsing, ParseEnvIntRejectsGarbageAndOverflow)
{
    long v = -1;
    // Accepted: complete decimal integers in range.
    EXPECT_TRUE(sys::parseEnvInt("4", 1, 100, v));
    EXPECT_EQ(v, 4);
    EXPECT_TRUE(sys::parseEnvInt("100", 1, 100, v));
    EXPECT_EQ(v, 100);
    EXPECT_TRUE(sys::parseEnvInt("-3", -10, 10, v));
    EXPECT_EQ(v, -3);

    // Rejected, and v is left untouched.
    v = 42;
    EXPECT_FALSE(sys::parseEnvInt("4abc", 1, 100, v)); // trailing junk
    EXPECT_FALSE(sys::parseEnvInt("4 ", 1, 100, v));   // trailing space
    EXPECT_FALSE(sys::parseEnvInt("abc", 1, 100, v));
    EXPECT_FALSE(sys::parseEnvInt("", 1, 100, v));
    EXPECT_FALSE(sys::parseEnvInt(nullptr, 1, 100, v));
    EXPECT_FALSE(sys::parseEnvInt("0", 1, 100, v));   // below min
    EXPECT_FALSE(sys::parseEnvInt("101", 1, 100, v)); // above max
    // strtol saturates these to LONG_MAX/LONG_MIN with ERANGE; the
    // old code cast the saturated value straight to unsigned.
    EXPECT_FALSE(sys::parseEnvInt("99999999999999999999999", 1,
                                  std::numeric_limits<long>::max(), v));
    EXPECT_FALSE(sys::parseEnvInt("-99999999999999999999999",
                                  std::numeric_limits<long>::min(), 100,
                                  v));
    EXPECT_EQ(v, 42);
}

TEST(EnvParsing, DefaultJobsIgnoresInvalidEnv)
{
    // "4abc" used to parse as 4 jobs; it must now fall back to
    // hardware_concurrency (>= 1) with a warning.
    setenv("WIDIR_BENCH_JOBS", "4abc", 1);
    unsigned garbage_jobs = sys::defaultJobs();
    setenv("WIDIR_BENCH_JOBS", "3", 1);
    unsigned three = sys::defaultJobs();
    unsetenv("WIDIR_BENCH_JOBS");
    unsigned fallback = sys::defaultJobs();

    EXPECT_EQ(three, 3u);
    EXPECT_EQ(garbage_jobs, fallback);
    EXPECT_GE(fallback, 1u);
}

} // namespace
