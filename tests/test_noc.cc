/**
 * @file
 * Unit tests for the wired 2D mesh: geometry, XY hop counts, latency,
 * serialization, contention and the Table-V hop histogram.
 */

#include <gtest/gtest.h>

#include "noc/mesh.h"
#include "sim/simulator.h"

namespace {

using namespace widir;

noc::MeshConfig
cfg(std::uint32_t n)
{
    noc::MeshConfig c;
    c.numNodes = n;
    return c;
}

TEST(Mesh, DimensionsMostSquare)
{
    sim::Simulator s;
    noc::Mesh m64(s, cfg(64));
    EXPECT_EQ(m64.width(), 8u);
    EXPECT_EQ(m64.height(), 8u);
    noc::Mesh m32(s, cfg(32));
    EXPECT_EQ(m32.width() * m32.height(), 32u);
    EXPECT_EQ(m32.height(), 4u);
    noc::Mesh m16(s, cfg(16));
    EXPECT_EQ(m16.width(), 4u);
    noc::Mesh m4(s, cfg(4));
    EXPECT_EQ(m4.width(), 2u);
}

TEST(Mesh, HopCountsAreManhattan)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64)); // 8x8
    EXPECT_EQ(m.hopCount(0, 0), 0u);
    EXPECT_EQ(m.hopCount(0, 7), 7u);
    EXPECT_EQ(m.hopCount(0, 63), 14u); // corner to corner
    EXPECT_EQ(m.hopCount(0, 8), 1u);   // one row down
    EXPECT_EQ(m.hopCount(9, 0), 2u);
}

TEST(Mesh, UnloadedLatencyIsHops)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    sim::Tick arrival = 0;
    m.send(0, 63, 64, [&] { arrival = s.now(); });
    s.run();
    EXPECT_EQ(arrival, 14u); // 14 hops x 1 cycle, single-flit message
}

TEST(Mesh, MultiFlitSerialization)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    // 584-bit line message = 5 flits of 128b: tail arrives 4 cycles
    // after the head.
    sim::Tick arrival = 0;
    m.send(0, 1, 584, [&] { arrival = s.now(); });
    s.run();
    EXPECT_EQ(arrival, 1u + 4u);
}

TEST(Mesh, LocalDeliveryCostsOneCycle)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    sim::Tick arrival = 0;
    m.send(5, 5, 64, [&] { arrival = s.now(); });
    s.run();
    EXPECT_EQ(arrival, 1u);
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    // Two 5-flit messages over the same first link: the second one
    // waits for the first's serialization.
    sim::Tick a1 = 0, a2 = 0;
    m.send(0, 1, 584, [&] { a1 = s.now(); });
    m.send(0, 1, 584, [&] { a2 = s.now(); });
    s.run();
    EXPECT_EQ(a1, 5u);
    EXPECT_GT(a2, a1); // queued behind the first
    EXPECT_EQ(a2, 10u);
}

TEST(Mesh, SameSourceDestinationIsFifo)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        m.send(0, 63, 584, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Mesh, HopHistogramBins)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    m.send(0, 0, 64, [] {});   // 0 hops -> bin 0-2
    m.send(0, 4, 64, [] {});   // 4 hops -> bin 3-5
    m.send(0, 7, 64, [] {});   // 7 hops -> bin 6-8
    m.send(0, 63, 64, [] {});  // 14 hops -> bin 12-16
    s.run();
    const auto &h = m.hopHistogram();
    ASSERT_EQ(h.bins().size(), 5u);
    EXPECT_EQ(h.bins()[0].count, 1u);
    EXPECT_EQ(h.bins()[1].count, 1u);
    EXPECT_EQ(h.bins()[2].count, 1u);
    EXPECT_EQ(h.bins()[3].count, 0u);
    EXPECT_EQ(h.bins()[4].count, 1u);
}

TEST(Mesh, BroadcastReachesEveryone)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(16));
    std::vector<bool> got(16, false);
    m.broadcast(3, 64, false,
                [&](sim::NodeId n) { got[n] = true; });
    s.run();
    for (sim::NodeId n = 0; n < 16; ++n)
        EXPECT_EQ(got[n], n != 3) << n;
    EXPECT_EQ(m.messages(), 15u);
}

TEST(Mesh, StatsAccumulate)
{
    sim::Simulator s;
    noc::Mesh m(s, cfg(64));
    m.send(0, 1, 584, [] {});
    s.run();
    EXPECT_EQ(m.messages(), 1u);
    EXPECT_EQ(m.routerTraversals(), 2u); // src + dst routers
    EXPECT_EQ(m.flitHops(), 5u);         // 5 flits x 1 hop
    EXPECT_GT(m.meanLatency(), 0.0);
}

} // namespace
