/**
 * @file
 * Fault-injection subsystem tests (docs/FAULTS.md): FaultSpec
 * validation, FaultModel determinism, channel-level
 * detect/retry/drop behaviour, tone-pulse loss, and full-experiment
 * resilience. runExperiment runs the coherence checker and -- when
 * tracing -- the trace-legality checker fatally, so every faulted
 * experiment below doubles as an end-to-end protocol-safety check.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "system/experiment.h"
#include "system/report.h"
#include "wireless/data_channel.h"
#include "wireless/tone_channel.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using fault::FaultModel;
using fault::FaultSpec;
using fault::FrameFate;

// ---------------------------------------------------------------------
// FaultSpec validation
// ---------------------------------------------------------------------

TEST(FaultSpec, DefaultIsValidAndDisabled)
{
    FaultSpec spec;
    EXPECT_EQ(spec.validate(), "");
    EXPECT_FALSE(spec.enabled());
}

TEST(FaultSpec, FullyPopulatedIsValidAndEnabled)
{
    FaultSpec spec;
    spec.ber = 1e-4;
    spec.preambleLossProb = 0.01;
    spec.toneLossProb = 0.01;
    spec.burstBer = 1e-2;
    spec.burstEnterProb = 0.001;
    spec.burstExitProb = 0.25;
    EXPECT_EQ(spec.validate(), "");
    EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, RejectsOutOfRangeProbabilities)
{
    FaultSpec spec;
    spec.ber = -0.1;
    EXPECT_NE(spec.validate(), "");
    spec.ber = 1.5;
    EXPECT_NE(spec.validate(), "");
    spec.ber = std::nan("");
    EXPECT_NE(spec.validate(), "");
    spec.ber = 1.0; // inclusive upper bound is allowed
    EXPECT_EQ(spec.validate(), "");
}

TEST(FaultSpec, RejectsInconsistentKnobs)
{
    FaultSpec spec;
    spec.burstEnterProb = 0.1;
    spec.burstBer = 0.5;
    spec.burstExitProb = 0.0; // bursts could start but never end
    EXPECT_NE(spec.validate(), "");

    FaultSpec bits;
    bits.ber = 1e-3;
    bits.frameBits = 0;
    EXPECT_NE(bits.validate(), "");

    FaultSpec budget;
    budget.ber = 1e-3;
    budget.retryBudget = 0;
    EXPECT_NE(budget.validate(), "");
}

TEST(FaultSpec, JoinsMultipleProblems)
{
    FaultSpec spec;
    spec.ber = -1.0;
    spec.toneLossProb = 2.0;
    std::string err = spec.validate();
    EXPECT_NE(err.find(';'), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// FaultModel sampling
// ---------------------------------------------------------------------

TEST(FaultModel, DeterministicForEqualSeeds)
{
    FaultSpec spec;
    spec.ber = 1e-3;
    spec.preambleLossProb = 0.05;
    spec.toneLossProb = 0.05;
    spec.burstBer = 0.1;
    spec.burstEnterProb = 0.01;
    spec.burstExitProb = 0.2;
    FaultModel a(spec, sim::Rng(42, 7));
    FaultModel b(spec, sim::Rng(42, 7));
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(a.sampleFrame(), b.sampleFrame()) << "draw " << i;
        ASSERT_EQ(a.sampleToneLoss(), b.sampleToneLoss()) << i;
    }
    EXPECT_EQ(a.framesSampled(), 2000u);
    EXPECT_EQ(a.burstsEntered(), b.burstsEntered());
}

TEST(FaultModel, BerOneCorruptsEveryFrame)
{
    FaultSpec spec;
    spec.ber = 1.0;
    FaultModel m(spec, sim::Rng(1, 0));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.sampleFrame(), FrameFate::Corrupt);
    EXPECT_FALSE(m.sampleToneLoss()); // toneLossProb defaults to 0
}

TEST(FaultModel, PreambleLossBeatsCorruption)
{
    FaultSpec spec;
    spec.ber = 1.0;
    spec.preambleLossProb = 1.0;
    FaultModel m(spec, sim::Rng(1, 0));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.sampleFrame(), FrameFate::PreambleLoss);
}

TEST(FaultModel, GilbertElliottBurstsRaiseTheErrorRate)
{
    FaultSpec spec;
    spec.burstBer = 1.0;      // certain corruption inside a burst
    spec.burstEnterProb = 1.0; // enter immediately...
    spec.burstExitProb = 1.0;  // ...but only one frame per burst
    FaultModel m(spec, sim::Rng(3, 1));
    EXPECT_TRUE(spec.enabled());
    // enter/exit alternate: odd samples are in-burst and corrupt.
    EXPECT_EQ(m.sampleFrame(), FrameFate::Corrupt);
    EXPECT_EQ(m.sampleFrame(), FrameFate::Clean);
    EXPECT_EQ(m.sampleFrame(), FrameFate::Corrupt);
    EXPECT_GE(m.burstsEntered(), 2u);
}

// ---------------------------------------------------------------------
// DataChannel resilience
// ---------------------------------------------------------------------

wireless::Frame
updFrame(sim::NodeId src, sim::Addr line)
{
    wireless::Frame f;
    f.src = src;
    f.kind = wireless::FrameKind::WirUpd;
    f.lineAddr = line;
    f.wordAddr = line;
    f.value = 1;
    return f;
}

TEST(DataChannelFault, RetriesThenDropsAtBerOne)
{
    sim::Simulator s;
    wireless::DataChannelConfig cfg;
    cfg.numNodes = 4;
    wireless::DataChannel ch(s, cfg);
    FaultSpec spec;
    spec.ber = 1.0;
    spec.retryBudget = 3;
    FaultModel model(spec, s.makeRng(99));
    ch.setFaultModel(&model);

    int commits = 0, fails = 0;
    int delivered = 0;
    for (sim::NodeId n = 0; n < 4; ++n)
        ch.setReceiver(n, [&delivered](const wireless::Frame &) {
            ++delivered;
        });
    ch.transmit(updFrame(0, 0x1000), [&] { ++commits; },
                [&] { ++fails; });
    s.run();

    EXPECT_EQ(commits, 0);
    EXPECT_EQ(fails, 1);
    EXPECT_EQ(delivered, 0); // a corrupted frame never delivers
    // budget retries plus the final budget-exceeded attempt.
    EXPECT_EQ(ch.crcErrors(), 4u);
    EXPECT_EQ(ch.faultRetries(), 3u);
    EXPECT_EQ(ch.faultDrops(), 1u);
    EXPECT_EQ(ch.successes(), 0u);
}

TEST(DataChannelFault, PreambleLossAlsoRetries)
{
    sim::Simulator s;
    wireless::DataChannelConfig cfg;
    cfg.numNodes = 4;
    wireless::DataChannel ch(s, cfg);
    FaultSpec spec;
    spec.preambleLossProb = 1.0;
    spec.retryBudget = 2;
    FaultModel model(spec, s.makeRng(5));
    ch.setFaultModel(&model);

    int fails = 0;
    ch.transmit(updFrame(1, 0x2000), [] {}, [&] { ++fails; });
    s.run();
    EXPECT_EQ(fails, 1);
    EXPECT_EQ(ch.preambleLosses(), 3u);
    EXPECT_EQ(ch.crcErrors(), 0u);
    EXPECT_EQ(ch.faultDrops(), 1u);
}

TEST(DataChannelFault, CleanChannelIgnoresOnFail)
{
    sim::Simulator s;
    wireless::DataChannelConfig cfg;
    cfg.numNodes = 4;
    wireless::DataChannel ch(s, cfg);
    int commits = 0, fails = 0;
    ch.transmit(updFrame(0, 0x1000), [&] { ++commits; },
                [&] { ++fails; });
    s.run();
    EXPECT_EQ(commits, 1);
    EXPECT_EQ(fails, 0);
    EXPECT_EQ(ch.crcErrors(), 0u);
    EXPECT_EQ(ch.faultRetries(), 0u);
}

// ---------------------------------------------------------------------
// ToneChannel resilience
// ---------------------------------------------------------------------

TEST(ToneChannelFault, MissedSilencePulseRepolls)
{
    sim::Simulator s;
    wireless::ToneChannel tone(s, 4);
    FaultSpec spec;
    spec.toneLossProb = 1.0; // every observation misses...
    spec.retryBudget = 3;    // ...until the budget caps the re-polls
    FaultModel model(spec, s.makeRng(11));
    tone.setFaultModel(&model);

    sim::Tick done_at = 0;
    int fired = 0;
    tone.beginCensus(2, [&] {
        ++fired;
        done_at = s.now();
    });
    s.schedule(3, [&tone] { tone.drop(); });
    s.schedule(5, [&tone] { tone.drop(); });
    s.run();

    EXPECT_EQ(fired, 1); // latency only: the census still completes
    EXPECT_EQ(tone.toneRetries(), 3u);
    // Clean delivery would be at drop(5) + 1 cycle of tone latency.
    EXPECT_GT(done_at, 6u);
}

TEST(ToneChannelFault, CleanChannelTimingUnchanged)
{
    sim::Simulator s;
    wireless::ToneChannel tone(s, 4);
    sim::Tick done_at = 0;
    tone.beginCensus(1, [&] { done_at = s.now(); });
    s.schedule(3, [&tone] { tone.drop(); });
    s.run();
    EXPECT_EQ(done_at, 4u);
    EXPECT_EQ(tone.toneRetries(), 0u);
}

// ---------------------------------------------------------------------
// Full-experiment resilience
// ---------------------------------------------------------------------

sys::ExperimentSpec
widirSpec(const char *app, std::uint32_t cores)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp(app);
    EXPECT_NE(spec.app, nullptr);
    spec.protocol = coherence::Protocol::WiDir;
    spec.cores = cores;
    spec.scale = 1;
    return spec;
}

TEST(FaultExperiment, ModerateBerDegradesGracefully)
{
    sys::ExperimentSpec spec = widirSpec("fft", 8);
    spec.fault.ber = 0.02;     // ~80% per-frame corruption at 80 bits
    spec.fault.retryBudget = 1; // force frequent budget exhaustion
    spec.trace.enabled = true;  // trace-legality checker runs fatally

    sys::ExperimentResult r = sys::runExperiment(spec);
    EXPECT_TRUE(r.faultInjection);
    EXPECT_GT(r.frameCrcErrors, 0u);
    EXPECT_GT(r.faultRetries, 0u);
    EXPECT_GT(r.frameFaultDrops, 0u);
    EXPECT_GT(r.wirelessFallbacks, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(FaultExperiment, TotalLossStillCompletes)
{
    // BER 1.0: no wireless frame ever gets through; every wireless
    // transaction must re-route onto the wired mesh and the program
    // must still finish coherent.
    sys::ExperimentSpec spec = widirSpec("fft", 8);
    spec.fault.ber = 1.0;
    spec.fault.retryBudget = 2;
    spec.trace.enabled = true;

    sys::ExperimentResult r = sys::runExperiment(spec);
    EXPECT_EQ(r.wirelessWrites, 0u); // nothing ever committed
    EXPECT_GT(r.wirelessFallbacks, 0u);
    EXPECT_GT(r.frameFaultDrops, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(FaultExperiment, FaultedRunsAreDeterministic)
{
    sys::ExperimentSpec spec = widirSpec("fft", 8);
    spec.fault.ber = 0.01;
    spec.fault.preambleLossProb = 0.02;
    spec.fault.toneLossProb = 0.02;
    sys::ExperimentResult a = sys::runExperiment(spec);
    sys::ExperimentResult b = sys::runExperiment(spec);
    a.hostSeconds = b.hostSeconds = 0.0;
    a.hostEventsPerSec = b.hostEventsPerSec = 0.0;
    EXPECT_EQ(sys::resultToJson(a), sys::resultToJson(b));
}

TEST(FaultExperiment, DisabledSpecIsByteIdenticalToDefault)
{
    // An explicitly written all-zero FaultSpec arms nothing: the run
    // must match a default-constructed spec bit for bit, fault seed
    // and retry budget included (they only matter once enabled).
    sys::ExperimentSpec plain = widirSpec("fft", 8);
    sys::ExperimentSpec zeroed = widirSpec("fft", 8);
    zeroed.fault.ber = 0.0;
    zeroed.fault.seed = 1234;
    zeroed.fault.retryBudget = 2;
    sys::ExperimentResult a = sys::runExperiment(plain);
    sys::ExperimentResult b = sys::runExperiment(zeroed);
    EXPECT_FALSE(a.faultInjection);
    EXPECT_FALSE(b.faultInjection);
    a.hostSeconds = b.hostSeconds = 0.0;
    a.hostEventsPerSec = b.hostEventsPerSec = 0.0;
    std::string ja = sys::resultToJson(a);
    std::string jb = sys::resultToJson(b);
    EXPECT_EQ(ja, jb);
    EXPECT_EQ(ja.find("\"fault\""), std::string::npos)
        << "clean runs must not emit the fault block";
}

TEST(FaultExperiment, BaselineIgnoresFaultSpec)
{
    // Wired-only protocols have no wireless channel to disturb; a
    // sweep-wide FaultSpec must be harmless there.
    sys::ExperimentSpec spec = widirSpec("fft", 8);
    spec.protocol = coherence::Protocol::BaselineMESI;
    spec.fault.ber = 1.0;
    sys::ExperimentResult r = sys::runExperiment(spec);
    EXPECT_FALSE(r.faultInjection);
    EXPECT_EQ(r.frameCrcErrors, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(FaultExperiment, InvalidSpecIsRejected)
{
    sys::ExperimentSpec spec = widirSpec("fft", 8);
    spec.fault.ber = 2.0;
    EXPECT_NE(spec.validate(), "");
    spec.fault.ber = 0.5;
    spec.trace.file = "somewhere.json"; // file without enabled
    EXPECT_NE(spec.validate(), "");
    spec.trace.enabled = true;
    EXPECT_EQ(spec.validate(), "");
}

} // namespace
