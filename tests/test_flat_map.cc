/**
 * @file
 * Container semantics for the flat hot-state layouts: FlatAddrMap
 * insert/erase/backshift churn against a std::unordered_map reference,
 * iteration determinism and reference stability, and the SharerPtrs /
 * SharerBits fixed-width sharer sets (census popcount, the Dir3B
 * pointer-overflow edge, full 1024-bit width).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sharer_set.h"
#include "mem/flat_addr_map.h"
#include "sim/rng.h"

namespace {

using namespace widir;
using coherence::SharerBits;
using coherence::SharerPtrs;
using mem::Addr;
using mem::FlatAddrMap;

struct Payload
{
    std::uint64_t tag = 0;
    std::vector<std::uint32_t> body;
};

/** Sorted (key, tag) dump, the canonical content snapshot. */
template <typename Map>
std::vector<std::pair<Addr, std::uint64_t>>
dump(const Map &m)
{
    std::vector<std::pair<Addr, std::uint64_t>> out;
    for (auto it = m.begin(); it != m.end(); ++it)
        out.emplace_back(it->first, it->second.tag);
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Random insert/erase/lookup churn, mirrored into an unordered_map.
 * High turnover at a bounded key range keeps the load factor near the
 * limit and exercises the backward-shift erase on long probe chains.
 */
TEST(FlatAddrMap, ChurnMatchesUnorderedMapReference)
{
    FlatAddrMap<Payload> flat;
    std::unordered_map<Addr, Payload> ref;
    sim::Rng rng(123, 0);

    std::uint64_t next_tag = 1;
    for (int step = 0; step < 200000; ++step) {
        // Line-address-shaped keys from a small range force reuse.
        Addr key = static_cast<Addr>(rng.below(4096)) << 6;
        switch (rng.below(4)) {
          case 0:
          case 1: { // insert (first wins, like try_emplace)
            auto [fit, finserted] = flat.try_emplace(key);
            auto [rit, rinserted] = ref.try_emplace(key);
            ASSERT_EQ(finserted, rinserted);
            if (finserted) {
                fit->second.tag = next_tag;
                rit->second.tag = next_tag;
                ++next_tag;
            } else {
                ASSERT_EQ(fit->second.tag, rit->second.tag);
            }
            break;
          }
          case 2: { // erase
            ASSERT_EQ(flat.erase(key), ref.erase(key));
            break;
          }
          case 3: { // lookup
            auto fit = flat.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(fit == flat.end(), rit == ref.end());
            if (fit != flat.end()) {
                ASSERT_EQ(fit->second.tag, rit->second.tag);
            }
            break;
          }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    EXPECT_EQ(dump(flat), dump(ref));

    // Drain through the flat map's own iteration.
    while (!ref.empty()) {
        Addr key = ref.begin()->first;
        ASSERT_EQ(flat.erase(key), 1u);
        ref.erase(key);
    }
    EXPECT_TRUE(flat.empty());
    EXPECT_EQ(flat.begin(), flat.end());
}

/** Two maps fed the same operations iterate in the same order. */
TEST(FlatAddrMap, IterationIsDeterministic)
{
    auto build = [] {
        FlatAddrMap<Payload> m;
        sim::Rng rng(7, 1);
        for (int i = 0; i < 5000; ++i) {
            Addr key = static_cast<Addr>(rng.below(2048)) << 6;
            if (rng.below(3) == 0)
                m.erase(key);
            else
                m[key].tag = key + 1;
        }
        return m;
    };
    FlatAddrMap<Payload> a = build();
    FlatAddrMap<Payload> b = build();
    auto ait = a.begin();
    auto bit = b.begin();
    for (; ait != a.end(); ++ait, ++bit) {
        ASSERT_NE(bit, b.end());
        EXPECT_EQ(ait->first, bit->first);
        EXPECT_EQ(ait->second.tag, bit->second.tag);
    }
    EXPECT_EQ(bit, b.end());
}

/**
 * Values never move: references stay valid across inserts (rehash),
 * other erases, and slot recycling -- the controllers hold DirEntry&
 * across map mutations exactly like with std::unordered_map.
 */
TEST(FlatAddrMap, ReferencesSurviveRehashAndErase)
{
    FlatAddrMap<Payload> m;
    Payload &first = m[0x100000];
    first.tag = 42;
    first.body = {1, 2, 3};
    for (Addr k = 1; k < 1000; ++k)
        m[k << 6].tag = k; // forces several index rehashes
    m.erase(0x2000);
    EXPECT_EQ(first.tag, 42u);
    EXPECT_EQ(first.body, (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(&m.find(0x100000)->second, &first);
}

/** A geometry-derived reserve means steady state never rehashes. */
TEST(FlatAddrMap, ReserveAvoidsRehash)
{
    FlatAddrMap<Payload> m;
    m.reserve(1024);
    EXPECT_EQ(m.rehashes(), 1u); // the reserve itself
    for (Addr k = 0; k < 1024; ++k)
        m[k << 6].tag = k;
    for (Addr k = 0; k < 1024; k += 2)
        m.erase(k << 6);
    for (Addr k = 0; k < 1024; k += 2)
        m[k << 6].tag = k;
    EXPECT_EQ(m.rehashes(), 1u);
}

/** Recycled slots hand back a freshly-constructed value. */
TEST(FlatAddrMap, RecycledSlotsAreFresh)
{
    FlatAddrMap<Payload> m;
    m[0x40].tag = 9;
    m.find(0x40)->second.body = {7, 7, 7};
    m.erase(0x40);
    Payload &again = m[0x40]; // reuses the freed slab slot
    EXPECT_EQ(again.tag, 0u);
    EXPECT_TRUE(again.body.empty());
}

TEST(SharerPtrs, PreservesVectorOrderSemantics)
{
    SharerPtrs s;
    std::vector<sim::NodeId> ref;
    for (sim::NodeId n : {5u, 63u, 1u, 17u, 40u}) {
        s.push_back(n);
        ref.push_back(n);
    }
    EXPECT_TRUE(std::equal(s.begin(), s.end(), ref.begin(), ref.end()));

    // erase-by-iterator shifts left, like std::vector.
    auto sit = std::find(s.begin(), s.end(), 1u);
    auto rit = std::find(ref.begin(), ref.end(), 1u);
    s.erase(sit);
    ref.erase(rit);
    EXPECT_TRUE(std::equal(s.begin(), s.end(), ref.begin(), ref.end()));

    SharerPtrs copy = s; // finishToShared: entry.sharers = txn->ackIds
    EXPECT_TRUE(
        std::equal(copy.begin(), copy.end(), s.begin(), s.end()));
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(copy.size(), 4u);
}

/**
 * The Dir3B overflow edge: the directory adds precise pointers only
 * while size() < dirPointers and flips the bcast bit on the request
 * that would exceed them. The container must hold exactly dirPointers
 * entries at the decision point for every configured width.
 */
TEST(SharerPtrs, Dir3BOverflowEdge)
{
    for (std::uint32_t dir_pointers : {3u, 5u, 8u}) {
        SharerPtrs s;
        bool bcast = false;
        for (sim::NodeId n = 0; n < 10; ++n) {
            if (s.size() < dir_pointers)
                s.push_back(n); // precise pointer
            else
                bcast = true; // Dir3B overflow
        }
        EXPECT_TRUE(bcast);
        EXPECT_EQ(s.size(), dir_pointers);
    }
}

TEST(SharerBits, CensusPopcountAndOrder)
{
    SharerBits bits;
    EXPECT_TRUE(bits.none());
    std::vector<sim::NodeId> nodes = {0, 1, 63, 64, 65, 500, 1023};
    for (sim::NodeId n : nodes)
        bits.set(n);
    EXPECT_EQ(bits.count(), nodes.size());
    for (sim::NodeId n : nodes)
        EXPECT_TRUE(bits.test(n));
    EXPECT_FALSE(bits.test(2));
    EXPECT_FALSE(bits.test(512));

    // forEachSet visits in ascending node order (the broadcast order).
    std::vector<sim::NodeId> seen;
    bits.forEachSet([&](sim::NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, nodes);

    bits.reset(64);
    EXPECT_FALSE(bits.test(64));
    EXPECT_EQ(bits.count(), nodes.size() - 1);
    bits.clear();
    EXPECT_TRUE(bits.none());
}

/** Full 1024-bit width: a whole 32x32 machine fits and counts. */
TEST(SharerBits, FullWidth1024)
{
    SharerBits bits;
    for (sim::NodeId n = 0; n < SharerBits::kMaxNodes; ++n)
        bits.set(n);
    EXPECT_EQ(bits.count(), SharerBits::kMaxNodes);
    std::uint32_t visits = 0;
    sim::NodeId prev = 0;
    bits.forEachSet([&](sim::NodeId n) {
        if (visits) {
            EXPECT_EQ(n, prev + 1);
        }
        prev = n;
        ++visits;
    });
    EXPECT_EQ(visits, SharerBits::kMaxNodes);
}

} // namespace
