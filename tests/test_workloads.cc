/**
 * @file
 * Full-system workload tests: every application kernel runs to
 * completion on both protocols, leaves the machine coherent, and
 * shows the qualitative characteristics its model claims (miss-rate
 * ordering, wireless usage for the high-sharing apps).
 */

#include <gtest/gtest.h>

#include "system/checker.h"
#include "system/manycore.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using sys::Manycore;
using sys::SystemConfig;
using workload::allApps;
using workload::AppInfo;
using workload::WorkloadParams;

struct RunResult
{
    sim::Tick cycles;
    double mpki;
    std::uint64_t wirelessWrites;
    std::uint64_t toWireless;
};

RunResult
runApp(const AppInfo &app, bool wireless, std::uint32_t cores,
       std::uint32_t scale = 1)
{
    SystemConfig cfg = wireless ? SystemConfig::widir(cores)
                                : SystemConfig::baseline(cores);
    Manycore m(cfg);
    WorkloadParams p;
    p.scale = scale;
    RunResult r{};
    r.cycles = m.run(workload::makeProgram(app, p), 200'000'000);
    auto violations = sys::checkCoherence(m);
    for (const auto &v : violations)
        ADD_FAILURE() << app.name << ": " << v;
    auto cpu = m.cpuTotals();
    auto l1 = m.l1Totals();
    r.mpki = cpu.instructions == 0
        ? 0.0
        : 1000.0 *
              static_cast<double>(l1.readMisses + l1.writeMisses) /
              static_cast<double>(cpu.instructions);
    r.wirelessWrites = l1.wirelessWrites;
    r.toWireless = m.dirTotals().toWireless;
    return r;
}

class AppP : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AppP, RunsCoherentlyOnBothProtocols)
{
    const AppInfo &app = allApps().at(GetParam());
    RunResult base = runApp(app, false, 16);
    RunResult widir = runApp(app, true, 16);
    EXPECT_GT(base.cycles, 0u) << app.name;
    EXPECT_GT(widir.cycles, 0u) << app.name;
    EXPECT_EQ(base.wirelessWrites, 0u);
    EXPECT_EQ(base.toWireless, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppP, ::testing::Range<std::size_t>(0, 21),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string name = allApps().at(info.param).name;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Workloads, RegistryIsComplete)
{
    ASSERT_EQ(allApps().size(), 21u);
    int splash = 0, parsec = 0, server = 0;
    for (const auto &app : allApps()) {
        std::string suite(app.suite);
        if (suite == "SPLASH-3")
            ++splash;
        else if (suite == "PARSEC")
            ++parsec;
        else if (suite == "SERVER")
            ++server;
        // Table IV tabulates MPKI for the paper suites only; the
        // server additions are off-table by design.
        if (suite == "SPLASH-3" || suite == "PARSEC")
            EXPECT_GT(app.paperMpki, 0.0) << app.name;
        EXPECT_NE(app.kernel, nullptr) << app.name;
        EXPECT_EQ(app.traceSource, nullptr) << app.name;
    }
    EXPECT_EQ(splash, 13);
    EXPECT_EQ(parsec, 7);
    EXPECT_EQ(server, 1);
    EXPECT_NE(workload::findApp("radiosity"), nullptr);
    EXPECT_NE(workload::findApp("kvstore"), nullptr);
    EXPECT_EQ(workload::findApp("nonesuch"), nullptr);
}

TEST(Workloads, TraceAppRegistration)
{
    // Registered trace workloads are first-class registry entries:
    // findApp resolves them, the pointer stays stable across further
    // registrations, and re-registering a name swaps its trace path.
    const AppInfo *a =
        workload::registerTraceApp("trace:unittest-a", "/tmp/a.trc");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(workload::findApp("trace:unittest-a"), a);
    EXPECT_STREQ(a->suite, "TRACE");
    EXPECT_EQ(a->kernel, nullptr);
    ASSERT_NE(a->traceSource, nullptr);
    EXPECT_EQ(a->traceSource->path, "/tmp/a.trc");

    const AppInfo *b =
        workload::registerTraceApp("trace:unittest-b", "/tmp/b.trc");
    EXPECT_EQ(workload::findApp("trace:unittest-a"), a);
    EXPECT_EQ(a->traceSource->path, "/tmp/a.trc");

    const AppInfo *a2 =
        workload::registerTraceApp("trace:unittest-a", "/tmp/a2.trc");
    EXPECT_EQ(a2, a);
    EXPECT_EQ(a->traceSource->path, "/tmp/a2.trc");
    EXPECT_NE(b, a);
}

TEST(Workloads, HighSharingAppsGoWireless)
{
    // The apps the paper calls out as high-benefit must actually move
    // lines to W and broadcast updates at 64 cores.
    for (const char *name :
         {"radiosity", "ocean-nc", "barnes", "raytrace"}) {
        const AppInfo *app = workload::findApp(name);
        ASSERT_NE(app, nullptr);
        RunResult r = runApp(*app, true, 64);
        EXPECT_GT(r.toWireless, 0u) << name;
        EXPECT_GT(r.wirelessWrites, 0u) << name;
    }
}

TEST(Workloads, PrivateComputeAppsBarelyUseWireless)
{
    const AppInfo *bs = workload::findApp("blackscholes");
    ASSERT_NE(bs, nullptr);
    RunResult r = runApp(*bs, true, 64);
    const AppInfo *rad = workload::findApp("radiosity");
    RunResult rr = runApp(*rad, true, 64);
    EXPECT_LT(r.wirelessWrites, rr.wirelessWrites / 4 + 1)
        << "blackscholes should use far fewer wireless writes";
}

TEST(Workloads, MpkiOrderingMatchesTableIV)
{
    // Coarse sanity: the highest-MPKI apps in Table IV must be well
    // above the lowest ones in our models too (Baseline, 16 cores).
    RunResult ocean = runApp(*workload::findApp("ocean-nc"), false, 16);
    RunResult lunc = runApp(*workload::findApp("lu-nc"), false, 16);
    RunResult water = runApp(*workload::findApp("water-spa"), false, 16);
    RunResult bs = runApp(*workload::findApp("blackscholes"), false, 16);
    EXPECT_GT(ocean.mpki, 3 * water.mpki);
    EXPECT_GT(lunc.mpki, 3 * bs.mpki);
    EXPECT_LT(bs.mpki, 3.0); // cold-start floor at tiny scale
    EXPECT_GT(ocean.mpki, 4.0);
}

} // namespace
