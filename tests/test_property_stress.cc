/**
 * @file
 * Property-based random stress tests: random mixes of loads, stores,
 * RMWs and compute over a small pool of hot shared lines plus private
 * lines, across seeds and both protocols. After quiescence:
 *
 *  - every coherence invariant holds (system/checker.h),
 *  - per-line fetch-add counters are exact (no lost updates),
 *  - runs are deterministic (same seed -> same cycle count),
 *  - data-race-free programs produce identical memory images under
 *    Baseline and WiDir.
 */

#include <gtest/gtest.h>

#include <map>

#include "system/checker.h"
#include "system/manycore.h"

namespace {

using namespace widir;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kHotBase = 0x400000;
constexpr std::uint32_t kHotLines = 4;
constexpr Addr kPrivBase = 0x8000000;

/** Random op mix; every core bumps hot counters a known number of
 *  times so the final totals are checkable. */
Task
stressBody(Thread &t, std::uint32_t iters)
{
    for (std::uint32_t i = 0; i < iters; ++i) {
        std::uint64_t dice = t.rng().below(100);
        Addr hot =
            kHotBase + t.rng().below(kHotLines) * mem::kLineBytes;
        Addr priv = kPrivBase +
                    (static_cast<Addr>(t.id()) << 20) +
                    t.rng().below(32) * 8;
        if (dice < 30) {
            co_await t.fetchAdd(hot, 1); // counted below
        } else if (dice < 55) {
            co_await t.loadNb(hot + 8);
        } else if (dice < 70) {
            std::uint64_t v = co_await t.load(hot + 16);
            (void)v;
        } else if (dice < 85) {
            co_await t.store(priv, i);
        } else {
            co_await t.loadNb(priv);
        }
        co_await t.compute(t.rng().below(40));
    }
    co_await t.fence();
    co_return;
}

/** Sum of the hot counters across wherever they currently live. */
std::uint64_t
hotCounterTotal(Manycore &m)
{
    std::uint64_t total = 0;
    for (std::uint32_t l = 0; l < kHotLines; ++l) {
        Addr a = kHotBase + l * mem::kLineBytes;
        std::uint64_t v = 0;
        bool found = false;
        for (sim::NodeId n = 0; n < m.numCores(); ++n) {
            L1State st = m.l1(n).stateOf(a);
            if (st == L1State::M || st == L1State::E) {
                EXPECT_TRUE(m.l1(n).peekWord(a, v));
                found = true;
                break;
            }
            if (st == L1State::W && !found) {
                EXPECT_TRUE(m.l1(n).peekWord(a, v));
                found = true; // W copies all agree (checker verifies)
            }
        }
        if (!found) {
            auto &home = m.dir(m.fabric().homeOf(a));
            if (auto *e = home.llc().lookup(a))
                v = e->data.word(a);
            else
                v = m.memory().peekLine(a).word(a);
        }
        total += v;
    }
    return total;
}

class StressP : public ::testing::TestWithParam<
                    std::tuple<std::uint64_t, bool, std::uint32_t>>
{
};

TEST_P(StressP, InvariantsAndExactCounters)
{
    auto [seed, wireless, cores] = GetParam();
    SystemConfig cfg = wireless ? SystemConfig::widir(cores)
                                : SystemConfig::baseline(cores);
    cfg.seed = seed;
    Manycore m(cfg);
    constexpr std::uint32_t kIters = 60;
    m.run([](Thread &t) { return stressBody(t, kIters); });

    // Invariants hold at quiescence.
    auto violations = sys::checkCoherence(m);
    for (const auto &v : violations)
        ADD_FAILURE() << v;

    // No lost updates: the RMW mix ran `dice < 30` of iters per core
    // in expectation, but exact counting comes from the L1 stats.
    std::uint64_t rmws = m.l1Totals().rmws -
                         m.l1Totals().wirelessSquashes * 0;
    // Count actual successful RMW ops from the cpu side instead.
    std::uint64_t cpu_rmws = m.cpuTotals().rmws;
    (void)rmws;
    EXPECT_EQ(hotCounterTotal(m), cpu_rmws);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StressP,
    ::testing::Combine(::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                         98765ull),
                       ::testing::Bool(),
                       ::testing::Values(8u, 16u)));

TEST(Determinism, SameSeedSameCycles)
{
    auto once = [](std::uint64_t seed) {
        SystemConfig cfg = SystemConfig::widir(8);
        cfg.seed = seed;
        Manycore m(cfg);
        return m.run(
            [](Thread &t) { return stressBody(t, 40); });
    };
    EXPECT_EQ(once(5), once(5));
    EXPECT_NE(once(5), once(6)); // different seed, different timing
}

/** DRF program: disjoint write sets + a final barrier-ish counter. */
Task
drfBody(Thread &t)
{
    Addr mine = 0x600000 + static_cast<Addr>(t.id()) * 8;
    for (int i = 1; i <= 16; ++i) {
        co_await t.store(mine, static_cast<std::uint64_t>(i * 100 +
                                                          t.id()));
        co_await t.loadNb(0x600000 +
                          t.rng().below(t.numThreads()) * 8);
        co_await t.compute(25);
    }
    co_await t.fence();
    co_await t.fetchAdd(0x700000, 1);
    co_return;
}

TEST(ProtocolEquivalence, DrfProgramsProduceSameMemoryImage)
{
    auto image = [](bool wireless) {
        SystemConfig cfg = wireless ? SystemConfig::widir(16)
                                    : SystemConfig::baseline(16);
        Manycore m(cfg);
        m.run([](Thread &t) { return drfBody(t); });
        auto violations = sys::checkCoherence(m);
        EXPECT_TRUE(violations.empty());
        // Collect the authoritative value of every written word.
        std::map<Addr, std::uint64_t> img;
        for (std::uint32_t id = 0; id < 16; ++id) {
            Addr a = 0x600000 + static_cast<Addr>(id) * 8;
            std::uint64_t v = 0;
            bool found = false;
            for (sim::NodeId n = 0; n < 16 && !found; ++n) {
                L1State st = m.l1(n).stateOf(a);
                if (st != L1State::I)
                    found = m.l1(n).peekWord(a, v);
            }
            if (!found) {
                auto &home = m.dir(m.fabric().homeOf(a));
                if (auto *e = home.llc().lookup(a))
                    v = e->data.word(a);
                else
                    v = m.memory().peekLine(a).word(a);
            }
            img[a] = v;
        }
        return img;
    };
    auto base = image(false);
    auto widir = image(true);
    EXPECT_EQ(base, widir);
    for (auto &[a, v] : base) {
        std::uint32_t id =
            static_cast<std::uint32_t>((a - 0x600000) / 8);
        EXPECT_EQ(v, 16u * 100 + id) << "addr " << a;
    }
}

} // namespace
