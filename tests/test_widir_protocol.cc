/**
 * @file
 * Directed tests of the WiDir protocol transitions (Tables I and II of
 * the paper): S->W with the ToneAck census and jamming, wireless
 * updates with UpdateCount self-invalidation, W->W wired joins, W->S
 * downgrades, W->I evictions, and wireless RMWs.
 *
 * Thread bodies are free coroutine functions; the Program lambdas only
 * forward to them (so no captures end up in coroutine frames).
 */

#include <gtest/gtest.h>

#include "system/manycore.h"

namespace {

using namespace widir;
using coherence::DirState;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sys::Manycore;
using sys::SystemConfig;

constexpr Addr kA = 0x200000;    // shared word under test
constexpr Addr kCnt = kA + 64;   // coordination counter (own line)

SystemConfig
smallWiDir(std::uint32_t cores = 8)
{
    return SystemConfig::widir(cores);
}

/** Threads [0, readers) read kA one after another via kCnt. */
Task
serializedReaders(Thread &t, std::uint32_t readers)
{
    if (t.id() < readers) {
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (v_ == t.id())
                break;
            co_await t.compute(20);
        }
        co_await t.loadNb(kA);
        co_await t.fence();
        co_await t.fetchAdd(kCnt, 1);
    }
    co_return;
}

TEST(WiDir, FourthSharerTriggersWirelessTransition)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return serializedReaders(t, 4); });

    // Dir_3_B with MaxWiredSharers=3: the 4th reader pushes the line
    // into the Wireless state (Table II, S->W).
    auto &home = m.dir(m.fabric().homeOf(kA));
    EXPECT_EQ(home.stateOf(kA), DirState::W);
    const auto *e = home.entryOf(kA);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->sharerCount, 4u);
    EXPECT_FALSE(e->bcast); // never set in WiDir
    for (sim::NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(m.l1(n).stateOf(kA), L1State::W) << n;
    // kA transitions once; the coordination counter kCnt is itself a
    // hot word and may transition too.
    EXPECT_GE(m.dirTotals().toWireless, 1u);
}

TEST(WiDir, ThreeSharersStayWired)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return serializedReaders(t, 3); });
    auto &home = m.dir(m.fabric().homeOf(kA));
    EXPECT_EQ(home.stateOf(kA), DirState::S);
    EXPECT_EQ(m.dirTotals().toWireless, 0u);
}

/** 4 readers, then thread 0 writes; sharers see the update in place. */
Task
wirelessUpdateBody(Thread &t)
{
    if (t.id() < 4) {
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (v_ == t.id())
                break;
            co_await t.compute(20);
        }
        co_await t.loadNb(kA);
        co_await t.fence();
        co_await t.fetchAdd(kCnt, 1);
        if (t.id() == 0) {
            // Wait until everyone shares, then write wirelessly.
            for (;;) {
                std::uint64_t v_ = co_await t.load(kCnt);
                if (!(v_ != 4))
                    break;
                co_await t.compute(20);
            }
            co_await t.store(kA, 1234);
            co_await t.fence();
            co_await t.fetchAdd(kCnt, 1);
        } else {
            // Hold our W copy until the writer is done (local reads
            // keep UpdateCount at zero).
            for (;;) {
                std::uint64_t v_ = co_await t.load(kCnt);
                if (!(v_ != 5))
                    break;
                co_await t.compute(20);
                co_await t.loadNb(kA);
            }
        }
    }
    co_return;
}

TEST(WiDir, WirelessWriteUpdatesAllSharers)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return wirelessUpdateBody(t); });

    // Every surviving W sharer holds the written value locally.
    std::uint64_t v = 0;
    for (sim::NodeId n = 0; n < 4; ++n) {
        if (m.l1(n).stateOf(kA) == L1State::W) {
            ASSERT_TRUE(m.l1(n).peekWord(kA, v));
            EXPECT_EQ(v, 1234u) << "sharer " << n;
        }
    }
    // The home LLC copy was updated by observing the frame.
    auto &home = m.dir(m.fabric().homeOf(kA));
    auto *llc = home.llc().lookup(kA);
    ASSERT_NE(llc, nullptr);
    EXPECT_EQ(llc->data.word(kA), 1234u);
    EXPECT_TRUE(llc->dirty);
    EXPECT_GE(m.l1Totals().wirelessWrites, 1u);
    EXPECT_GE(m.l1Totals().updatesApplied, 1u);
}

/** After the group forms, a 5th core joins through the wired network. */
Task
wJoinBody(Thread &t)
{
    if (t.id() < 4) {
        return serializedReaders(t, 4);
    }
    return [](Thread &u) -> Task {
        if (u.id() == 4) {
            for (;;) {
                std::uint64_t v_ = co_await u.load(kCnt);
                if (!(v_ != 4))
                    break;
                co_await u.compute(20);
            }
            co_await u.loadNb(kA); // wired GetS -> WirUpgr join
            co_await u.fence();
        }
        co_return;
    }(t);
}

TEST(WiDir, LateReaderJoinsWirelessGroup)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return wJoinBody(t); });
    auto &home = m.dir(m.fabric().homeOf(kA));
    EXPECT_EQ(home.stateOf(kA), DirState::W);
    const auto *e = home.entryOf(kA);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->sharerCount, 5u);
    EXPECT_EQ(m.l1(4).stateOf(kA), L1State::W);
    EXPECT_GE(m.dirTotals().wJoins, 1u);
}

/**
 * UpdateCount: a sharer that stops touching the line while others keep
 * writing self-invalidates and sends PutW (Section III-B2).
 */
Task
updateCountBody(Thread &t)
{
    if (t.id() >= 6)
        co_return;
    // 6 cores form a wireless group.
    for (;;) {
        std::uint64_t v_ = co_await t.load(kCnt);
        if (v_ == t.id())
            break;
        co_await t.compute(20);
    }
    co_await t.loadNb(kA);
    co_await t.fence();
    co_await t.fetchAdd(kCnt, 1);
    for (;;) {
        std::uint64_t v_ = co_await t.load(kCnt);
        if (!(v_ != 6))
            break;
        co_await t.compute(20);
    }
    if (t.id() == 0) {
        // Hammer the word; passive sharers should drop out after
        // updateCountThreshold updates each.
        for (int i = 0; i < 40; ++i) {
            co_await t.store(kA, static_cast<std::uint64_t>(i));
            co_await t.fence();
            co_await t.compute(50);
        }
    } else {
        // Do unrelated work; never touch kA again.
        for (int i = 0; i < 40; ++i)
            co_await t.compute(100);
    }
    co_return;
}

TEST(WiDir, IdleSharersSelfInvalidateAndLineReturnsToWired)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return updateCountBody(t); });

    // Passive sharers dropped out via UpdateCount...
    EXPECT_GE(m.l1Totals().selfInvalidations, 1u);
    EXPECT_GE(m.l1Totals().putWSent, 1u);
    // ...and once the count fell to MaxWiredSharers the line went back
    // to the wired protocol (Table II, W->S).
    EXPECT_GE(m.dirTotals().toShared, 1u);
    auto &home = m.dir(m.fabric().homeOf(kA));
    DirState st = home.stateOf(kA);
    EXPECT_TRUE(st == DirState::S || st == DirState::I ||
                st == DirState::EM)
        << "line still wireless: " << coherence::dirStateName(st);
}

/** Wireless RMW: 6 cores atomically increment a W-state word. */
Task
wirelessRmwBody(Thread &t)
{
    if (t.id() >= 6)
        co_return;
    for (;;) {
        std::uint64_t v_ = co_await t.load(kCnt);
        if (v_ == t.id())
            break;
        co_await t.compute(20);
    }
    co_await t.loadNb(kA);
    co_await t.fence();
    co_await t.fetchAdd(kCnt, 1);
    for (;;) {
        std::uint64_t v_ = co_await t.load(kCnt);
        if (!(v_ != 6))
            break;
        co_await t.compute(20);
    }
    // All cores increment concurrently through the wireless path.
    for (int i = 0; i < 25; ++i)
        co_await t.fetchAdd(kA, 1);
    co_return;
}

TEST(WiDir, WirelessRmwIsAtomic)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return wirelessRmwBody(t); });

    // Find the authoritative value wherever the line ended up.
    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < m.numCores() && !found; ++n) {
        L1State st = m.l1(n).stateOf(kA);
        if (st == L1State::M || st == L1State::E ||
            st == L1State::W) {
            ASSERT_TRUE(m.l1(n).peekWord(kA, v));
            found = true;
        }
    }
    if (!found) {
        auto *e = m.dir(m.fabric().homeOf(kA)).llc().lookup(kA);
        ASSERT_NE(e, nullptr);
        v = e->data.word(kA);
    }
    EXPECT_EQ(v, 150u); // 6 cores x 25 increments, none lost
}

/**
 * W->I: evicting the LLC line broadcasts WirInv; cached copies vanish
 * and the next access re-allocates through the wired path.
 */
Task
wirInvBody(Thread &t)
{
    if (t.id() < 4) {
        // Build the wireless group on kA.
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (v_ == t.id())
                break;
            co_await t.compute(20);
        }
        co_await t.loadNb(kA);
        co_await t.fence();
        co_await t.fetchAdd(kCnt, 1);
    }
    if (t.id() == 0) {
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (!(v_ != 4))
                break;
            co_await t.compute(20);
        }
        // Stream lines that map to kA's home slice and LLC set (8
        // nodes, 8-set slice: line-number stride 64, i.e. 4KB) to
        // force the W line's eviction. These hit distinct L1 sets, so
        // core 0 keeps its W copy of kA while the LLC thrashes.
        for (int i = 1; i <= 12; ++i) {
            co_await t.loadNb(kA + static_cast<Addr>(i) * 64 * 64);
            co_await t.fence();
        }
        co_await t.fetchAdd(kCnt, 1);
    }
    co_return;
}

TEST(WiDir, LlcEvictionOfWirelessLineBroadcastsWirInv)
{
    SystemConfig cfg = smallWiDir(8);
    cfg.llc.sizeBytes = 4096; // 8 sets x 8 ways per slice: easy to thrash
    Manycore m(cfg);
    m.run([](Thread &t) { return wirInvBody(t); });

    EXPECT_GE(m.dirTotals().wirInvs, 1u);
    // No cache may still hold the line in W after the WirInv.
    auto &home = m.dir(m.fabric().homeOf(kA));
    if (home.llc().lookup(kA) == nullptr) {
        for (sim::NodeId n = 0; n < 8; ++n)
            EXPECT_NE(m.l1(n).stateOf(kA), L1State::W) << n;
    }
}

/** The triggering request may be a write (GetX path of Table I). */
Task
writeTriggerBody(Thread &t)
{
    if (t.id() < 3) {
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (v_ == t.id())
                break;
            co_await t.compute(20);
        }
        co_await t.loadNb(kA);
        co_await t.fence();
        co_await t.fetchAdd(kCnt, 1);
    } else if (t.id() == 3) {
        for (;;) {
            std::uint64_t v_ = co_await t.load(kCnt);
            if (!(v_ != 3))
                break;
            co_await t.compute(20);
        }
        // Non-sharer write to a line with 3 sharers: triggers S->W and
        // then issues the update wirelessly (Table I, I->W case 4).
        co_await t.store(kA, 777);
        co_await t.fence();
    }
    co_return;
}

TEST(WiDir, NonSharerWriteTriggersTransitionAndWirelessUpdate)
{
    Manycore m(smallWiDir());
    m.run([](Thread &t) { return writeTriggerBody(t); });

    auto &home = m.dir(m.fabric().homeOf(kA));
    EXPECT_EQ(home.stateOf(kA), DirState::W);
    EXPECT_GE(m.l1Totals().wirelessWrites, 1u);
    // Everyone who still shares the line observed 777.
    for (sim::NodeId n = 0; n < 4; ++n) {
        if (m.l1(n).stateOf(kA) == L1State::W) {
            std::uint64_t v = 0;
            ASSERT_TRUE(m.l1(n).peekWord(kA, v));
            EXPECT_EQ(v, 777u) << n;
        }
    }
    auto *llc = home.llc().lookup(kA);
    ASSERT_NE(llc, nullptr);
    EXPECT_EQ(llc->data.word(kA), 777u);
}

/** Heavy mixed stress: all cores read/write/rmw one hot word. */
Task
hotWordStress(Thread &t)
{
    for (int i = 0; i < 30; ++i) {
        co_await t.fetchAdd(kA, 1);
        co_await t.loadNb(kA);
        co_await t.compute(t.rng().below(60));
        if (t.rng().chance(0.3)) {
            std::uint64_t v = co_await t.load(kA);
            (void)v;
        }
    }
    co_return;
}

TEST(WiDir, HotWordStressKeepsCountExact)
{
    Manycore m(smallWiDir(16));
    m.run([](Thread &t) { return hotWordStress(t); });

    std::uint64_t v = 0;
    bool found = false;
    for (sim::NodeId n = 0; n < m.numCores(); ++n) {
        L1State st = m.l1(n).stateOf(kA);
        if (st == L1State::M || st == L1State::E || st == L1State::W) {
            ASSERT_TRUE(m.l1(n).peekWord(kA, v));
            found = true;
            break;
        }
    }
    if (!found) {
        auto *e = m.dir(m.fabric().homeOf(kA)).llc().lookup(kA);
        ASSERT_NE(e, nullptr);
        v = e->data.word(kA);
    }
    EXPECT_EQ(v, 16u * 30u);
}

TEST(WiDir, SixtyFourCoreBarrierStyleSmoke)
{
    Manycore m(smallWiDir(64));
    sim::Tick cycles = m.run([](Thread &t) -> Task {
        // Barrier-ish: everyone increments, then spins until all 64
        // arrive. This is the pattern WiDir accelerates.
        co_await t.fetchAdd(kA, 1);
        for (;;) {
            std::uint64_t v_ = co_await t.load(kA);
            if (!(v_ < 64))
                break;
            co_await t.compute(10);
        }
        co_return;
    });
    EXPECT_GT(cycles, 0u);
    EXPECT_GE(m.dirTotals().toWireless, 1u);
    EXPECT_GE(m.l1Totals().wirelessWrites, 1u);
}

} // namespace
