/**
 * @file
 * Tracer and trace-sink tests (schema widir-trace-v1):
 *
 *  - disabled tracing emits zero records and perturbs no stats field
 *    (traced and untraced runs serialize to identical JSON);
 *  - a scripted two-core false-sharing run produces exactly the
 *    documented transition sequence (docs/PROTOCOL.md);
 *  - the Chrome exporter produces valid trace-event JSON;
 *  - the window filter, warn() routing, ring overflow and the
 *    transition-legality checker behave as documented in
 *    docs/TRACING.md;
 *  - the legality checker accepts the traces of every registered
 *    workload under WiDir.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/directory_controller.h"
#include "core/l1_controller.h"
#include "mem/address.h"
#include "system/experiment.h"
#include "system/manycore.h"
#include "system/report.h"
#include "system/trace_sinks.h"
#include "workload/registry.h"

namespace {

using namespace widir;
using coherence::DirState;
using coherence::L1State;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sim::TraceComponent;
using sim::TraceKind;
using sim::TraceRecord;
using sim::Tracer;
using sys::Manycore;
using sys::SystemConfig;
using sys::TraceRing;

constexpr Addr kA = 0x100000; // line-aligned shared word

TEST(Tracer, DisabledEmitsNothing)
{
    Manycore m(SystemConfig::baseline(4));
    std::uint64_t seen = 0;
    m.simulator().tracer().addSink(
        [&seen](const TraceRecord &) { ++seen; });
    // Tracer deliberately NOT enabled.
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.store(kA, 1);
            co_await t.fence();
        }
        co_return;
    });
    EXPECT_EQ(seen, 0u);
    EXPECT_EQ(m.simulator().tracer().emitted(), 0u);
}

TEST(Tracer, WindowFilterIsInclusive)
{
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.setWindow(10, 20);
    std::vector<sim::Tick> seen;
    tracer.addSink(
        [&seen](const TraceRecord &r) { seen.push_back(r.tick); });
    for (sim::Tick t : {5, 10, 15, 20, 25}) {
        TraceRecord r;
        r.tick = t;
        tracer.emit(r);
    }
    EXPECT_EQ(seen, (std::vector<sim::Tick>{10, 15, 20}));
    EXPECT_EQ(tracer.emitted(), 3u);
}

TEST(Tracer, ScriptedFalseSharingTransitionSequence)
{
    Manycore m(SystemConfig::baseline(4));
    TraceRing ring;
    Tracer &tracer = m.simulator().tracer();
    tracer.setEnabled(true);
    tracer.addSink(ring.sink());

    // Core 0 writes the line, then core 1 steals ownership: the
    // documented Table I / Table II sequence is
    //   L1(0)  I->M  (fill)      dir I->EM (memory fetch for GetX)
    //   L1(0)  M->I  (FwdGetX)   dir EM->EM (owner hand-off)
    //   L1(1)  I->M  (fill)
    constexpr Addr kFlag = kA + 64; // separate line
    m.run([](Thread &t) -> Task {
        if (t.id() == 0) {
            co_await t.store(kA, 7);
            co_await t.fence();
            co_await t.store(kFlag, 1);
            co_await t.fence();
        } else if (t.id() == 1) {
            for (;;) {
                std::uint64_t v = co_await t.load(kFlag);
                if (v != 0)
                    break;
                co_await t.compute(10);
            }
            co_await t.store(kA, 8);
            co_await t.fence();
        }
        co_return;
    });

    struct Step
    {
        sim::NodeId node;
        std::uint8_t from, to;
        std::string note;
    };
    std::vector<Step> l1, dir;
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const TraceRecord &r = ring.at(i);
        if (r.line != kA)
            continue;
        if (r.kind == TraceKind::L1Transition)
            l1.push_back({r.node, r.from, r.to,
                          r.note ? r.note : ""});
        else if (r.kind == TraceKind::DirTransition)
            dir.push_back({r.node, r.from, r.to,
                           r.note ? r.note : ""});
    }

    auto l1s = [](L1State s) { return static_cast<std::uint8_t>(s); };
    auto dls = [](DirState s) { return static_cast<std::uint8_t>(s); };
    ASSERT_EQ(l1.size(), 3u);
    EXPECT_EQ(l1[0].node, 0u);
    EXPECT_EQ(l1[0].from, l1s(L1State::I));
    EXPECT_EQ(l1[0].to, l1s(L1State::M));
    EXPECT_EQ(l1[0].note, "fill");
    EXPECT_EQ(l1[1].node, 0u);
    EXPECT_EQ(l1[1].from, l1s(L1State::M));
    EXPECT_EQ(l1[1].to, l1s(L1State::I));
    EXPECT_EQ(l1[1].note, "FwdGetX");
    EXPECT_EQ(l1[2].node, 1u);
    EXPECT_EQ(l1[2].from, l1s(L1State::I));
    EXPECT_EQ(l1[2].to, l1s(L1State::M));
    EXPECT_EQ(l1[2].note, "fill");

    ASSERT_EQ(dir.size(), 2u);
    EXPECT_EQ(dir[0].from, dls(DirState::I));
    EXPECT_EQ(dir[0].to, dls(DirState::EM));
    EXPECT_EQ(dir[0].note, "fetch");
    EXPECT_EQ(dir[1].from, dls(DirState::EM));
    EXPECT_EQ(dir[1].to, dls(DirState::EM));
    EXPECT_EQ(dir[1].note, "FwdGetX");

    // The full scripted trace is strictly legal.
    EXPECT_EQ(ring.dropped(), 0u);
    auto violations = sys::checkTraceLegality(ring, true);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
}

TEST(Tracer, TracingDoesNotPerturbStats)
{
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("fft");
    ASSERT_NE(spec.app, nullptr);
    spec.protocol = coherence::Protocol::WiDir;
    spec.cores = 8;
    spec.scale = 1;

    sys::ExperimentResult untraced = sys::runExperiment(spec);
    spec.trace.enabled = true;
    sys::ExperimentResult traced = sys::runExperiment(spec);

    // Tracing must not touch the RNG streams or any timing: every
    // stats field the sweep schema serializes is bit-identical. The
    // host_* wall-clock fields are the sanctioned exception
    // (docs/PERF.md) -- zero them; executed_events must still match.
    EXPECT_EQ(untraced.executedEvents, traced.executedEvents);
    untraced.hostSeconds = traced.hostSeconds = 0.0;
    untraced.hostEventsPerSec = traced.hostEventsPerSec = 0.0;
    EXPECT_EQ(sys::resultToJson(untraced), sys::resultToJson(traced));
    EXPECT_GT(traced.traceRecords, 0u);
    EXPECT_EQ(untraced.traceRecords, 0u);
}

TEST(Tracer, ChromeExportIsValidTraceEventJson)
{
    std::string path = testing::TempDir() + "widir_trace_test.json";
    sys::ExperimentSpec spec;
    spec.app = workload::findApp("fft");
    ASSERT_NE(spec.app, nullptr);
    spec.protocol = coherence::Protocol::WiDir;
    spec.cores = 8;
    spec.scale = 1;
    spec.trace.enabled = true;
    spec.trace.file = path;
    sys::runExperiment(spec);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    sys::json::Value doc;
    std::string err;
    ASSERT_TRUE(sys::json::parse(text, doc, &err)) << err;
    const sys::json::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "widir-trace-v1");
    const sys::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->array.size(), 100u);

    bool meta_l1 = false, instant = false, complete = false;
    for (const auto &e : events->array) {
        const sys::json::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M") {
            const sys::json::Value *args = e.find("args");
            ASSERT_NE(args, nullptr);
            const sys::json::Value *name = args->find("name");
            if (name && name->string == "L1")
                meta_l1 = true;
        } else if (ph->string == "i") {
            instant = true;
            EXPECT_NE(e.find("ts"), nullptr);
        } else if (ph->string == "X") {
            complete = true;
            EXPECT_NE(e.find("dur"), nullptr);
        }
    }
    EXPECT_TRUE(meta_l1);
    EXPECT_TRUE(instant);
    EXPECT_TRUE(complete);
}

TEST(Tracer, WarnRoutesIntoActiveTrace)
{
    // Print threshold set to Error: the warning is suppressed on
    // stderr yet still lands in the trace (docs in sim/log.h).
    sim::LogLevel prev = sim::setLogThreshold(sim::LogLevel::Error);
    sim::Simulator simulator;
    simulator.tracer().setEnabled(true);
    std::vector<TraceRecord> seen;
    simulator.tracer().addSink(
        [&seen](const TraceRecord &r) { seen.push_back(r); });
    simulator.schedule(42, [] { sim::warn("probe %d", 7); });
    simulator.run();
    sim::setLogThreshold(prev);

    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].kind, TraceKind::Warn);
    EXPECT_EQ(seen[0].comp, TraceComponent::Log);
    EXPECT_EQ(seen[0].tick, 42u);
    EXPECT_EQ(seen[0].text, "probe 7");
}

TEST(TraceRing, OverflowKeepsNewestAndCountsDrops)
{
    TraceRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        TraceRecord r;
        r.arg = i;
        ring.push(r);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).arg, 6u + i);
}

TEST(TraceLegality, RejectsIllegalAndBrokenTraces)
{
    auto l1rec = [](sim::NodeId node, L1State from, L1State to) {
        TraceRecord r;
        r.kind = TraceKind::L1Transition;
        r.comp = TraceComponent::L1;
        r.node = node;
        r.line = kA;
        r.from = static_cast<std::uint8_t>(from);
        r.to = static_cast<std::uint8_t>(to);
        r.fromName = coherence::l1StateName(from);
        r.toName = coherence::l1StateName(to);
        return r;
    };

    {
        // W->E is not an edge of Table I: flagged even non-strict.
        TraceRing ring;
        ring.push(l1rec(0, L1State::W, L1State::E));
        EXPECT_FALSE(sys::checkTraceLegality(ring, false).empty());
    }
    {
        // Continuity break: node 0 traced to M, next record claims
        // it was in S. Legal edges, so only strict mode flags it.
        TraceRing ring;
        ring.push(l1rec(0, L1State::I, L1State::M));
        ring.push(l1rec(0, L1State::S, L1State::I));
        EXPECT_TRUE(sys::checkTraceLegality(ring, false).empty());
        EXPECT_FALSE(sys::checkTraceLegality(ring, true).empty());
    }
    {
        // SWMR: two nodes in M on the same line at once.
        TraceRing ring;
        ring.push(l1rec(0, L1State::I, L1State::M));
        ring.push(l1rec(1, L1State::I, L1State::M));
        EXPECT_FALSE(sys::checkTraceLegality(ring, true).empty());
    }
    {
        // The same sequence with a hand-off in between is fine.
        TraceRing ring;
        ring.push(l1rec(0, L1State::I, L1State::M));
        ring.push(l1rec(0, L1State::M, L1State::I));
        ring.push(l1rec(1, L1State::I, L1State::M));
        EXPECT_TRUE(sys::checkTraceLegality(ring, true).empty());
    }
}

TEST(TraceLegality, AllWorkloadsProduceLegalTraces)
{
    // Every registered workload, traced under WiDir: runExperiment
    // fatal()s on an illegal trace, so reaching the end is the pass.
    for (const auto &app : workload::allApps()) {
        sys::ExperimentSpec spec;
        spec.app = &app;
        spec.protocol = coherence::Protocol::WiDir;
        spec.cores = 8;
        spec.scale = 1;
        spec.trace.enabled = true;
        sys::ExperimentResult r = sys::runExperiment(spec);
        EXPECT_GT(r.traceRecords, 0u) << app.name;
    }
}

} // namespace
