/**
 * @file
 * Model-checking-style state explorer for the protocol table
 * (core/protocol_table.h). Small machines (4 nodes, optionally tiny
 * caches) are driven through directed scenarios, exhaustive
 * small-depth interleavings, and seeded random walks, while a tracer
 * sink accumulates every observed `L1Transition` / `DirTransition`
 * edge keyed by (side, from, to, note). The explorer then checks the
 * table in both directions:
 *
 *  - soundness: every observed edge is a noted rule row (nothing the
 *    controllers trace is missing from the table);
 *  - completeness: every noted rule key is observed (every table edge
 *    is reachable), except keys whose rows are all `kRuleFaultOnly`,
 *    which a dedicated fault-injection phase reaches instead.
 *
 * `kRuleUnreachable` rows carry no note, so they have no coverage key;
 * their handlers assert they never fire, which every run here
 * exercises implicitly. Every run also ends with `sys::checkCoherence`
 * and replays its trace through `sys::checkTraceLegality`.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/protocol_table.h"
#include "mem/address.h"
#include "system/checker.h"
#include "system/manycore.h"
#include "system/trace_sinks.h"

namespace {

using namespace widir;
using coherence::dirRules;
using coherence::dirStateName;
using coherence::kRuleFaultOnly;
using coherence::l1Rules;
using coherence::l1StateName;
using cpu::Task;
using cpu::Thread;
using sim::Addr;
using sim::TraceKind;
using sim::TraceRecord;
using sys::Manycore;
using sys::Program;
using sys::SystemConfig;
using sys::TraceRing;

/** One coverage target: a traced transition with its exact note. */
using EdgeKey = std::tuple<bool /*dirSide*/, std::uint8_t /*from*/,
                           std::uint8_t /*to*/, std::string /*note*/>;

std::string
keyName(const EdgeKey &k)
{
    auto [dir, from, to, note] = k;
    std::string out = dir ? "dir " : "L1  ";
    if (dir)
        out += std::string(dirStateName(
                   static_cast<coherence::DirState>(from))) +
               " -> " +
               dirStateName(static_cast<coherence::DirState>(to));
    else
        out += std::string(l1StateName(
                   static_cast<coherence::L1State>(from))) +
               " -> " + l1StateName(static_cast<coherence::L1State>(to));
    return out + " \"" + note + "\"";
}

/**
 * Coverage targets from the table: every noted rule key, mapped to
 * whether ALL rows with that key are fault-only (a key with both a
 * fault row and a normal row is reachable without faults).
 */
std::map<EdgeKey, bool>
tableTargets()
{
    std::map<EdgeKey, bool> t;
    auto add = [&t](const EdgeKey &k, bool fault_only) {
        auto [it, fresh] = t.try_emplace(k, fault_only);
        if (!fresh)
            it->second = it->second && fault_only;
    };
    for (const coherence::L1Rule &r : l1Rules()) {
        if (r.note)
            add({false, static_cast<std::uint8_t>(r.from),
                 static_cast<std::uint8_t>(r.to), r.note},
                (r.flags & kRuleFaultOnly) != 0);
    }
    for (const coherence::DirRule &r : dirRules()) {
        if (r.note)
            add({true, static_cast<std::uint8_t>(r.from),
                 static_cast<std::uint8_t>(r.to), r.note},
                (r.flags & kRuleFaultOnly) != 0);
    }
    return t;
}

/** Runs programs and accumulates every traced transition edge. */
class Explorer
{
  public:
    std::set<EdgeKey> observed;
    std::uint64_t runs = 0;

    void
    run(const SystemConfig &cfg, const Program &program)
    {
        Manycore m(cfg);
        TraceRing ring(1u << 20);
        sim::Tracer &tracer = m.simulator().tracer();
        tracer.setEnabled(true);
        tracer.addSink(ring.sink());
        tracer.addSink([this](const TraceRecord &r) {
            if (r.kind == TraceKind::L1Transition)
                observed.insert({false, r.from, r.to,
                                 r.note ? r.note : ""});
            else if (r.kind == TraceKind::DirTransition)
                observed.insert({true, r.from, r.to,
                                 r.note ? r.note : ""});
        });
        m.run(program);
        ++runs;
        auto violations = sys::checkCoherence(m);
        EXPECT_TRUE(violations.empty())
            << "run " << runs << ": " << violations.front();
        auto illegal = sys::checkTraceLegality(ring, ring.dropped() == 0);
        EXPECT_TRUE(illegal.empty())
            << "run " << runs << ": " << illegal.front();
    }

    /** Soundness: everything observed must be a noted table row. */
    void
    expectObservedSubsetOfTable() const
    {
        auto table = tableTargets();
        for (const EdgeKey &k : observed) {
            EXPECT_TRUE(table.count(k))
                << "controller traced an edge the protocol table does "
                << "not list: " << keyName(k);
        }
    }
};

// ---------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------

/**
 * Lines homed at node 0 of a 4-node machine (lineNumber % 4 == 0),
 * all mapping to L1 set 0 of the tiny 256 B / 2-way L1 (even line
 * numbers) and to the single set of the tiny 512 B / 8-way LLC bank.
 */
Addr
hl(unsigned i)
{
    return 0x100000 + static_cast<Addr>(i) * 4 * mem::kLineBytes;
}

/**
 * Synchronization flags on odd line numbers: homed away from node 0
 * and mapping to L1 set 1, so spinning never evicts the home-0 lines
 * a tiny-L1 scenario is steering.
 */
Addr
flag(unsigned i)
{
    return 0x200000 +
           static_cast<Addr>(2 * i + 1) * mem::kLineBytes;
}

/** Spin until the word at @p f reaches @p v (coroutine body helper). */
#define AWAIT_FLAG(t, f, v)                                             \
    for (;;) {                                                          \
        if ((co_await (t).load(f)) >= (v))                              \
            break;                                                      \
        co_await (t).compute(20);                                       \
    }

#define BUMP_FLAG(t, f)                                                 \
    do {                                                                \
        co_await (t).fetchAdd((f), 1);                                  \
        co_await (t).fence();                                           \
    } while (0)

// ---------------------------------------------------------------------
// Configs
// ---------------------------------------------------------------------

SystemConfig
smallWidir()
{
    return SystemConfig::widir(4);
}

/** Aggressive wireless knobs: any 2+-sharer upgrade starts a census. */
SystemConfig
wirelessCfg()
{
    SystemConfig cfg = smallWidir();
    cfg.protocol.maxWiredSharers = 1;
    cfg.protocol.updateCountThreshold = 2;
    return cfg;
}

/** 256 B / 2-way L1: two sets, so three home-0 lines force evictions. */
void
tinyL1(SystemConfig &cfg)
{
    cfg.l1.sizeBytes = 256;
    cfg.l1.assoc = 2;
}

/** 512 B / 8-way LLC bank: one set, so nine home-0 lines force recalls. */
void
tinyLlc(SystemConfig &cfg)
{
    cfg.llc.sizeBytes = 512;
    cfg.llc.assoc = 8;
}

// ---------------------------------------------------------------------
// Directed scenarios
// ---------------------------------------------------------------------

/** Wired MESI basics: fills, forwards, upgrades, invalidations. */
Task
mesiBasics(Thread &t)
{
    const Addr A = hl(0), B = hl(1), C = hl(2), D = hl(3);
    const Addr F = flag(0);
    switch (t.id()) {
      case 0:
        co_await t.load(A);           // I->E (dir I->EM, "fetch")
        co_await t.store(A, 1);       // E->M "store"
        co_await t.load(B);           // I->E
        co_await t.fetchAdd(B, 1);    // E->M "rmw"
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 1
        AWAIT_FLAG(t, F, 5);
        co_await t.load(D);           // I->E
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 6
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        co_await t.load(A);           // core0 M->S "FwdGetS"; I->S fill
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 2
        AWAIT_FLAG(t, F, 3);
        co_await t.store(A, 2);       // upgrade: dir S->EM "InvColl",
                                      // sharers S->I "Inv", S->M fill
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 4
        AWAIT_FLAG(t, F, 6);
        co_await t.load(D);           // core0 E->S "FwdGetS"
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 7
        break;
      case 2:
        AWAIT_FLAG(t, F, 2);
        co_await t.load(A);           // dir S grows; I->S fill
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 3
        AWAIT_FLAG(t, F, 4);
        co_await t.store(A, 3);       // dir EM->EM "FwdGetX";
                                      // core1 M->I "FwdGetX"; I->M fill
        co_await t.load(C);           // I->E
        co_await t.fence();
        BUMP_FLAG(t, F);              // -> 5
        break;
      case 3:
        AWAIT_FLAG(t, F, 7);
        co_await t.store(C, 4);       // core2 E->I "FwdGetX"
        co_await t.load(A);           // core2 M->S "FwdGetS"
        co_await t.store(A, 5);       // sole... 2 sharers: InvColl again
        co_await t.fence();
        break;
    }
    co_return;
}

/** Tiny-L1 capacity evictions: PutS/PutE/PutM and LLC re-hits. */
Task
evictions(Thread &t)
{
    const Addr P = hl(0), Q = hl(1), R = hl(2);
    const Addr F = flag(1);
    switch (t.id()) {
      case 0:
        co_await t.load(P);      // fetch, I->E
        co_await t.load(Q);
        co_await t.load(R);      // evicts P: E->I "evict", dir "PutE"
        co_await t.load(P);      // LLC hit: dir I->EM "GetS"; evicts Q
        co_await t.store(P, 1);  // E->M
        co_await t.load(Q);      // evicts R (PutE)
        co_await t.load(R);      // evicts P: M->I "evict", dir "PutM"
        co_await t.store(P, 2);  // LLC hit: dir I->EM "GetX"; I->M fill
        co_await t.fence();
        BUMP_FLAG(t, F);         // -> 1
        AWAIT_FLAG(t, F, 2);
        co_await t.load(Q);      // evict oldest of {P,R}
        co_await t.load(R);      // evict the other; P leaves in S:
                                 // S->I "evict"; last sharer: dir "PutS"
        co_await t.fence();
        BUMP_FLAG(t, F);         // -> 3
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        co_await t.load(P);      // FwdGetS: core0 M->S, dir EM->S
        co_await t.load(Q);
        co_await t.load(R);      // evicts P in S: "evict" + PutS
        co_await t.fence();
        BUMP_FLAG(t, F);         // -> 2
        break;
      default:
        break;
    }
    co_return;
}

/** Tiny-LLC recalls: RecallEM (owner in E and in M) and RecallS. */
Task
recalls(Thread &t)
{
    const Addr F = flag(2);
    switch (t.id()) {
      case 0:
        co_await t.store(hl(0), 1); // A0 owned in M
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 1
        AWAIT_FLAG(t, F, 2);
        co_await t.load(hl(9));     // 10th home-0 line: keeps churning
        co_await t.fence();
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        // Fill the single home-0 LLC set: the 9th line recalls A0
        // (owner in M -> Inv needData -> M->I "Inv", dir "recall");
        // further fills recall this core's own E lines (E->I "Inv").
        for (unsigned i = 1; i <= 8; ++i)
            co_await t.load(hl(i));
        co_await t.load(hl(0));     // refetch; evicts an E line
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 2
        AWAIT_FLAG(t, F, 4);
        for (unsigned i = 10; i <= 17; ++i)
            co_await t.load(hl(i)); // churn: recalls the shared A0
                                    // (sharers S->I "Inv", dir S->I
                                    // "recall")
        co_await t.fence();
        break;
      case 2:
        AWAIT_FLAG(t, F, 2);
        co_await t.load(hl(0));     // share A0 ...
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 3
        break;
      case 3:
        AWAIT_FLAG(t, F, 3);
        co_await t.load(hl(0));     // ... S with two sharers
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 4
        break;
    }
    co_return;
}

/** Census, joins, wireless updates, self-invalidation, teardown. */
Task
wireless(Thread &t)
{
    const Addr L = hl(0);
    const Addr F = flag(3);
    switch (t.id()) {
      case 0:
        co_await t.load(L);        // I->E
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 1
        AWAIT_FLAG(t, F, 3);
        // Three S sharers > maxWiredSharers=1: census S->W
        // (sharers trace "BrWirUpgr", dir traces "census").
        co_await t.store(L, 1);
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 4
        AWAIT_FLAG(t, F, 6);
        // Consecutive updates with no remote access: every other
        // sharer trips updateCountThreshold=2, self-invalidates
        // (W->I "UpdateCount") and leaves wired (dir "PutW"); the
        // count draining to 1 tears the group down (W->S "WirDwgr").
        co_await t.store(L, 2);
        co_await t.store(L, 3);
        co_await t.fence();
        co_await t.compute(3000);  // let the teardown settle
        co_await t.store(L, 4);    // sole sharer: dir S->EM "upgrade"
        co_await t.fence();
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        co_await t.load(L);        // FwdGetS -> S
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 2
        AWAIT_FLAG(t, F, 4);
        co_await t.load(L);        // re-read own W copy
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 5
        break;
      case 2:
        AWAIT_FLAG(t, F, 2);
        co_await t.load(L);        // third sharer
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 3
        break;
      case 3:
        AWAIT_FLAG(t, F, 5);
        co_await t.load(L);        // W join: WirUpgr fill I->W,
                                   // dir W->W "join"
        co_await t.fence();
        BUMP_FLAG(t, F);           // -> 6
        break;
    }
    co_return;
}

/** Tiny-L1 wireless: W evictions drain the group to a lone survivor. */
Task
wirelessEvict(Thread &t)
{
    const Addr P = hl(0), Q = hl(1), R = hl(2);
    const Addr F = flag(4);
    switch (t.id()) {
      case 0:
        co_await t.load(P);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 1
        AWAIT_FLAG(t, F, 3);
        co_await t.store(P, 1);     // census: {0,1,2} -> W, count 3
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 4
        AWAIT_FLAG(t, F, 6);
        co_await t.load(P);         // survivor ends in S (or W)
        co_await t.fence();
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        co_await t.load(P);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 2
        AWAIT_FLAG(t, F, 4);
        co_await t.load(Q);
        co_await t.load(R);         // evicts P: W->I "evict";
                                    // dir count 3->2 "PutW"
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 5
        break;
      case 2:
        AWAIT_FLAG(t, F, 2);
        co_await t.load(P);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 3
        AWAIT_FLAG(t, F, 5);
        co_await t.load(Q);
        co_await t.load(R);         // evicts P: count 2->1 ->
                                    // WirDwgr teardown, W->S
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 6
        break;
      default:
        break;
    }
    co_return;
}

/**
 * Tiny-L1 wireless: every group member evicts back-to-back, so the
 * last PutW races the WirDwgr teardown and the group drains to zero
 * (dir W->I "WirDwgr").
 */
Task
wirelessDrain(Thread &t)
{
    const Addr P = hl(0), Q = hl(1), R = hl(2);
    const Addr F = flag(5);
    if (t.id() == 0) {
        AWAIT_FLAG(t, F, 3);
        // Census from a non-sharer: {1,2,3} adopt W and core 0 joins
        // through the held tone (fill installs W) -> count 4.
        co_await t.store(P, 1);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 4
    } else {
        co_await t.load(P);
        co_await t.fence();
        BUMP_FLAG(t, F);            // three sharers -> flag 3
        AWAIT_FLAG(t, F, 4);
    }
    // All four members evict back-to-back (slightly staggered): the
    // first PutWs drain the count to maxWiredSharers, opening the
    // WirDwgr teardown, and the last member's PutW races the frame --
    // zero survivors collapse the group (dir W->I "WirDwgr").
    co_await t.compute(5 * t.id());
    co_await t.load(Q);
    co_await t.load(R);
    co_await t.fence();
    co_return;
}

/** Tiny-LLC wireless: evicting a W line recalls it with WirInv. */
Task
wirelessRecall(Thread &t)
{
    const Addr L = hl(0);
    const Addr F = flag(6);
    switch (t.id()) {
      case 0:
        co_await t.load(L);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 1
        AWAIT_FLAG(t, F, 3);
        co_await t.store(L, 1);     // census -> W group {0,1,2}
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 4
        break;
      case 1:
        AWAIT_FLAG(t, F, 1);
        co_await t.load(L);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 2
        break;
      case 2:
        AWAIT_FLAG(t, F, 2);
        co_await t.load(L);
        co_await t.fence();
        BUMP_FLAG(t, F);            // -> 3
        break;
      case 3:
        AWAIT_FLAG(t, F, 4);
        // Fill the home-0 LLC set with fresh lines: the W line is
        // evicted -> RecallW -> WirInv (sharers W->I "WirInv",
        // dir W->I "recall" on the frame's own delivery).
        for (unsigned i = 1; i <= 8; ++i)
            co_await t.load(hl(i));
        co_await t.fence();
        break;
    }
    co_return;
}

// ---------------------------------------------------------------------
// Exhaustive small-depth interleavings and random walks
// ---------------------------------------------------------------------

/** Short op scripts over two home-0 lines; id selects the script. */
Task
script(Thread &t, unsigned which, unsigned delay)
{
    const Addr X = hl(0), Y = hl(1);
    co_await t.compute(delay);
    switch (which) {
      case 0:
        co_await t.load(X);
        break;
      case 1:
        co_await t.store(X, 1 + t.id());
        break;
      case 2:
        co_await t.fetchAdd(X, 1);
        break;
      case 3:
        co_await t.load(X);
        co_await t.store(X, 10 + t.id());
        break;
      case 4:
        co_await t.store(Y, t.id());
        co_await t.load(X);
        break;
      case 5:
        co_await t.load(X);
        co_await t.load(Y);
        co_await t.store(X, 20 + t.id());
        break;
      default:
        break;
    }
    co_await t.fence();
    co_return;
}

/** Seeded random walk over a small line pool. */
Task
randomWalk(Thread &t, std::uint64_t seed, unsigned steps)
{
    std::mt19937_64 rng(seed * 4 + t.id() + 1);
    const Addr pool[6] = {hl(0), hl(1), hl(2), flag(7), flag(8), hl(3)};
    for (unsigned i = 0; i < steps; ++i) {
        Addr a = pool[rng() % 6];
        switch (rng() % 10) {
          case 0:
          case 1:
          case 2:
          case 3:
            co_await t.load(a);
            break;
          case 4:
          case 5:
          case 6:
            co_await t.store(a, rng());
            break;
          case 7:
            co_await t.fetchAdd(a, 1);
            break;
          default:
            co_await t.compute(rng() % 40);
            break;
        }
    }
    co_await t.fence();
    co_return;
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

TEST(ProtocolTable, EveryCellDispatches)
{
    // l1ActionFor / dirActionFor panic on an uncovered cell; touching
    // every cell proves the rule arrays tile both tables completely.
    for (std::size_t s = 0; s < coherence::kNumL1States; ++s)
        for (std::size_t e = 0; e < coherence::kNumL1Events; ++e)
            coherence::l1ActionFor(static_cast<coherence::L1State>(s),
                                   static_cast<coherence::L1Event>(e));
    for (std::size_t s = 0; s < coherence::kNumDirStates; ++s)
        for (std::size_t e = 0; e < coherence::kNumDirEvents; ++e)
            coherence::dirActionFor(
                static_cast<coherence::DirState>(s),
                static_cast<coherence::DirEvent>(e));
}

TEST(ProtocolTable, NotedRowsDefineLegality)
{
    // The derived legality relation is exactly the noted rows.
    std::set<std::pair<std::uint8_t, std::uint8_t>> l1_edges, dir_edges;
    for (const coherence::L1Rule &r : l1Rules()) {
        if (r.note)
            l1_edges.insert({static_cast<std::uint8_t>(r.from),
                             static_cast<std::uint8_t>(r.to)});
    }
    for (const coherence::DirRule &r : dirRules()) {
        if (r.note)
            dir_edges.insert({static_cast<std::uint8_t>(r.from),
                              static_cast<std::uint8_t>(r.to)});
    }
    for (std::size_t f = 0; f < coherence::kNumL1States; ++f)
        for (std::size_t t = 0; t < coherence::kNumL1States; ++t)
            EXPECT_EQ(coherence::l1EdgeLegal(
                          static_cast<coherence::L1State>(f),
                          static_cast<coherence::L1State>(t)),
                      l1_edges.count({static_cast<std::uint8_t>(f),
                                      static_cast<std::uint8_t>(t)}) > 0)
                << "L1 " << f << "->" << t;
    for (std::size_t f = 0; f < coherence::kNumDirStates; ++f)
        for (std::size_t t = 0; t < coherence::kNumDirStates; ++t)
            EXPECT_EQ(coherence::dirEdgeLegal(
                          static_cast<coherence::DirState>(f),
                          static_cast<coherence::DirState>(t)),
                      dir_edges.count({static_cast<std::uint8_t>(f),
                                       static_cast<std::uint8_t>(t)}) >
                          0)
                << "dir " << f << "->" << t;
}

TEST(ProtocolTable, UnreachableRowsCarryNoNote)
{
    for (const coherence::L1Rule &r : l1Rules()) {
        if (r.flags & coherence::kRuleUnreachable) {
            EXPECT_EQ(r.note, nullptr);
        }
    }
    for (const coherence::DirRule &r : dirRules()) {
        if (r.flags & coherence::kRuleUnreachable) {
            EXPECT_EQ(r.note, nullptr);
        }
    }
}

TEST(StateExplorer, EveryTableEdgeReachable)
{
    Explorer ex;

    // Directed scenarios.
    ex.run(smallWidir(), mesiBasics);
    {
        SystemConfig cfg = smallWidir();
        tinyL1(cfg);
        ex.run(cfg, evictions);
    }
    {
        SystemConfig cfg = smallWidir();
        tinyLlc(cfg);
        ex.run(cfg, recalls);
    }
    ex.run(wirelessCfg(), wireless);
    {
        SystemConfig cfg = wirelessCfg();
        tinyL1(cfg);
        ex.run(cfg, wirelessEvict);
        ex.run(cfg, wirelessDrain);
    }
    {
        SystemConfig cfg = wirelessCfg();
        tinyLlc(cfg);
        ex.run(cfg, wirelessRecall);
    }

    // Exhaustive small-depth interleavings: every triple of short
    // scripts on three cores, under the aggressive wireless config
    // (so censuses and joins happen even at depth 2).
    for (unsigned a = 0; a < 6; ++a)
        for (unsigned b = 0; b < 6; ++b)
            for (unsigned c = 0; c < 6; ++c)
                ex.run(wirelessCfg(), [a, b, c](Thread &t) -> Task {
                    switch (t.id()) {
                      case 0:
                        return script(t, a, 0);
                      case 1:
                        return script(t, b, 11);
                      case 2:
                        return script(t, c, 29);
                      default:
                        return script(t, 6, 0);
                    }
                });

    // Random walks across config variants.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto walk = [seed](Thread &t) -> Task {
            return randomWalk(t, seed, 40);
        };
        ex.run(wirelessCfg(), walk);
        SystemConfig cfg = wirelessCfg();
        tinyL1(cfg);
        ex.run(cfg, walk);
    }

    ex.expectObservedSubsetOfTable();

    // Completeness: every non-fault-only key must have been observed.
    for (const auto &[key, fault_only] : tableTargets()) {
        if (fault_only)
            continue;
        EXPECT_TRUE(ex.observed.count(key))
            << "table edge never reached by the explorer: "
            << keyName(key);
    }
}

TEST(StateExplorer, FaultOnlyEdgesReachableUnderInjection)
{
    Explorer ex;
    // Bursty channel: censuses tend to succeed in the Good state, and
    // later WirUpd/WirDwgr/WirInv frames die in Bad-state bursts with
    // no retry budget, driving the wired fallback paths.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SystemConfig cfg = wirelessCfg();
        cfg.fault.burstBer = 1.0;
        cfg.fault.burstEnterProb = 0.25;
        cfg.fault.burstExitProb = 0.5;
        cfg.fault.retryBudget = 1;
        cfg.fault.seed = seed;
        ex.run(cfg, [seed](Thread &t) -> Task {
            return randomWalk(t, seed + 100, 60);
        });
    }
    ex.expectObservedSubsetOfTable();
    for (const auto &[key, fault_only] : tableTargets()) {
        if (!fault_only)
            continue;
        EXPECT_TRUE(ex.observed.count(key))
            << "fault-only table edge never reached under injection: "
            << keyName(key);
    }
}

} // namespace
