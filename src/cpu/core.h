/**
 * @file
 * Retirement-centric out-of-order core timing model.
 *
 * Models the Table III core: 4-issue-wide, 180-entry ROB, 64-entry
 * write buffer. The model is driven by a thread-program coroutine
 * (cpu::Task): the coroutine appends instructions to the ROB through
 * the Thread awaitables; the core retires them in order at up to four
 * per cycle. The quantities the paper evaluates fall out directly:
 *
 *  - execution time: cycle at which the program and all its memory
 *    operations have drained;
 *  - memory stall cycles: cycles in which retirement is blocked by an
 *    incomplete memory operation at the head of the ROB (Fig. 8's
 *    "Memory stall" component);
 *  - per-operation latency: ROB-entry to ROB-retire per load and per
 *    store (Fig. 7);
 *  - instruction counts for MPKI (Fig. 6, Table IV).
 *
 * Store handling: a store retires from the ROB into the write buffer,
 * which drains to the L1 controller in the background with a bounded
 * number of outstanding stores. RMWs drain the ROB and write buffer
 * first (x86 atomics semantics), then execute at the L1/protocol
 * layer. Blocking loads (those whose value steers control flow, e.g.
 * synchronization spins) issue immediately and resume the coroutine
 * when the protocol delivers the value.
 */

#ifndef WIDIR_CPU_CORE_H
#define WIDIR_CPU_CORE_H

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/l1_controller.h"
#include "cpu/op_sink.h"
#include "cpu/task.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace widir::cpu {

using sim::Addr;
using sim::Tick;

/** Core timing parameters (Table III defaults). */
struct CoreConfig
{
    std::uint32_t robSize = 180;
    std::uint32_t retireWidth = 4;
    std::uint32_t writeBufferSize = 64;
    std::uint32_t maxOutstandingStores = 8;
    /** Cap on the compute fast-forward jump, in cycles. */
    std::uint32_t computeBatchCycles = 64;
};

class Thread;

/** One simulated core: ROB + write buffer + coroutine driver. */
class Core
{
  public:
    Core(sim::Simulator &sim, coherence::L1Controller &l1,
         sim::NodeId node, const CoreConfig &cfg);

    ~Core();

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    sim::NodeId nodeId() const { return node_; }

    /**
     * Bind and start the thread program at simulated time @p start.
     * @p body is invoked with this core's Thread facade; @p num_threads
     * is the machine width exposed through Thread::numThreads().
     */
    void start(std::function<Task(Thread &)> body,
               std::uint32_t num_threads, Tick start = 0);

    /** True once the program returned and all its memory drained. */
    bool finished() const { return finished_; }

    /** Cycle at which the core finished (valid once finished()). */
    Tick finishTick() const { return finishTick_; }

    /// @name Statistics (Figs. 6-8, Table IV)
    /// @{
    struct Stats
    {
        std::uint64_t instructions = 0; ///< retired (compute + memory)
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t rmws = 0;
        std::uint64_t memStallCycles = 0;
        std::uint64_t loadLatencySum = 0;  ///< ROB entry -> retire
        std::uint64_t storeLatencySum = 0;
    };
    const Stats &stats() const { return stats_; }
    /// @}

    /**
     * Install an operation tap (null to remove). The sink observes
     * every op the thread program issues plus the sync annotations;
     * it is pure observation -- no events, RNG draws, or timing state
     * -- so a tapped run is byte-identical to an untapped one.
     */
    void setOpSink(OpSink *sink) { sink_ = sink; }

    /** Forward a sync annotation (Thread::note()) to the sink. */
    void
    noteSync(SyncNote kind, Addr addr)
    {
        if (sink_ != nullptr)
            sink_->sync(kind, addr, sim_.now());
    }

    /// @name Called by the Thread awaitables
    /// @{
    bool robHasSpace() const { return robCount_ < cfg_.robSize; }
    void addCompute(std::uint64_t count);
    void addStore(Addr addr, std::uint64_t value);
    void addNonBlockingLoad(Addr addr);
    void issueBlockingLoad(Addr addr,
                           std::coroutine_handle<> resume_handle,
                           std::uint64_t *result_slot);
    void waitRmw(Addr addr,
                 std::function<std::uint64_t(std::uint64_t)> modify,
                 std::coroutine_handle<> resume_handle,
                 std::uint64_t *result_slot);
    void waitFence(std::coroutine_handle<> resume_handle);
    void suspendForSpace(std::coroutine_handle<> resume_handle);
    /**
     * Pause the instruction stream for @p cycles without retiring
     * anything (models a PAUSE/backoff loop in a spin-wait). Older
     * ROB entries keep draining meanwhile.
     */
    void waitIdle(Tick cycles, std::coroutine_handle<> resume_handle);
    sim::Rng &rng() { return rng_; }
    sim::Simulator &simulator() { return sim_; }
    /// @}

  private:
    enum class EntryKind : std::uint8_t { Compute, Load, Store, Rmw };

    struct RobEntry
    {
        EntryKind kind;
        std::uint64_t count = 1; ///< instructions (Compute only)
        bool ready = false;      ///< Load/Rmw: value arrived
        Addr addr = 0;
        std::uint64_t value = 0; ///< Store: value to write
        Tick enqueued = 0;
    };

    /** What an outstanding L1 token belongs to. */
    enum class TokenKind : std::uint8_t
    {
        RobLoad,      ///< non-blocking or blocking load in the ROB
        WbStore,      ///< write-buffer store issued to the L1
        Rmw,          ///< atomic in flight
    };

    struct TokenInfo
    {
        TokenKind kind;
        std::uint64_t robSeq = 0; ///< matching RobEntry sequence
    };

    // -- engine --------------------------------------------------------
    void scheduleStep(Tick delay);
    void step();
    void drainWriteBuffer();
    void onL1Complete(std::uint64_t token, std::uint64_t value);
    void resumeCoroutine(std::coroutine_handle<> h);
    void maybeIssueRmw();
    void maybeFinish();
    void noteStallStart();
    void noteStallEnd();
    /** Trace one retired memory op (no-op unless tracing). */
    void traceRetire(const char *what, std::uint8_t op, Addr addr,
                     Tick enqueued);

    sim::Simulator &sim_;
    coherence::L1Controller &l1_;
    sim::NodeId node_;
    CoreConfig cfg_;
    sim::Rng rng_;
    OpSink *sink_ = nullptr;

    Task task_;
    std::function<Task(Thread &)> body_;
    std::unique_ptr<Thread> thread_;

    // ROB: entries carry a sequence number so completions can find
    // them after the deque shifts.
    std::deque<std::pair<std::uint64_t, RobEntry>> rob_;
    std::uint64_t robSeqNext_ = 1;
    std::uint64_t robCount_ = 0; ///< instructions currently in the ROB

    // Write buffer.
    std::deque<std::pair<Addr, std::uint64_t>> writeBuffer_;
    std::uint32_t storesInFlight_ = 0;

    // Outstanding L1 tokens.
    std::unordered_map<std::uint64_t, TokenInfo> tokens_;
    std::uint64_t tokenNext_ = 1;

    // Coroutine suspension points (at most one active at a time).
    std::coroutine_handle<> spaceWaiter_;
    std::coroutine_handle<> valueWaiter_;
    std::uint64_t *valueSlot_ = nullptr;
    std::uint64_t blockingToken_ = 0; ///< token the value waiter awaits
    std::coroutine_handle<> fenceWaiter_;

    // Pending RMW (waits for drain before issuing).
    bool rmwPending_ = false;
    Addr rmwAddr_ = 0;
    std::function<std::uint64_t(std::uint64_t)> rmwModify_;
    bool rmwIssued_ = false;

    // Stall accounting.
    bool stalled_ = false;
    Tick stallStart_ = 0;

    bool stepScheduled_ = false;
    Tick stepAt_ = 0;
    bool started_ = false;
    bool finished_ = false;
    Tick finishTick_ = 0;
    Stats stats_;
};

} // namespace widir::cpu

#endif // WIDIR_CPU_CORE_H
