/**
 * @file
 * OpSink: an optional tap on the Thread <-> Core boundary.
 *
 * A Core with a sink installed reports every operation the thread
 * program issues -- at the exact point the awaitables hand them to the
 * timing model -- plus the synchronization annotations the workload
 * sync library volunteers. The tap is pure observation: installing a
 * sink schedules no events, draws no random numbers, and touches no
 * timing state, so a recorded run is byte-identical to the same run
 * unrecorded (docs/FRONTEND.md).
 *
 * The interface lives in cpu/ (not frontend/) so the core does not
 * depend on the recorder that implements it.
 */

#ifndef WIDIR_CPU_OP_SINK_H
#define WIDIR_CPU_OP_SINK_H

#include <cstdint>

#include "sim/types.h"

namespace widir::cpu {

/**
 * Synchronization-annotation kinds (the `Sync` record of
 * widir-mtrace-v1, docs/FRONTEND.md). The sync library emits one note
 * per completed primitive; the text-trace parser maps its optional
 * `S <seq>` extension onto External.
 */
enum class SyncNote : std::uint8_t
{
    External,      ///< text-trace `S <seq>` global ordering token
    LockAcquire,   ///< spin lock acquired (CAS won)
    LockRelease,   ///< spin lock released
    BarrierArrive, ///< barrier arrival counter bumped
    BarrierDepart, ///< barrier sense observed / flipped
    TaskClaim,     ///< task-queue index claimed
};

/** Receiver for the per-thread operation stream of one Core. */
class OpSink
{
  public:
    virtual ~OpSink() = default;

    virtual void compute(std::uint64_t count) = 0;
    /** A load entered the ROB. @p blocking: value steers control flow. */
    virtual void load(sim::Addr addr, bool blocking) = 0;
    virtual void store(sim::Addr addr, std::uint64_t value) = 0;
    /** An RMW was issued (old/new values follow in rmwResult()). */
    virtual void rmw(sim::Addr addr) = 0;
    /**
     * The in-flight RMW's modify function was evaluated on @p in,
     * yielding @p result. The L1 may evaluate speculatively (wireless
     * RMW at issue time), be squashed by a remote update, and retry
     * against a different line value; faithful replay needs every
     * distinct evaluation, not just the committed one (mtrace.h).
     */
    virtual void rmwEval(std::uint64_t in, std::uint64_t result) = 0;
    /**
     * The in-flight RMW completed: @p old_value was read, @p new_value
     * written (equal for a failed CAS, which stores nothing). May be
     * reported once per rmw() only.
     */
    virtual void rmwResult(std::uint64_t old_value,
                           std::uint64_t new_value) = 0;
    virtual void idle(sim::Tick cycles) = 0;
    virtual void fence() = 0;
    /** Sync annotation from the workload sync library (SyncNote). */
    virtual void sync(SyncNote kind, sim::Addr addr, sim::Tick now) = 0;
};

} // namespace widir::cpu

#endif // WIDIR_CPU_OP_SINK_H
