/**
 * @file
 * Coroutine types for simulated thread programs.
 *
 * A workload's per-thread body is a C++20 coroutine returning
 * cpu::Task. The owning cpu::Core resumes it as ROB space and memory
 * values become available; the coroutine suspends inside the
 * awaitables provided by cpu::Thread.
 *
 * Tasks are composable: `co_await subTask(t, ...)` runs a
 * sub-coroutine to completion (with symmetric transfer back to the
 * caller), which is how the workload library layers locks, barriers
 * and application kernels. ValueTask<T> is the value-returning
 * variant.
 */

#ifndef WIDIR_CPU_TASK_H
#define WIDIR_CPU_TASK_H

#include <coroutine>
#include <exception>
#include <utility>

namespace widir::cpu {

namespace detail {

/** Final awaiter: hand control back to the awaiting coroutine. */
template <typename Promise>
struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto continuation = h.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        // Workload bodies must not throw; a throw is a bug in the
        // kernel code.
        std::terminate();
    }
};

} // namespace detail

/** Coroutine handle wrapper for a simulated thread body. */
template <typename T>
class BasicTask
{
  public:
    struct promise_type : detail::PromiseBase
    {
        T value{};

        BasicTask
        get_return_object()
        {
            return BasicTask{Handle::from_promise(*this)};
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_value(T v) { value = std::move(v); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    BasicTask() = default;
    explicit BasicTask(Handle h) : handle_(h) {}

    BasicTask(BasicTask &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    BasicTask &
    operator=(BasicTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    BasicTask(const BasicTask &) = delete;
    BasicTask &operator=(const BasicTask &) = delete;

    ~BasicTask() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    void resume() { handle_.resume(); }
    Handle handle() const { return handle_; }

    /** Awaiting a task runs it to completion, then yields its value. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Handle callee;

            bool
            await_ready() const
            {
                return !callee || callee.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> caller)
            {
                callee.promise().continuation = caller;
                return callee; // symmetric transfer into the callee
            }

            T await_resume() { return std::move(callee.promise().value); }
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_)
            handle_.destroy();
        handle_ = nullptr;
    }

    Handle handle_;
};

/** Void specialization: the common case for thread bodies. */
template <>
class BasicTask<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        BasicTask
        get_return_object()
        {
            return BasicTask{Handle::from_promise(*this)};
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    BasicTask() = default;
    explicit BasicTask(Handle h) : handle_(h) {}

    BasicTask(BasicTask &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    BasicTask &
    operator=(BasicTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    BasicTask(const BasicTask &) = delete;
    BasicTask &operator=(const BasicTask &) = delete;

    ~BasicTask() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    void resume() { handle_.resume(); }
    Handle handle() const { return handle_; }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Handle callee;

            bool
            await_ready() const
            {
                return !callee || callee.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> caller)
            {
                callee.promise().continuation = caller;
                return callee;
            }

            void await_resume() const {}
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_)
            handle_.destroy();
        handle_ = nullptr;
    }

    Handle handle_;
};

/** The thread-body coroutine type. */
using Task = BasicTask<void>;

/** Value-returning sub-coroutine. */
template <typename T>
using ValueTask = BasicTask<T>;

} // namespace widir::cpu

#endif // WIDIR_CPU_TASK_H
