/**
 * @file
 * Thread: the awaitable API handed to workload coroutines.
 *
 * A workload body looks like:
 *
 *   cpu::Task body(cpu::Thread &t)
 *   {
 *       co_await t.compute(100);            // 100 ALU instructions
 *       co_await t.store(addr, 7);          // non-blocking store
 *       co_await t.loadNb(addr2);           // non-blocking data load
 *       std::uint64_t v = co_await t.load(addr3);   // blocking load
 *       std::uint64_t old = co_await t.fetchAdd(ctr, 1); // atomic
 *       co_await t.fence();                 // drain ROB + write buffer
 *   }
 *
 * Non-blocking operations suspend only when the ROB is full (flow
 * control); blocking loads and RMWs suspend until the memory system
 * delivers the value -- use them for values that steer control flow
 * (lock words, flags, barrier counters) so synchronization really
 * serializes through the coherence protocol.
 */

#ifndef WIDIR_CPU_THREAD_H
#define WIDIR_CPU_THREAD_H

#include <coroutine>
#include <cstdint>
#include <functional>

#include "cpu/core.h"

namespace widir::cpu {

/** Per-thread facade over a Core; passed to workload coroutines. */
class Thread
{
  public:
    Thread(Core &core, std::uint32_t thread_id,
           std::uint32_t num_threads)
        : core_(core), id_(thread_id), numThreads_(num_threads)
    {
    }

    std::uint32_t id() const { return id_; }
    std::uint32_t numThreads() const { return numThreads_; }
    sim::Rng &rng() { return core_.rng(); }
    Core &core() { return core_; }

    /**
     * Volunteer a synchronization annotation to the core's OpSink (a
     * no-op without one). The workload sync library calls this when a
     * primitive completes so a recorded trace carries the inter-thread
     * ordering constraints replay must preserve (docs/FRONTEND.md).
     */
    void note(SyncNote kind, Addr addr = 0) { core_.noteSync(kind, addr); }

    // -- awaitables ----------------------------------------------------

    /** Non-blocking: @p n ALU instructions. */
    struct ComputeAwaiter
    {
        Core &core;
        std::uint64_t n;

        bool await_ready() const { return core.robHasSpace(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.suspendForSpace(h);
        }

        void await_resume() { core.addCompute(n); }
    };

    /** Non-blocking store of @p value to @p addr. */
    struct StoreAwaiter
    {
        Core &core;
        Addr addr;
        std::uint64_t value;

        bool await_ready() const { return core.robHasSpace(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.suspendForSpace(h);
        }

        void await_resume() { core.addStore(addr, value); }
    };

    /** Non-blocking load (data access whose value is not needed). */
    struct LoadNbAwaiter
    {
        Core &core;
        Addr addr;

        bool await_ready() const { return core.robHasSpace(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.suspendForSpace(h);
        }

        void await_resume() { core.addNonBlockingLoad(addr); }
    };

    /** Blocking load: resumes with the loaded value. */
    struct LoadAwaiter
    {
        Core &core;
        Addr addr;
        std::uint64_t result = 0;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.issueBlockingLoad(addr, h, &result);
        }

        std::uint64_t await_resume() const { return result; }
    };

    /** Atomic read-modify-write: resumes with the OLD value. */
    struct RmwAwaiter
    {
        Core &core;
        Addr addr;
        std::function<std::uint64_t(std::uint64_t)> modify;
        std::uint64_t result = 0;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.waitRmw(addr, std::move(modify), h, &result);
        }

        std::uint64_t await_resume() const { return result; }
    };

    /** Pause without retiring instructions (PAUSE/backoff). */
    struct IdleAwaiter
    {
        Core &core;
        sim::Tick cycles;

        bool await_ready() const { return cycles == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.waitIdle(cycles, h);
        }

        void await_resume() const {}
    };

    /** Full fence: resumes when the ROB and write buffer are empty. */
    struct FenceAwaiter
    {
        Core &core;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            core.waitFence(h);
        }

        void await_resume() const {}
    };

    ComputeAwaiter compute(std::uint64_t n) { return {core_, n}; }

    StoreAwaiter
    store(Addr addr, std::uint64_t value)
    {
        return {core_, addr, value};
    }

    LoadNbAwaiter loadNb(Addr addr) { return {core_, addr}; }

    LoadAwaiter load(Addr addr) { return {core_, addr}; }

    RmwAwaiter
    rmw(Addr addr, std::function<std::uint64_t(std::uint64_t)> modify)
    {
        return {core_, addr, std::move(modify), 0};
    }

    /** Convenience: atomic fetch-and-add. */
    RmwAwaiter
    fetchAdd(Addr addr, std::uint64_t delta)
    {
        return rmw(addr, [delta](std::uint64_t v) { return v + delta; });
    }

    /** Convenience: atomic swap. */
    RmwAwaiter
    swap(Addr addr, std::uint64_t value)
    {
        return rmw(addr, [value](std::uint64_t) { return value; });
    }

    /**
     * Convenience: compare-and-swap. Resumes with the OLD value
     * (success iff it equals @p expect). A failed CAS performs no
     * store -- under WiDir it does not broadcast anything.
     */
    RmwAwaiter
    cas(Addr addr, std::uint64_t expect, std::uint64_t desired)
    {
        return rmw(addr, [expect, desired](std::uint64_t v) {
            return v == expect ? desired : v;
        });
    }

    IdleAwaiter idle(sim::Tick cycles) { return {core_, cycles}; }

    FenceAwaiter fence() { return {core_}; }

  private:
    Core &core_;
    std::uint32_t id_;
    std::uint32_t numThreads_;
};

/** A per-thread program: invoked once per core with its Thread. */
using Program = std::function<Task(Thread &)>;

} // namespace widir::cpu

#endif // WIDIR_CPU_THREAD_H
