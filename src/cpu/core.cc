#include "cpu/core.h"

#include "cpu/thread.h"
#include "sim/log.h"

namespace widir::cpu {

Core::Core(sim::Simulator &sim, coherence::L1Controller &l1,
           sim::NodeId node, const CoreConfig &cfg)
    : sim_(sim), l1_(l1), node_(node), cfg_(cfg),
      rng_(sim.makeRng(0xC0DE0000ULL + node))
{
    l1_.setCompletion([this](std::uint64_t token, std::uint64_t value) {
        onL1Complete(token, value);
    });
}

Core::~Core() = default;

void
Core::start(std::function<Task(Thread &)> body,
            std::uint32_t num_threads, Tick start)
{
    WIDIR_ASSERT(!started_, "core %u started twice", node_);
    started_ = true;
    body_ = std::move(body);
    // The kickoff -- and therefore the whole coroutine/ROB event chain
    // it seeds -- belongs to this core's tile, so in domain mode it
    // must enter the core's own sub-queue.
    sim_.scheduleForNodeAt(node_, start, [this, num_threads] {
        thread_ = std::make_unique<Thread>(*this, node_, num_threads);
        task_ = body_(*thread_);
        task_.resume(); // run to the first suspension
        scheduleStep(0);
    });
}

// ---------------------------------------------------------------------
// Awaitable entry points
// ---------------------------------------------------------------------

void
Core::addCompute(std::uint64_t count)
{
    if (count == 0)
        return;
    if (sink_ != nullptr)
        sink_->compute(count);
    RobEntry e;
    e.kind = EntryKind::Compute;
    e.count = count;
    e.enqueued = sim_.now();
    rob_.emplace_back(robSeqNext_++, e);
    robCount_ += count;
    scheduleStep(0);
}

void
Core::addStore(Addr addr, std::uint64_t value)
{
    if (sink_ != nullptr)
        sink_->store(addr, value);
    RobEntry e;
    e.kind = EntryKind::Store;
    e.addr = addr;
    e.value = value;
    e.enqueued = sim_.now();
    rob_.emplace_back(robSeqNext_++, e);
    robCount_ += 1;
    scheduleStep(0);
}

void
Core::addNonBlockingLoad(Addr addr)
{
    if (sink_ != nullptr)
        sink_->load(addr, false);
    RobEntry e;
    e.kind = EntryKind::Load;
    e.addr = addr;
    e.enqueued = sim_.now();
    std::uint64_t seq = robSeqNext_++;
    rob_.emplace_back(seq, e);
    robCount_ += 1;
    std::uint64_t token = tokenNext_++;
    tokens_[token] = TokenInfo{TokenKind::RobLoad, seq};
    l1_.read(addr, token);
    scheduleStep(0);
}

void
Core::issueBlockingLoad(Addr addr,
                        std::coroutine_handle<> resume_handle,
                        std::uint64_t *result_slot)
{
    WIDIR_ASSERT(!valueWaiter_, "core %u: nested blocking load", node_);
    if (sink_ != nullptr)
        sink_->load(addr, true);
    RobEntry e;
    e.kind = EntryKind::Load;
    e.addr = addr;
    e.enqueued = sim_.now();
    std::uint64_t seq = robSeqNext_++;
    rob_.emplace_back(seq, e);
    robCount_ += 1;
    valueWaiter_ = resume_handle;
    valueSlot_ = result_slot;
    std::uint64_t token = tokenNext_++;
    blockingToken_ = token;
    tokens_[token] = TokenInfo{TokenKind::RobLoad, seq};
    l1_.read(addr, token);
    scheduleStep(0);
}

void
Core::waitRmw(Addr addr,
              std::function<std::uint64_t(std::uint64_t)> modify,
              std::coroutine_handle<> resume_handle,
              std::uint64_t *result_slot)
{
    WIDIR_ASSERT(!rmwPending_, "core %u: nested RMW", node_);
    if (sink_ != nullptr)
        sink_->rmw(addr);
    RobEntry e;
    e.kind = EntryKind::Rmw;
    e.addr = addr;
    e.enqueued = sim_.now();
    rob_.emplace_back(robSeqNext_++, e);
    robCount_ += 1;
    rmwPending_ = true;
    rmwIssued_ = false;
    rmwAddr_ = addr;
    rmwModify_ = std::move(modify);
    if (sink_ != nullptr)
    {
        // Tap every L1 evaluation of the modify function: the wireless
        // RMW path may evaluate speculatively, be squashed by a remote
        // update, and retry on a different value, and replay fidelity
        // needs each distinct (input, result) pair (cpu/op_sink.h).
        // Pure observation -- the wrapper forwards the inner result
        // unchanged and schedules nothing.
        rmwModify_ = [inner = std::move(rmwModify_),
                      sink = sink_](std::uint64_t v) {
            std::uint64_t r = inner(v);
            sink->rmwEval(v, r);
            return r;
        };
    }
    valueWaiter_ = resume_handle;
    valueSlot_ = result_slot;
    scheduleStep(0);
}

void
Core::waitFence(std::coroutine_handle<> resume_handle)
{
    WIDIR_ASSERT(!fenceWaiter_, "core %u: nested fence", node_);
    if (sink_ != nullptr)
        sink_->fence();
    fenceWaiter_ = resume_handle;
    scheduleStep(0);
}

void
Core::suspendForSpace(std::coroutine_handle<> resume_handle)
{
    WIDIR_ASSERT(!spaceWaiter_, "core %u: nested space wait", node_);
    spaceWaiter_ = resume_handle;
    scheduleStep(0);
}

void
Core::waitIdle(Tick cycles, std::coroutine_handle<> resume_handle)
{
    if (sink_ != nullptr)
        sink_->idle(cycles);
    sim_.scheduleInline(cycles, [this, resume_handle] {
        resume_handle.resume();
        scheduleStep(0);
    });
}

// ---------------------------------------------------------------------
// Completion plumbing
// ---------------------------------------------------------------------

void
Core::onL1Complete(std::uint64_t token, std::uint64_t value)
{
    auto it = tokens_.find(token);
    WIDIR_ASSERT(it != tokens_.end(), "unknown L1 token at core %u",
                 node_);
    TokenInfo info = it->second;
    tokens_.erase(it);

    switch (info.kind) {
      case TokenKind::RobLoad: {
        for (auto &[seq, entry] : rob_) {
            if (seq == info.robSeq) {
                entry.ready = true;
                entry.value = value;
                break;
            }
        }
        // A blocking load resumes the coroutine with the value.
        if (valueWaiter_ && token == blockingToken_) {
            if (valueSlot_)
                *valueSlot_ = value;
            auto h = valueWaiter_;
            valueWaiter_ = nullptr;
            valueSlot_ = nullptr;
            blockingToken_ = 0;
            resumeCoroutine(h);
        }
        break;
      }
      case TokenKind::WbStore:
        WIDIR_ASSERT(storesInFlight_ > 0, "store drain underflow");
        --storesInFlight_;
        drainWriteBuffer();
        break;
      case TokenKind::Rmw: {
        // The atomic completed at the memory system; mark the ROB head
        // ready and resume the coroutine with the old value.
        WIDIR_ASSERT(rmwPending_ && rmwIssued_, "spurious RMW done");
        // The recorder needs the old/new pair to reconstruct the
        // modify at replay. rmwModify_ is pure (the L1 may invoke it
        // more than once), so re-applying it here is side-effect-free.
        if (sink_ != nullptr)
            sink_->rmwResult(value, rmwModify_(value));
        rmwPending_ = false;
        rmwIssued_ = false;
        for (auto &[seq, entry] : rob_) {
            if (entry.kind == EntryKind::Rmw && !entry.ready) {
                entry.ready = true;
                break;
            }
        }
        if (valueSlot_)
            *valueSlot_ = value;
        auto h = valueWaiter_;
        valueWaiter_ = nullptr;
        valueSlot_ = nullptr;
        if (h)
            resumeCoroutine(h);
        break;
      }
    }
    scheduleStep(0);
}

void
Core::resumeCoroutine(std::coroutine_handle<> h)
{
    h.resume();
    scheduleStep(0);
}

// ---------------------------------------------------------------------
// Retirement engine
// ---------------------------------------------------------------------

void
Core::scheduleStep(Tick delay)
{
    Tick when = sim_.now() + delay;
    if (stepScheduled_ && stepAt_ <= when)
        return;
    stepScheduled_ = true;
    stepAt_ = when;
    // The single hottest schedule site in the simulator: one event
    // per core step. Must stay on the inline path.
    sim_.scheduleAtInline(when, [this, when] {
        if (stepAt_ == when)
            stepScheduled_ = false;
        step();
    });
}

void
Core::traceRetire(const char *what, std::uint8_t op, Addr addr,
                  Tick enqueued)
{
    sim::Tracer &tracer = sim_.tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = sim_.now();
    r.kind = sim::TraceKind::CoreOp;
    r.comp = sim::TraceComponent::Core;
    r.node = node_;
    r.line = addr;
    r.op = op;
    r.opName = what;
    r.arg = sim_.now() - enqueued; // issue-to-retire latency
    tracer.emit(r);
}

void
Core::noteStallStart()
{
    if (!stalled_) {
        stalled_ = true;
        stallStart_ = sim_.now();
    }
}

void
Core::noteStallEnd()
{
    if (stalled_) {
        stalled_ = false;
        stats_.memStallCycles += sim_.now() - stallStart_;
    }
}

void
Core::step()
{
    if (finished_)
        return;

    std::uint32_t budget = cfg_.retireWidth;
    bool blocked = false;

    while (budget > 0 && !rob_.empty()) {
        RobEntry &head = rob_.front().second;
        switch (head.kind) {
          case EntryKind::Compute: {
            std::uint64_t k = std::min<std::uint64_t>(budget,
                                                      head.count);
            head.count -= k;
            budget -= static_cast<std::uint32_t>(k);
            robCount_ -= k;
            stats_.instructions += k;
            if (head.count == 0)
                rob_.pop_front();
            break;
          }
          case EntryKind::Load:
            if (!head.ready) {
                blocked = true;
            } else {
                stats_.loadLatencySum += sim_.now() - head.enqueued;
                ++stats_.loads;
                ++stats_.instructions;
                traceRetire("load", 0, head.addr, head.enqueued);
                robCount_ -= 1;
                budget -= 1;
                rob_.pop_front();
            }
            break;
          case EntryKind::Store:
            if (writeBuffer_.size() >= cfg_.writeBufferSize) {
                blocked = true; // store buffer full: memory stall
            } else {
                stats_.storeLatencySum += sim_.now() - head.enqueued;
                ++stats_.stores;
                ++stats_.instructions;
                traceRetire("store", 1, head.addr, head.enqueued);
                writeBuffer_.emplace_back(head.addr, head.value);
                robCount_ -= 1;
                budget -= 1;
                rob_.pop_front();
                drainWriteBuffer();
            }
            break;
          case EntryKind::Rmw:
            if (!head.ready) {
                blocked = true; // waits for drain + protocol
            } else {
                stats_.storeLatencySum += sim_.now() - head.enqueued;
                ++stats_.rmws;
                ++stats_.instructions;
                traceRetire("rmw", 2, head.addr, head.enqueued);
                robCount_ -= 1;
                budget -= 1;
                rob_.pop_front();
            }
            break;
        }
        if (blocked)
            break;
    }

    // An RMW issues once it is alone at the head of the ROB and the
    // write buffer has drained (atomics act as fences).
    maybeIssueRmw();

    // Feed the ROB: wake a coroutine parked on flow control.
    if (spaceWaiter_ && robHasSpace()) {
        auto h = spaceWaiter_;
        spaceWaiter_ = nullptr;
        h.resume();
    }
    // Fences resume once everything drained.
    if (fenceWaiter_ && rob_.empty() && writeBuffer_.empty() &&
        storesInFlight_ == 0) {
        auto h = fenceWaiter_;
        fenceWaiter_ = nullptr;
        h.resume();
    }

    // Stall accounting: blocked on an incomplete memory op at head.
    if (!rob_.empty()) {
        const RobEntry &head = rob_.front().second;
        bool mem_blocked =
            (head.kind == EntryKind::Load && !head.ready) ||
            (head.kind == EntryKind::Rmw && !head.ready) ||
            (head.kind == EntryKind::Store &&
             writeBuffer_.size() >= cfg_.writeBufferSize);
        if (mem_blocked) {
            noteStallStart();
            return; // completion callbacks reschedule the step
        }
        noteStallEnd();
        // More retirement work next cycle; fast-forward through long
        // pure-compute stretches.
        Tick delay = 1;
        if (rob_.front().second.kind == EntryKind::Compute) {
            RobEntry &head2 = rob_.front().second;
            std::uint64_t max_insts =
                static_cast<std::uint64_t>(cfg_.retireWidth) *
                cfg_.computeBatchCycles;
            if (head2.count > cfg_.retireWidth) {
                std::uint64_t k =
                    std::min(head2.count - 1, max_insts);
                // Consume k instructions over ceil(k/width) cycles in
                // one event.
                head2.count -= k;
                robCount_ -= k;
                stats_.instructions += k;
                delay = (k + cfg_.retireWidth - 1) / cfg_.retireWidth;
            }
        }
        scheduleStep(delay);
        return;
    }

    noteStallEnd();
    maybeFinish();
}

void
Core::maybeIssueRmw()
{
    if (!rmwPending_ || rmwIssued_)
        return;
    if (rob_.empty())
        return;
    const RobEntry &head = rob_.front().second;
    if (head.kind != EntryKind::Rmw)
        return;
    if (rob_.size() != 1)
        return; // everything older must have retired (it's in-order
                // anyway), and nothing younger exists while the
                // coroutine is suspended on the RMW
    if (!writeBuffer_.empty() || storesInFlight_ != 0)
        return;
    rmwIssued_ = true;
    std::uint64_t token = tokenNext_++;
    tokens_[token] = TokenInfo{TokenKind::Rmw, 0};
    l1_.rmw(rmwAddr_, rmwModify_, token);
}

void
Core::drainWriteBuffer()
{
    while (!writeBuffer_.empty() &&
           storesInFlight_ < cfg_.maxOutstandingStores) {
        auto [addr, value] = writeBuffer_.front();
        writeBuffer_.pop_front();
        ++storesInFlight_;
        std::uint64_t token = tokenNext_++;
        tokens_[token] = TokenInfo{TokenKind::WbStore, 0};
        l1_.write(addr, value, token);
    }
    scheduleStep(0);
}

void
Core::maybeFinish()
{
    if (finished_)
        return;
    if (!task_.valid() || !task_.done())
        return;
    if (!rob_.empty() || !writeBuffer_.empty() || storesInFlight_ != 0)
        return;
    finished_ = true;
    finishTick_ = sim_.now();
}

} // namespace widir::cpu
