/**
 * @file
 * Frames carried on the wireless data channel.
 *
 * Every frame is a chip-wide broadcast: all transceivers receive it.
 * WiDir uses four frame kinds (Section III/IV of the paper):
 *
 *  - WirUpd:    fine-grain update (one 64-bit word + its address) sent
 *               by a sharer writing a W-state line.
 *  - BrWirUpgr: directory announcement that a line is transitioning to
 *               the Wireless state; triggers the global ToneAck census.
 *  - WirDwgr:   directory announcement that a line is leaving W; the
 *               surviving sharers identify themselves over the wired
 *               network.
 *  - WirInv:    directory is evicting a wireless line; all cached
 *               copies invalidate.
 */

#ifndef WIDIR_WIRELESS_FRAME_H
#define WIDIR_WIRELESS_FRAME_H

#include <cstdint>

#include "sim/types.h"

namespace widir::wireless {

using sim::Addr;
using sim::NodeId;

/** Wireless data-channel frame kinds. */
enum class FrameKind : std::uint8_t
{
    WirUpd,     ///< word update to a W line
    BrWirUpgr,  ///< broadcast wireless upgrade (S -> W)
    WirDwgr,    ///< wireless downgrade (W -> S)
    WirInv,     ///< wireless invalidate (directory eviction)
};

/** Human-readable kind name (for traces and tests). */
const char *frameKindName(FrameKind kind);

/** One wireless broadcast frame. */
struct Frame
{
    NodeId src = sim::kNodeNone;
    FrameKind kind = FrameKind::WirUpd;
    Addr lineAddr = sim::kAddrNone; ///< line-aligned target address
    Addr wordAddr = sim::kAddrNone; ///< word address (WirUpd only)
    std::uint64_t value = 0;        ///< word payload (WirUpd only)
};

} // namespace widir::wireless

#endif // WIDIR_WIRELESS_FRAME_H
