/**
 * @file
 * The wireless data channel with the BRS MAC protocol.
 *
 * Physical/MAC model (paper Table III and Section III-A):
 *  - Single shared broadcast medium at 60 GHz, 20 Gb/s: a 64-bit word
 *    plus its address transfers in 4 cycles; collision detection adds
 *    one cycle, so a successful frame occupies the channel for 5
 *    cycles.
 *  - BRS: a node with data listens until the medium is free, transmits
 *    a 1-cycle preamble, leaves the second cycle empty to detect a
 *    collision report, and on collision squashes and retries after an
 *    exponential back-off.
 *  - Timeline of a successful frame starting at cycle T:
 *        T       preamble
 *        T+1     collision-detect window (idle)  -> COMMIT point
 *        T+2..   remaining payload cycles
 *        T+5     frame fully received by every transceiver
 *    The commit point is where a wireless write becomes guaranteed to
 *    transmit (Section IV-C): the sender's onCommit callback runs
 *    there, and the frame is the serialization point of the protocol.
 *
 * Selective Data-Channel Jamming (Section III-C1): a directory can
 * register a jam filter for a line. While active, any frame whose
 * first-cycle address bits match the filter is negative-acked in the
 * collision-detect cycle exactly as if it had collided; the sender
 * backs off and retries. Because only `jamAddrBits` of the line address
 * fit in the first cycle, filters can hit false positives, which the
 * paper explicitly allows.
 */

#ifndef WIDIR_WIRELESS_DATA_CHANNEL_H
#define WIDIR_WIRELESS_DATA_CHANNEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.h"
#include "mem/address.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/types.h"
#include "wireless/frame.h"

namespace widir::wireless {

using sim::Simulator;
using sim::Tick;

/** How frames are assigned to frequency-multiplexed sub-channels. */
enum class ChannelPolicy : std::uint8_t
{
    LineInterleave, ///< lineNumber % numChannels (default)
    LineHash,       ///< mixed lineNumber % numChannels
};

/** Data channel configuration (Table III defaults). */
struct DataChannelConfig
{
    std::uint32_t numNodes = 64;
    /**
     * Frequency-multiplexed data sub-channels. 1 models the paper's
     * single 20 Gb/s broadcast medium; N > 1 splits the band into N
     * independent media, each with its own BRS arbitration, and
     * assigns every frame to the sub-channel of its line address --
     * same-line frames always share a medium, so the commit point
     * stays the per-line serialization point.
     */
    std::uint32_t numChannels = 1;
    /** Line -> sub-channel assignment policy (ignored at 1 channel). */
    ChannelPolicy channelPolicy = ChannelPolicy::LineInterleave;
    Tick transferCycles = 4;   ///< payload incl. preamble
    Tick collisionCycles = 1;  ///< detect window
    Tick commitOffset = 2;     ///< preamble + detect -> guaranteed
    std::uint32_t maxBackoffExp = 6; ///< cap of the exponential window
    Tick backoffSlot = 5;      ///< one slot = one frame time
    std::uint32_t jamAddrBits = 12; ///< address bits visible in cycle 1
    /**
     * Non-persistent carrier sense: cycles of random stagger applied
     * when a deferred station re-senses after a busy period.
     */
    Tick resenseWindow = 12;
};

/** Handle identifying an active jam filter. */
using JamId = std::uint64_t;

/**
 * Shared broadcast medium with BRS MAC, collision handling and
 * selective jamming.
 */
class DataChannel
{
  public:
    /** Called at every node when a frame is fully received. */
    using RxHandler = std::function<void(const Frame &)>;

    DataChannel(Simulator &sim, const DataChannelConfig &cfg);

    /** Register node @p n's receive handler (all frames, incl. own). */
    void setReceiver(sim::NodeId n, RxHandler handler);

    /**
     * Queue @p frame for transmission from frame.src.
     *
     * The sender keeps retrying through back-off on collisions and
     * jams until it succeeds or is cancelled. With fault injection
     * active (docs/FAULTS.md), corrupted/preamble-lost acquisitions
     * also retry -- but only fault::FaultSpec::retryBudget times; after
     * that the frame is dropped and @p on_fail runs so the sender can
     * fall back to the wired path.
     *
     * @param on_commit Runs at the commit point (transmission
     *                  guaranteed); may be null. Hot path: keep the
     *                  captures within sim::InlineEvent's budget.
     * @param on_fail   Runs if the fault-retry budget is exhausted
     *                  (never with faults disabled); may be null.
     * @return a token that can cancel the pending transmission.
     *
     * Callable from a bound-phase domain: the enqueue is deferred to
     * the weave (same tick, so arbitration is unchanged) and the
     * returned token is pre-reserved from the calling node's private
     * counter -- deterministic, and disjoint from the weave-path
     * token sequence. on_commit / on_fail later run in frame.src's
     * domain.
     */
    std::uint64_t transmit(const Frame &frame, sim::EventFn on_commit,
                           sim::EventFn on_fail = {});

    /**
     * Attach the fault-injection sampler (null: clean channel). Set
     * once at system build; the model is shared with the tone channel.
     */
    void setFaultModel(fault::FaultModel *model) { fault_ = model; }

    /**
     * Cancel a transmission that has not yet committed (used when a
     * WirInv squashes a pending wireless write, Section IV-C).
     * @return true if the transmission was still pending. From a
     * bound-phase domain the cancel is deferred to the weave and this
     * returns false unconditionally -- callers that branch on the
     * outcome must use cancelPendingOr() instead.
     */
    bool cancelPending(std::uint64_t token);

    /**
     * Cancel @p token and, IF the transmission was still pending, run
     * @p on_cancelled (may be null). This is the bound-phase-safe form
     * of `if (cancelPending(t)) ...`: from a domain both the cancel
     * and the conditional continuation are deferred to the weave,
     * where the race between the cancel and the frame's commit
     * resolves in deterministic replay order.
     */
    void cancelPendingOr(std::uint64_t token, sim::EventFn on_cancelled);

    /**
     * Activate a jam filter for @p line owned by node @p owner. The
     * filter kills WirUpd frames whose first-cycle address bits match;
     * directory control frames (BrWirUpgr/WirDwgr/WirInv) always pass,
     * and no sender is exempt -- the core co-located with the jamming
     * directory is blocked too.
     */
    JamId startJamming(sim::NodeId owner, sim::Addr line);

    /** Deactivate a jam filter. */
    void stopJamming(JamId id);

    /** Trace frame lifecycle (queue/commit/deliver/jam) to stderr. */
    void setTrace(bool on) { trace_ = on; }

    /// @name Statistics
    /// @{
    std::uint64_t successes() const { return successes_; }
    std::uint64_t collisionEvents() const { return collisionEvents_; }
    std::uint64_t jamRejects() const { return jamRejects_; }
    std::uint64_t txAttempts() const { return attempts_; }

    /// @name Fault-injection statistics (all zero on a clean channel)
    /// @{
    /** Acquisitions whose payload an injected bit error corrupted. */
    std::uint64_t crcErrors() const { return crcErrors_; }
    /** Acquisitions whose preamble an injected fade erased. */
    std::uint64_t preambleLosses() const { return preambleLosses_; }
    /** Backoff retries caused by injected faults. */
    std::uint64_t faultRetries() const { return faultRetries_; }
    /** Transmissions dropped after exhausting the retry budget. */
    std::uint64_t faultDrops() const { return faultDrops_; }
    /// @}
    /** Busy cycles (for energy: medium occupied). */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /**
     * Collision probability as the paper reports it (Table VI): the
     * fraction of channel acquisitions that end in a collision rather
     * than a successful transmission.
     */
    double
    collisionProbability() const
    {
        std::uint64_t denom = collisionEvents_ + successes_;
        return denom == 0
            ? 0.0
            : static_cast<double>(collisionEvents_) /
                  static_cast<double>(denom);
    }
    /// @}

  private:
    struct PendingTx
    {
        std::uint64_t token;
        Frame frame;
        Tick readyAt;
        std::uint32_t attempt = 0;
        std::uint32_t faultRetries = 0; ///< injected-fault retries so far
        sim::EventFn onCommit;
        sim::EventFn onFail;
        bool cancelled = false;
    };

    struct JamFilter
    {
        JamId id;
        sim::NodeId owner;
        std::uint64_t maskedLine; ///< low jamAddrBits of line number
    };

    Tick frameCycles() const
    {
        return cfg_.transferCycles + cfg_.collisionCycles;
    }

    /**
     * Per-sub-channel MAC state: every field the single-medium model
     * kept as a member, one copy per frequency band. Sub-channels
     * arbitrate independently; the shared RNG is drawn in event order,
     * which at numChannels == 1 is exactly the historical sequence.
     */
    struct Channel
    {
        std::vector<PendingTx> pending;
        Tick busyUntil = 0;
        Tick evalAt = sim::kTickNever;
        std::uint64_t evalGen = 0;
        bool deliveryPending = false;
        Tick deliveryAt = 0;
    };

    /** Sub-channel of @p line under the assignment policy. */
    std::uint32_t channelOf(sim::Addr line) const;

    /** Low-bit line-number signature used for jam matching. */
    std::uint64_t signature(sim::Addr line) const;

    /**
     * Tokens and jam ids handed out from a bound-phase domain are
     * composed as ((node + 1) << kReservedShift) | per-node counter:
     * unique across nodes, deterministic (each node's counter is only
     * ever advanced by that node's own domain), and disjoint from the
     * weave-path sequences, which stay far below 2^kReservedShift.
     */
    static constexpr unsigned kReservedShift = 40;

    static std::uint64_t
    reservedId(sim::NodeId node, std::uint64_t seq)
    {
        return ((static_cast<std::uint64_t>(node) + 1)
                << kReservedShift) |
               seq;
    }

    /** Weave-side enqueue with a caller-chosen token. */
    void transmitWithToken(std::uint64_t token, const Frame &frame,
                           sim::EventFn on_commit, sim::EventFn on_fail);

    /** Weave-side filter activation with a caller-chosen id. */
    void startJammingWithId(JamId id, sim::NodeId owner, sim::Addr line);

    /** True if some other node's filter matches this frame. */
    bool jammedBy(const PendingTx &tx) const;

    /** Emit one MAC-event trace record (no-op unless tracing). */
    void traceFrame(sim::TraceKind kind, const Frame &frame,
                    std::uint64_t arg = 0);

    /** (Re)schedule an arbitration pass for sub-channel @p ch. */
    void scheduleEval(std::uint32_t ch);

    /** Arbitration: run BRS on sub-channel @p ch for this instant. */
    void evaluate(std::uint32_t ch);

    Simulator &sim_;
    DataChannelConfig cfg_;
    sim::Rng rng_;
    fault::FaultModel *fault_ = nullptr; ///< null: clean channel
    std::vector<RxHandler> receivers_;
    /**
     * One independent BRS medium per frequency band. channels_[0] is
     * the whole story at the default numChannels == 1; the eval
     * generation / delivery-pending commentary of the single-medium
     * model applies per element.
     */
    std::vector<Channel> channels_;
    std::vector<JamFilter> jams_;
    std::uint64_t nextToken_ = 1;
    JamId nextJamId_ = 1;
    /**
     * Per-node counters behind reservedId(). Indexed by the sending
     * node, and only ever written from that node's domain (or the
     * weave), so parallel bound phases never race on an element.
     */
    std::vector<std::uint64_t> reservedTokenSeq_;
    std::vector<std::uint64_t> reservedJamSeq_;
    bool trace_ = false;

    std::uint64_t successes_ = 0;
    std::uint64_t collisionEvents_ = 0;
    std::uint64_t collisionsSampled_ = 0;
    std::uint64_t jamRejects_ = 0;
    std::uint64_t attempts_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t crcErrors_ = 0;
    std::uint64_t preambleLosses_ = 0;
    std::uint64_t faultRetries_ = 0;
    std::uint64_t faultDrops_ = 0;
};

} // namespace widir::wireless

#endif // WIDIR_WIRELESS_DATA_CHANNEL_H
