#include "wireless/data_channel.h"

#include <algorithm>

#include "sim/log.h"
#include <cstdio>

namespace widir::wireless {

const char *
frameKindName(FrameKind kind)
{
    switch (kind) {
      case FrameKind::WirUpd:    return "WirUpd";
      case FrameKind::BrWirUpgr: return "BrWirUpgr";
      case FrameKind::WirDwgr:   return "WirDwgr";
      case FrameKind::WirInv:    return "WirInv";
    }
    return "?";
}

void
DataChannel::traceFrame(sim::TraceKind kind, const Frame &frame,
                        std::uint64_t arg)
{
    sim::Tracer &tracer = sim_.tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = sim_.now();
    r.kind = kind;
    r.comp = sim::TraceComponent::DataChannel;
    r.node = frame.src;
    r.line = frame.lineAddr;
    r.op = static_cast<std::uint8_t>(frame.kind);
    r.opName = frameKindName(frame.kind);
    r.arg = arg;
    tracer.emit(r);
}

DataChannel::DataChannel(Simulator &sim, const DataChannelConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.makeRng(0x57a7e1e55ULL)),
      receivers_(cfg.numNodes), reservedTokenSeq_(cfg.numNodes, 0),
      reservedJamSeq_(cfg.numNodes, 0)
{
    WIDIR_ASSERT(cfg_.commitOffset <= frameCycles(),
                 "commit point must be inside the frame");
    WIDIR_ASSERT(cfg_.numChannels > 0,
                 "data channel needs at least one frequency band");
    channels_.resize(cfg_.numChannels);
    for (Channel &ch : channels_)
        ch.pending.reserve(cfg_.numNodes);
}

std::uint32_t
DataChannel::channelOf(sim::Addr line) const
{
    if (cfg_.numChannels == 1)
        return 0;
    std::uint64_t x = mem::lineNumber(line);
    if (cfg_.channelPolicy == ChannelPolicy::LineHash) {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
    }
    return static_cast<std::uint32_t>(x % cfg_.numChannels);
}

void
DataChannel::setReceiver(sim::NodeId n, RxHandler handler)
{
    WIDIR_ASSERT(n < receivers_.size(), "receiver id out of range");
    receivers_[n] = std::move(handler);
}

std::uint64_t
DataChannel::signature(sim::Addr line) const
{
    std::uint64_t mask = (cfg_.jamAddrBits >= 64)
        ? ~0ULL
        : ((1ULL << cfg_.jamAddrBits) - 1);
    return mem::lineNumber(line) & mask;
}

std::uint64_t
DataChannel::transmit(const Frame &frame, sim::EventFn on_commit,
                      sim::EventFn on_fail)
{
    WIDIR_ASSERT(frame.src < cfg_.numNodes,
                 "frame source out of range");
    if (sim::boundContext()) {
        // Bound phase: reserve the token from the sender's private
        // counter (only frame.src's own domain sends with that src,
        // so the counter is domain-confined), then enqueue in the
        // weave at the same tick.
        std::uint64_t token =
            reservedId(frame.src, ++reservedTokenSeq_[frame.src]);
        sim::deferOp([this, token, frame,
                      on_commit = std::move(on_commit),
                      on_fail = std::move(on_fail)]() mutable {
            transmitWithToken(token, frame, std::move(on_commit),
                              std::move(on_fail));
        });
        return token;
    }
    std::uint64_t token = nextToken_++;
    transmitWithToken(token, frame, std::move(on_commit),
                      std::move(on_fail));
    return token;
}

void
DataChannel::transmitWithToken(std::uint64_t token, const Frame &frame,
                               sim::EventFn on_commit,
                               sim::EventFn on_fail)
{
    PendingTx tx;
    tx.token = token;
    tx.frame = frame;
    tx.readyAt = sim_.now();
    tx.onCommit = std::move(on_commit);
    tx.onFail = std::move(on_fail);
    traceFrame(sim::TraceKind::FrameQueued, frame, tx.token);
    std::uint32_t ch = channelOf(frame.lineAddr);
    channels_[ch].pending.push_back(std::move(tx));
    scheduleEval(ch);
}

bool
DataChannel::cancelPending(std::uint64_t token)
{
    if (sim::boundContext()) {
        // The outcome is unknowable until the weave replays the
        // cancel; callers that need it use cancelPendingOr().
        sim::deferOp([this, token] { cancelPending(token); });
        return false;
    }
    for (Channel &ch : channels_) {
        for (auto &tx : ch.pending) {
            if (tx.token == token && !tx.cancelled) {
                tx.cancelled = true;
                traceFrame(sim::TraceKind::FrameCancelled, tx.frame,
                           token);
                return true;
            }
        }
    }
    return false;
}

void
DataChannel::cancelPendingOr(std::uint64_t token,
                             sim::EventFn on_cancelled)
{
    if (sim::boundContext()) {
        sim::deferOp([this, token,
                      on_cancelled = std::move(on_cancelled)]() mutable {
            cancelPendingOr(token, std::move(on_cancelled));
        });
        return;
    }
    if (cancelPending(token) && on_cancelled)
        on_cancelled();
}

JamId
DataChannel::startJamming(sim::NodeId owner, sim::Addr line)
{
    if (sim::boundContext()) {
        JamId id = reservedId(owner, ++reservedJamSeq_[owner]);
        sim::deferOp(
            [this, id, owner, line] { startJammingWithId(id, owner, line); });
        return id;
    }
    JamId id = nextJamId_++;
    startJammingWithId(id, owner, line);
    return id;
}

void
DataChannel::startJammingWithId(JamId id, sim::NodeId owner,
                                sim::Addr line)
{
    JamFilter filter;
    filter.id = id;
    filter.owner = owner;
    filter.maskedLine = signature(line);
    jams_.push_back(filter);
}

void
DataChannel::stopJamming(JamId id)
{
    if (sim::boundContext()) {
        sim::deferOp([this, id] { stopJamming(id); });
        return;
    }
    auto it = std::find_if(jams_.begin(), jams_.end(),
                           [id](const JamFilter &f) {
                               return f.id == id;
                           });
    WIDIR_ASSERT(it != jams_.end(), "stopping unknown jam filter");
    jams_.erase(it);
    // Jammed senders are parked in back-off and will retry on their
    // own; nothing to kick here.
}

bool
DataChannel::jammedBy(const PendingTx &tx) const
{
    // Jamming exists to stop *updates* to a line the directory is
    // operating on (Section III-C1); directory-originated control
    // frames (BrWirUpgr/WirDwgr/WirInv) are never jammed. No sender is
    // exempt: the core co-located with the jamming directory must be
    // blocked like any other.
    if (tx.frame.kind != FrameKind::WirUpd)
        return false;
    std::uint64_t sig = signature(tx.frame.lineAddr);
    for (const auto &f : jams_) {
        if (f.maskedLine == sig)
            return true;
    }
    return false;
}

void
DataChannel::scheduleEval(std::uint32_t ch)
{
    Channel &c = channels_[ch];
    // Find the earliest instant an arbitration could do anything.
    if (c.pending.empty())
        return;
    Tick earliest = sim::kTickNever;
    for (const auto &tx : c.pending) {
        if (!tx.cancelled)
            earliest = std::min(earliest, tx.readyAt);
    }
    if (earliest == sim::kTickNever)
        return;
    earliest = std::max({earliest, c.busyUntil, sim_.now()});
    if (c.evalAt != sim::kTickNever && c.evalAt <= earliest)
        return; // an already-scheduled pass covers this instant
    // Supersede any later scheduled pass: bump the generation so the
    // stale callback returns without evaluating (the old code let it
    // run evaluate() a second time -- wasted events, and a hazard the
    // moment evaluate() stops being idempotent).
    c.evalAt = earliest;
    std::uint64_t gen = ++c.evalGen;
    sim_.scheduleAtInline(earliest, [this, ch, gen] {
        if (gen != channels_[ch].evalGen)
            return; // superseded by an earlier reschedule
        channels_[ch].evalAt = sim::kTickNever;
        evaluate(ch);
    });
}

void
DataChannel::evaluate(std::uint32_t ch)
{
    Channel &c = channels_[ch];
    Tick now = sim_.now();
    // A delivery event for this very tick has not run yet (it carries
    // an older event sequence number): re-queue behind it so receivers
    // observe the previous frame before anyone starts a new one.
    if (c.deliveryPending && c.deliveryAt == now) {
        sim_.scheduleAtInline(now, [this, ch] { evaluate(ch); });
        return;
    }
    // Drop cancelled entries lazily.
    c.pending.erase(std::remove_if(c.pending.begin(), c.pending.end(),
                                   [](const PendingTx &tx) {
                                       return tx.cancelled;
                                   }),
                    c.pending.end());
    if (c.pending.empty())
        return;
    if (c.busyUntil > now) {
        // Non-persistent carrier sense: stations that found the medium
        // busy re-sense after it frees with a small random stagger.
        // Re-sensing at exactly busyUntil_ would make every deferred
        // station start together and collide deterministically after
        // each frame (CSMA collapse under bursts).
        for (auto &tx : c.pending) {
            if (!tx.cancelled && tx.readyAt <= now)
                tx.readyAt = c.busyUntil + rng_.below(cfg_.resenseWindow);
        }
        scheduleEval(ch);
        return;
    }

    // All transmitters whose carrier sense sees a free medium at `now`
    // start together; more than one starting is a collision.
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < c.pending.size(); ++i) {
        if (c.pending[i].readyAt <= now)
            ready.push_back(i);
    }
    if (ready.empty()) {
        scheduleEval(ch);
        return;
    }

    attempts_ += ready.size();

    if (ready.size() > 1) {
        // Collision: preamble + detect cycles are consumed, then every
        // participant backs off for a random number of slots drawn
        // from its (capped) exponential window.
        ++collisionEvents_;
        collisionsSampled_ += ready.size();
        Tick after = now + 1 + cfg_.collisionCycles;
        c.busyUntil = after;
        busyCycles_ += after - now;
        for (std::size_t idx : ready) {
            PendingTx &tx = c.pending[idx];
            ++tx.attempt;
            std::uint32_t exp =
                std::min(tx.attempt, cfg_.maxBackoffExp);
            std::uint64_t window = 1ULL << exp;
            tx.readyAt = after + rng_.below(window) * cfg_.backoffSlot;
            traceFrame(sim::TraceKind::FrameCollision, tx.frame,
                       tx.attempt);
        }
        scheduleEval(ch);
        return;
    }

    // Lone transmitter: check the jam filters, which fire a
    // negative-ack in the collision-detect cycle.
    std::size_t idx = ready.front();
    if (jammedBy(c.pending[idx])) {
        if (trace_) {
            std::fprintf(stderr, "%10llu  WNoC %2u JAMMED %-10s line=%#llx\n",
                         (unsigned long long)now, c.pending[idx].frame.src,
                         frameKindName(c.pending[idx].frame.kind),
                         (unsigned long long)c.pending[idx].frame.lineAddr);
        }
        ++jamRejects_;
        traceFrame(sim::TraceKind::FrameJammed, c.pending[idx].frame);
        Tick after = now + 1 + cfg_.collisionCycles;
        c.busyUntil = after;
        busyCycles_ += after - now;
        PendingTx &tx = c.pending[idx];
        // A jam is the directory saying "not yet", not congestion:
        // retry on a short fixed window (and do not escalate the
        // collision backoff), otherwise a long jam (e.g. a batch of
        // W->W joins) starves writers far beyond the jam itself.
        tx.readyAt = after + rng_.below(4) * cfg_.backoffSlot;
        scheduleEval(ch);
        return;
    }

    // Fault injection (docs/FAULTS.md): a lone acquisition can still
    // lose its preamble to a fade or deliver a payload every
    // receiver's CRC rejects. Fates are sampled here, before the
    // commit point, so a faulted frame never commits and never reaches
    // any receiver -- each attempt is all-or-nothing, preserving the
    // commit point as the protocol's serialization point. The sender
    // retries through the normal BRS exponential backoff until the
    // per-transmission budget runs out, then drops the frame and runs
    // its on_fail callback (wired fallback).
    if (fault_) {
        fault::FrameFate fate = fault_->sampleFrame();
        if (fate != fault::FrameFate::Clean) {
            PendingTx &tx = c.pending[idx];
            ++tx.faultRetries;
            Tick after;
            if (fate == fault::FrameFate::PreambleLoss) {
                // The fade is noticed in the collision-detect window,
                // costing the same as a collision.
                ++preambleLosses_;
                after = now + 1 + cfg_.collisionCycles;
                traceFrame(sim::TraceKind::FramePreambleLoss, tx.frame,
                           tx.faultRetries);
            } else {
                // Corruption wastes the whole frame time plus one
                // cycle for the receivers' CRC NACK.
                ++crcErrors_;
                after = now + frameCycles() + 1;
                traceFrame(sim::TraceKind::FrameCrcError, tx.frame,
                           tx.faultRetries);
            }
            c.busyUntil = after;
            busyCycles_ += after - now;
            if (tx.faultRetries > fault_->spec().retryBudget) {
                ++faultDrops_;
                traceFrame(sim::TraceKind::FrameFaultDrop, tx.frame,
                           tx.faultRetries);
                sim::EventFn on_fail = std::move(tx.onFail);
                sim::NodeId src = tx.frame.src;
                c.pending.erase(c.pending.begin() +
                                static_cast<std::ptrdiff_t>(idx));
                if (on_fail) {
                    // The fallback is sender-side protocol code: run
                    // it in the sender's domain.
                    sim_.scheduleForNodeAt(src, after,
                                           std::move(on_fail));
                }
            } else {
                ++faultRetries_;
                ++tx.attempt;
                std::uint32_t exp =
                    std::min(tx.attempt, cfg_.maxBackoffExp);
                tx.readyAt =
                    after + rng_.below(1ULL << exp) * cfg_.backoffSlot;
            }
            scheduleEval(ch);
            return;
        }
    }

    // Successful acquisition: commit at now+commitOffset, deliver the
    // frame everywhere at the end of the frame.
    if (trace_) {
        std::fprintf(stderr, "%10llu  WNoC %2u %-10s line=%#llx val=%llu\n",
                     (unsigned long long)now, c.pending[idx].frame.src,
                     frameKindName(c.pending[idx].frame.kind),
                     (unsigned long long)c.pending[idx].frame.lineAddr,
                     (unsigned long long)c.pending[idx].frame.value);
    }
    PendingTx tx = std::move(c.pending[idx]);
    c.pending.erase(c.pending.begin() +
                    static_cast<std::ptrdiff_t>(idx));
    ++successes_;
    traceFrame(sim::TraceKind::FrameWin, tx.frame, tx.attempt);
    Tick end = now + frameCycles();
    c.busyUntil = end;
    busyCycles_ += end - now;

    if (tx.onCommit) {
        // Already an EventFn: scheduling it directly keeps the commit
        // inline (wrapping it in another lambda would not fit). The
        // commit is sender-side protocol code, so in domain mode it
        // runs in the sender's own bound phase.
        sim_.scheduleForNodeAt(tx.frame.src, now + cfg_.commitOffset,
                               std::move(tx.onCommit));
    }
    Frame frame = tx.frame;
    c.deliveryPending = true;
    c.deliveryAt = end;
    sim_.scheduleAtInline(end, [this, ch, frame] {
        channels_[ch].deliveryPending = false;
        traceFrame(sim::TraceKind::FrameDelivered, frame);
        if (!sim_.domainMode()) {
            for (auto &rx : receivers_) {
                if (rx)
                    rx(frame);
            }
        }
        // Domain mode: receivers got their own per-node events below;
        // this boundary event keeps the channel bookkeeping (and runs
        // after the bound phase of tick `end`, so the next arbitration
        // still starts only once every receiver has the frame).
    });
    if (sim_.domainMode()) {
        // Fan the broadcast out as one event per receiving tile so
        // the receive handlers (L1 + directory frame processing) run
        // inside their own domains, in parallel. Scheduling happens
        // here, in deterministic channel order, so each domain sees
        // the same (tick, seq) schedule at every thread count.
        for (sim::NodeId n = 0;
             n < static_cast<sim::NodeId>(receivers_.size()); ++n) {
            if (!receivers_[n])
                continue;
            sim_.scheduleForNodeAt(n, end, [this, frame, n] {
                receivers_[n](frame);
            });
        }
    }
    scheduleEval(ch);
}

} // namespace widir::wireless
