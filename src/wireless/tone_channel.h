/**
 * @file
 * The 90 GHz tone channel and the ToneAck primitive (Section III-C2).
 *
 * ToneAck is a wired-OR global acknowledgment: after a triggering
 * data-channel broadcast, every transceiver except the initiator emits
 * a continuous tone; each node drops its tone once it has finished its
 * local obligation; the initiator learns that every node is done when
 * the channel falls silent. Tone transfer latency is one cycle
 * (Table III), so silence is observed one cycle after the last tone is
 * dropped.
 *
 * Because the channel is a single wired-OR, overlapping censuses
 * cannot be told apart; the model therefore completes a census when
 * the OR of ALL outstanding obligations falls silent. That is exactly
 * what the physical initiator would observe, and it is conservative:
 * a census can only finish late (waiting for another census's
 * stragglers), never early. Overlap matters in practice -- bursts of
 * S->W transitions on different lines would otherwise serialize.
 */

#ifndef WIDIR_WIRELESS_TONE_CHANNEL_H
#define WIDIR_WIRELESS_TONE_CHANNEL_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "sim/log.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace widir::wireless {

using sim::NodeId;
using sim::Simulator;
using sim::Tick;

/** Wired-OR acknowledgment channel (overlapping censuses allowed). */
class ToneChannel
{
  public:
    ToneChannel(Simulator &sim, std::uint32_t num_nodes,
                Tick tone_latency = 1)
        : sim_(sim), numNodes_(num_nodes), toneLatency_(tone_latency)
    {
    }

    /**
     * Begin a census: @p participants nodes are now (conceptually)
     * holding their tone and will drop() once their local obligation
     * completes. @p on_silent fires -- after the one-cycle tone
     * latency -- when the WHOLE channel falls silent, i.e. when every
     * obligation of every in-flight census has completed.
     */
    void
    beginCensus(std::uint32_t participants,
                std::function<void()> on_silent)
    {
        if (sim::boundContext()) {
            // Bound phase: the wired-OR state is chip-wide, so the
            // census opens in the weave at the same tick.
            sim::deferOp([this, participants,
                          on_silent = std::move(on_silent)]() mutable {
                beginCensus(participants, std::move(on_silent));
            });
            return;
        }
        ++censuses_;
        ++activeCensuses_;
        outstanding_ += participants;
        sim::Tracer &tracer = sim_.tracer();
        if (sim::kTraceCompiled && tracer.enabled()) {
            sim::TraceRecord r;
            r.tick = sim_.now();
            r.kind = sim::TraceKind::ToneCensusBegin;
            r.comp = sim::TraceComponent::ToneChannel;
            r.arg = participants;
            tracer.emit(r);
        }
        waiters_.push_back(std::move(on_silent));
        if (outstanding_ == 0)
            finish();
    }

    /** A participant raises its tone (bookkeeping only). */
    void
    raise()
    {
        if (sim::boundContext()) {
            sim::deferOp([this] { raise(); });
            return;
        }
        ++raised_;
    }

    /** A participant finished its obligation and drops its tone. */
    void
    drop()
    {
        if (sim::boundContext()) {
            // Deferred drops from different domains replay in domain
            // order within the same tick, so "who dropped the last
            // tone" -- and therefore the silence instant -- is the
            // same at every thread count.
            sim::deferOp([this] { drop(); });
            return;
        }
        WIDIR_ASSERT(outstanding_ > 0, "tone underflow");
        if (--outstanding_ == 0)
            finish();
    }

    /**
     * Attach the fault-injection sampler (null: clean channel). With
     * faults, a census initiator can miss the one-cycle silence pulse
     * (tone-pulse loss) and re-polls after an exponentially growing
     * interval -- latency only, the census outcome is unchanged.
     */
    void setFaultModel(fault::FaultModel *model) { fault_ = model; }

    /** Number of censuses begun (for stats/energy). */
    std::uint64_t censuses() const { return censuses_; }

    /** Missed silence pulses re-polled (zero on a clean channel). */
    std::uint64_t toneRetries() const { return toneRetries_; }

    /** True while any census is in flight. */
    bool busy() const { return activeCensuses_ > 0; }

    /** Outstanding tone count over all active censuses. */
    std::uint32_t outstanding() const { return outstanding_; }

  private:
    void
    finish()
    {
        // Hand every waiting initiator its completion one tone-latency
        // later. New censuses may begin in between; they get their own
        // silence later.
        std::vector<std::function<void()>> done;
        done.swap(waiters_);
        sim::Tracer &tracer = sim_.tracer();
        if (sim::kTraceCompiled && tracer.enabled()) {
            sim::TraceRecord r;
            r.tick = sim_.now();
            r.kind = sim::TraceKind::ToneCensusEnd;
            r.comp = sim::TraceComponent::ToneChannel;
            r.arg = done.size(); // censuses completed by this silence
            tracer.emit(r);
        }
        activeCensuses_ = 0;
        sim_.scheduleInline(toneLatency_,
                            [this, done = std::move(done)]() mutable {
            for (auto &cb : done)
                deliverSilence(std::move(cb), 0);
        });
    }

    /**
     * Hand one initiator its silence observation, or -- under injected
     * tone-pulse loss -- make it re-poll later. deliverSilence calls
     * the callback synchronously on the clean path, so with no fault
     * model the event structure is identical to a build without fault
     * injection (pay-for-what-you-use byte-identity).
     */
    void
    deliverSilence(std::function<void()> cb, std::uint32_t attempt)
    {
        if (!cb)
            return;
        if (fault_ && attempt < fault_->spec().retryBudget &&
            fault_->sampleToneLoss()) {
            ++toneRetries_;
            sim::Tracer &tracer = sim_.tracer();
            if (sim::kTraceCompiled && tracer.enabled()) {
                sim::TraceRecord r;
                r.tick = sim_.now();
                r.kind = sim::TraceKind::ToneRetry;
                r.comp = sim::TraceComponent::ToneChannel;
                r.arg = attempt + 1;
                tracer.emit(r);
            }
            // Exponentially spaced re-polls; delivery may then lag the
            // physical silent instant, which is conservative (a census
            // can only finish late, never early).
            Tick delay = toneLatency_
                         << std::min<std::uint32_t>(attempt + 1, 6);
            sim_.schedule(delay,
                          [this, cb = std::move(cb), attempt]() mutable {
                              deliverSilence(std::move(cb), attempt + 1);
                          });
            return;
        }
        cb();
    }

    Simulator &sim_;
    std::uint32_t numNodes_;
    Tick toneLatency_;
    fault::FaultModel *fault_ = nullptr; ///< null: clean channel
    std::uint32_t outstanding_ = 0;
    std::uint32_t activeCensuses_ = 0;
    std::uint64_t raised_ = 0;
    std::uint64_t censuses_ = 0;
    std::uint64_t toneRetries_ = 0;
    std::vector<std::function<void()>> waiters_;
};

} // namespace widir::wireless

#endif // WIDIR_WIRELESS_TONE_CHANNEL_H
