/**
 * @file
 * Wired 2D-mesh network-on-chip.
 *
 * Matches the Table III configuration: 2D mesh, 1 cycle per hop,
 * 128-bit links. The model is message-level: a message follows its XY
 * (dimension-ordered) route; each traversed link adds one cycle of
 * router/link pipeline latency plus any queuing delay, and is then held
 * busy for the message's serialization time (ceil(bits/128) cycles),
 * which is how contention arises. Delivery invokes a caller-supplied
 * closure, so any payload type can ride the mesh.
 *
 * The mesh also keeps the hop accounting the paper reports in Table V:
 * a histogram of network hops per message "leg".
 */

#ifndef WIDIR_NOC_MESH_H
#define WIDIR_NOC_MESH_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/log.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace widir::noc {

using sim::NodeId;
using sim::Simulator;
using sim::Tick;

/** Wired mesh configuration. */
struct MeshConfig
{
    std::uint32_t numNodes = 64;
    Tick hopLatency = 1;        ///< cycles per router/link hop
    std::uint32_t linkBits = 128; ///< link width (flit size)
    /**
     * Tiles per router (concentrated mesh). 1 keeps the classic one
     * router per tile; c > 1 shares each router among c consecutive
     * tile ids, shrinking the router grid by c (a 1024-tile machine
     * with concentration 4 routes over a 16x16 mesh). Must divide
     * numNodes.
     */
    std::uint32_t concentration = 1;
};

/** Message-level 2D mesh with XY routing and link contention. */
class Mesh
{
  public:
    Mesh(Simulator &sim, const MeshConfig &cfg);

    std::uint32_t numNodes() const { return cfg_.numNodes; }
    /** Router-grid dimensions (== tile grid at concentration 1). */
    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }
    std::uint32_t numRouters() const { return routers_; }

    /** Manhattan router-hop count between two nodes' routers. */
    std::uint32_t hopCount(NodeId src, NodeId dst) const;

    /**
     * Send @p bits of payload from @p src to @p dst; @p deliver runs at
     * the destination when the message fully arrives. src == dst models
     * a request to the local slice (one cycle, zero network hops).
     *
     * Hot path: @p deliver should fit sim::InlineEvent's inline buffer
     * (pool bulky payloads and capture an index; see core/fabric.cc).
     */
    void send(NodeId src, NodeId dst, std::uint32_t bits,
              sim::EventFn deliver);

    /**
     * Convenience broadcast: one unicast to every node (optionally
     * including @p src itself). This is what a wired protocol must do
     * when a directory with the broadcast bit set invalidates sharers.
     */
    void broadcast(NodeId src, std::uint32_t bits, bool include_self,
                   std::function<void(NodeId)> deliver_at);

    /** Hops-per-leg histogram (Table V bins: 0-2,3-5,6-8,9-11,12-16). */
    const sim::BinnedHistogram &hopHistogram() const { return hopHist_; }

    /** Total messages sent. */
    std::uint64_t messages() const { return messages_; }

    /** Total router traversals (for the energy model). */
    std::uint64_t routerTraversals() const { return routerTraversals_; }

    /** Total link-cycles of traffic, i.e. sum of flits x hops. */
    std::uint64_t flitHops() const { return flitHops_; }

    /** Mean end-to-end latency observed (cycles). */
    double meanLatency() const { return latency_.mean(); }

  private:
    struct Coord
    {
        std::int32_t x;
        std::int32_t y;
    };

    /** Router serving tile @p n (n / concentration). */
    NodeId routerOf(NodeId n) const
    {
        return n / cfg_.concentration;
    }

    Coord coordOf(NodeId router) const;
    NodeId routerAt(Coord c) const;

    /** Directed link id from router @p from to adjacent router @p to. */
    std::size_t linkIndex(NodeId from, NodeId to) const;

    Simulator &sim_;
    MeshConfig cfg_;
    std::uint32_t routers_;
    std::uint32_t width_;
    std::uint32_t height_;
    /** Earliest tick each directed link is free. */
    std::vector<Tick> linkFree_;
    /**
     * Earliest tick each node's local (NI loopback) port is free; keeps
     * same-node deliveries FIFO and serialized like any other link.
     */
    std::vector<Tick> localFree_;

    sim::BinnedHistogram hopHist_{{2, 5, 8, 11}, true};
    sim::Average latency_;
    std::uint64_t messages_ = 0;
    std::uint64_t routerTraversals_ = 0;
    std::uint64_t flitHops_ = 0;
};

} // namespace widir::noc

#endif // WIDIR_NOC_MESH_H
