#include "noc/mesh.h"

#include <cmath>

namespace widir::noc {

namespace {

/**
 * Pick mesh dimensions for @p n nodes: the most-square factorization
 * with width >= height (64 -> 8x8, 32 -> 8x4, 16 -> 4x4, 4 -> 2x2).
 */
std::pair<std::uint32_t, std::uint32_t>
meshDims(std::uint32_t n)
{
    std::uint32_t best_h = 1;
    for (std::uint32_t h = 1;
         static_cast<std::uint64_t>(h) * h <= n; ++h) {
        if (n % h == 0)
            best_h = h;
    }
    return {n / best_h, best_h};
}

} // namespace

Mesh::Mesh(Simulator &sim, const MeshConfig &cfg)
    : sim_(sim), cfg_(cfg)
{
    WIDIR_ASSERT(cfg_.numNodes > 0, "mesh needs at least one node");
    WIDIR_ASSERT(cfg_.linkBits > 0, "link width must be positive");
    WIDIR_ASSERT(cfg_.concentration > 0 &&
                     cfg_.numNodes % cfg_.concentration == 0,
                 "concentration must divide the tile count (%u / %u)",
                 cfg_.numNodes, cfg_.concentration);
    routers_ = cfg_.numNodes / cfg_.concentration;
    auto [w, h] = meshDims(routers_);
    width_ = w;
    height_ = h;
    // Four directed links per router is an upper bound; index by
    // (router, direction).
    linkFree_.assign(static_cast<std::size_t>(routers_) * 4, 0);
    localFree_.assign(cfg_.numNodes, 0);
}

Mesh::Coord
Mesh::coordOf(NodeId router) const
{
    return Coord{static_cast<std::int32_t>(router % width_),
                 static_cast<std::int32_t>(router / width_)};
}

sim::NodeId
Mesh::routerAt(Coord c) const
{
    return static_cast<NodeId>(c.y * static_cast<std::int32_t>(width_) +
                               c.x);
}

std::uint32_t
Mesh::hopCount(NodeId src, NodeId dst) const
{
    Coord a = coordOf(routerOf(src));
    Coord b = coordOf(routerOf(dst));
    return static_cast<std::uint32_t>(std::abs(a.x - b.x) +
                                      std::abs(a.y - b.y));
}

std::size_t
Mesh::linkIndex(NodeId from, NodeId to) const
{
    Coord a = coordOf(from);
    Coord b = coordOf(to);
    std::uint32_t dir;
    if (b.x == a.x + 1 && b.y == a.y) {
        dir = 0; // east
    } else if (b.x == a.x - 1 && b.y == a.y) {
        dir = 1; // west
    } else if (b.y == a.y + 1 && b.x == a.x) {
        dir = 2; // south
    } else if (b.y == a.y - 1 && b.x == a.x) {
        dir = 3; // north
    } else {
        sim::panic("linkIndex on non-adjacent nodes %u -> %u", from, to);
    }
    return static_cast<std::size_t>(from) * 4 + dir;
}

void
Mesh::send(NodeId src, NodeId dst, std::uint32_t bits,
           sim::EventFn deliver)
{
    WIDIR_ASSERT(src < cfg_.numNodes && dst < cfg_.numNodes,
                 "mesh endpoint out of range (src=%u dst=%u)", src, dst);
    std::uint32_t hops = hopCount(src, dst);
    std::uint32_t flits =
        std::max<std::uint32_t>(1, (bits + cfg_.linkBits - 1) /
                                       cfg_.linkBits);
    ++messages_;
    hopHist_.sample(hops);
    routerTraversals_ += hops + 1; // source + each intermediate router
    flitHops_ += static_cast<std::uint64_t>(flits) * hops;

    Tick depart = sim_.now();
    Tick arrive = depart;

    // Walk the XY route over the ROUTER grid: first along X, then
    // along Y. The head advances one hop per cycle when links are
    // free; each link then stays busy for the serialization time of
    // the whole message. At concentration 1 routers and tiles
    // coincide and this is the classic per-tile walk.
    Coord cur = coordOf(routerOf(src));
    Coord dstc = coordOf(routerOf(dst));
    while (cur.x != dstc.x || cur.y != dstc.y) {
        Coord next = cur;
        if (cur.x != dstc.x)
            next.x += (dstc.x > cur.x) ? 1 : -1;
        else
            next.y += (dstc.y > cur.y) ? 1 : -1;
        std::size_t link = linkIndex(routerAt(cur), routerAt(next));
        Tick start = std::max(arrive, linkFree_[link]);
        linkFree_[link] = start + flits;      // serialization occupancy
        arrive = start + cfg_.hopLatency;     // head moves one hop
        cur = next;
    }
    // Tail arrival: remaining flits stream in behind the head. 0-hop
    // delivery (same node, or two tiles sharing a concentrated
    // router) goes through the sender's NI loopback port, which
    // serializes like a link (and keeps same-node delivery FIFO).
    Tick total;
    if (hops == 0) {
        Tick start = std::max(depart, localFree_[src]);
        localFree_[src] = start + flits;
        total = (start - depart) + cfg_.hopLatency + (flits - 1);
    } else {
        total = (arrive - depart) + (flits - 1);
    }
    latency_.sample(static_cast<double>(total));
    sim::Tracer &tracer = sim_.tracer();
    if (sim::kTraceCompiled && tracer.enabled()) {
        sim::TraceRecord r;
        r.tick = depart;
        r.kind = sim::TraceKind::NocSend;
        r.comp = sim::TraceComponent::Mesh;
        r.node = src;
        r.peer = dst;
        r.op = static_cast<std::uint8_t>(hops);
        r.arg = total; // tail-arrival latency incl. contention
        tracer.emit(r);
    }
    // Delivery belongs to the destination tile: in domain mode this
    // schedules into dst's sub-queue so the receiving controller runs
    // in its own bound phase (the mesh itself is only ever called from
    // the weave, where sendWired replays). total >= hopLatency >= 1,
    // so the event lands in a strictly later window.
    sim_.scheduleForNode(dst, total, std::move(deliver));
}

void
Mesh::broadcast(NodeId src, std::uint32_t bits, bool include_self,
                std::function<void(NodeId)> deliver_at)
{
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        if (n == src && !include_self)
            continue;
        auto deliver = [deliver_at, n] { deliver_at(n); };
        static_assert(sim::InlineEvent::fitsInline<decltype(deliver)>(),
                      "broadcast delivery closure must stay inline");
        send(src, n, bits, std::move(deliver));
    }
}

} // namespace widir::noc
