/**
 * @file
 * Miss Status Holding Registers.
 *
 * An MshrFile tracks the lines with an outstanding coherence
 * transaction at a controller and coalesces additional requests to the
 * same line while the first is in flight. Each entry carries opaque
 * 64-bit tokens chosen by the owner (the cpu model uses ROB op ids).
 */

#ifndef WIDIR_MEM_MSHR_H
#define WIDIR_MEM_MSHR_H

#include <cstdint>
#include <vector>

#include "mem/address.h"
#include "mem/flat_addr_map.h"
#include "sim/log.h"

namespace widir::mem {

/** One outstanding-miss record. */
struct MshrEntry
{
    Addr line = sim::kAddrNone;
    bool isWrite = false;        ///< strongest request type so far
    std::vector<std::uint64_t> waiters; ///< coalesced op tokens
};

/** Fixed-capacity file of MshrEntry keyed by line address. */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t capacity) : capacity_(capacity)
    {
        // The capacity bounds the live entries, so a one-time reserve
        // keeps the flat index rehash-free for the whole run.
        entries_.reserve(capacity);
    }

    /** Entry for @p addr's line, or nullptr if none outstanding. */
    MshrEntry *
    find(Addr addr)
    {
        auto it = entries_.find(lineAlign(addr));
        return it == entries_.end() ? nullptr : &it->second;
    }

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }

    /**
     * Allocate an entry for @p addr's line.
     * Caller must ensure no entry exists and the file is not full.
     */
    MshrEntry &
    allocate(Addr addr, bool is_write)
    {
        Addr line = lineAlign(addr);
        WIDIR_ASSERT(!full(), "MSHR overflow");
        auto [it, inserted] = entries_.try_emplace(line);
        WIDIR_ASSERT(inserted, "duplicate MSHR allocation");
        it->second.line = line;
        it->second.isWrite = is_write;
        return it->second;
    }

    /**
     * Remove the entry for @p addr's line and return its waiter tokens.
     */
    std::vector<std::uint64_t>
    release(Addr addr)
    {
        auto it = entries_.find(lineAlign(addr));
        WIDIR_ASSERT(it != entries_.end(), "releasing unknown MSHR");
        std::vector<std::uint64_t> waiters =
            std::move(it->second.waiters);
        entries_.erase(it);
        return waiters;
    }

  private:
    std::size_t capacity_;
    FlatAddrMap<MshrEntry> entries_;
};

} // namespace widir::mem

#endif // WIDIR_MEM_MSHR_H
