/**
 * @file
 * FlatAddrMap: open-addressed address-keyed map for simulator hot
 * state (docs/PERF.md, "Flat hot-state layouts").
 *
 * The protocol's per-line bookkeeping (directory entries, in-flight
 * transactions, MSHRs, the functional memory store) is keyed by line
 * address and hit on nearly every simulated memory operation.
 * std::unordered_map pays a node allocation per entry and a pointer
 * chase per lookup; at 256-1024 tiles that dominates both host time
 * and footprint. FlatAddrMap splits the map into
 *
 *  - a flat open-addressed *index*: a power-of-two array of keys with
 *    a parallel array of value-slot ids, probed linearly, erased with
 *    tombstone-free backward shifting (so probe chains never rot and
 *    lookups stay one cache-friendly linear scan);
 *  - a chunked value *slab*: values live in fixed 256-entry chunks
 *    that are never moved or freed, so `Value &` references remain
 *    stable across insert/erase/rehash exactly like
 *    std::unordered_map's -- callers hold references across map
 *    mutations. Freed slots are recycled through a free list.
 *
 * The API is the std::unordered_map subset the controllers use
 * (find/count/try_emplace/operator[]/erase/size/reserve/iteration);
 * iterators yield `.first`/`.second` through an arrow proxy.
 * Iteration order is index order, not insertion order -- no simulation
 * path iterates these maps (tests/test_flat_map.cc pins the container
 * semantics instead).
 *
 * reserve() sizes the index from cache geometry at construction
 * (e.g. the LLC slice's line count bounds a directory bank's live
 * entries) so steady state never rehashes.
 */

#ifndef WIDIR_MEM_FLAT_ADDR_MAP_H
#define WIDIR_MEM_FLAT_ADDR_MAP_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "mem/address.h"
#include "sim/log.h"

namespace widir::mem {

template <typename Value>
class FlatAddrMap
{
    /** Vacant index slots hold this key; real keys never do. */
    static constexpr Addr kEmptyKey = sim::kAddrNone;
    /** Value-slab chunk size (slots); chunks are never moved/freed. */
    static constexpr std::size_t kChunkSlots = 256;
    static constexpr std::size_t kMinCapacity = 16;

  public:
    using key_type = Addr;
    using mapped_type = Value;

    template <bool Const>
    class Iter
    {
        using MapPtr =
            std::conditional_t<Const, const FlatAddrMap *, FlatAddrMap *>;
        using Ref = std::conditional_t<Const, const Value &, Value &>;

      public:
        using value_type = std::pair<const Addr, Ref>;

        Iter() = default;

        value_type operator*() const
        {
            return {map_->keys_[pos_], map_->valueAt(map_->slot_[pos_])};
        }

        /** Arrow proxy so `it->first` / `it->second` work. */
        struct Proxy
        {
            value_type pair;
            value_type *operator->() { return &pair; }
        };
        Proxy operator->() const { return Proxy{**this}; }

        Iter &operator++()
        {
            ++pos_;
            skipVacant();
            return *this;
        }

        bool operator==(const Iter &o) const { return pos_ == o.pos_; }
        bool operator!=(const Iter &o) const { return pos_ != o.pos_; }

      private:
        friend class FlatAddrMap;
        Iter(MapPtr map, std::size_t pos) : map_(map), pos_(pos)
        {
            skipVacant();
        }

        void skipVacant()
        {
            while (pos_ < map_->keys_.size() &&
                   map_->keys_[pos_] == kEmptyKey) {
                ++pos_;
            }
        }

        MapPtr map_ = nullptr;
        std::size_t pos_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatAddrMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Pre-size the index for @p n live entries without rehashing.
     * Call once at construction with the geometry-derived bound.
     */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (n > loadLimit(cap))
            cap <<= 1;
        if (cap > keys_.size())
            rehash(cap);
    }

    iterator find(Addr key) { return {this, findPos(key)}; }
    const_iterator find(Addr key) const { return {this, findPos(key)}; }
    std::size_t count(Addr key) const
    {
        return findPos(key) != keys_.size() ? 1 : 0;
    }

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, keys_.size()}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, keys_.size()}; }

    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(Addr key, Args &&...args)
    {
        WIDIR_ASSERT(key != kEmptyKey, "reserved sentinel key");
        if (size_ + 1 > loadLimit(keys_.size()))
            rehash(std::max<std::size_t>(kMinCapacity,
                                         keys_.size() * 2));
        std::size_t pos = bucketOf(key);
        while (keys_[pos] != kEmptyKey) {
            if (keys_[pos] == key)
                return {iterator(this, pos), false};
            pos = (pos + 1) & mask_;
        }
        keys_[pos] = key;
        slot_[pos] = acquireSlot(std::forward<Args>(args)...);
        ++size_;
        return {iterator(this, pos), true};
    }

    Value &operator[](Addr key) { return try_emplace(key).first->second; }

    void
    erase(iterator it)
    {
        WIDIR_ASSERT(it.pos_ < keys_.size() &&
                         keys_[it.pos_] != kEmptyKey,
                     "erasing a vacant slot");
        freeSlots_.push_back(slot_[it.pos_]);
        --size_;
        backshift(it.pos_);
    }

    std::size_t
    erase(Addr key)
    {
        std::size_t pos = findPos(key);
        if (pos == keys_.size())
            return 0;
        erase(iterator(this, pos));
        return 1;
    }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        freeSlots_.clear();
        slabUsed_ = 0;
        size_ = 0;
    }

    /** Index rehashes since construction (0 after a right-sized reserve). */
    std::uint64_t rehashes() const { return rehashes_; }

  private:
    static constexpr std::size_t
    loadLimit(std::size_t cap)
    {
        return cap - cap / 4; // 3/4 max load factor
    }

    /** Fibonacci-style 64-bit mix so dense line numbers spread. */
    std::size_t
    bucketOf(Addr key) const
    {
        std::uint64_t x = key;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x) & mask_;
    }

    /** Index position of @p key, or keys_.size() when absent. */
    std::size_t
    findPos(Addr key) const
    {
        if (keys_.empty())
            return 0; // == keys_.size(): the end sentinel
        std::size_t pos = bucketOf(key);
        while (keys_[pos] != kEmptyKey) {
            if (keys_[pos] == key)
                return pos;
            pos = (pos + 1) & mask_;
        }
        return keys_.size();
    }

    Value &
    valueAt(std::uint32_t slot)
    {
        return chunks_[slot / kChunkSlots][slot % kChunkSlots];
    }
    const Value &
    valueAt(std::uint32_t slot) const
    {
        return chunks_[slot / kChunkSlots][slot % kChunkSlots];
    }

    template <typename... Args>
    std::uint32_t
    acquireSlot(Args &&...args)
    {
        std::uint32_t slot;
        if (!freeSlots_.empty()) {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        } else {
            slot = slabUsed_++;
            if (slot / kChunkSlots == chunks_.size())
                chunks_.push_back(
                    std::make_unique<Value[]>(kChunkSlots));
        }
        valueAt(slot) = Value(std::forward<Args>(args)...);
        return slot;
    }

    /**
     * Tombstone-free erase: close the hole at @p hole by shifting back
     * every displaced follower whose probe path crosses it, so lookups
     * keep terminating at the first vacant slot.
     */
    void
    backshift(std::size_t hole)
    {
        std::size_t pos = (hole + 1) & mask_;
        while (keys_[pos] != kEmptyKey) {
            std::size_t home = bucketOf(keys_[pos]);
            // Move pos into the hole iff the hole lies on pos's probe
            // path, i.e. its displacement reaches at least back to it.
            if (((pos - home) & mask_) >= ((pos - hole) & mask_)) {
                keys_[hole] = keys_[pos];
                slot_[hole] = slot_[pos];
                hole = pos;
            }
            pos = (pos + 1) & mask_;
        }
        keys_[hole] = kEmptyKey;
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<std::uint32_t> old_slots = std::move(slot_);
        keys_.assign(cap, kEmptyKey);
        slot_.assign(cap, 0);
        mask_ = cap - 1;
        ++rehashes_;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey)
                continue;
            std::size_t pos = bucketOf(old_keys[i]);
            while (keys_[pos] != kEmptyKey)
                pos = (pos + 1) & mask_;
            keys_[pos] = old_keys[i];
            slot_[pos] = old_slots[i];
        }
    }

    std::vector<Addr> keys_;         ///< open-addressed index: keys
    std::vector<std::uint32_t> slot_; ///< parallel: value-slab slot ids
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::uint64_t rehashes_ = 0;

    std::vector<std::unique_ptr<Value[]>> chunks_; ///< stable value slab
    std::vector<std::uint32_t> freeSlots_;
    std::uint32_t slabUsed_ = 0;
};

} // namespace widir::mem

#endif // WIDIR_MEM_FLAT_ADDR_MAP_H
