/**
 * @file
 * Functional payload of a cache line.
 *
 * The simulator carries real data through the coherence protocol so
 * that synchronization built from loads/stores/RMWs (spin locks,
 * barriers) actually works, and so that tests can assert data-value
 * invariants, not just state-machine invariants.
 *
 * All simulated accesses are 8-byte, aligned words.
 */

#ifndef WIDIR_MEM_LINE_DATA_H
#define WIDIR_MEM_LINE_DATA_H

#include <array>
#include <cstdint>

#include "mem/address.h"

namespace widir::mem {

/** 64 bytes of line payload, addressed as eight 64-bit words. */
class LineData
{
  public:
    LineData() { words_.fill(0); }

    /** Read the word that byte address @p a falls into. */
    std::uint64_t
    word(Addr a) const
    {
        return words_[wordInLine(a)];
    }

    /** Write the word that byte address @p a falls into. */
    void
    setWord(Addr a, std::uint64_t v)
    {
        words_[wordInLine(a)] = v;
    }

    /** Direct word access by index (0..7). */
    std::uint64_t wordAt(std::uint32_t i) const { return words_[i]; }
    void setWordAt(std::uint32_t i, std::uint64_t v) { words_[i] = v; }

    bool
    operator==(const LineData &o) const
    {
        return words_ == o.words_;
    }

  private:
    std::array<std::uint64_t, kWordsPerLine> words_;
};

} // namespace widir::mem

#endif // WIDIR_MEM_LINE_DATA_H
