/**
 * @file
 * Off-chip main memory: functional backing store plus a timing model of
 * the machine's four memory controllers (Table III: 80-cycle round
 * trip).
 *
 * Lines are interleaved across controllers by line number. Each
 * controller serializes requests at a configurable issue interval,
 * modeling finite memory bandwidth; latency is the fixed round trip
 * plus any queuing delay at the controller.
 */

#ifndef WIDIR_MEM_MAIN_MEMORY_H
#define WIDIR_MEM_MAIN_MEMORY_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/address.h"
#include "mem/flat_addr_map.h"
#include "mem/line_data.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace widir::mem {

using sim::Simulator;
using sim::Tick;

/** Timing + functional model of off-chip DRAM behind N controllers. */
class MainMemory
{
  public:
    struct Config
    {
        std::uint32_t numControllers = 4;
        Tick roundTripLatency = 80; ///< load-to-use, unloaded (cycles)
        Tick issueInterval = 4;     ///< min cycles between requests/ctrl
    };

    MainMemory(Simulator &sim, const Config &cfg)
        : sim_(sim), cfg_(cfg),
          nextFree_(cfg.numControllers, 0)
    {
        // The store grows with the touched footprint; seed the flat
        // index so small and medium runs never rehash mid-flight.
        store_.reserve(4096);
    }

    /**
     * Functional read of a line (zero-filled on first touch). Timing is
     * modeled separately via readLine/writeLine.
     */
    const LineData &
    peekLine(Addr addr) const
    {
        static const LineData zero{};
        auto it = store_.find(lineNumber(addr));
        return it == store_.end() ? zero : it->second;
    }

    /** Functional write of a full line. */
    void
    pokeLine(Addr addr, const LineData &data)
    {
        store_[lineNumber(addr)] = data;
    }

    /**
     * Timed read: @p done fires with the line data after the round trip
     * plus controller queuing.
     */
    void
    readLine(Addr addr, std::function<void(const LineData &)> done)
    {
        if (sim::boundContext()) {
            // Bound phase: the store and the controller queues are
            // shared across domains, so replay in the weave (same
            // tick, so queuing order and latency are unchanged). The
            // completion then fires on the boundary queue.
            sim::deferOp([this, addr, done = std::move(done)]() mutable {
                readLine(addr, std::move(done));
            });
            return;
        }
        Tick latency = serviceLatency(addr);
        ++reads_;
        Addr line = lineAlign(addr);
        // this + line + std::function is exactly the 48-byte budget.
        sim_.scheduleInline(latency,
                            [this, line, done = std::move(done)] {
            done(peekLine(line));
        });
    }

    /**
     * Timed write-back of a full line. @p done (optional) fires when the
     * write is globally performed.
     */
    void
    writeLine(Addr addr, const LineData &data,
              std::function<void()> done = nullptr)
    {
        if (sim::boundContext()) {
            sim::deferOp(
                [this, addr, data, done = std::move(done)]() mutable {
                    writeLine(addr, data, std::move(done));
                });
            return;
        }
        Tick latency = serviceLatency(addr);
        ++writes_;
        Addr line = lineAlign(addr);
        // Carries the 64-byte line payload: deliberately NOT inline.
        // The write must stay invisible until it "performs" at the
        // memory, so the data rides in the (heap-fallback) closure;
        // writebacks are per-eviction, not per-cycle.
        sim_.schedule(latency,
                      [this, line, data, done = std::move(done)] {
            pokeLine(line, data);
            if (done)
                done();
        });
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    /** Backing-store index rehashes (host_map_rehashes, docs/PERF.md). */
    std::uint64_t mapRehashes() const { return store_.rehashes(); }

  private:
    /** Queue at the owning controller and return total latency. */
    Tick
    serviceLatency(Addr addr)
    {
        std::uint32_t ctrl = static_cast<std::uint32_t>(
            lineNumber(addr) % cfg_.numControllers);
        Tick now = sim_.now();
        Tick start = std::max(now, nextFree_[ctrl]);
        nextFree_[ctrl] = start + cfg_.issueInterval;
        return (start - now) + cfg_.roundTripLatency;
    }

    Simulator &sim_;
    Config cfg_;
    std::vector<Tick> nextFree_;
    FlatAddrMap<LineData> store_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace widir::mem

#endif // WIDIR_MEM_MAIN_MEMORY_H
