/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * Used for both the private L1 data caches and the shared-LLC slices.
 * The array stores, per line: the protocol state byte (interpreted by
 * the owning controller), a dirty bit, the functional payload, and the
 * WiDir UpdateCount / non-evictable bookkeeping described in Sections
 * III-B2 and IV-C of the paper.
 *
 * Replacement honors a per-entry `locked` flag: entries that are mid
 * transaction (or pinned by a wireless RMW) are never chosen as victims.
 */

#ifndef WIDIR_MEM_CACHE_ARRAY_H
#define WIDIR_MEM_CACHE_ARRAY_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/address.h"
#include "mem/line_data.h"
#include "sim/log.h"
#include "sim/types.h"

namespace widir::mem {

using sim::Tick;

/** One cache frame (way) in the array. */
struct CacheEntry
{
    Addr line = sim::kAddrNone; ///< line-aligned address
    bool valid = false;
    std::uint8_t state = 0;     ///< controller-defined protocol state
    bool dirty = false;
    /**
     * WiDir: wireless updates received since the local core last touched
     * the line (saturating; see UpdateCount, Section III-B2).
     */
    std::uint8_t updateCount = 0;
    /**
     * Entry may not be replaced: set while a transaction on the line is
     * in flight, or while a wireless RMW has the line pinned (IV-C).
     */
    bool locked = false;
    Tick lruStamp = 0;          ///< larger == more recently used
    LineData data;
};

/** Set-associative, LRU, single-cycle-lookup cache array model. */
class CacheArray
{
  public:
    /**
     * @param size_bytes    Total capacity.
     * @param assoc         Ways per set.
     * @param index_divisor Line numbers are divided by this before set
     *                      indexing. A distributed LLC slice passes the
     *                      node count so the home-interleaving bits do
     *                      not alias every resident line into one set.
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t assoc,
               std::uint64_t index_divisor = 1)
        : assoc_(assoc),
          numSets_(static_cast<std::uint32_t>(
              size_bytes / (static_cast<std::uint64_t>(assoc) *
                            kLineBytes))),
          indexDivisor_(index_divisor)
    {
        WIDIR_ASSERT(indexDivisor_ > 0, "index divisor must be positive");
        WIDIR_ASSERT(assoc_ > 0, "associativity must be positive");
        WIDIR_ASSERT(numSets_ > 0, "cache must hold at least one set");
        WIDIR_ASSERT((numSets_ & (numSets_ - 1)) == 0,
                     "number of sets must be a power of two");
        frames_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    /** Find the entry holding @p addr's line, or nullptr. */
    CacheEntry *
    lookup(Addr addr)
    {
        Addr line = lineAlign(addr);
        auto [begin, end] = setRange(line);
        for (std::size_t i = begin; i < end; ++i) {
            if (frames_[i].valid && frames_[i].line == line)
                return &frames_[i];
        }
        return nullptr;
    }

    const CacheEntry *
    lookup(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(addr);
    }

    /** Mark @p e most recently used. */
    void
    touch(CacheEntry *e, Tick /* now */)
    {
        e->lruStamp = ++lruCounter_;
    }

    /**
     * Choose a victim frame in @p addr's set: an invalid frame if one
     * exists, else the least recently used unlocked frame.
     * @return nullptr if every frame in the set is locked.
     */
    CacheEntry *
    pickVictim(Addr addr)
    {
        Addr line = lineAlign(addr);
        auto [begin, end] = setRange(line);
        CacheEntry *victim = nullptr;
        for (std::size_t i = begin; i < end; ++i) {
            CacheEntry &f = frames_[i];
            if (!f.valid)
                return &f;
            if (f.locked)
                continue;
            if (victim == nullptr || f.lruStamp < victim->lruStamp)
                victim = &f;
        }
        return victim;
    }

    /**
     * Install @p line into @p frame (which must belong to line's set),
     * resetting all metadata. The caller handles any eviction of the
     * previous occupant first.
     */
    void
    fill(CacheEntry *frame, Addr line, std::uint8_t state,
         const LineData &data)
    {
        frame->line = lineAlign(line);
        frame->valid = true;
        frame->state = state;
        frame->dirty = false;
        frame->updateCount = 0;
        frame->locked = false;
        frame->data = data;
        frame->lruStamp = ++lruCounter_;
    }

    /** Invalidate @p frame. */
    void
    invalidate(CacheEntry *frame)
    {
        frame->valid = false;
        frame->line = sim::kAddrNone;
        frame->state = 0;
        frame->dirty = false;
        frame->updateCount = 0;
        frame->locked = false;
    }

    /** Visit every valid entry (for checkers, flushes and reports). */
    void
    forEach(const std::function<void(CacheEntry &)> &fn)
    {
        for (auto &f : frames_) {
            if (f.valid)
                fn(f);
        }
    }

    /** Count of valid entries. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &f : frames_) {
            if (f.valid)
                ++n;
        }
        return n;
    }

  private:
    /** [first, last) frame indices of the set for @p line. */
    std::pair<std::size_t, std::size_t>
    setRange(Addr line) const
    {
        std::uint32_t set = static_cast<std::uint32_t>(
            (lineNumber(line) / indexDivisor_) & (numSets_ - 1));
        std::size_t begin = static_cast<std::size_t>(set) * assoc_;
        return {begin, begin + assoc_};
    }

    std::uint32_t assoc_;
    std::uint32_t numSets_;
    std::uint64_t indexDivisor_;
    std::vector<CacheEntry> frames_;
    std::uint64_t lruCounter_ = 0;
};

} // namespace widir::mem

#endif // WIDIR_MEM_CACHE_ARRAY_H
