/**
 * @file
 * Address manipulation helpers: line/word extraction and static home
 * mapping of lines to LLC/directory slices.
 *
 * The simulated machine uses 64-byte cache lines (Table III). The shared
 * L2 (LLC) and its directory are physically distributed, one slice per
 * tile; lines are interleaved across slices by line address, which is
 * the standard static-NUCA mapping.
 */

#ifndef WIDIR_MEM_ADDRESS_H
#define WIDIR_MEM_ADDRESS_H

#include <cstdint>

#include "sim/types.h"

namespace widir::mem {

using sim::Addr;
using sim::NodeId;

/** Cache line size in bytes (Table III). */
inline constexpr std::uint32_t kLineBytes = 64;

/** log2(kLineBytes). */
inline constexpr std::uint32_t kLineShift = 6;

/** Words (8 bytes) per cache line. */
inline constexpr std::uint32_t kWordsPerLine = kLineBytes / 8;

/** Address of the first byte of the line containing @p a. */
inline constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Line number (address >> 6) of @p a. */
inline constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/** Index of the 8-byte word within its line. */
inline constexpr std::uint32_t
wordInLine(Addr a)
{
    return static_cast<std::uint32_t>((a >> 3) &
                                      (kWordsPerLine - 1));
}

/** True if @p a is 8-byte aligned (all simulated accesses are). */
inline constexpr bool
wordAligned(Addr a)
{
    return (a & 7) == 0;
}

/**
 * Home LLC/directory slice of a line: line-interleaved across nodes.
 */
inline constexpr NodeId
homeNode(Addr a, std::uint32_t num_nodes)
{
    return static_cast<NodeId>(lineNumber(a) % num_nodes);
}

/**
 * How the directory banks shard the address space across tiles.
 *
 * Interleave is the classic static-NUCA modulo mapping. Hash spreads
 * lines through a 64-bit finalizer first, which breaks up the
 * pathological strided access patterns that pile whole data structures
 * onto a handful of banks at large tile counts (the same idea as
 * gem5's DirectorySet address hashing).
 */
enum class HomeMap : std::uint8_t
{
    Interleave, ///< lineNumber % numNodes (default; static NUCA)
    Hash,       ///< mixed lineNumber % numNodes (bank-conflict proof)
};

/** Hash-sharded home slice: splitmix64 finalizer over the line number. */
inline constexpr NodeId
homeNodeHashed(Addr a, std::uint32_t num_nodes)
{
    std::uint64_t x = lineNumber(a);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<NodeId>(x % num_nodes);
}

/** Home slice of @p a under the selected sharding policy. */
inline constexpr NodeId
homeNodeOf(Addr a, std::uint32_t num_nodes, HomeMap map)
{
    return map == HomeMap::Hash ? homeNodeHashed(a, num_nodes)
                                : homeNode(a, num_nodes);
}

} // namespace widir::mem

#endif // WIDIR_MEM_ADDRESS_H
