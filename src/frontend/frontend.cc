#include "frontend/frontend.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <tuple>

#include "sim/log.h"

namespace widir::frontend {

namespace {

/**
 * Reconstruct a recorded RMW's modify function for replay.
 *
 * The common case carries only the committed (old, new) pair: old ==
 * new is the protocol's no-op discriminator (a failed CAS stores and
 * broadcasts nothing), so it replays as identity; otherwise the
 * recorded old value maps to the recorded new one and any other input
 * (impossible in a faithful replay) degrades to a no-op rather than
 * writing a wrong value.
 *
 * An RMW whose wireless broadcast was squashed by a remote update also
 * carries the speculative evaluations the L1 performed before the
 * retry (mtrace.h); those must reproduce exactly or the replay never
 * queues the colliding frame the recording saw. The table keeps the
 * function pure -- one output per input -- as the L1 requires.
 */
std::function<std::uint64_t(std::uint64_t)>
replayModify(const Op &op)
{
    if (op.evals.empty())
    {
        if (op.a == op.b)
            return [](std::uint64_t v) { return v; };
        return [a = op.a, b = op.b](std::uint64_t v) {
            return v == a ? b : v;
        };
    }
    auto table = std::make_shared<
        std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
        op.evals);
    table->emplace_back(op.a, op.b);
    return [table](std::uint64_t v) {
        for (const auto &[in, result] : *table)
        {
            if (in == v)
                return result;
        }
        return v;
    };
}

} // namespace

const char *
frontendKindName(FrontendKind kind)
{
    switch (kind)
    {
    case FrontendKind::Coroutine:
        return "coroutine";
    case FrontendKind::Record:
        return "record";
    case FrontendKind::ReplayFull:
        return "replay-full";
    case FrontendKind::ReplayFast:
        return "replay-fast";
    }
    return "?";
}

bool
parseFrontendKind(std::string_view name, FrontendKind &out)
{
    for (FrontendKind k :
         {FrontendKind::Coroutine, FrontendKind::Record,
          FrontendKind::ReplayFull, FrontendKind::ReplayFast})
    {
        if (name == frontendKindName(k))
        {
            out = k;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// ReplayGate
// ---------------------------------------------------------------------

ReplayGate::ReplayGate(const MemTrace &trace)
{
    for (std::uint32_t tid = 0; tid < trace.numThreads(); ++tid)
    {
        std::uint64_t idx = 0;
        for (const Op &op : trace.threads[tid])
        {
            if (op.kind == OpKind::Sync)
                order_.push_back({op.a, tid, idx++});
        }
    }
    std::sort(order_.begin(), order_.end(),
              [](const Token &a, const Token &b) {
                  return std::tie(a.key, a.tid, a.idx) <
                         std::tie(b.key, b.tid, b.idx);
              });
}

bool
ReplayGate::tryPass(std::uint32_t tid)
{
    if (next_ < order_.size() && order_[next_].tid == tid)
    {
        ++next_;
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Trace validation
// ---------------------------------------------------------------------

std::string
validateTrace(const MemTrace &trace, std::uint32_t num_cores)
{
    if (trace.numThreads() == 0)
        return "trace has no threads";
    if (trace.numThreads() > num_cores)
        return "trace has " + std::to_string(trace.numThreads()) +
               " threads but the machine has only " +
               std::to_string(num_cores) + " cores";
    if (trace.header.hasMachine &&
        trace.numThreads() != trace.header.cores)
        return "trace machine header says " +
               std::to_string(trace.header.cores) +
               " cores but the trace carries " +
               std::to_string(trace.numThreads()) + " op streams";
    // Non-monotone per-thread sync keys would deadlock the ReplayGate
    // (a thread can only offer its tokens in program order).
    for (std::uint32_t tid = 0; tid < trace.numThreads(); ++tid)
    {
        std::uint64_t prev = 0;
        bool first = true;
        for (const Op &op : trace.threads[tid])
        {
            if (op.kind != OpKind::Sync)
                continue;
            if (!first && op.a < prev)
                return "thread " + std::to_string(tid) +
                       ": sync keys not non-decreasing (" +
                       std::to_string(op.a) + " after " +
                       std::to_string(prev) + ")";
            prev = op.a;
            first = false;
        }
    }
    return "";
}

// ---------------------------------------------------------------------
// Full-fidelity replay program
// ---------------------------------------------------------------------

cpu::Program
makeReplayProgram(const MemTrace &trace, ReplayGate *gate)
{
    const MemTrace *tr = &trace;
    return [tr, gate](cpu::Thread &t) -> cpu::Task {
        static const std::vector<Op> kEmpty;
        const std::vector<Op> &ops = t.id() < tr->threads.size()
                                         ? tr->threads[t.id()]
                                         : kEmpty;
        for (std::size_t i = 0; i < ops.size(); ++i)
        {
            const Op &op = ops[i];
            switch (op.kind)
            {
            case OpKind::Compute:
                co_await t.compute(op.a);
                break;
            case OpKind::Load:
                co_await t.load(op.addr);
                break;
            case OpKind::LoadNb:
                co_await t.loadNb(op.addr);
                break;
            case OpKind::Store:
                co_await t.store(op.addr, op.a);
                break;
            case OpKind::Rmw:
                // Reconstruct the recorded modify from its recorded
                // evaluations (replayModify above).
                co_await t.rmw(op.addr, replayModify(op));
                break;
            case OpKind::Idle:
                co_await t.idle(op.a);
                break;
            case OpKind::Fence:
                co_await t.fence();
                break;
            case OpKind::Sync:
                // Recorded traces: pure annotation, the replayed
                // timing already reproduces the ordering. Headerless
                // text traces: serialize through the gate.
                if (gate != nullptr)
                {
                    for (;;)
                    {
                        if (gate->tryPass(t.id()))
                            break;
                        co_await t.idle(16);
                    }
                }
                break;
            }
        }
    };
}

namespace {

// ---------------------------------------------------------------------
// Coroutine frontend (also hosts Record and ReplayFull)
// ---------------------------------------------------------------------

class CoroutineFrontend final : public Frontend
{
  public:
    CoroutineFrontend(FrontendKind kind, sim::Simulator &sim,
                      const std::vector<coherence::L1Controller *> &l1s,
                      const cpu::CoreConfig &core_cfg,
                      const MemTrace *trace)
        : kind_(kind), trace_(trace)
    {
        const auto n = static_cast<std::uint32_t>(l1s.size());
        if (kind_ == FrontendKind::Record)
            recorder_ = std::make_unique<Recorder>(n);
        if (kind_ == FrontendKind::ReplayFull && trace_ != nullptr &&
            !trace_->header.hasMachine && trace_->hasSync())
            gate_ = std::make_unique<ReplayGate>(*trace_);
        cores_.reserve(n);
        for (sim::NodeId node = 0; node < n; ++node)
        {
            cores_.push_back(std::make_unique<cpu::Core>(
                sim, *l1s[node], node, core_cfg));
            if (recorder_)
                cores_.back()->setOpSink(&recorder_->sink(node));
        }
    }

    FrontendKind kind() const override { return kind_; }

    void
    start(const cpu::Program &program) override
    {
        cpu::Program p = program;
        if (kind_ == FrontendKind::ReplayFull)
        {
            WIDIR_ASSERT(trace_ != nullptr,
                         "replay frontend without a trace");
            p = makeReplayProgram(*trace_, gate_.get());
        }
        WIDIR_ASSERT(static_cast<bool>(p),
                     "coroutine frontend started without a program");
        const auto n = static_cast<std::uint32_t>(cores_.size());
        for (auto &core : cores_)
            core->start(p, n, 0);
    }

    bool
    allFinished() const override
    {
        for (const auto &core : cores_)
            if (!core->finished())
                return false;
        return true;
    }

    sim::Tick
    finishTick() const override
    {
        sim::Tick end = 0;
        for (const auto &core : cores_)
            end = std::max(end, core->finishTick());
        return end;
    }

    cpu::Core::Stats
    cpuTotals() const override
    {
        cpu::Core::Stats total;
        for (const auto &core : cores_)
        {
            const auto &s = core->stats();
            total.instructions += s.instructions;
            total.loads += s.loads;
            total.stores += s.stores;
            total.rmws += s.rmws;
            total.memStallCycles += s.memStallCycles;
            total.loadLatencySum += s.loadLatencySum;
            total.storeLatencySum += s.storeLatencySum;
        }
        return total;
    }

    cpu::Core *
    core(sim::NodeId n) override
    {
        return cores_.at(n).get();
    }

    Recorder *recorder() override { return recorder_.get(); }

  private:
    FrontendKind kind_;
    const MemTrace *trace_;
    // Cores hold the replay coroutines, which reference the gate:
    // declare the gate first so the cores are destroyed before it.
    std::unique_ptr<ReplayGate> gate_;
    std::unique_ptr<Recorder> recorder_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
};

// ---------------------------------------------------------------------
// Fast direct-to-L1 replay
// ---------------------------------------------------------------------

/**
 * Drives each tile's op stream straight into its L1 controller with a
 * small window of outstanding operations, skipping the ROB/retirement
 * model entirely. RMWs and fences drain the window first (atomics
 * fence the stream, as in the core model); Idle records are skipped;
 * Sync records serialize through the ReplayGate.
 */
class DirectReplayFrontend final : public Frontend
{
  public:
    DirectReplayFrontend(
        sim::Simulator &sim,
        const std::vector<coherence::L1Controller *> &l1s,
        const MemTrace *trace)
        : sim_(sim), trace_(trace), gate_(*trace)
    {
        // The tiles share the gate and the aggregate stats; the domain
        // kernel would run them from different host threads.
        WIDIR_ASSERT(!sim.domainMode(),
                     "fast replay requires the classic kernel "
                     "(sim-threads 0)");
        tiles_.resize(l1s.size());
        for (std::size_t i = 0; i < l1s.size(); ++i)
        {
            tiles_[i].l1 = l1s[i];
            tiles_[i].ops = i < trace_->threads.size()
                                ? &trace_->threads[i]
                                : nullptr;
        }
    }

    FrontendKind kind() const override
    {
        return FrontendKind::ReplayFast;
    }

    void
    start(const cpu::Program &) override
    {
        for (std::size_t i = 0; i < tiles_.size(); ++i)
        {
            Tile &t = tiles_[i];
            if (t.ops == nullptr || t.ops->empty())
            {
                t.finished = true;
                ++finished_;
                continue;
            }
            t.l1->setCompletion(
                [this, i](std::uint64_t, std::uint64_t) {
                    onComplete(i);
                });
            sim_.scheduleForNodeAt(static_cast<sim::NodeId>(i), 0,
                                   [this, i] { pump(i); });
        }
    }

    bool
    allFinished() const override
    {
        return finished_ == tiles_.size();
    }

    sim::Tick finishTick() const override { return finishTick_; }

    cpu::Core::Stats cpuTotals() const override { return stats_; }

    cpu::Core *core(sim::NodeId) override { return nullptr; }

    Recorder *recorder() override { return nullptr; }

  private:
    struct Tile
    {
        coherence::L1Controller *l1 = nullptr;
        const std::vector<Op> *ops = nullptr;
        std::size_t next = 0;
        std::uint32_t outstanding = 0;
        std::uint64_t tokenNext = 1;
        bool atSync = false;
        bool finished = false;
    };

    static constexpr std::uint32_t kWindow = 8;

    void
    onComplete(std::size_t i)
    {
        Tile &t = tiles_[i];
        WIDIR_ASSERT(t.outstanding > 0, "fast replay drain underflow");
        --t.outstanding;
        pump(i);
    }

    void
    finishTile(Tile &t)
    {
        t.finished = true;
        ++finished_;
        finishTick_ = std::max(finishTick_, sim_.now());
    }

    void
    scheduleWake()
    {
        if (wakeScheduled_)
            return;
        wakeScheduled_ = true;
        sim_.scheduleInline(0, [this] { gateWake(); });
    }

    /** Wake parked tiles whose gate turn has arrived, to fixpoint. */
    void
    gateWake()
    {
        wakeScheduled_ = false;
        bool progress = true;
        while (progress)
        {
            progress = false;
            for (std::size_t i = 0; i < tiles_.size(); ++i)
            {
                Tile &t = tiles_[i];
                if (t.atSync &&
                    gate_.tryPass(static_cast<std::uint32_t>(i)))
                {
                    t.atSync = false;
                    ++t.next;
                    progress = true;
                    pump(i);
                }
            }
        }
    }

    void
    pump(std::size_t i)
    {
        Tile &t = tiles_[i];
        if (t.finished || t.atSync)
            return;
        const std::vector<Op> &ops = *t.ops;
        for (;;)
        {
            if (t.next >= ops.size())
            {
                if (t.outstanding == 0)
                    finishTile(t);
                return;
            }
            const Op &op = ops[t.next];
            switch (op.kind)
            {
            case OpKind::Compute:
                stats_.instructions += op.a;
                ++t.next;
                continue;
            case OpKind::Idle:
                // Fast mode models no pipeline pauses.
                ++t.next;
                continue;
            case OpKind::Load:
            case OpKind::LoadNb:
                if (t.outstanding >= kWindow)
                    return;
                ++stats_.loads;
                ++stats_.instructions;
                ++t.next;
                ++t.outstanding;
                t.l1->read(op.addr, t.tokenNext++);
                continue;
            case OpKind::Store:
                if (t.outstanding >= kWindow)
                    return;
                ++stats_.stores;
                ++stats_.instructions;
                ++t.next;
                ++t.outstanding;
                t.l1->write(op.addr, op.a, t.tokenNext++);
                continue;
            case OpKind::Rmw:
            {
                if (t.outstanding != 0)
                    return; // atomics fence the stream
                ++stats_.rmws;
                ++stats_.instructions;
                ++t.next;
                ++t.outstanding;
                t.l1->rmw(op.addr, replayModify(op), t.tokenNext++);
                return; // serialized: resume from the completion
            }
            case OpKind::Fence:
                if (t.outstanding != 0)
                    return;
                ++t.next;
                continue;
            case OpKind::Sync:
                if (t.outstanding != 0)
                    return; // publish prior ops before the token
                if (!gate_.tryPass(static_cast<std::uint32_t>(i)))
                {
                    t.atSync = true;
                    return;
                }
                ++t.next;
                scheduleWake();
                continue;
            }
        }
    }

    sim::Simulator &sim_;
    const MemTrace *trace_;
    ReplayGate gate_;
    std::vector<Tile> tiles_;
    std::size_t finished_ = 0;
    sim::Tick finishTick_ = 0;
    cpu::Core::Stats stats_;
    bool wakeScheduled_ = false;
};

} // namespace

std::unique_ptr<Frontend>
makeFrontend(const FrontendSpec &spec, sim::Simulator &sim,
             const std::vector<coherence::L1Controller *> &l1s,
             const cpu::CoreConfig &core_cfg)
{
    switch (spec.kind)
    {
    case FrontendKind::Coroutine:
    case FrontendKind::Record:
    case FrontendKind::ReplayFull:
        if (spec.kind == FrontendKind::ReplayFull)
            WIDIR_ASSERT(spec.trace != nullptr,
                         "replay-full frontend needs a trace");
        return std::make_unique<CoroutineFrontend>(
            spec.kind, sim, l1s, core_cfg, spec.trace);
    case FrontendKind::ReplayFast:
        WIDIR_ASSERT(spec.trace != nullptr,
                     "replay-fast frontend needs a trace");
        return std::make_unique<DirectReplayFrontend>(sim, l1s,
                                                      spec.trace);
    }
    sim::fatal("unknown frontend kind");
    return nullptr;
}

} // namespace widir::frontend
