#include "frontend/mtrace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

namespace widir::frontend {

namespace {

/** File magic; doubles as the format discriminator in loadTraceFile. */
constexpr char kMagic[8] = {'W', 'D', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kFlagHasMachine = 1;

/** Hard cap against absurd counts from corrupt headers. */
constexpr std::uint64_t kMaxThreads = 1u << 20;

void
putVarint(std::string &out, std::uint64_t v)
{
    // Unsigned LEB128: 7 payload bits per byte, MSB = continuation.
    while (v >= 0x80)
    {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putString(std::string &out, const std::string &s)
{
    putVarint(out, s.size());
    out.append(s);
}

/** Cursor over an in-memory file image with strict bounds checks. */
struct Reader
{
    const std::string &buf;
    std::size_t pos = 0;
    std::string &err;

    bool
    fail(const std::string &msg)
    {
        err = msg;
        return false;
    }

    bool
    getByte(std::uint8_t &v)
    {
        if (pos >= buf.size())
            return fail("mtrace: truncated file (unexpected end of "
                        "stream at byte " +
                        std::to_string(pos) + ")");
        v = static_cast<std::uint8_t>(buf[pos++]);
        return true;
    }

    bool
    getVarint(std::uint64_t &v)
    {
        v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7)
        {
            std::uint8_t byte = 0;
            if (!getByte(byte))
                return false;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                return true;
        }
        return fail("mtrace: varint overflows 64 bits at byte " +
                    std::to_string(pos));
    }

    bool
    getString(std::string &s)
    {
        std::uint64_t len = 0;
        if (!getVarint(len))
            return false;
        if (len > buf.size() - pos)
            return fail("mtrace: truncated file (string of " +
                        std::to_string(len) + " bytes at byte " +
                        std::to_string(pos) + ")");
        s.assign(buf, pos, static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
        return true;
    }
};

bool
readWholeFile(const std::string &path, std::string &out,
              std::string &err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
    {
        err = path + ": " + std::strerror(errno);
        return false;
    }
    out.clear();
    char chunk[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        out.append(chunk, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        err = path + ": read error";
    return ok;
}

} // namespace

bool
MemTrace::hasSync() const
{
    for (const auto &ops : threads)
        for (const auto &op : ops)
            if (op.kind == OpKind::Sync)
                return true;
    return false;
}

bool
writeMtrace(const std::string &path, const MemTrace &trace,
            std::string &err)
{
    std::string out;
    out.append(kMagic, sizeof kMagic);
    putVarint(out, kVersion);
    putVarint(out, trace.header.hasMachine ? kFlagHasMachine : 0);
    if (trace.header.hasMachine)
    {
        const TraceHeader &h = trace.header;
        putString(out, h.app);
        out.push_back(static_cast<char>(h.protocol));
        out.push_back(static_cast<char>(h.homeMap));
        putVarint(out, h.cores);
        putVarint(out, h.scale);
        putVarint(out, h.maxWiredSharers);
        putVarint(out, h.updateCountThreshold);
        putVarint(out, h.meshConcentration);
        putVarint(out, h.wirelessChannels);
        putVarint(out, h.seed);
    }
    putVarint(out, trace.threads.size());
    for (const auto &ops : trace.threads)
    {
        putVarint(out, ops.size());
        for (const Op &op : ops)
        {
            out.push_back(static_cast<char>(op.kind));
            switch (op.kind)
            {
            case OpKind::Compute:
            case OpKind::Idle:
                putVarint(out, op.a);
                break;
            case OpKind::Load:
            case OpKind::LoadNb:
                putVarint(out, op.addr);
                break;
            case OpKind::Store:
                putVarint(out, op.addr);
                putVarint(out, op.a);
                break;
            case OpKind::Rmw:
                putVarint(out, op.addr);
                putVarint(out, op.a);
                putVarint(out, op.b);
                // Squashed-and-retried speculative evaluations
                // (mtrace.h); count is 0 for almost every RMW.
                putVarint(out, op.evals.size());
                for (const auto &[in, result] : op.evals)
                {
                    putVarint(out, in);
                    putVarint(out, result);
                }
                break;
            case OpKind::Fence:
                break;
            case OpKind::Sync:
                out.push_back(static_cast<char>(op.sync));
                putVarint(out, op.addr);
                putVarint(out, op.a);
                break;
            }
        }
    }

    // Like writeResultsJson: create the output directory so
    // `--record runs/traces` works without a mkdir first.
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
    {
        err = path + ": " + std::strerror(errno);
        return false;
    }
    const bool ok =
        std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed)
    {
        err = path + ": write error";
        return false;
    }
    return true;
}

bool
readMtrace(const std::string &path, MemTrace &out, std::string &err)
{
    std::string buf;
    if (!readWholeFile(path, buf, err))
        return false;

    Reader r{buf, 0, err};
    if (buf.size() < sizeof kMagic ||
        std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0)
        return r.fail("mtrace: bad magic (not a widir-mtrace file): " +
                      path);
    r.pos = sizeof kMagic;

    std::uint64_t version = 0;
    if (!r.getVarint(version))
        return false;
    if (version != kVersion)
        return r.fail("mtrace: unsupported version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kVersion) + ")");

    std::uint64_t flags = 0;
    if (!r.getVarint(flags))
        return false;
    if ((flags & ~kFlagHasMachine) != 0)
        return r.fail("mtrace: unknown header flags 0x" +
                      std::to_string(flags));

    out = MemTrace{};
    out.header.hasMachine = (flags & kFlagHasMachine) != 0;
    if (out.header.hasMachine)
    {
        TraceHeader &h = out.header;
        std::uint8_t b = 0;
        std::uint64_t v = 0;
        if (!r.getString(h.app) || !r.getByte(b))
            return false;
        h.protocol = b;
        if (!r.getByte(b))
            return false;
        h.homeMap = b;
        if (!r.getVarint(v))
            return false;
        h.cores = static_cast<std::uint32_t>(v);
        if (!r.getVarint(v))
            return false;
        h.scale = static_cast<std::uint32_t>(v);
        if (!r.getVarint(v))
            return false;
        h.maxWiredSharers = static_cast<std::uint32_t>(v);
        if (!r.getVarint(v))
            return false;
        h.updateCountThreshold = static_cast<std::uint32_t>(v);
        if (!r.getVarint(v))
            return false;
        h.meshConcentration = static_cast<std::uint32_t>(v);
        if (!r.getVarint(v))
            return false;
        h.wirelessChannels = static_cast<std::uint32_t>(v);
        if (!r.getVarint(h.seed))
            return false;
    }

    std::uint64_t numThreads = 0;
    if (!r.getVarint(numThreads))
        return false;
    if (numThreads > kMaxThreads)
        return r.fail("mtrace: implausible thread count " +
                      std::to_string(numThreads));
    out.threads.resize(static_cast<std::size_t>(numThreads));

    for (auto &ops : out.threads)
    {
        std::uint64_t count = 0;
        if (!r.getVarint(count))
            return false;
        // Every record is >= 1 byte, so a sane count cannot exceed the
        // bytes left -- reject before a corrupt header forces a huge
        // allocation.
        if (count > buf.size() - r.pos)
            return r.fail("mtrace: truncated file (op count " +
                          std::to_string(count) +
                          " exceeds remaining bytes)");
        ops.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i)
        {
            std::uint8_t kind = 0;
            if (!r.getByte(kind))
                return false;
            if (kind >= kOpKindCount)
                return r.fail("mtrace: unknown record kind " +
                              std::to_string(kind) + " at byte " +
                              std::to_string(r.pos - 1));
            Op op;
            op.kind = static_cast<OpKind>(kind);
            switch (op.kind)
            {
            case OpKind::Compute:
            case OpKind::Idle:
                if (!r.getVarint(op.a))
                    return false;
                break;
            case OpKind::Load:
            case OpKind::LoadNb:
                if (!r.getVarint(op.addr))
                    return false;
                break;
            case OpKind::Store:
                if (!r.getVarint(op.addr) || !r.getVarint(op.a))
                    return false;
                break;
            case OpKind::Rmw:
            {
                if (!r.getVarint(op.addr) || !r.getVarint(op.a) ||
                    !r.getVarint(op.b))
                    return false;
                std::uint64_t nEvals = 0;
                if (!r.getVarint(nEvals))
                    return false;
                // Two bytes minimum per pair -- same huge-allocation
                // guard as the op count above.
                if (nEvals > (buf.size() - r.pos) / 2 + 1)
                    return r.fail(
                        "mtrace: truncated file (rmw eval count " +
                        std::to_string(nEvals) +
                        " exceeds remaining bytes)");
                op.evals.reserve(static_cast<std::size_t>(nEvals));
                for (std::uint64_t e = 0; e < nEvals; ++e)
                {
                    std::uint64_t in = 0, result = 0;
                    if (!r.getVarint(in) || !r.getVarint(result))
                        return false;
                    op.evals.emplace_back(in, result);
                }
                break;
            }
            case OpKind::Fence:
                break;
            case OpKind::Sync:
            {
                std::uint8_t note = 0;
                if (!r.getByte(note))
                    return false;
                if (note > static_cast<std::uint8_t>(
                               cpu::SyncNote::TaskClaim))
                    return r.fail("mtrace: unknown sync note " +
                                  std::to_string(note));
                op.sync = static_cast<cpu::SyncNote>(note);
                if (!r.getVarint(op.addr) || !r.getVarint(op.a))
                    return false;
                break;
            }
            }
            ops.push_back(op);
        }
    }

    if (r.pos != buf.size())
        return r.fail("mtrace: trailing garbage after op streams (" +
                      std::to_string(buf.size() - r.pos) + " bytes)");
    return true;
}

namespace {

/** Strict u64 token parse (decimal or 0x-hex), parseEnvInt style. */
bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    int base = 10;
    std::size_t start = 0;
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
    {
        base = 16;
        start = 2;
    }
    std::uint64_t v = 0;
    for (std::size_t i = start; i < tok.size(); ++i)
    {
        const char c = tok[i];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
        const std::uint64_t next =
            v * static_cast<std::uint64_t>(base) + digit;
        if (next / static_cast<std::uint64_t>(base) != v)
            return false; // overflow
        v = next;
    }
    out = v;
    return true;
}

} // namespace

bool
parseTextTrace(const std::string &text, MemTrace &out,
               std::string &err)
{
    out = MemTrace{};
    std::uint64_t maxThread = 0;
    bool sawOp = false;

    std::size_t lineStart = 0;
    std::size_t lineNo = 0;
    while (lineStart <= text.size())
    {
        ++lineNo;
        std::size_t lineEnd = text.find('\n', lineStart);
        if (lineEnd == std::string::npos)
            lineEnd = text.size();
        std::string line =
            text.substr(lineStart, lineEnd - lineStart);
        lineStart = lineEnd + 1;

        // Strip a trailing comment, then tokenize on whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> toks;
        std::size_t i = 0;
        while (i < line.size())
        {
            while (i < line.size() &&
                   (line[i] == ' ' || line[i] == '\t' ||
                    line[i] == '\r'))
                ++i;
            std::size_t j = i;
            while (j < line.size() && line[j] != ' ' &&
                   line[j] != '\t' && line[j] != '\r')
                ++j;
            if (j > i)
                toks.push_back(line.substr(i, j - i));
            i = j;
        }
        if (toks.empty())
            continue;

        auto fail = [&](const std::string &msg) {
            err = "trace line " + std::to_string(lineNo) + ": " + msg;
            return false;
        };

        if (toks.size() < 2)
            return fail("expected '<thread> <R|W|S> ...', got '" +
                        toks[0] + "'");
        std::uint64_t tid = 0;
        if (!parseU64(toks[0], tid))
            return fail("bad thread id '" + toks[0] + "'");
        if (tid >= kMaxThreads)
            return fail("thread id " + toks[0] + " out of range");
        if (toks[1].size() != 1)
            return fail("bad op '" + toks[1] + "' (want R, W or S)");

        Op op;
        switch (toks[1][0])
        {
        case 'R':
            if (toks.size() != 3)
                return fail("R takes exactly one operand: R <addr>");
            if (!parseU64(toks[2], op.addr))
                return fail("bad address '" + toks[2] + "'");
            op.kind = OpKind::Load;
            break;
        case 'W':
            if (toks.size() != 3 && toks.size() != 4)
                return fail("W takes one or two operands: "
                            "W <addr> [value]");
            if (!parseU64(toks[2], op.addr))
                return fail("bad address '" + toks[2] + "'");
            if (toks.size() == 4 && !parseU64(toks[3], op.a))
                return fail("bad value '" + toks[3] + "'");
            op.kind = OpKind::Store;
            break;
        case 'S':
            if (toks.size() != 3)
                return fail("S takes exactly one operand: S <seq>");
            if (!parseU64(toks[2], op.a))
                return fail("bad sequence number '" + toks[2] + "'");
            op.kind = OpKind::Sync;
            op.sync = cpu::SyncNote::External;
            break;
        default:
            return fail("bad op '" + toks[1] + "' (want R, W or S)");
        }

        if (tid + 1 > out.threads.size())
            out.threads.resize(static_cast<std::size_t>(tid) + 1);
        out.threads[static_cast<std::size_t>(tid)].push_back(op);
        maxThread = tid > maxThread ? tid : maxThread;
        sawOp = true;
    }

    if (!sawOp)
    {
        err = "trace: no operations found";
        return false;
    }
    (void)maxThread;
    return true;
}

bool
loadTraceFile(const std::string &path, MemTrace &out, std::string &err)
{
    std::string buf;
    if (!readWholeFile(path, buf, err))
        return false;
    if (buf.size() >= sizeof kMagic &&
        std::memcmp(buf.data(), kMagic, sizeof kMagic) == 0)
        return readMtrace(path, out, err);
    return parseTextTrace(buf, out, err);
}

} // namespace widir::frontend
