/**
 * @file
 * Frontend: the pluggable stimulus source of a simulated machine.
 *
 * The timing side (L1 controllers, directories, NoCs, memory) is fixed
 * by the Manycore; what *drives* it is a Frontend:
 *
 *  - Coroutine: the out-of-order core model executing a workload
 *    program (the classic configuration -- byte-identical to the
 *    pre-frontend machine);
 *  - Record: Coroutine plus an OpSink tap writing widir-mtrace-v1
 *    (pure observation: stats identical to an unrecorded run);
 *  - ReplayFull: the core model re-driven from a recorded trace --
 *    reproduces the recording's stats byte-identically;
 *  - ReplayFast: a direct-to-L1 driver that skips the ROB model for
 *    large sweeps (deterministic, but not timing-faithful).
 *
 * Fidelity contracts are specified in docs/FRONTEND.md.
 */

#ifndef WIDIR_FRONTEND_FRONTEND_H
#define WIDIR_FRONTEND_FRONTEND_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.h"
#include "cpu/thread.h"
#include "frontend/mtrace.h"
#include "frontend/record.h"
#include "sim/simulator.h"

namespace widir::frontend {

/** Stimulus-source selection (`ExperimentSpec::frontend`). */
enum class FrontendKind : std::uint8_t
{
    Coroutine,  ///< coroutine CPU model running a workload program
    Record,     ///< Coroutine + widir-mtrace-v1 recorder tap
    ReplayFull, ///< trace re-driven through the core timing model
    ReplayFast, ///< trace driven directly into the L1s (no ROB)
};

/** Stable lowercase name (JSON echo, bench flags). */
const char *frontendKindName(FrontendKind kind);

/** Parse a frontendKindName() string; false on unknown name. */
bool parseFrontendKind(std::string_view name, FrontendKind &out);

/**
 * Frontend construction request. For the replay kinds @p trace must
 * point at a trace that outlives the frontend.
 */
struct FrontendSpec
{
    FrontendKind kind = FrontendKind::Coroutine;
    const MemTrace *trace = nullptr;
};

/**
 * Serializes the sync-event tokens of a trace into their recorded
 * global order: a thread may pass its next token only when every
 * earlier token (ordered by recorded key, then thread, then index) has
 * been passed. This is how the fast replayer -- and full replay of
 * headerless text traces -- preserves the inter-thread ordering the
 * annotations encode without a timing-faithful core.
 */
class ReplayGate
{
  public:
    /**
     * Build the global order from @p trace. Per-thread keys must be
     * non-decreasing (guaranteed for recorded traces; validated by
     * validateTrace() for text traces) or the gate would deadlock.
     */
    explicit ReplayGate(const MemTrace &trace);

    /**
     * Try to pass thread @p tid's next sync token. True (and the gate
     * advances) iff that token is globally next.
     */
    bool tryPass(std::uint32_t tid);

    /** All tokens passed. */
    bool done() const { return next_ == order_.size(); }

  private:
    struct Token
    {
        std::uint64_t key;
        std::uint32_t tid;
        std::uint64_t idx; ///< per-thread sync index (tie-break)
    };

    std::vector<Token> order_;
    std::size_t next_ = 0;
};

/**
 * Check that @p trace is replayable on a @p num_cores machine: thread
 * count fits, per-thread sync keys are monotone. Returns the empty
 * string when fine, else a problem description.
 */
std::string validateTrace(const MemTrace &trace,
                          std::uint32_t num_cores);

/**
 * Build the per-thread replay Program for full-fidelity replay: each
 * thread re-issues its recorded op stream through the same Thread
 * awaitables the original workload used, so the Core observes an
 * identical call sequence and the run reproduces the recording
 * byte-identically. @p gate is null for recorded (machine-stamped)
 * traces -- their timing alone reproduces the ordering -- and set for
 * headerless text traces, whose sync tokens then serialize through it.
 */
cpu::Program makeReplayProgram(const MemTrace &trace, ReplayGate *gate);

/** One stimulus source bound to a machine's L1 controllers. */
class Frontend
{
  public:
    virtual ~Frontend() = default;

    virtual FrontendKind kind() const = 0;

    /**
     * Start the stimulus at tick 0 (schedules the kickoff events; the
     * caller then runs the simulator). The replay kinds ignore
     * @p program.
     */
    virtual void start(const cpu::Program &program) = 0;

    /** Every stimulus stream ran to completion and drained. */
    virtual bool allFinished() const = 0;

    /** Max finish tick over all streams (valid once allFinished()). */
    virtual sim::Tick finishTick() const = 0;

    /** CPU-side statistics summed over all streams. */
    virtual cpu::Core::Stats cpuTotals() const = 0;

    /** The core model of tile @p n, or null for core-less frontends. */
    virtual cpu::Core *core(sim::NodeId n) = 0;

    /** The recorder (Record kind only, else null). */
    virtual Recorder *recorder() = 0;
};

/**
 * Build the frontend selected by @p spec for a machine with one L1
 * controller per tile. @p l1s and @p trace must outlive the frontend.
 */
std::unique_ptr<Frontend>
makeFrontend(const FrontendSpec &spec, sim::Simulator &sim,
             const std::vector<coherence::L1Controller *> &l1s,
             const cpu::CoreConfig &core_cfg);

} // namespace widir::frontend

#endif // WIDIR_FRONTEND_FRONTEND_H
