/**
 * @file
 * widir-mtrace-v1: the versioned, compact binary memory-trace format
 * the recording frontend writes and the replay frontends consume, plus
 * the text-trace ingestion parser for externally recorded traces.
 * The byte-level layout and the fidelity contract of each consumer are
 * specified in docs/FRONTEND.md.
 *
 * A trace is one op stream per thread. Record kinds (OpKind) mirror
 * the Thread awaitables one-to-one, so full-fidelity replay re-drives
 * the core timing model through the identical call sequence; Sync
 * records carry the annotations the workload sync library volunteers
 * so the fast direct-to-L1 replayer can preserve inter-thread ordering
 * constraints without a core model.
 */

#ifndef WIDIR_FRONTEND_MTRACE_H
#define WIDIR_FRONTEND_MTRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cpu/op_sink.h"
#include "sim/types.h"

namespace widir::frontend {

/** One record of a per-thread op stream (docs/FRONTEND.md). */
enum class OpKind : std::uint8_t
{
    Compute, ///< operand: instruction count
    Load,    ///< blocking load; operand: address
    LoadNb,  ///< non-blocking load; operand: address
    Store,   ///< operands: address, value
    Rmw,     ///< operands: address, old value, new value
    Idle,    ///< operand: pause cycles (no retired instructions)
    Fence,   ///< no operands
    Sync,    ///< operands: SyncNote kind, address, ordering key
};

/** Number of OpKind enumerators (reader-side validation). */
inline constexpr std::uint8_t kOpKindCount = 8;

/** One decoded record. Field use per kind is documented on OpKind. */
struct Op
{
    OpKind kind = OpKind::Compute;
    cpu::SyncNote sync = cpu::SyncNote::External; ///< Sync records only
    sim::Addr addr = 0;
    std::uint64_t a = 0; ///< count | value | old value | cycles | key
    std::uint64_t b = 0; ///< Rmw: new value

    /**
     * Rmw only: modify-function evaluations the L1 performed on values
     * OTHER than the final old value `a` (input -> output, input
     * values distinct). The wireless RMW path may evaluate the modify
     * function speculatively at issue time, get squashed by a remote
     * update, and retry against a new line value; the final (a, b)
     * pair alone cannot reproduce the speculative broadcast decision,
     * so full-fidelity replay needs every distinct evaluation. Empty
     * for the overwhelming majority of RMWs (no squash).
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> evals;

    bool
    operator==(const Op &o) const
    {
        return kind == o.kind && sync == o.sync && addr == o.addr &&
               a == o.a && b == o.b && evals == o.evals;
    }
};

/**
 * Machine configuration embedded in a recorded trace so a replay run
 * can reconstruct the exact recorded experiment (hasMachine == true).
 * Traces ingested from the text format carry no machine header: the
 * replaying spec supplies the machine instead.
 */
struct TraceHeader
{
    bool hasMachine = false;
    std::string app;         ///< recorded app name (result echo)
    std::uint8_t protocol = 0;
    std::uint8_t homeMap = 0;
    std::uint32_t cores = 0;
    std::uint32_t scale = 1;
    std::uint32_t maxWiredSharers = 3;
    std::uint32_t updateCountThreshold = 0;
    std::uint32_t meshConcentration = 1;
    std::uint32_t wirelessChannels = 1;
    std::uint64_t seed = 1;
};

/** A parsed memory trace: header + one op stream per thread. */
struct MemTrace
{
    TraceHeader header;
    std::vector<std::vector<Op>> threads;

    std::uint32_t
    numThreads() const
    {
        return static_cast<std::uint32_t>(threads.size());
    }

    /** Total records across all threads. */
    std::uint64_t
    totalOps() const
    {
        std::uint64_t n = 0;
        for (const auto &ops : threads)
            n += ops.size();
        return n;
    }

    /** True when any thread carries a Sync record. */
    bool hasSync() const;
};

/**
 * Write @p trace to @p path in widir-mtrace-v1. Returns false (with a
 * message in @p err) on I/O failure.
 */
bool writeMtrace(const std::string &path, const MemTrace &trace,
                 std::string &err);

/**
 * Read a widir-mtrace-v1 file. Strict: a bad magic, an unsupported
 * version, an unknown record kind, or a truncated stream is rejected
 * with a message in @p err -- never silently repaired.
 */
bool readMtrace(const std::string &path, MemTrace &out,
                std::string &err);

/**
 * Parse the text ingestion format (docs/FRONTEND.md):
 *
 *   # comment (blank lines ignored)
 *   <thread> R <addr>
 *   <thread> W <addr> [value]
 *   <thread> S <seq>        # optional sync-event extension
 *
 * Numbers are decimal or 0x-hex. The resulting trace has no machine
 * header (header.hasMachine == false); numThreads() is max thread id
 * + 1. Strict like parseEnvInt: any malformed line fails the whole
 * parse with a line-numbered message in @p err.
 */
bool parseTextTrace(const std::string &text, MemTrace &out,
                    std::string &err);

/**
 * Load a trace file of either format: widir-mtrace-v1 when the file
 * starts with the binary magic, the text format otherwise.
 */
bool loadTraceFile(const std::string &path, MemTrace &out,
                   std::string &err);

} // namespace widir::frontend

#endif // WIDIR_FRONTEND_MTRACE_H
