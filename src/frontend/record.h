/**
 * @file
 * Recorder: the cpu::OpSink implementation behind the recording
 * frontend. One ThreadRecorder per core appends to a private op
 * buffer; under the bound/weave domain kernel each core's events run
 * in that core's own domain, so the per-thread buffers stay
 * single-writer without locks.
 *
 * Recording is pure observation (see cpu/op_sink.h): the recorded run
 * is byte-identical to the same run unrecorded.
 */

#ifndef WIDIR_FRONTEND_RECORD_H
#define WIDIR_FRONTEND_RECORD_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cpu/op_sink.h"
#include "frontend/mtrace.h"

namespace widir::frontend {

/** Collects one widir-mtrace-v1 op stream per core. */
class Recorder
{
  public:
    explicit Recorder(std::uint32_t num_threads)
    {
        threads_.reserve(num_threads);
        for (std::uint32_t t = 0; t < num_threads; ++t)
            threads_.push_back(std::make_unique<ThreadRecorder>());
    }

    /** The sink to install on core @p tid. */
    cpu::OpSink &
    sink(std::uint32_t tid)
    {
        return *threads_.at(tid);
    }

    /**
     * Move the recorded streams out into a trace stamped with
     * @p header. The recorder is empty afterwards.
     */
    MemTrace
    finish(TraceHeader header)
    {
        MemTrace trace;
        trace.header = std::move(header);
        trace.threads.reserve(threads_.size());
        for (auto &t : threads_)
            trace.threads.push_back(std::move(t->ops));
        return trace;
    }

  private:
    struct ThreadRecorder final : cpu::OpSink
    {
        std::vector<Op> ops;
        std::size_t pendingRmw = 0;
        /// modify evaluations of the in-flight RMW (rmwEval()).
        std::vector<std::pair<std::uint64_t, std::uint64_t>>
            pendingEvals;

        void
        compute(std::uint64_t count) override
        {
            ops.push_back({OpKind::Compute, cpu::SyncNote::External, 0,
                           count, 0, {}});
        }

        void
        load(sim::Addr addr, bool blocking) override
        {
            ops.push_back({blocking ? OpKind::Load : OpKind::LoadNb,
                           cpu::SyncNote::External, addr, 0, 0, {}});
        }

        void
        store(sim::Addr addr, std::uint64_t value) override
        {
            ops.push_back({OpKind::Store, cpu::SyncNote::External,
                           addr, value, 0, {}});
        }

        void
        rmw(sim::Addr addr) override
        {
            // Old/new values are unknown until the line arrives;
            // rmwResult() patches them in. A core has at most one RMW
            // in flight, so one pending index suffices.
            pendingRmw = ops.size();
            pendingEvals.clear();
            ops.push_back(
                {OpKind::Rmw, cpu::SyncNote::External, addr, 0, 0, {}});
        }

        void
        rmwEval(std::uint64_t in, std::uint64_t result) override
        {
            // The modify function is pure, so keep one pair per
            // distinct input (the L1 legitimately re-evaluates the
            // same value for its no-op check and the frame payload).
            for (const auto &[i, r] : pendingEvals)
            {
                if (i == in)
                    return;
            }
            pendingEvals.emplace_back(in, result);
        }

        void
        rmwResult(std::uint64_t old_value,
                  std::uint64_t new_value) override
        {
            Op &op = ops.at(pendingRmw);
            op.a = old_value;
            op.b = new_value;
            // Keep only evaluations the final (a, b) pair cannot
            // reproduce -- squashed speculative attempts on a line
            // value that a remote update then changed.
            for (const auto &[in, result] : pendingEvals)
            {
                if (in != old_value)
                    op.evals.emplace_back(in, result);
            }
            pendingEvals.clear();
        }

        void
        idle(sim::Tick cycles) override
        {
            ops.push_back({OpKind::Idle, cpu::SyncNote::External, 0,
                           cycles, 0, {}});
        }

        void
        fence() override
        {
            ops.push_back(
                {OpKind::Fence, cpu::SyncNote::External, 0, 0, 0, {}});
        }

        void
        sync(cpu::SyncNote kind, sim::Addr addr,
             sim::Tick now) override
        {
            // The completion tick is the ordering key the fast
            // replayer's gate sorts on -- deterministic under both
            // event kernels.
            ops.push_back({OpKind::Sync, kind, addr, now, 0, {}});
        }
    };

    std::vector<std::unique_ptr<ThreadRecorder>> threads_;
};

} // namespace widir::frontend

#endif // WIDIR_FRONTEND_RECORD_H
