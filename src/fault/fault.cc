#include "fault/fault.h"

#include <cmath>

#include "sim/log.h"

namespace widir::fault {

namespace {

bool
isProb(double p)
{
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

void
append(std::string &out, const std::string &msg)
{
    if (!out.empty())
        out += "; ";
    out += msg;
}

/** Per-frame corruption probability for a given bit error rate. */
double
frameCorruptProb(double ber, std::uint32_t frame_bits)
{
    if (ber <= 0.0)
        return 0.0;
    if (ber >= 1.0)
        return 1.0;
    // 1 - (1-ber)^bits, computed in log space so tiny BERs survive.
    return -std::expm1(static_cast<double>(frame_bits) *
                       std::log1p(-ber));
}

} // namespace

std::string
FaultSpec::validate() const
{
    std::string err;
    if (!isProb(ber))
        append(err, "ber must be in [0, 1]");
    if (!isProb(preambleLossProb))
        append(err, "preambleLossProb must be in [0, 1]");
    if (!isProb(toneLossProb))
        append(err, "toneLossProb must be in [0, 1]");
    if (!isProb(burstBer))
        append(err, "burstBer must be in [0, 1]");
    if (!isProb(burstEnterProb))
        append(err, "burstEnterProb must be in [0, 1]");
    if (!isProb(burstExitProb))
        append(err, "burstExitProb must be in [0, 1]");
    if (burstEnterProb > 0.0 && burstExitProb <= 0.0)
        append(err, "burstExitProb must be > 0 when bursts can start");
    if (frameBits == 0)
        append(err, "frameBits must be > 0");
    if (enabled() && retryBudget == 0)
        append(err, "retryBudget must be > 0 when faults are enabled");
    return err;
}

FaultModel::FaultModel(const FaultSpec &spec, sim::Rng rng)
    : spec_(spec), rng_(rng)
{
    std::string err = spec_.validate();
    WIDIR_ASSERT(err.empty(), "invalid FaultSpec: %s", err.c_str());
    pCorruptGood_ = frameCorruptProb(spec_.ber, spec_.frameBits);
    pCorruptBad_ = frameCorruptProb(spec_.burstBer, spec_.frameBits);
}

FrameFate
FaultModel::sampleFrame()
{
    ++framesSampled_;
    // Fixed draw order: (1) Gilbert-Elliott transition, (2) preamble,
    // (3) payload corruption. Every draw happens on every sample so
    // the stream position depends only on the sample count.
    if (bad_) {
        if (rng_.chance(spec_.burstExitProb))
            bad_ = false;
    } else if (rng_.chance(spec_.burstEnterProb)) {
        bad_ = true;
        ++burstsEntered_;
    }
    bool preamble_lost = rng_.chance(spec_.preambleLossProb);
    bool corrupt = rng_.chance(bad_ ? pCorruptBad_ : pCorruptGood_);
    if (preamble_lost)
        return FrameFate::PreambleLoss;
    return corrupt ? FrameFate::Corrupt : FrameFate::Clean;
}

bool
FaultModel::sampleToneLoss()
{
    return rng_.chance(spec_.toneLossProb);
}

} // namespace widir::fault
