/**
 * @file
 * widir::fault -- deterministic fault injection for the wireless
 * substrate (docs/FAULTS.md).
 *
 * The paper models the mm-wave channel as lossless apart from BRS MAC
 * collisions. This subsystem relaxes that: frames can be corrupted by
 * bit errors (detected by the receivers' CRC), preambles can be lost
 * to fades, tone pulses can be missed by a census initiator, and the
 * channel can enter bursty bad periods (a two-state Gilbert-Elliott
 * model). Everything is sampled from a private sim::Rng stream, so a
 * faulted run is a pure function of (configuration, seed) -- and with
 * every rate at zero no FaultModel is even constructed, so the layer
 * is provably pay-for-what-you-use (runs are byte-identical to builds
 * without it).
 *
 * Fault fates are sampled once per channel acquisition, *before* the
 * commit point. A corrupted or preamble-lost frame therefore never
 * commits and never reaches any receiver: each attempt is
 * all-or-nothing, which preserves the commit point's role as the
 * protocol's serialization point. Recovery (retry, then wired
 * fallback) lives in the channels and controllers, not here.
 */

#ifndef WIDIR_FAULT_FAULT_H
#define WIDIR_FAULT_FAULT_H

#include <cstdint>
#include <string>

#include "sim/rng.h"

namespace widir::fault {

/**
 * Fault-injection knobs. All rates default to zero (a clean channel);
 * FaultSpec is carried by value inside sys::ExperimentSpec and
 * sys::SystemConfig, and validate() is folded into
 * ExperimentSpec::validate().
 */
struct FaultSpec
{
    /** Bit error rate on the data channel while in the good state. */
    double ber = 0.0;
    /** Probability a lone acquisition loses its preamble to a fade. */
    double preambleLossProb = 0.0;
    /** Probability a census initiator misses the silence tone pulse. */
    double toneLossProb = 0.0;

    /// @name Gilbert-Elliott bursty fades
    ///
    /// A two-state channel: `ber` applies in the Good state, `burstBer`
    /// in the Bad state. The state advances once per sampled frame with
    /// the given transition probabilities. burstEnterProb = 0 (the
    /// default) disables the Bad state entirely.
    /// @{
    double burstBer = 0.0;       ///< BER while in the Bad state
    double burstEnterProb = 0.0; ///< Good -> Bad, per sampled frame
    double burstExitProb = 0.1;  ///< Bad -> Good, per sampled frame
    /// @}

    /**
     * Bits protected by the frame CRC: a 64-bit word plus its address
     * signature (Table III's 4-cycle payload at 20 Gb/s). The per-frame
     * corruption probability is 1 - (1 - ber)^frameBits.
     */
    std::uint32_t frameBits = 80;

    /**
     * Fault retries allowed per transmission (on top of normal
     * collision/jam retries, which are unbounded as before). When a
     * frame's fault-retry budget is exhausted the channel drops it and
     * runs the sender's on_fail callback, which re-routes the
     * transaction onto the wired mesh path.
     */
    std::uint32_t retryBudget = 8;

    /** Extra stream perturbation for the fault Rng (seed sweeps). */
    std::uint64_t seed = 0;

    /** True if any fault can ever fire. */
    bool
    enabled() const
    {
        return ber > 0.0 || preambleLossProb > 0.0 ||
               toneLossProb > 0.0 ||
               (burstEnterProb > 0.0 && burstBer > 0.0);
    }

    /** Empty string if valid, else a description of every problem. */
    std::string validate() const;
};

/** Outcome of one data-channel acquisition. */
enum class FrameFate : std::uint8_t
{
    Clean,        ///< frame commits and delivers normally
    PreambleLoss, ///< preamble faded: detected in the collision window
    Corrupt,      ///< payload corrupted: every receiver's CRC rejects
};

/**
 * The sampling engine. One instance per Manycore, shared by the data
 * and tone channels; constructed only when the spec is enabled() so a
 * clean run never touches the stream.
 */
class FaultModel
{
  public:
    FaultModel(const FaultSpec &spec, sim::Rng rng);

    /**
     * Sample the fate of one lone channel acquisition. Draw order is
     * fixed (burst transition, preamble, corruption) so a run is
     * reproducible for a given (spec, seed).
     */
    FrameFate sampleFrame();

    /** Sample whether a census initiator misses the silence pulse. */
    bool sampleToneLoss();

    const FaultSpec &spec() const { return spec_; }

    /** Currently in the Gilbert-Elliott Bad state. */
    bool inBurst() const { return bad_; }

    /// @name Sampling statistics
    /// @{
    std::uint64_t framesSampled() const { return framesSampled_; }
    std::uint64_t burstsEntered() const { return burstsEntered_; }
    /// @}

  private:
    FaultSpec spec_;
    sim::Rng rng_;
    bool bad_ = false;
    double pCorruptGood_ = 0.0; ///< 1 - (1 - ber)^frameBits
    double pCorruptBad_ = 0.0;  ///< same for burstBer
    std::uint64_t framesSampled_ = 0;
    std::uint64_t burstsEntered_ = 0;
};

} // namespace widir::fault

#endif // WIDIR_FAULT_FAULT_H
