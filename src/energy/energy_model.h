/**
 * @file
 * Event-energy model for the manycore (Fig. 9 of the paper).
 *
 * The paper derives energy with McPAT/CACTI (cores, caches), a
 * calibrated DSENT (wired NoC) and published 65nm RF measurements for
 * the wireless components (Table III). Those tools are closed or
 * impractical to embed, so this model charges a fixed energy per
 * architectural event plus static power per cycle, with constants
 * calibrated so the *Baseline* energy breakdown matches the shares
 * the paper reports (~60% core, ~5% L1, ~20% L2+directory, ~15%
 * wired NoC) and the WNoC adds the Table III transceiver numbers
 * (39.4 mW TX/RX, amplifier power-gated when idle).
 *
 * Since Fig. 9 is normalized to Baseline, relative results depend on
 * the event counts and run length, which the simulator measures
 * exactly -- not on the absolute pJ scale.
 */

#ifndef WIDIR_ENERGY_ENERGY_MODEL_H
#define WIDIR_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "sim/types.h"

namespace widir::energy {

/** Per-event / per-cycle energy constants (picojoules). */
struct EnergyParams
{
    /// @name Core (McPAT-like)
    /// @{
    double corePerInstr = 18.0;      ///< dynamic per retired instr
    double coreStaticPerCycle = 48.0; ///< per core per cycle
    /// @}

    /// @name L1 caches (CACTI-like, 64KB)
    /// @{
    double l1PerAccess = 12.0;
    double l1StaticPerCycle = 4.0;   ///< per tile per cycle
    /// @}

    /// @name L2 bank + directory slice (CACTI-like, 512KB)
    /// @{
    double l2PerAccess = 50.0;       ///< tag+dir access
    double l2PerDataAccess = 35.0;   ///< additional data-array energy
    double l2StaticPerCycle = 17.0;  ///< per tile per cycle
    /// @}

    /// @name Wired NoC (DSENT-like)
    /// @{
    double routerPerTraversal = 12.0;
    double linkPerFlitHop = 7.0;
    double nocStaticPerCycle = 11.0; ///< per router per cycle
    /// @}

    /// @name Wireless NoC (Table III, 65nm, power gated when idle)
    /// @{
    double wnocTxPerCycle = 39.4;    ///< transmitting node
    double wnocRxPerCycle = 39.4;    ///< each receiving node
    /**
     * Idle per node per cycle. Table III lists 26.9 mW idle but notes
     * the analog amplifiers are power gated (1.14 pJ transient); the
     * effective gated idle used here keeps the WNoC share near the
     * paper's ~6% of WiDir energy.
     */
    double wnocIdlePerCycle = 4.0;
    double wnocGateTransient = 1.14; ///< per TX/RX wake-up
    /**
     * Fraction of a frame's cycles a receiver's full RF chain is
     * active (it can gate back down after the preamble/address unless
     * it must decode the payload).
     */
    double wnocRxDutyFactor = 0.25;
    /// @}
};

/** Event counts consumed by the model (gathered by the system layer). */
struct EnergyInputs
{
    sim::Tick cycles = 0;
    std::uint32_t numCores = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;     ///< directory/tag accesses
    std::uint64_t l2DataAccesses = 0; ///< line reads/writes
    std::uint64_t routerTraversals = 0;
    std::uint64_t flitHops = 0;
    std::uint64_t wnocBusyCycles = 0; ///< channel-occupied cycles
    std::uint64_t wnocFrames = 0;     ///< successful frames
    bool wnocPresent = false;
};

/** Energy per component, in picojoules. */
struct EnergyBreakdown
{
    double core = 0;
    double l1 = 0;
    double l2dir = 0;
    double noc = 0;
    double wnoc = 0;

    double
    total() const
    {
        return core + l1 + l2dir + noc + wnoc;
    }
};

/** Evaluate the model. */
EnergyBreakdown computeEnergy(const EnergyInputs &in,
                              const EnergyParams &p = EnergyParams{});

} // namespace widir::energy

#endif // WIDIR_ENERGY_ENERGY_MODEL_H
