#include "energy/energy_model.h"

namespace widir::energy {

EnergyBreakdown
computeEnergy(const EnergyInputs &in, const EnergyParams &p)
{
    EnergyBreakdown out;
    double cycles = static_cast<double>(in.cycles);
    double tiles = static_cast<double>(in.numCores);

    out.core = static_cast<double>(in.instructions) * p.corePerInstr +
               cycles * tiles * p.coreStaticPerCycle;

    out.l1 = static_cast<double>(in.l1Accesses) * p.l1PerAccess +
             cycles * tiles * p.l1StaticPerCycle;

    out.l2dir =
        static_cast<double>(in.l2Accesses) * p.l2PerAccess +
        static_cast<double>(in.l2DataAccesses) * p.l2PerDataAccess +
        cycles * tiles * p.l2StaticPerCycle;

    out.noc =
        static_cast<double>(in.routerTraversals) * p.routerPerTraversal +
        static_cast<double>(in.flitHops) * p.linkPerFlitHop +
        cycles * tiles * p.nocStaticPerCycle;

    if (in.wnocPresent) {
        double busy = static_cast<double>(in.wnocBusyCycles);
        // During a busy cycle one node transmits and the others
        // receive; otherwise every node sits in gated idle. Each
        // successful frame pays the amplifier wake transient at the
        // transmitter and every receiver.
        out.wnoc = busy * p.wnocTxPerCycle +
                   busy * (tiles - 1) * p.wnocRxPerCycle *
                       p.wnocRxDutyFactor +
                   (cycles * tiles - busy * tiles) * p.wnocIdlePerCycle +
                   static_cast<double>(in.wnocFrames) * tiles *
                       p.wnocGateTransient;
    }
    return out;
}

} // namespace widir::energy
