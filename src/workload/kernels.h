/**
 * @file
 * Declarations of the application kernels: the 20 paper analogs
 * (13 SPLASH-3 + 7 PARSEC, Table IV) plus the server-class additions
 * from the ROADMAP. Each paper kernel reproduces the
 * dominant sharing pattern and the approximate L1 miss intensity of
 * its namesake; see each app's .cc for the modeling notes.
 */

#ifndef WIDIR_WORKLOAD_KERNELS_H
#define WIDIR_WORKLOAD_KERNELS_H

#include "cpu/task.h"
#include "cpu/thread.h"
#include "workload/params.h"

namespace widir::workload::apps {

using cpu::Task;
using cpu::Thread;

// SPLASH-3
Task waterSpa(Thread &t, const WorkloadParams &p);
Task waterNsq(Thread &t, const WorkloadParams &p);
Task oceanNc(Thread &t, const WorkloadParams &p);
Task volrend(Thread &t, const WorkloadParams &p);
Task radiosity(Thread &t, const WorkloadParams &p);
Task raytrace(Thread &t, const WorkloadParams &p);
Task cholesky(Thread &t, const WorkloadParams &p);
Task fft(Thread &t, const WorkloadParams &p);
Task luNc(Thread &t, const WorkloadParams &p);
Task luC(Thread &t, const WorkloadParams &p);
Task radix(Thread &t, const WorkloadParams &p);
Task barnes(Thread &t, const WorkloadParams &p);
Task fmm(Thread &t, const WorkloadParams &p);

// PARSEC
Task blackscholes(Thread &t, const WorkloadParams &p);
Task bodytrack(Thread &t, const WorkloadParams &p);
Task canneal(Thread &t, const WorkloadParams &p);
Task dedup(Thread &t, const WorkloadParams &p);
Task fluidanimate(Thread &t, const WorkloadParams &p);
Task ferret(Thread &t, const WorkloadParams &p);
Task freqmine(Thread &t, const WorkloadParams &p);

// Server-class (ROADMAP: beyond the paper's Table IV)
Task kvStore(Thread &t, const WorkloadParams &p);

} // namespace widir::workload::apps

#endif // WIDIR_WORKLOAD_KERNELS_H
