/**
 * @file
 * Registry of the evaluated applications (Table IV of the paper) and
 * helpers to turn one into a runnable per-thread Program.
 */

#ifndef WIDIR_WORKLOAD_REGISTRY_H
#define WIDIR_WORKLOAD_REGISTRY_H

#include <string>
#include <string_view>
#include <vector>

#include "cpu/task.h"
#include "cpu/thread.h"
#include "workload/params.h"

namespace widir::workload {

/**
 * External stimulus behind a trace-driven app: a widir-mtrace-v1 or
 * text-format trace file replayed by a replay frontend instead of a
 * kernel coroutine (docs/FRONTEND.md).
 */
struct TraceSource
{
    std::string path; ///< trace file (either format)
};

/** One evaluated application. */
struct AppInfo
{
    const char *name;   ///< paper's name, e.g. "radiosity"
    const char *suite;  ///< "SPLASH-3", "PARSEC", "SERVER" or "TRACE"
    double paperMpki;   ///< Table IV: Baseline L1 MPKI (0 off-table)
    cpu::Task (*kernel)(cpu::Thread &, const WorkloadParams &);
    const char *pattern; ///< one-line sharing-pattern summary
    /** Non-null for trace-driven apps (kernel is null then). */
    const TraceSource *traceSource = nullptr;
};

/** The built-in applications, SPLASH-3 first (Table IV order). */
const std::vector<AppInfo> &allApps();

/** Find by name (built-in or registered trace); nullptr if unknown. */
const AppInfo *findApp(std::string_view name);

/**
 * Register an external trace file as a first-class workload named
 * @p name (replacing an earlier registration of the same name).
 * Returns the stable AppInfo for it. The file is not opened here;
 * loading and validation happen when an experiment runs it.
 */
const AppInfo *registerTraceApp(std::string name, std::string path);

/** Bind an app + params into a per-core program. */
cpu::Program makeProgram(const AppInfo &app, const WorkloadParams &p);

} // namespace widir::workload

#endif // WIDIR_WORKLOAD_REGISTRY_H
