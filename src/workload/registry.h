/**
 * @file
 * Registry of the evaluated applications (Table IV of the paper) and
 * helpers to turn one into a runnable per-thread Program.
 */

#ifndef WIDIR_WORKLOAD_REGISTRY_H
#define WIDIR_WORKLOAD_REGISTRY_H

#include <string_view>
#include <vector>

#include "cpu/task.h"
#include "cpu/thread.h"
#include "workload/params.h"

namespace widir::workload {

/** One evaluated application. */
struct AppInfo
{
    const char *name;   ///< paper's name, e.g. "radiosity"
    const char *suite;  ///< "SPLASH-3" or "PARSEC"
    double paperMpki;   ///< Table IV: Baseline L1 MPKI
    cpu::Task (*kernel)(cpu::Thread &, const WorkloadParams &);
    const char *pattern; ///< one-line sharing-pattern summary
};

/** All 20 applications, SPLASH-3 first (Table IV order). */
const std::vector<AppInfo> &allApps();

/** Find by name; nullptr if unknown. */
const AppInfo *findApp(std::string_view name);

/** Bind an app + params into a per-core program. */
cpu::Program makeProgram(const AppInfo &app, const WorkloadParams &p);

} // namespace widir::workload

#endif // WIDIR_WORKLOAD_REGISTRY_H
