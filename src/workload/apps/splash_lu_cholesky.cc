/**
 * @file
 * Kernels modeling SPLASH-3 `lu` (contiguous and non-contiguous) and
 * `cholesky`.
 *
 * Blocked dense factorizations: each step one owner factors/publishes
 * a pivot block that every other thread then reads to update its own
 * blocks, with a barrier per step -- the one-writer/many-reader,
 * write-then-re-read pattern that the paper's Section II-C motivates
 * (56% of invalidated sharers re-read). The non-contiguous variant
 * strides through memory and misses far more (Table IV: 21.52 vs 1.9
 * MPKI). cholesky is the sparse cousin driven by a task queue
 * (5.92 MPKI).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

namespace {

/** Common blocked-factorization skeleton for both lu variants. */
Task
luCommon(Thread &t, const WorkloadParams &p, std::uint64_t stream_lines,
         std::uint64_t compute_per_line)
{
    bool sense = false;
    std::uint64_t steps = p.perThread(3, t.numThreads());
    for (std::uint64_t s = 0; s < steps; ++s) {
        std::uint32_t owner =
            static_cast<std::uint32_t>(s % t.numThreads());
        if (t.id() == owner) {
            // Factor and publish the pivot block (4 shared lines).
            co_await writeSharedBlock(t, /*slot=*/6, /*first=*/0,
                                      /*lines=*/4, /*compute=*/60,
                                      /*value=*/s);
        }
        co_await syn::globalBarrier(t, sense);
        // Everyone reads the pivot block...
        co_await readSharedBlock(t, /*slot=*/6, /*first=*/0,
                                 /*lines=*/4, /*compute=*/30);
        // ...and updates its own trailing blocks. The non-contiguous
        // variant streams a big footprint; the contiguous one reuses
        // an L1-resident block.
        if (stream_lines) {
            co_await streamPrivate(t, (s % 4) * 1024, stream_lines,
                                   compute_per_line, /*write=*/true);
        } else {
            co_await touchPrivate(t, 32, 60, 300);
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace

Task
luNc(Thread &t, const WorkloadParams &p)
{
    // Non-contiguous blocks: big strided streams, few instructions per
    // line -> the suite's highest MPKI.
    return luCommon(t, p, /*stream_lines=*/96, /*compute_per_line=*/45);
}

Task
luC(Thread &t, const WorkloadParams &p)
{
    // Contiguous blocks stay L1-resident between uses.
    return luCommon(t, p, /*stream_lines=*/0, /*compute_per_line=*/0);
}

Task
cholesky(Thread &t, const WorkloadParams &p)
{
    std::uint64_t tasks =
        static_cast<std::uint64_t>(5) * 64 * p.scale; // fixed input
    for (;;) {
        std::uint64_t task =
            co_await syn::taskPop(t, AddrMap::taskQueueHead(3));
        if (task >= tasks)
            break;
        // Read the source supernode (shared), update mine (private
        // streaming), post completion under a lock.
        co_await readSharedBlock(t, /*slot=*/7,
                                 /*first=*/(task * 3) % 48,
                                 /*lines=*/3, /*compute=*/150);
        co_await streamPrivate(t, (task % 16) * 64, /*lines=*/10,
                               /*compute=*/150, /*write=*/true);
        co_await touchPrivate(t, 16, 20, 150);
        co_await t.fetchAdd(AddrMap::reduction(4), 1);
    }
    co_await syn::spinUntilAtLeast(t, AddrMap::reduction(4), tasks);
    co_return;
}

} // namespace widir::workload::apps
