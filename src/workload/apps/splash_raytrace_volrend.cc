/**
 * @file
 * Kernels modeling SPLASH-3 `raytrace` and `volrend`.
 *
 * Both are image-space task-parallel renderers: threads claim tile/ray
 * jobs from a shared counter and traverse a read-shared scene/volume
 * structure. raytrace has a larger per-ray footprint and heavier
 * queue traffic (Table IV: 10.05 MPKI, sizable WiDir benefit);
 * volrend's octree walk has a smaller footprint (2.44 MPKI).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
raytrace(Thread &t, const WorkloadParams &p)
{
    std::uint64_t rays =
        static_cast<std::uint64_t>(8) * 64 * p.scale; // fixed input
    for (;;) {
        std::uint64_t ray =
            co_await syn::taskPop(t, AddrMap::taskQueueHead(1));
        if (ray >= rays)
            break;
        // Traverse the read-shared BVH/scene: scattered shared reads.
        for (int hop = 0; hop < 6; ++hop) {
            co_await randomSharedRead(t, /*slot=*/4, /*lines=*/96);
            co_await t.compute(60);
        }
        // Shade into a private framebuffer tile (streams: each ray
        // touches fresh lines).
        co_await streamPrivate(t, (ray % 64) * 8, /*lines=*/3,
                               /*compute=*/60, /*write=*/true);
        // Progress counter everyone polls for load-balance stats.
        co_await t.fetchAdd(AddrMap::reduction(3), 1);
    }
    co_await syn::spinUntilAtLeast(t, AddrMap::reduction(3), rays);
    co_return;
}

Task
volrend(Thread &t, const WorkloadParams &p)
{
    std::uint64_t tiles =
        static_cast<std::uint64_t>(6) * 64 * p.scale; // fixed input
    for (;;) {
        std::uint64_t tile =
            co_await syn::taskPop(t, AddrMap::taskQueueHead(2));
        if (tile >= tiles)
            break;
        // Octree walk over the read-shared volume (good reuse, small
        // footprint: lower miss rate than raytrace).
        for (int hop = 0; hop < 3; ++hop) {
            co_await randomSharedRead(t, /*slot=*/5, /*lines=*/24);
            co_await t.compute(300);
        }
        // Compose into an L1-resident private tile.
        co_await touchPrivate(t, 12, 10, 150);
    }
    co_return;
}

} // namespace widir::workload::apps
