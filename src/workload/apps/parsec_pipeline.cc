/**
 * @file
 * Kernels modeling PARSEC's pipeline applications `dedup` and
 * `ferret`. Both push work items through stage queues; consecutive
 * stages share each item between exactly two threads (producer and
 * consumer), so lines rarely accumulate enough sharers to go
 * wireless, and the paper finds WiDir gives them no speedup.
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

namespace {

/**
 * Pipeline skeleton: thread i produces items into slot line i and
 * consumes from its predecessor ((i-1) mod n) via per-pair flags --
 * two-sharer producer/consumer traffic.
 *
 * @p compute_producer / @p compute_consumer model the per-item work
 * of the two stages (hashing for dedup, feature extraction for
 * ferret).
 */
Task
pipeline(Thread &t, const WorkloadParams &p, std::uint64_t slot,
         std::uint64_t items, std::uint64_t compute_producer,
         std::uint64_t compute_consumer, std::uint64_t private_lines)
{
    std::uint32_t n = t.numThreads();
    std::uint32_t pred = (t.id() + n - 1) % n;
    Addr my_flag = AddrMap::sharedArray(slot) +
                   static_cast<Addr>(t.id()) * mem::kLineBytes;
    Addr pred_flag = AddrMap::sharedArray(slot) +
                     static_cast<Addr>(pred) * mem::kLineBytes;

    for (std::uint64_t i = 1; i <= items; ++i) {
        // Produce: stage work over private data, then publish item i.
        co_await streamPrivate(t, (i % 8) * 128, private_lines,
                               compute_producer);
        co_await t.store(my_flag + 8, i);   // payload word
        co_await t.fence();
        co_await t.store(my_flag, i);       // ready flag
        co_await t.fence();
        // Consume item i from my predecessor.
        co_await syn::spinUntilAtLeast(t, pred_flag, i);
        co_await t.loadNb(pred_flag + 8);
        co_await t.compute(compute_consumer);
    }
    co_return;
}

} // namespace

Task
dedup(Thread &t, const WorkloadParams &p)
{
    // Chunking + SHA1 hashing: hash arithmetic dominates; private
    // chunk buffers stream (Table IV: 4.1 MPKI).
    return pipeline(t, p, /*slot=*/14,
                    /*items=*/p.perThread(6, t.numThreads()),
                    /*compute_producer=*/260, /*compute_consumer=*/120,
                    /*private_lines=*/8);
}

Task
ferret(Thread &t, const WorkloadParams &p)
{
    // Image-similarity search: heavier per-item compute and a larger
    // streamed feature footprint (Table IV: 6.34 MPKI).
    return pipeline(t, p, /*slot=*/15,
                    /*items=*/p.perThread(5, t.numThreads()),
                    /*compute_producer=*/170, /*compute_consumer=*/140,
                    /*private_lines=*/14);
}

} // namespace widir::workload::apps
