/**
 * @file
 * Kernel modeling SPLASH-3 `radiosity`.
 *
 * Radiosity computes global illumination with highly irregular
 * task-queue parallelism: threads pull patch-interaction tasks from
 * shared queues (with stealing), and repeatedly read/update global
 * scene energy totals. Its synchronization variables are touched by
 * every core: the paper's Fig. 5 shows >90% of radiosity's wireless
 * writes update 50+ sharers, and it gets one of the biggest speedups.
 *
 * Modeled as: a shared task counter popped by all threads; per task a
 * moderate private computation, reads of a shared patch array, and a
 * lock-protected update of global energy accumulators that all
 * threads also poll between tasks.
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
radiosity(Thread &t, const WorkloadParams &p)
{
    std::uint64_t total_tasks =
        static_cast<std::uint64_t>(6) * 64 * p.scale; // fixed input
    for (;;) {
        std::uint64_t task =
            co_await syn::taskPop(t, AddrMap::taskQueueHead(0));
        if (task >= total_tasks)
            break;
        // Patch visibility/form-factor work: small private working
        // set plus reads of the shared patch array.
        co_await touchPrivate(t, 24, 40, 220);
        co_await readSharedBlock(t, /*slot=*/3,
                                 /*first=*/task % 32, /*lines=*/2,
                                 /*compute=*/100);
        // Global energy update, polled by everyone: the hot pattern.
        co_await syn::lockAcquire(t, AddrMap::globalLock(1));
        co_await t.fetchAdd(AddrMap::reduction(2), 1);
        co_await syn::lockRelease(t, AddrMap::globalLock(1));
        std::uint64_t energy =
            co_await t.load(AddrMap::reduction(2));
        (void)energy;
    }
    // Final convergence poll: wait until all tasks accounted.
    co_await syn::spinUntilAtLeast(t, AddrMap::reduction(2),
                                   total_tasks);
    co_return;
}

} // namespace widir::workload::apps
