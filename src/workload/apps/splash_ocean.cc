/**
 * @file
 * Kernel modeling SPLASH-3 `ocean` (non-contiguous partitions).
 *
 * Ocean solves eddy-current PDEs over large 2D grids with red-black
 * Gauss-Seidel sweeps. The non-contiguous layout gives every sweep a
 * large streaming working set (Table IV: 16.05 MPKI -- mostly capacity
 * misses), row exchanges with grid neighbours, and a global
 * convergence-test accumulator that every thread reads and writes each
 * sweep -- the hot, many-sharer pattern the paper's WiDir accelerates
 * (ocean-nc shows one of the largest memory-latency reductions).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
oceanNc(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint64_t sweeps = p.perThread(2, t.numThreads());
    for (std::uint64_t s = 0; s < sweeps; ++s) {
        // Stream the thread's grid partition: far larger than L1, so
        // nearly every line is a miss; ~30 instructions of stencil
        // arithmetic per line keeps MPKI in ocean's band.
        co_await streamPrivate(t, /*word_off=*/0, /*lines=*/120,
                               /*compute=*/60, /*write=*/(s & 1));
        // Boundary-row exchange with the neighbouring partitions.
        co_await neighborExchange(t, /*slot=*/2, /*compute=*/40);
        // Convergence check: everyone accumulates its local residual
        // into the shared error cell and re-reads it -- frequent
        // read-write sharing by all threads.
        co_await t.fetchAdd(AddrMap::reduction(1), 1);
        co_await syn::spinUntilAtLeast(t, AddrMap::reduction(1),
                                       (s + 1) * t.numThreads());
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
