/**
 * @file
 * Kernels modeling SPLASH-3 `barnes` and `fmm`.
 *
 * Both are hierarchical N-body codes. barnes (Barnes-Hut) walks a
 * shared octree every timestep: upper tree cells are read by all
 * threads and rebuilt/updated each step under per-cell locks, giving
 * heavy read-write sharing of a moderate set of lines (9.53 MPKI,
 * one of WiDir's best apps). fmm (Fast Multipole) exchanges multipole
 * expansions between neighbouring cells -- fewer, more structured
 * interactions (1.88 MPKI) but with the same re-read-after-write
 * flavour, which gives it a large latency cut in Fig. 7.
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
barnes(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    constexpr std::uint64_t kTreeLines = 48; // hot upper-tree cells
    std::uint64_t steps = p.perThread(2, t.numThreads());
    for (std::uint64_t s = 0; s < steps; ++s) {
        // Tree build: each thread inserts its bodies, updating shared
        // cells under a lock -- writes that many other cores re-read.
        for (int ins = 0; ins < 4; ++ins) {
            std::uint64_t cell = t.rng().below(kTreeLines);
            co_await syn::lockAcquire(
                t, AddrMap::globalLock(3 + cell % 8));
            co_await t.fetchAdd(AddrMap::sharedArray(11) +
                                    cell * mem::kLineBytes,
                                1);
            co_await syn::lockRelease(
                t, AddrMap::globalLock(3 + cell % 8));
            co_await t.compute(200);
        }
        co_await syn::globalBarrier(t, sense);
        // Force pass: every thread's tree walk touches the whole set
        // of upper-tree cells for each of its bodies -- the frequent
        // re-read-after-write pattern of Section II-C. The dense
        // re-reads keep the cells' W copies alive under WiDir.
        for (int body = 0; body < 2; ++body) {
            for (std::uint64_t cell = 0; cell < kTreeLines; ++cell) {
                co_await t.loadNb(AddrMap::sharedArray(11) +
                                  cell * mem::kLineBytes);
                co_await t.compute(85);
            }
        }
        co_await streamPrivate(t, (s % 4) * 512, /*lines=*/24,
                               /*compute=*/60, /*write=*/true);
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

Task
fmm(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint64_t steps = p.perThread(2, t.numThreads());
    for (std::uint64_t s = 0; s < steps; ++s) {
        // Upward pass: compute my cell's multipole expansion locally
        // and publish it (one line per thread).
        co_await touchPrivate(t, 20, 24, 500);
        co_await writeSharedBlock(t, /*slot=*/12, /*first=*/t.id(),
                                  /*lines=*/1, /*compute=*/30,
                                  /*value=*/s);
        co_await syn::globalBarrier(t, sense);
        // Interaction lists: read the expansions of a handful of
        // neighbour cells (structured sharing, modest volume).
        std::uint32_t n = t.numThreads();
        for (int k = 1; k <= 4; ++k) {
            std::uint32_t nb = (t.id() + k) % n;
            co_await readSharedBlock(t, /*slot=*/12, /*first=*/nb,
                                     /*lines=*/1, /*compute=*/250);
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
