/**
 * @file
 * Kernels modeling SPLASH-3 `fft` and `radix`.
 *
 * fft: the six-step 1D FFT dominated by all-to-all matrix transposes:
 * each thread writes its row stripe then reads a stripe from every
 * other thread between barriers (5.05 MPKI; large memory-latency
 * reduction under WiDir in Fig. 7).
 *
 * radix: parallel radix sort; per digit a global histogram that every
 * thread RMWs, a prefix-sum phase over the shared bins, then a
 * permutation that writes keys into other threads' output partitions
 * (9.41 MPKI).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
fft(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint32_t n = t.numThreads();
    std::uint64_t stages = p.perThread(2, t.numThreads());
    for (std::uint64_t stage = 0; stage < stages; ++stage) {
        // Local 1D FFTs over my stripe (streaming, compute-heavy).
        co_await streamPrivate(t, 0, /*lines=*/48, /*compute=*/250);
        co_await touchPrivate(t, 32, 60, 200);
        // Publish my stripe: one shared line per (me, them) pair.
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            co_await t.store(AddrMap::sharedArray(8) +
                                 (static_cast<Addr>(t.id()) * n + dst) *
                                     mem::kLineBytes,
                             stage + 1);
        }
        co_await syn::globalBarrier(t, sense);
        // Transpose: read the stripe every other thread wrote for me.
        for (std::uint32_t src = 0; src < n; ++src) {
            co_await t.loadNb(AddrMap::sharedArray(8) +
                              (static_cast<Addr>(src) * n + t.id()) *
                                  mem::kLineBytes);
            co_await t.compute(40);
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

Task
radix(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    constexpr std::uint64_t kBins = 32;
    std::uint32_t n = t.numThreads();
    std::uint64_t passes = p.perThread(2, t.numThreads());
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        // Histogram my keys into a PRIVATE per-processor histogram
        // (SPLASH radix accumulates locally; no global RMW storm).
        for (int chunk = 0; chunk < 12; ++chunk) {
            co_await t.loadNb(AddrMap::privateWord(
                t.id(), (pass * 12 + chunk) * 8));
            std::uint64_t bin = t.rng().below(kBins);
            // One line per bin (SPLASH pads to avoid false sharing).
            co_await t.store(AddrMap::privateWord(t.id(),
                                                  4096 + bin * 8),
                             pass + 1);
            co_await t.compute(250);
        }
        co_await syn::globalBarrier(t, sense);
        // Merge: each thread owns kBins/n of the global bins; it reads
        // that bin's counter from every processor's private histogram
        // and writes the owned global bin (single writer per bin).
        for (std::uint64_t bin = t.id(); bin < kBins; bin += n) {
            for (std::uint32_t src = 0; src < n; ++src) {
                co_await t.loadNb(
                    AddrMap::privateWord(src, 4096 + bin * 8));
            }
            co_await t.compute(3 * n);
            co_await t.store(AddrMap::sharedArray(9) +
                                 bin * mem::kLineBytes,
                             pass + 1);
        }
        co_await syn::globalBarrier(t, sense);
        // Prefix scan: every thread reads all the global bins -- the
        // one-writer/many-reader re-read pattern WiDir serves with a
        // broadcast update.
        for (std::uint64_t bin = 0; bin < kBins; ++bin) {
            co_await t.loadNb(AddrMap::sharedArray(9) +
                              bin * mem::kLineBytes);
        }
        co_await t.compute(kBins * 30);
        co_await syn::globalBarrier(t, sense);
        // Permute: write my keys into other partitions' output.
        for (int chunk = 0; chunk < 12; ++chunk) {
            std::uint32_t dst =
                static_cast<std::uint32_t>(t.rng().below(t.numThreads()));
            co_await t.store(AddrMap::sharedArray(10) +
                                 (static_cast<Addr>(dst) * 16 +
                                  t.rng().below(16)) *
                                     mem::kLineBytes,
                             pass);
            co_await t.compute(150);
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
