/**
 * @file
 * Server-class workload: a sharded in-memory key-value store with
 * Zipf-skewed key popularity (the ROADMAP's first server workload).
 *
 * Threads issue GET/PUT requests against a shared table of value
 * lines. Popularity follows an approximate Zipf(1) law via log-uniform
 * rank sampling, so a handful of hot keys absorb most traffic: every
 * core holds the hot value lines in S while the occasional PUT rewrites
 * them -- under the baseline an invalidation storm plus a flood of
 * re-reads, under WiDir a single broadcast update to the whole reader
 * set. This is exactly the reader-flood/hot-line shape the wireless
 * directory's broadcast path targets, now expressed as a server
 * workload instead of an HPC kernel.
 *
 * PUTs serialize through per-shard spin locks (16 shards) and bump a
 * per-shard op counter, adding the lock-word migration pattern of
 * Fig. 3 at request rate.
 */

#include <cmath>

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
kvStore(Thread &t, const WorkloadParams &p)
{
    constexpr std::uint64_t kKeys = 256;  // value lines (slot 18)
    constexpr std::uint64_t kShards = 16; // one spin lock per shard
    const double log_keys = std::log(static_cast<double>(kKeys));
    std::uint64_t ops = p.perThread(24, t.numThreads());
    bool sense = false;
    for (std::uint64_t op = 0; op < ops; ++op) {
        // Zipf-ish key pick: a log-uniform rank makes P(rank) ~ 1/rank,
        // concentrating traffic on the lowest-numbered (hot) keys.
        std::uint64_t key = static_cast<std::uint64_t>(
            std::exp(t.rng().real() * log_keys));
        key = key > 0 ? key - 1 : 0;
        if (key >= kKeys)
            key = kKeys - 1;
        Addr val = AddrMap::sharedArray(18) + key * mem::kLineBytes;

        if (t.rng().chance(0.9)) {
            // GET: dependent read of the value line, then serialize
            // the response.
            std::uint64_t v = co_await t.load(val);
            co_await t.compute(60 + (v & 3));
        } else {
            // PUT: lock the key's shard, bump its op counter, rewrite
            // the (hot) value line every reader holds in S.
            std::uint64_t shard = key % kShards;
            co_await syn::lockAcquire(t, AddrMap::globalLock(shard));
            co_await t.fetchAdd(AddrMap::sharedArray(19) +
                                    shard * mem::kLineBytes,
                                1);
            co_await t.store(val, op + 1);
            co_await syn::lockRelease(t, AddrMap::globalLock(shard));
            co_await t.compute(40);
        }
        // Request parsing / response buffers: private, L1-resident.
        if ((op & 3) == 0)
            co_await touchPrivate(t, 16, 4, 30);
    }
    co_await syn::globalBarrier(t, sense);
}

} // namespace widir::workload::apps
