/**
 * @file
 * Kernels modeling the compute-dominated PARSEC applications that the
 * paper finds get essentially no benefit from WiDir: `blackscholes`,
 * `bodytrack` and `freqmine`. Their time goes to private arithmetic
 * and private-capacity misses, with only coarse-grained barriers or
 * rare shared counters -- so there is almost nothing for the wireless
 * path to accelerate (Fig. 8 shows ~1.0 normalized time for them).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
blackscholes(Thread &t, const WorkloadParams &p)
{
    // Each thread prices its own option chunk: pure private floating
    // point over an L1-resident slice (Table IV: 0.13 MPKI), one
    // barrier per run.
    bool sense = false;
    std::uint64_t options = p.perThread(48, t.numThreads());
    for (std::uint64_t i = 0; i < options; ++i) {
        co_await t.loadNb(AddrMap::privateWord(t.id(), (i % 16) * 8));
        co_await t.compute(1500); // Black-Scholes formula arithmetic
        co_await t.store(AddrMap::privateWord(t.id(), 1024 + (i % 16) * 8),
                         i);
    }
    co_await syn::globalBarrier(t, sense);
    co_return;
}

Task
bodytrack(Thread &t, const WorkloadParams &p)
{
    // Particle-filter body tracking: per frame, score many particles
    // against read-shared image features; the particle state streams
    // through the L1 (Table IV: 7.51 MPKI, almost all private misses).
    bool sense = false;
    std::uint64_t frames = p.perThread(2, t.numThreads());
    for (std::uint64_t f = 0; f < frames; ++f) {
        for (int particle = 0; particle < 10; ++particle) {
            // Particle state: fresh private lines each evaluation.
            co_await streamPrivate(t, (f * 10 + particle) * 24,
                                   /*lines=*/6, /*compute=*/80);
            // Read-only image features (shared, read-only: S copies
            // everywhere, no invalidations to save).
            co_await randomSharedRead(t, /*slot=*/13, /*lines=*/64);
            co_await t.compute(150);
        }
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

Task
freqmine(Thread &t, const WorkloadParams &p)
{
    // FP-growth frequent itemset mining: each thread grows private
    // FP-tree fragments (pointer-chasing over a big private heap,
    // Table IV: 8.84 MPKI) and rarely touches shared counters.
    bool sense = false;
    std::uint64_t rounds = p.perThread(3, t.numThreads());
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (int node = 0; node < 30; ++node) {
            std::uint64_t off = t.rng().below(4096) * 8; // 32KB reach
            co_await t.loadNb(AddrMap::privateWord(t.id(), off));
            co_await t.compute(110);
        }
        // Occasional shared support-count update.
        co_await t.fetchAdd(AddrMap::reduction(5), 1);
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
