/**
 * @file
 * Kernels modeling SPLASH-3 `water-spatial` and `water-nsquared`.
 *
 * Both simulate water molecules. water-spatial partitions molecules
 * into a 3D cell grid, so each thread mostly computes over its own
 * cells and only exchanges boundary cells with neighbours between
 * timesteps -- very low miss rate (Table IV: 0.49 MPKI) and little
 * opportunity for WiDir. water-nsquared evaluates all molecule pairs:
 * each thread reads every other thread's molecule block each step and
 * accumulates inter-molecular forces under per-partition locks --
 * more shared traffic (Table IV: 2.86 MPKI).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
waterSpa(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint64_t steps = p.perThread(2, t.numThreads());
    for (std::uint64_t s = 0; s < steps; ++s) {
        // Intra-cell force computation: L1-resident private molecules,
        // heavy arithmetic per interaction.
        co_await touchPrivate(t, /*lines=*/48, /*touches=*/80,
                              /*compute=*/1200);
        // Boundary-cell exchange with grid neighbours.
        co_await neighborExchange(t, /*slot=*/0, /*compute=*/120);
        // Global energy accumulation once per step.
        co_await syn::lockAcquire(t, AddrMap::globalLock(0));
        co_await t.fetchAdd(AddrMap::reduction(0), 1);
        co_await syn::lockRelease(t, AddrMap::globalLock(0));
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

Task
waterNsq(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint64_t steps = p.perThread(2, t.numThreads());
    std::uint32_t n = t.numThreads();
    for (std::uint64_t s = 0; s < steps; ++s) {
        // Publish my molecule block (one line per thread).
        co_await writeSharedBlock(t, /*slot=*/1, /*first=*/t.id(),
                                  /*lines=*/1, /*compute=*/40,
                                  /*value=*/s);
        co_await syn::globalBarrier(t, sense);
        // All-pairs sweep: read every other thread's block and do the
        // pairwise force arithmetic.
        for (std::uint32_t other = 0; other < n; ++other) {
            if (other == t.id())
                continue;
            co_await readSharedBlock(t, /*slot=*/1, /*first=*/other,
                                     /*lines=*/1, /*compute=*/300);
        }
        // Lock-protected accumulation into a few force partitions.
        std::uint64_t part = t.rng().below(4);
        co_await syn::lockAcquire(t, AddrMap::globalLock(part));
        co_await t.fetchAdd(AddrMap::reduction(part), 1);
        co_await syn::lockRelease(t, AddrMap::globalLock(part));
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
