/**
 * @file
 * Kernels modeling PARSEC `canneal` and `fluidanimate`.
 *
 * canneal: simulated annealing for chip routing -- threads pick random
 * netlist elements, read their locations and swap them, giving very
 * low locality and the suite's highest miss rate (Table IV: 23.21
 * MPKI). Hot elements do accumulate sharers, so WiDir recovers some
 * of the coherence misses.
 *
 * fluidanimate: SPH fluid simulation over a cell grid; threads update
 * particles in their own cells and synchronize on boundary cells with
 * fine-grained locks (Table IV: 1.27 MPKI).
 */

#include "workload/kernels.h"

#include "workload/addr_map.h"
#include "workload/patterns.h"
#include "workload/sync.h"

namespace widir::workload::apps {

using namespace pattern;
namespace syn = ::widir::workload::sync;

Task
canneal(Thread &t, const WorkloadParams &p)
{
    constexpr std::uint64_t kElements = 384; // shared netlist lines
    std::uint64_t moves = p.perThread(20, t.numThreads());
    for (std::uint64_t m = 0; m < moves; ++m) {
        // canneal partitions the netlist: each thread repeatedly
        // revisits its own elements (re-reads!) while swap partners
        // are drawn globally. Under the baseline, a partner's write
        // invalidates the owner, whose next revisit misses -- the
        // coherence misses WiDir converts into in-place updates.
        std::uint64_t a =
            16 + (static_cast<std::uint64_t>(t.id()) * 5 +
                  t.rng().below(5)) %
                     (kElements - 16);
        std::uint64_t b = t.rng().below(kElements);
        co_await t.loadNb(AddrMap::sharedArray(16) +
                          a * mem::kLineBytes);
        co_await t.loadNb(AddrMap::sharedArray(16) +
                          b * mem::kLineBytes);
        co_await t.compute(260); // routing-cost delta
        // Accept: swap the two locations (writes to shared lines).
        if (t.rng().chance(0.3)) {
            co_await t.store(AddrMap::sharedArray(16) +
                                 a * mem::kLineBytes,
                             b);
            co_await t.store(AddrMap::sharedArray(16) +
                                 b * mem::kLineBytes,
                             a);
        }
        // Global temperature/step counter all threads poll.
        if ((m & 7) == 0)
            co_await t.fetchAdd(AddrMap::reduction(6), 1);
    }
    co_return;
}

Task
fluidanimate(Thread &t, const WorkloadParams &p)
{
    bool sense = false;
    std::uint64_t steps = p.perThread(2, t.numThreads());
    std::uint32_t n = t.numThreads();
    for (std::uint64_t s = 0; s < steps; ++s) {
        // Update particles in my own cells: L1-resident, arithmetic
        // heavy (density + force kernels).
        co_await touchPrivate(t, 40, 40, 550);
        // Boundary cells: lock the cell shared with each neighbour,
        // exchange particle contributions.
        std::uint32_t nb = (t.id() + 1) % n;
        std::uint64_t cell_lock = 8 + (std::min(t.id(), nb) % 8);
        co_await syn::lockAcquire(t, AddrMap::globalLock(cell_lock));
        co_await t.fetchAdd(AddrMap::sharedArray(17) +
                                (std::min(t.id(), nb)) *
                                    mem::kLineBytes,
                            1);
        co_await syn::lockRelease(t, AddrMap::globalLock(cell_lock));
        co_await syn::globalBarrier(t, sense);
    }
    co_return;
}

} // namespace widir::workload::apps
