/**
 * @file
 * Reusable memory-access pattern building blocks for the application
 * kernels. Each helper generates a stream of simulated accesses whose
 * cache behaviour mirrors a classic parallel-program idiom:
 *
 *  - streamPrivate:     capacity misses over a thread-local array
 *  - touchPrivate:      L1-resident private working set (mostly hits)
 *  - readSharedBlock:   read-only sharing (many S copies)
 *  - writeSharedBlock:  producer writes a block others will read
 *  - randomSharedRead/Write: low-locality shared accesses (canneal)
 *  - neighborExchange:  stencil boundary sharing between adjacent ids
 */

#ifndef WIDIR_WORKLOAD_PATTERNS_H
#define WIDIR_WORKLOAD_PATTERNS_H

#include <cstdint>

#include "cpu/task.h"
#include "cpu/thread.h"
#include "mem/address.h"
#include "workload/addr_map.h"

namespace widir::workload::pattern {

using cpu::Task;
using cpu::Thread;
using sim::Addr;

/**
 * Stream through @p lines cache lines of the thread's private region
 * starting at word offset @p word_off, with @p compute_per_line
 * instructions of work per line. Strides a full line, so each access
 * is a fresh (capacity/cold) miss once the region exceeds the L1.
 */
inline Task
streamPrivate(Thread &t, std::uint64_t word_off, std::uint64_t lines,
              std::uint64_t compute_per_line, bool write = false)
{
    Addr base = AddrMap::privateBase(t.id()) + word_off * 8;
    for (std::uint64_t i = 0; i < lines; ++i) {
        Addr a = base + i * mem::kLineBytes;
        if (write)
            co_await t.store(a, i);
        else
            co_await t.loadNb(a);
        if (compute_per_line)
            co_await t.compute(compute_per_line);
    }
}

/**
 * Work over a small, L1-resident private region: @p touches accesses
 * over @p lines lines (reuse -> hits), @p compute per touch.
 */
inline Task
touchPrivate(Thread &t, std::uint64_t lines, std::uint64_t touches,
             std::uint64_t compute_per_touch)
{
    Addr base = AddrMap::privateBase(t.id());
    for (std::uint64_t i = 0; i < touches; ++i) {
        std::uint64_t line = t.rng().below(lines ? lines : 1);
        co_await t.loadNb(base + line * mem::kLineBytes);
        if (compute_per_touch)
            co_await t.compute(compute_per_touch);
    }
}

/** Read @p lines consecutive lines of shared array slot @p slot. */
inline Task
readSharedBlock(Thread &t, std::uint64_t slot, std::uint64_t first_line,
                std::uint64_t lines, std::uint64_t compute_per_line)
{
    Addr base = AddrMap::sharedArray(slot) + first_line * mem::kLineBytes;
    for (std::uint64_t i = 0; i < lines; ++i) {
        co_await t.loadNb(base + i * mem::kLineBytes);
        if (compute_per_line)
            co_await t.compute(compute_per_line);
    }
}

/** Write @p lines consecutive lines of shared array slot @p slot. */
inline Task
writeSharedBlock(Thread &t, std::uint64_t slot, std::uint64_t first_line,
                 std::uint64_t lines, std::uint64_t compute_per_line,
                 std::uint64_t value = 1)
{
    Addr base = AddrMap::sharedArray(slot) + first_line * mem::kLineBytes;
    for (std::uint64_t i = 0; i < lines; ++i) {
        co_await t.store(base + i * mem::kLineBytes, value + i);
        if (compute_per_line)
            co_await t.compute(compute_per_line);
    }
}

/** One random read within the first @p lines lines of a shared array. */
inline Task
randomSharedRead(Thread &t, std::uint64_t slot, std::uint64_t lines)
{
    Addr a = AddrMap::sharedArray(slot) +
             t.rng().below(lines) * mem::kLineBytes +
             t.rng().below(mem::kWordsPerLine) * 8;
    co_await t.loadNb(a);
}

/** One random write within the first @p lines lines of a shared array. */
inline Task
randomSharedWrite(Thread &t, std::uint64_t slot, std::uint64_t lines,
                  std::uint64_t value)
{
    Addr a = AddrMap::sharedArray(slot) +
             t.rng().below(lines) * mem::kLineBytes +
             t.rng().below(mem::kWordsPerLine) * 8;
    co_await t.store(a, value);
}

/**
 * Stencil-style boundary exchange: write my boundary line in shared
 * array @p slot, then read both neighbours' boundary lines.
 */
inline Task
neighborExchange(Thread &t, std::uint64_t slot,
                 std::uint64_t compute_between)
{
    std::uint32_t n = t.numThreads();
    std::uint32_t left = (t.id() + n - 1) % n;
    std::uint32_t right = (t.id() + 1) % n;
    Addr base = AddrMap::sharedArray(slot);
    co_await t.store(base + t.id() * mem::kLineBytes, t.id());
    if (compute_between)
        co_await t.compute(compute_between);
    co_await t.loadNb(base + left * mem::kLineBytes);
    co_await t.loadNb(base + right * mem::kLineBytes);
}

} // namespace widir::workload::pattern

#endif // WIDIR_WORKLOAD_PATTERNS_H
