#include "workload/registry.h"

#include <deque>

#include "workload/kernels.h"

namespace widir::workload {

namespace {

/** One registered trace workload: owned name/path + stable AppInfo. */
struct TraceApp
{
    std::string name;
    TraceSource source;
    AppInfo info;
};

/**
 * Registered trace apps. A deque keeps every AppInfo (and the strings
 * its pointers borrow) at a stable address across registrations --
 * callers hold `const AppInfo *` into this storage, exactly as they do
 * into the static allApps() vector.
 */
std::deque<TraceApp> &
traceApps()
{
    static std::deque<TraceApp> apps;
    return apps;
}

} // namespace

const std::vector<AppInfo> &
allApps()
{
    // Table IV order: SPLASH-3 columns first, then PARSEC.
    static const std::vector<AppInfo> kApps = {
        {"water-spa", "SPLASH-3", 0.49, &apps::waterSpa,
         "cell-partitioned MD: private compute + boundary exchange"},
        {"water-nsq", "SPLASH-3", 2.86, &apps::waterNsq,
         "all-pairs MD: read every block + locked accumulation"},
        {"ocean-nc", "SPLASH-3", 16.05, &apps::oceanNc,
         "big stencil sweeps + global convergence accumulator"},
        {"volrend", "SPLASH-3", 2.44, &apps::volrend,
         "tile task queue + read-shared octree"},
        {"radiosity", "SPLASH-3", 5.28, &apps::radiosity,
         "task stealing + global energy all cores read/write"},
        {"raytrace", "SPLASH-3", 10.05, &apps::raytrace,
         "ray task queue + scattered shared scene reads"},
        {"cholesky", "SPLASH-3", 5.92, &apps::cholesky,
         "sparse supernode task queue + locked completion counts"},
        {"fft", "SPLASH-3", 5.05, &apps::fft,
         "all-to-all transpose between barriers"},
        {"lu-nc", "SPLASH-3", 21.52, &apps::luNc,
         "pivot broadcast + strided trailing updates (big streams)"},
        {"lu-c", "SPLASH-3", 1.90, &apps::luC,
         "pivot broadcast + L1-resident trailing updates"},
        {"radix", "SPLASH-3", 9.41, &apps::radix,
         "global histogram RMWs + all-to-all permutation"},
        {"barnes", "SPLASH-3", 9.53, &apps::barnes,
         "shared octree rebuilt and re-read every step"},
        {"fmm", "SPLASH-3", 1.88, &apps::fmm,
         "multipole expansions published then read by neighbours"},
        {"blackscholes", "PARSEC", 0.13, &apps::blackscholes,
         "embarrassingly parallel option pricing"},
        {"bodytrack", "PARSEC", 7.51, &apps::bodytrack,
         "particle scoring: private streams + read-only features"},
        {"canneal", "PARSEC", 23.21, &apps::canneal,
         "random netlist element swaps: lowest locality"},
        {"dedup", "PARSEC", 4.10, &apps::dedup,
         "two-sharer pipeline queues + hashing compute"},
        {"fluidanimate", "PARSEC", 1.27, &apps::fluidanimate,
         "cell grid with fine-grained boundary locks"},
        {"ferret", "PARSEC", 6.34, &apps::ferret,
         "similarity-search pipeline"},
        {"freqmine", "PARSEC", 8.84, &apps::freqmine,
         "private FP-tree growth: pointer chasing"},
        {"kvstore", "SERVER", 0.0, &apps::kvStore,
         "sharded KV store: Zipf-hot keys -> reader floods + hot-line "
         "update storms"},
    };
    return kApps;
}

const AppInfo *
findApp(std::string_view name)
{
    for (const auto &app : allApps()) {
        if (name == app.name)
            return &app;
    }
    for (const auto &t : traceApps()) {
        if (name == t.info.name)
            return &t.info;
    }
    return nullptr;
}

const AppInfo *
registerTraceApp(std::string name, std::string path)
{
    for (auto &t : traceApps()) {
        if (t.name == name) {
            t.source.path = std::move(path);
            return &t.info;
        }
    }
    TraceApp &t = traceApps().emplace_back();
    t.name = std::move(name);
    t.source.path = std::move(path);
    t.info = AppInfo{t.name.c_str(),
                     "TRACE",
                     0.0,
                     nullptr,
                     "externally recorded trace (docs/FRONTEND.md)",
                     &t.source};
    return &t.info;
}

cpu::Program
makeProgram(const AppInfo &app, const WorkloadParams &p)
{
    auto kernel = app.kernel;
    return [kernel, p](cpu::Thread &t) { return kernel(t, p); };
}

} // namespace widir::workload
