/**
 * @file
 * Simulated address-space layout used by the application kernels.
 *
 * Shared structures (locks, barriers, task queues, shared arrays) live
 * in a low shared region; each thread owns a large private region for
 * its local data. Everything is 8-byte-word addressed; lines are 64B.
 */

#ifndef WIDIR_WORKLOAD_ADDR_MAP_H
#define WIDIR_WORKLOAD_ADDR_MAP_H

#include <cstdint>

#include "mem/address.h"
#include "sim/types.h"

namespace widir::workload {

using sim::Addr;

/** Canonical shared/private region layout. */
struct AddrMap
{
    /// @name Shared region
    /// @{
    static constexpr Addr kSharedBase = 0x1000'0000;

    /** n-th shared cache line (64B apart). */
    static constexpr Addr
    sharedLine(std::uint64_t n)
    {
        return kSharedBase + n * mem::kLineBytes;
    }

    /** n-th shared 8-byte word (packed; 8 words per line). */
    static constexpr Addr
    sharedWord(std::uint64_t n)
    {
        return kSharedBase + n * 8;
    }

    /** A named shared array starting at line-aligned slot @p slot. */
    static constexpr Addr
    sharedArray(std::uint64_t slot)
    {
        return kSharedBase + 0x10'0000 + slot * 0x10'0000;
    }
    /// @}

    /// @name Synchronization variables (each on its own line)
    /// @{
    static constexpr Addr barrierCount() { return sharedLine(0); }
    static constexpr Addr barrierSense() { return sharedLine(1); }
    static constexpr Addr globalLock(std::uint64_t i = 0)
    {
        return sharedLine(2 + i);
    }
    static constexpr Addr taskQueueHead(std::uint64_t i = 0)
    {
        return sharedLine(18 + i);
    }
    static constexpr Addr reduction(std::uint64_t i = 0)
    {
        return sharedLine(34 + i);
    }
    /// @}

    /// @name Private region: 16 MB per thread
    /// @{
    static constexpr Addr kPrivateBase = 0x8000'0000;
    static constexpr Addr kPrivateStride = 0x100'0000;

    static constexpr Addr
    privateBase(std::uint32_t tid)
    {
        return kPrivateBase + static_cast<Addr>(tid) * kPrivateStride;
    }

    static constexpr Addr
    privateWord(std::uint32_t tid, std::uint64_t n)
    {
        return privateBase(tid) + n * 8;
    }
    /// @}
};

} // namespace widir::workload

#endif // WIDIR_WORKLOAD_ADDR_MAP_H
