/**
 * @file
 * Synchronization primitives built ON TOP of the simulated memory
 * operations -- the spin locks, sense-reversing barriers and shared
 * task counters that the paper's SPLASH-3/PARSEC workloads use through
 * pthreads. Every primitive is ordinary loads/stores/RMWs, so
 * synchronization really serializes through the coherence protocol.
 *
 * These are exactly the access patterns WiDir targets: a lock word or
 * barrier sense flag is read and written by many cores in quick
 * succession, so under WiDir the line migrates to the Wireless state
 * and each release/flip becomes a single broadcast update instead of
 * an invalidation storm and a pile of re-reads.
 *
 * NOTE (GCC 12): never put `co_await` inside a loop *condition*; GCC
 * 12 miscompiles that shape. All spins here use the for(;;){...break;}
 * form, and kernels should do the same (or just use these helpers).
 */

#ifndef WIDIR_WORKLOAD_SYNC_H
#define WIDIR_WORKLOAD_SYNC_H

#include <cstdint>

#include <algorithm>

#include "cpu/task.h"
#include "cpu/thread.h"
#include "workload/addr_map.h"

namespace widir::workload::sync {

using cpu::Task;
using cpu::Thread;
using cpu::ValueTask;
using sim::Addr;

/**
 * Acquire a test-and-test-and-set spin lock (0 = free, 1 = held),
 * with a small randomized pause between probes.
 */
inline Task
lockAcquire(Thread &t, Addr lock)
{
    sim::Tick pause = 4;
    for (;;) {
        std::uint64_t observed = co_await t.load(lock);
        if (observed == 0) {
            // Compare-and-swap: a FAILED acquisition performs no store
            // (and, under WiDir, broadcasts nothing).
            std::uint64_t old = co_await t.cas(lock, 0, 1);
            if (old == 0) {
                t.note(cpu::SyncNote::LockAcquire, lock);
                co_return;
            }
            // Lost the race: several contenders just woke; back off
            // harder than after a mere busy observation.
            pause = 16 + t.rng().below(32);
        }
        // PAUSE-style exponential backoff between probes: no retired
        // instructions, bounded so a wireless lock release (a single
        // broadcast) is picked up quickly.
        co_await t.idle(pause + t.rng().below(pause));
        pause = std::min<sim::Tick>(pause * 2, 48);
    }
}

/** Release a spin lock: drain prior stores, then clear the word. */
inline Task
lockRelease(Thread &t, Addr lock)
{
    co_await t.fence();
    co_await t.store(lock, 0);
    co_await t.fence();
    t.note(cpu::SyncNote::LockRelease, lock);
}

/** Spin until the word at @p addr equals @p want. */
inline Task
spinUntilEquals(Thread &t, Addr addr, std::uint64_t want)
{
    sim::Tick pause = 4;
    for (;;) {
        std::uint64_t v = co_await t.load(addr);
        if (v == want)
            break;
        co_await t.idle(pause + t.rng().below(pause));
        pause = std::min<sim::Tick>(pause * 2, 24);
    }
}

/** Spin until the word at @p addr is >= @p want. */
inline Task
spinUntilAtLeast(Thread &t, Addr addr, std::uint64_t want)
{
    sim::Tick pause = 4;
    for (;;) {
        std::uint64_t v = co_await t.load(addr);
        if (v >= want)
            break;
        co_await t.idle(pause + t.rng().below(pause));
        pause = std::min<sim::Tick>(pause * 2, 24);
    }
}

/**
 * Sense-reversing centralized barrier over two shared words (the
 * arrival counter and the global sense flag, on separate lines).
 * Each thread keeps `local_sense` across calls (start it at false).
 */
inline Task
barrierWait(Thread &t, Addr count, Addr sense, bool &local_sense)
{
    local_sense = !local_sense;
    std::uint64_t want = local_sense ? 1 : 0;
    std::uint64_t arrived = (co_await t.fetchAdd(count, 1)) + 1;
    t.note(cpu::SyncNote::BarrierArrive, count);
    if (arrived == t.numThreads()) {
        // Last arrival: reset the counter, then flip the sense. The
        // fence orders the reset before the flip becomes visible.
        co_await t.store(count, 0);
        co_await t.fence();
        co_await t.store(sense, want);
        co_await t.fence();
        t.note(cpu::SyncNote::BarrierDepart, sense);
        co_return;
    }
    co_await spinUntilEquals(t, sense, want);
    t.note(cpu::SyncNote::BarrierDepart, sense);
}

/** Barrier on the canonical AddrMap slots. */
inline Task
globalBarrier(Thread &t, bool &local_sense)
{
    return barrierWait(t, AddrMap::barrierCount(),
                       AddrMap::barrierSense(), local_sense);
}

/**
 * Grab the next task index from a shared counter (a centralized
 * dynamic work queue, as SPLASH's task-stealing loops use). Returns
 * the claimed index; the caller stops once it exceeds the task count.
 */
inline ValueTask<std::uint64_t>
taskPop(Thread &t, Addr head)
{
    std::uint64_t idx = co_await t.fetchAdd(head, 1);
    t.note(cpu::SyncNote::TaskClaim, head);
    co_return idx;
}

} // namespace widir::workload::sync

#endif // WIDIR_WORKLOAD_SYNC_H
