/**
 * @file
 * Workload sizing parameters.
 *
 * Every application kernel scales its work with `scale` so the full
 * experiment suite finishes quickly at scale 1 while keeping the same
 * sharing patterns. Benches read WIDIR_BENCH_SCALE from the
 * environment to run larger inputs.
 */

#ifndef WIDIR_WORKLOAD_PARAMS_H
#define WIDIR_WORKLOAD_PARAMS_H

#include <cstdint>

namespace widir::workload {

/** Per-run sizing knobs for the application kernels. */
struct WorkloadParams
{
    /** Work multiplier: iterations/tasks scale roughly linearly. */
    std::uint32_t scale = 1;

    /**
     * Strong scaling: the problem size is fixed (sized for a 64-core
     * machine); running on fewer cores gives each thread
     * proportionally more work, as the paper's fixed SPLASH/PARSEC
     * inputs do. @p base is the per-thread count at 64 threads.
     */
    std::uint64_t
    perThread(std::uint64_t base, std::uint32_t num_threads) const
    {
        std::uint64_t total = base * scale * 64;
        std::uint64_t per = total / (num_threads ? num_threads : 1);
        return per ? per : 1;
    }
};

} // namespace widir::workload

#endif // WIDIR_WORKLOAD_PARAMS_H
