/**
 * @file
 * Simulator: the top-level driver that owns the event queue, the root
 * random seed, and a forward-progress watchdog.
 *
 * Components receive a Simulator& at construction, schedule events
 * through it, and derive their private Rng streams from it.
 */

#ifndef WIDIR_SIM_SIMULATOR_H
#define WIDIR_SIM_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "sim/domains.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace widir::sim {

/** Top-level discrete-event simulation driver. */
class Simulator
{
  public:
    /**
     * @param seed Root seed. Every derived Rng stream mixes this with a
     *             caller-chosen stream id.
     */
    explicit Simulator(std::uint64_t seed = 1) : seed_(seed)
    {
        tracer_.setClock(&queue_);
    }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * The simulator's root event queue. In classic (single-queue)
     * mode, every event lives here; in domain mode it is the
     * *boundary* queue (chip-wide objects and the window clock), and
     * per-tile events live in the DomainRuntime's sub-queues -- use
     * executedEvents() rather than queue().executedEvents() for
     * whole-run counts.
     */
    EventQueue &queue() { return queue_; }

    /**
     * Current simulated cycle: the executing domain's clock during a
     * bound phase, the root queue's clock otherwise. The two agree at
     * every point where cross-domain work is initiated (the weave
     * keeps all queues in tick lockstep).
     */
    Tick
    now() const
    {
        if (const BoundContext *b = boundContext())
            return b->queue->now();
        return queue_.now();
    }

    /**
     * Switch this simulation to the bound/weave domain scheduler (see
     * sim/domains.h): @p num_domains per-tile sub-queues executed by
     * @p threads host threads. Must be called before anything is
     * scheduled. The merged event order depends on the domain
     * partition only, so any thread count (including 1) yields
     * byte-identical results; classic mode (never calling this)
     * remains the default and keeps the original schedule.
     */
    void
    enableDomains(std::uint32_t num_domains, unsigned threads)
    {
        WIDIR_ASSERT(!domains_, "domain mode already enabled");
        WIDIR_ASSERT(queue_.empty() && queue_.executedEvents() == 0,
                     "enableDomains must precede all scheduling");
        domains_ = std::make_unique<DomainRuntime>(queue_, tracer_,
                                                   num_domains, threads);
    }

    /** True when the bound/weave domain scheduler is active. */
    bool domainMode() const { return domains_ != nullptr; }

    /** The domain runtime, or nullptr in classic mode. */
    DomainRuntime *domains() { return domains_.get(); }

    /** Events executed across every queue this simulator owns. */
    std::uint64_t
    executedEvents() const
    {
        std::uint64_t n = queue_.executedEvents();
        if (domains_)
            n += domains_->executedEvents();
        return n;
    }

    /** Root seed of this run. */
    std::uint64_t seed() const { return seed_; }

    /**
     * This run's trace hub (disabled by default). Components check
     * `tracer().enabled()` before building records; sinks are attached
     * by the system layer (see src/system/trace_sinks.h).
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * Derive an independent random stream. Stream ids should be stable
     * across runs (e.g. node id, or a small enum) for reproducibility.
     */
    Rng
    makeRng(std::uint64_t stream) const
    {
        return Rng(seed_, stream);
    }

    /** Convenience: schedule @p fn @p delay cycles from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        activeQueue().schedule(delay, std::move(fn));
    }

    /** Convenience: schedule @p fn at absolute cycle @p when. */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        activeQueue().scheduleAt(when, std::move(fn));
    }

    /**
     * Schedule @p fn @p delay cycles from now on @p node's queue: the
     * domain sub-queue in domain mode (so the node's next window
     * executes it in the bound phase), the root queue otherwise. This
     * is how boundary objects (mesh delivery, wireless frame receive)
     * hand work back to a tile. Weave-phase/classic only -- bound-
     * phase code reaches boundary objects through their own deferring
     * entry points instead.
     */
    void
    scheduleForNode(NodeId node, Tick delay, EventFn fn)
    {
        scheduleForNodeAt(node, queue_.now() + delay, std::move(fn));
    }

    /** Absolute-time variant of scheduleForNode(). */
    void
    scheduleForNodeAt(NodeId node, Tick when, EventFn fn)
    {
        if (!domains_) {
            queue_.scheduleAt(when, std::move(fn));
            return;
        }
        WIDIR_ASSERT(!boundContext(),
                     "scheduleForNode from the bound phase (defer the "
                     "boundary call instead)");
        domains_->scheduleForNode(node, when, std::move(fn));
    }

    /**
     * Hot-path schedule: like schedule(), but the callable's captures
     * must fit the event queue's inline buffer. Protocol fast paths
     * (L1 hits, mesh hops, wireless frames, message delivery) use this
     * so a capture that grows past the budget -- and would silently
     * start heap-allocating on every simulated cycle -- breaks the
     * build instead (docs/PERF.md).
     */
    template <typename F>
    void
    scheduleInline(Tick delay, F &&fn)
    {
        static_assert(InlineEvent::fitsInline<F>(),
                      "hot-path event capture exceeds the 48-byte "
                      "inline budget; shrink the capture (pool the "
                      "payload) or use schedule()");
        activeQueue().schedule(delay, std::forward<F>(fn));
    }

    /** Absolute-time variant of scheduleInline(). */
    template <typename F>
    void
    scheduleAtInline(Tick when, F &&fn)
    {
        static_assert(InlineEvent::fitsInline<F>(),
                      "hot-path event capture exceeds the 48-byte "
                      "inline budget; shrink the capture (pool the "
                      "payload) or use scheduleAt()");
        activeQueue().scheduleAt(when, std::forward<F>(fn));
    }

    /**
     * Run until the event queue drains or @p limit is reached.
     *
     * A drained queue means the simulated system is quiescent: in a
     * full-system run, all thread programs have completed and all
     * in-flight protocol transactions have settled.
     *
     * @return true if the queue drained within the limit.
     */
    bool
    run(Tick limit = kTickNever)
    {
        // Publish this simulator's tracer as the thread's active one
        // so sim::warn() fired from component code lands in this
        // run's trace; restore afterwards so nested/serial runs on
        // the same thread stay correctly attributed.
        Tracer *prev = Tracer::setThreadActive(&tracer_);
        bool drained =
            domains_ ? domains_->run(limit) : queue_.run(limit);
        Tracer::setThreadActive(prev);
        return drained;
    }

    /**
     * Run, treating hitting @p limit as a hang (deadlock/livelock) and
     * calling fatal() with @p what. Used by full-system experiments as a
     * watchdog.
     */
    void
    runOrDie(Tick limit, const std::string &what)
    {
        if (!run(limit)) {
            fatal("watchdog: '%s' did not quiesce within %llu cycles "
                  "(likely protocol deadlock/livelock)",
                  what.c_str(), static_cast<unsigned long long>(limit));
        }
    }

  private:
    /**
     * The queue this thread should schedule into right now: the
     * executing domain's sub-queue during a bound phase, the root
     * (boundary) queue otherwise. One thread runs one simulation at a
     * time, so a non-null bound context always belongs to this
     * simulator.
     */
    EventQueue &
    activeQueue()
    {
        if (BoundContext *b = boundContext())
            return *b->queue;
        return queue_;
    }

    EventQueue queue_;
    std::uint64_t seed_;
    Tracer tracer_;
    std::unique_ptr<DomainRuntime> domains_;
};

} // namespace widir::sim

#endif // WIDIR_SIM_SIMULATOR_H
