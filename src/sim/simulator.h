/**
 * @file
 * Simulator: the top-level driver that owns the event queue, the root
 * random seed, and a forward-progress watchdog.
 *
 * Components receive a Simulator& at construction, schedule events
 * through it, and derive their private Rng streams from it.
 */

#ifndef WIDIR_SIM_SIMULATOR_H
#define WIDIR_SIM_SIMULATOR_H

#include <cstdint>
#include <string>

#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace widir::sim {

/** Top-level discrete-event simulation driver. */
class Simulator
{
  public:
    /**
     * @param seed Root seed. Every derived Rng stream mixes this with a
     *             caller-chosen stream id.
     */
    explicit Simulator(std::uint64_t seed = 1) : seed_(seed)
    {
        tracer_.setClock(&queue_);
    }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** The event queue all components schedule into. */
    EventQueue &queue() { return queue_; }

    /** Current simulated cycle. */
    Tick now() const { return queue_.now(); }

    /** Root seed of this run. */
    std::uint64_t seed() const { return seed_; }

    /**
     * This run's trace hub (disabled by default). Components check
     * `tracer().enabled()` before building records; sinks are attached
     * by the system layer (see src/system/trace_sinks.h).
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * Derive an independent random stream. Stream ids should be stable
     * across runs (e.g. node id, or a small enum) for reproducibility.
     */
    Rng
    makeRng(std::uint64_t stream) const
    {
        return Rng(seed_, stream);
    }

    /** Convenience: schedule @p fn @p delay cycles from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        queue_.schedule(delay, std::move(fn));
    }

    /** Convenience: schedule @p fn at absolute cycle @p when. */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        queue_.scheduleAt(when, std::move(fn));
    }

    /**
     * Hot-path schedule: like schedule(), but the callable's captures
     * must fit the event queue's inline buffer. Protocol fast paths
     * (L1 hits, mesh hops, wireless frames, message delivery) use this
     * so a capture that grows past the budget -- and would silently
     * start heap-allocating on every simulated cycle -- breaks the
     * build instead (docs/PERF.md).
     */
    template <typename F>
    void
    scheduleInline(Tick delay, F &&fn)
    {
        static_assert(InlineEvent::fitsInline<F>(),
                      "hot-path event capture exceeds the 48-byte "
                      "inline budget; shrink the capture (pool the "
                      "payload) or use schedule()");
        queue_.schedule(delay, std::forward<F>(fn));
    }

    /** Absolute-time variant of scheduleInline(). */
    template <typename F>
    void
    scheduleAtInline(Tick when, F &&fn)
    {
        static_assert(InlineEvent::fitsInline<F>(),
                      "hot-path event capture exceeds the 48-byte "
                      "inline budget; shrink the capture (pool the "
                      "payload) or use scheduleAt()");
        queue_.scheduleAt(when, std::forward<F>(fn));
    }

    /**
     * Run until the event queue drains or @p limit is reached.
     *
     * A drained queue means the simulated system is quiescent: in a
     * full-system run, all thread programs have completed and all
     * in-flight protocol transactions have settled.
     *
     * @return true if the queue drained within the limit.
     */
    bool
    run(Tick limit = kTickNever)
    {
        // Publish this simulator's tracer as the thread's active one
        // so sim::warn() fired from component code lands in this
        // run's trace; restore afterwards so nested/serial runs on
        // the same thread stay correctly attributed.
        Tracer *prev = Tracer::setThreadActive(&tracer_);
        bool drained = queue_.run(limit);
        Tracer::setThreadActive(prev);
        return drained;
    }

    /**
     * Run, treating hitting @p limit as a hang (deadlock/livelock) and
     * calling fatal() with @p what. Used by full-system experiments as a
     * watchdog.
     */
    void
    runOrDie(Tick limit, const std::string &what)
    {
        if (!run(limit)) {
            fatal("watchdog: '%s' did not quiesce within %llu cycles "
                  "(likely protocol deadlock/livelock)",
                  what.c_str(), static_cast<unsigned long long>(limit));
        }
    }

  private:
    EventQueue queue_;
    std::uint64_t seed_;
    Tracer tracer_;
};

} // namespace widir::sim

#endif // WIDIR_SIM_SIMULATOR_H
