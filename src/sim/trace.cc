#include "sim/trace.h"

#include "sim/event_queue.h"

namespace widir::sim {

namespace {
// Thread-local, not global: each sys::SweepRunner worker runs its own
// simulator, and warn() must land in that simulator's trace.
thread_local Tracer *t_active = nullptr;
} // namespace

Tracer *
Tracer::setThreadActive(Tracer *tracer)
{
    Tracer *prev = t_active;
    t_active = tracer;
    return prev;
}

Tracer *
Tracer::threadActive()
{
    return t_active;
}

Tick
Tracer::clockNow() const
{
    if (t_clock_)
        return t_clock_->now();
    return clock_ ? clock_->now() : 0;
}

const char *
traceComponentName(TraceComponent c)
{
    switch (c) {
      case TraceComponent::L1: return "L1";
      case TraceComponent::Directory: return "Directory";
      case TraceComponent::DataChannel: return "DataChannel";
      case TraceComponent::ToneChannel: return "ToneChannel";
      case TraceComponent::Mesh: return "Mesh";
      case TraceComponent::Core: return "Core";
      case TraceComponent::Log: return "Log";
    }
    return "?";
}

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::MsgSend: return "MsgSend";
      case TraceKind::MsgRecv: return "MsgRecv";
      case TraceKind::L1Transition: return "L1Transition";
      case TraceKind::DirTransition: return "DirTransition";
      case TraceKind::MshrAlloc: return "MshrAlloc";
      case TraceKind::MshrRetire: return "MshrRetire";
      case TraceKind::DirTxnBegin: return "DirTxnBegin";
      case TraceKind::DirTxnEnd: return "DirTxnEnd";
      case TraceKind::FrameQueued: return "FrameQueued";
      case TraceKind::FrameWin: return "FrameWin";
      case TraceKind::FrameCollision: return "FrameCollision";
      case TraceKind::FrameJammed: return "FrameJammed";
      case TraceKind::FrameDelivered: return "FrameDelivered";
      case TraceKind::FrameCancelled: return "FrameCancelled";
      case TraceKind::ToneCensusBegin: return "ToneCensusBegin";
      case TraceKind::ToneCensusEnd: return "ToneCensusEnd";
      case TraceKind::NocSend: return "NocSend";
      case TraceKind::CoreOp: return "CoreOp";
      case TraceKind::Warn: return "Warn";
      case TraceKind::FrameCrcError: return "FrameCrcError";
      case TraceKind::FramePreambleLoss: return "FramePreambleLoss";
      case TraceKind::FrameFaultDrop: return "FrameFaultDrop";
      case TraceKind::ToneRetry: return "ToneRetry";
      case TraceKind::WirelessFallback: return "WirelessFallback";
    }
    return "?";
}

} // namespace widir::sim
