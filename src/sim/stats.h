/**
 * @file
 * Lightweight statistics containers.
 *
 * Components own their counters/histograms directly (no global registry
 * indirection); the system layer aggregates them into reports. The
 * containers here keep the arithmetic (means, distributions, binning)
 * in one audited place.
 */

#ifndef WIDIR_SIM_STATS_H
#define WIDIR_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/log.h"

namespace widir::sim {

/** Running scalar average (count / sum / mean). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram over user-defined, contiguous, inclusive integer bins.
 *
 * The paper reports several binned distributions (Fig. 5 sharer counts,
 * Table V hop counts); BinnedHistogram reproduces that reporting style.
 * Samples above the last bin's upper bound are clamped into the last
 * bin; this matches "50+"-style open-ended top bins.
 */
class BinnedHistogram
{
  public:
    struct Bin
    {
        std::uint64_t lo;
        std::uint64_t hi; // inclusive
        std::uint64_t count = 0;
    };

    /**
     * Build from inclusive upper bounds; e.g. {5, 10, 25, 49} with
     * openTop=true yields bins [0,5], [6,10], [11,25], [26,49], [50,inf).
     */
    explicit BinnedHistogram(const std::vector<std::uint64_t> &upper_bounds,
                             bool open_top = true)
    {
        std::uint64_t lo = 0;
        for (std::uint64_t hi : upper_bounds) {
            WIDIR_ASSERT(hi >= lo, "histogram bounds must be increasing");
            bins_.push_back(Bin{lo, hi, 0});
            lo = hi + 1;
        }
        if (open_top)
            bins_.push_back(Bin{lo, UINT64_MAX, 0});
        WIDIR_ASSERT(!bins_.empty(), "histogram needs at least one bin");
    }

    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        total_ += weight;
        // 128-bit accumulator: v * weight already overflows uint64 for
        // plausible inputs (v ~ 2^40 latencies x weight ~ 2^24 merged
        // bin counts), and the old 64-bit sum wrapped silently,
        // corrupting mean() with no other symptom.
        weighted_sum_ += static_cast<unsigned __int128>(v) * weight;
        for (auto &bin : bins_) {
            if (v >= bin.lo && v <= bin.hi) {
                bin.count += weight;
                return;
            }
        }
        // Closed-top histograms (open_top=false) clamp above-range
        // samples into the last bin, like the open-top "50+" bins but
        // with a recorded count so the clamping is observable. With
        // open_top=true the last bin spans [lo, UINT64_MAX] and the
        // loop above always returns, so this path never runs.
        bins_.back().count += weight;
        clamped_ += weight;
    }

    const std::vector<Bin> &bins() const { return bins_; }
    std::uint64_t total() const { return total_; }

    /**
     * Samples (by weight) that fell above the last closed bin's upper
     * bound and were clamped into it. Always 0 for open-top
     * histograms.
     */
    std::uint64_t clamped() const { return clamped_; }

    /** Mean of all samples (unbinned). */
    double
    mean() const
    {
        return total_ == 0
            ? 0.0
            : static_cast<double>(weighted_sum_) /
                  static_cast<double>(total_);
    }

    /** Fraction of samples falling in bin @p i. */
    double
    fraction(std::size_t i) const
    {
        WIDIR_ASSERT(i < bins_.size(), "bin index out of range");
        return total_ == 0
            ? 0.0
            : static_cast<double>(bins_[i].count) /
                  static_cast<double>(total_);
    }

    void
    reset()
    {
        for (auto &bin : bins_)
            bin.count = 0;
        total_ = 0;
        weighted_sum_ = 0;
        clamped_ = 0;
    }

  private:
    std::vector<Bin> bins_;
    std::uint64_t total_ = 0;
    unsigned __int128 weighted_sum_ = 0;
    std::uint64_t clamped_ = 0;
};

/** Full-resolution distribution: keeps min/max/mean plus percentiles. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        values_.push_back(v);
        sortedValid_ = false;
    }

    std::uint64_t count() const { return values_.size(); }

    double
    mean() const
    {
        if (values_.empty())
            return 0.0;
        double s = 0.0;
        for (double v : values_)
            s += v;
        return s / static_cast<double>(values_.size());
    }

    double
    percentile(double p) const
    {
        WIDIR_ASSERT(p >= 0.0 && p <= 1.0, "percentile must be in [0,1]");
        if (values_.empty())
            return 0.0;
        // Sort once per batch of samples: min()/max()/multi-percentile
        // reports all share the cached order instead of re-sorting
        // O(n log n) on every call.
        if (!sortedValid_) {
            sorted_ = values_;
            std::sort(sorted_.begin(), sorted_.end());
            sortedValid_ = true;
        }
        auto idx = static_cast<std::size_t>(
            p * static_cast<double>(sorted_.size() - 1) + 0.5);
        return sorted_[std::min(idx, sorted_.size() - 1)];
    }

    double min() const { return percentile(0.0); }
    double max() const { return percentile(1.0); }

    void
    reset()
    {
        values_.clear();
        sorted_.clear();
        sortedValid_ = false;
    }

  private:
    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

} // namespace widir::sim

#endif // WIDIR_SIM_STATS_H
