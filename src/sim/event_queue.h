/**
 * @file
 * The discrete-event core of the simulator.
 *
 * An EventQueue holds closures ordered by (tick, insertion sequence).
 * The secondary sequence key makes execution order total and therefore
 * deterministic: two events scheduled for the same tick run in the order
 * they were scheduled.
 */

#ifndef WIDIR_SIM_EVENT_QUEUE_H
#define WIDIR_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.h"
#include "sim/types.h"

namespace widir::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Priority queue of timestamped events with deterministic same-tick
 * ordering.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        WIDIR_ASSERT(when >= now_,
                     "event scheduled in the past (%llu < %llu)",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_));
        heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Execute the next event (advancing time to its tick).
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Move the closure out before popping so the entry can be
        // destroyed safely even if the callback schedules new events.
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        ++executed_;
        top.fn();
        return true;
    }

    /**
     * Run until the queue drains or @p limit ticks is exceeded.
     *
     * On the limit path, time advances to @p limit even though the
     * next event lies beyond it: callers that interleave run(t) with
     * schedule(delay, ...) must see now() == t, not the tick of the
     * last executed event, or the delays they compute are stale.
     *
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = kTickNever)
    {
        while (!heap_.empty()) {
            if (heap_.top().when > limit) {
                now_ = std::max(now_, limit);
                return false;
            }
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace widir::sim

#endif // WIDIR_SIM_EVENT_QUEUE_H
