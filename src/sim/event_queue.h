/**
 * @file
 * The discrete-event core of the simulator.
 *
 * An EventQueue holds closures ordered by (tick, insertion sequence).
 * The secondary sequence key makes execution order total and therefore
 * deterministic: two events scheduled for the same tick run in the order
 * they were scheduled.
 *
 * Host-performance layout (docs/PERF.md): protocol events are almost
 * always scheduled a handful of cycles out (L1 round trips, mesh hops,
 * wireless frame times, memory round trips), so the queue is a hybrid:
 *
 *  - a calendar wheel of kWheelSize one-tick buckets covering the
 *    near-future window [now, now + kWheelSize). Scheduling is an
 *    append to the target bucket; a 1-bit-per-bucket occupancy bitmap
 *    finds the next non-empty tick with word-wide scans.
 *  - a binary min-heap on (tick, seq) for the rare far-future events
 *    (deep exponential backoff, heavily queued memory banks).
 *
 * Both sides store sim::InlineEvent closures, so typical captures live
 * inside the queue storage instead of behind a std::function heap
 * allocation. Same-tick events may live on both sides at once; the pop
 * path breaks the tie on the sequence number, which keeps execution
 * order identical to a single totally-ordered queue (the cross-scheduler
 * determinism test in tests/test_scheduler_determinism.cc pins this).
 */

#ifndef WIDIR_SIM_EVENT_QUEUE_H
#define WIDIR_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_event.h"
#include "sim/log.h"
#include "sim/types.h"

namespace widir::sim {

/** Callback type executed when an event fires. */
using EventFn = InlineEvent;

/**
 * Priority queue of timestamped events with deterministic same-tick
 * ordering.
 */
class EventQueue
{
  public:
    /** Near-future window covered by the calendar wheel, in ticks. */
    static constexpr std::size_t kWheelSize = 1024;

    EventQueue() : slots_(kWheelSize) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return wheelCount_ + heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        WIDIR_ASSERT(when >= now_,
                     "event scheduled in the past (%llu < %llu)",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_));
        std::uint64_t seq = nextSeq_++;
        if (when - now_ < kWheelSize && !forceHeapForTest_) {
            Slot &s = slots_[when & kWheelMask];
            s.events.push_back(WheelEntry{seq, std::move(fn)});
            occupied_[(when & kWheelMask) >> 6] |=
                std::uint64_t{1} << (when & 63);
            ++wheelCount_;
            wheelNext_ = std::min(wheelNext_, when);
        } else {
            heapPush(HeapEntry{when, seq, std::move(fn)});
        }
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Execute the next event (advancing time to its tick).
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        Tick next = nextEventTick();
        if (next == kTickNever)
            return false;
        EventFn fn = popAt(next);
        now_ = next;
        ++executed_;
        fn();
        return true;
    }

    /**
     * Run until the queue drains or @p limit ticks is exceeded.
     *
     * On the limit path, time advances to @p limit even though the
     * next event lies beyond it: callers that interleave run(t) with
     * schedule(delay, ...) must see now() == t, not the tick of the
     * last executed event, or the delays they compute are stale.
     *
     * @return true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = kTickNever)
    {
        for (;;) {
            Tick next = nextEventTick();
            if (next == kTickNever)
                return true;
            if (next > limit) {
                now_ = std::max(now_, limit);
                return false;
            }
            EventFn fn = popAt(next);
            now_ = next;
            ++executed_;
            fn();
        }
    }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Earliest pending tick (kTickNever when empty). The bound/weave
     * domain scheduler polls every sub-queue's nextTick() to find the
     * global window tick; see sim/domains.h.
     */
    Tick nextTick() const { return nextEventTick(); }

    /**
     * Advance the clock to @p when without executing anything. Only
     * legal when no event is pending before @p when: the domain
     * scheduler uses this to keep idle sub-queues (and the boundary
     * queue) in lockstep with the window tick so that relative
     * schedule(delay) calls made during the weave phase are computed
     * against the window, not against a stale clock.
     */
    void
    advanceTo(Tick when)
    {
        WIDIR_ASSERT(nextEventTick() >= when,
                     "advanceTo(%llu) would skip a pending event at %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(nextEventTick()));
        now_ = std::max(now_, when);
    }

    /**
     * Test-only hook: route every future schedule to the far-future
     * heap, bypassing the calendar wheel. The (tick, seq) order is
     * identical either way; the cross-scheduler determinism test runs
     * whole experiments in both modes and requires byte-identical
     * stats. Process-global; set it only in single-threaded tests.
     */
    static void setForceHeapForTest(bool on) { forceHeapForTest_ = on; }

  private:
    static constexpr Tick kWheelMask = kWheelSize - 1;
    static constexpr std::size_t kWords = kWheelSize / 64;

    struct WheelEntry
    {
        std::uint64_t seq;
        EventFn fn;
    };

    /** One tick's events; head indexes the next entry to run. */
    struct Slot
    {
        std::vector<WheelEntry> events;
        std::uint32_t head = 0;
    };

    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    static bool
    heapBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Earliest pending tick across wheel and heap (kTickNever: none). */
    Tick
    nextEventTick() const
    {
        Tick wheel = wheelCount_ ? wheelNext_ : kTickNever;
        Tick heap = heap_.empty() ? kTickNever : heap_.front().when;
        return std::min(wheel, heap);
    }

    /**
     * Pop the lowest-(tick, seq) event at tick @p when. Same-tick
     * events can sit on both sides at once; the sequence number breaks
     * the tie exactly as a single ordered queue would.
     */
    EventFn
    popAt(Tick when)
    {
        bool from_wheel = wheelCount_ && wheelNext_ == when;
        if (from_wheel && !heap_.empty() &&
            heap_.front().when == when) {
            const Slot &s = slots_[when & kWheelMask];
            from_wheel = s.events[s.head].seq < heap_.front().seq;
        }
        return from_wheel ? popWheel(when) : popHeap();
    }

    EventFn
    popWheel(Tick when)
    {
        Slot &s = slots_[when & kWheelMask];
        EventFn fn = std::move(s.events[s.head].fn);
        ++s.head;
        --wheelCount_;
        if (s.head == s.events.size()) {
            // Keep the vector's capacity: the slot is reused for tick
            // when + kWheelSize a revolution later.
            s.events.clear();
            s.head = 0;
            occupied_[(when & kWheelMask) >> 6] &=
                ~(std::uint64_t{1} << (when & 63));
            wheelNext_ = wheelCount_ ? scanFrom(when) : kTickNever;
        }
        return fn;
    }

    /**
     * Find the next occupied wheel tick at or after @p from by a
     * circular scan of the occupancy bitmap. Only called with events
     * present, and all wheel events lie in [now, now + kWheelSize), so
     * the scan always terminates within one revolution.
     */
    Tick
    scanFrom(Tick from) const
    {
        std::size_t start = from & kWheelMask;
        std::size_t word = start >> 6;
        std::uint64_t bits =
            occupied_[word] & (~std::uint64_t{0} << (start & 63));
        for (std::size_t i = 0;; ++i) {
            if (bits) {
                std::size_t slot =
                    (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
                return from + ((slot - start) & kWheelMask);
            }
            WIDIR_ASSERT(i <= kWords, "occupancy bitmap out of sync");
            word = (word + 1) & (kWords - 1);
            bits = occupied_[word];
        }
    }

    void
    heapPush(HeapEntry e)
    {
        heap_.push_back(std::move(e));
        std::size_t i = heap_.size() - 1;
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!heapBefore(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    EventFn
    popHeap()
    {
        EventFn fn = std::move(heap_.front().fn);
        if (heap_.size() > 1)
            heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        // Sift the relocated root down to its place.
        std::size_t i = 0;
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t left = 2 * i + 1;
            if (left >= n)
                break;
            std::size_t best = left;
            std::size_t right = left + 1;
            if (right < n && heapBefore(heap_[right], heap_[left]))
                best = right;
            if (!heapBefore(heap_[best], heap_[i]))
                break;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
        return fn;
    }

    std::vector<Slot> slots_;
    std::uint64_t occupied_[kWords] = {};
    std::size_t wheelCount_ = 0;
    /** Earliest tick with a wheel event (exact while wheelCount_ > 0). */
    Tick wheelNext_ = kTickNever;
    std::vector<HeapEntry> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;

    inline static bool forceHeapForTest_ = false;
};

} // namespace widir::sim

#endif // WIDIR_SIM_EVENT_QUEUE_H
