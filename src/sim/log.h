/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            code base); aborts so debuggers/core dumps can catch it.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters); exits cleanly.
 * warn()   - something is questionable but the simulation continues.
 * inform() - plain status output.
 *
 * All of them accept printf-style formatting via std::format-like
 * variadic helpers built on snprintf to stay dependency-free.
 *
 * Thread-safety under parallel sweeps (sys::SweepRunner):
 *  - The log threshold is the sim layer's only process-wide mutable
 *    state. It is a single atomic; logThreshold()/setLogThreshold()
 *    are safe to call from any thread, and each emitted record is one
 *    fprintf, which stdio serializes, so concurrent workers never
 *    interleave within a line.
 *  - setLogThreshold() is process-global, NOT per-simulation: a test
 *    or bench that flips it while a sweep is running changes the
 *    verbosity of every concurrent worker. Flip it before starting
 *    the pool (the test suite sets it once in main()); the
 *    save/restore idiom `auto prev = setLogThreshold(x); ...;
 *    setLogThreshold(prev);` is only race-free on a single thread.
 *  - warn() additionally routes a TraceKind::Warn record into the
 *    active simulation's trace (sim/trace.h) when that simulation has
 *    tracing enabled. The routing is thread-local (each sweep worker
 *    publishes its own simulator's tracer while running it), so
 *    warnings are attributed to the right experiment even with many
 *    in flight. Trace routing ignores the print threshold: a
 *    suppressed-on-stderr warning still lands in the trace.
 */

#ifndef WIDIR_SIM_LOG_H
#define WIDIR_SIM_LOG_H

#include <cstdarg>
#include <string>

namespace widir::sim {

/** Severity of a log record. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Minimum level that is actually printed. Tests raise this to keep
 * output quiet; debugging sessions lower it.
 */
LogLevel logThreshold();

/**
 * Set the global log threshold and return the previous one. Atomic,
 * but process-global — see the thread-safety notes above before
 * calling this concurrently with a running SweepRunner.
 */
LogLevel setLogThreshold(LogLevel level);

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit an informational message (level Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (level Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a warning (level Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a simulator bug and abort(). Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define WIDIR_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::widir::sim::panic("assertion '%s' failed at %s:%d: %s",      \
                                #cond, __FILE__, __LINE__,                 \
                                ::widir::sim::strfmt(__VA_ARGS__).c_str());\
        }                                                                  \
    } while (0)

} // namespace widir::sim

#endif // WIDIR_SIM_LOG_H
