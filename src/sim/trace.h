/**
 * @file
 * Tracer: low-overhead, per-simulator structured tracing.
 *
 * Components emit typed TraceRecords (message send/recv, L1/directory
 * state transitions, wireless arbitration wins/backoffs, MSHR
 * alloc/retire, core op retirement) through their Simulator's Tracer.
 * The hot-path contract is:
 *
 *   sim::Tracer &tr = sim_.tracer();
 *   if (sim::kTraceCompiled && tr.enabled()) {
 *       sim::TraceRecord r;
 *       ... fill ...
 *       tr.emit(r);
 *   }
 *
 * When tracing is disabled (the default) the cost per instrumentation
 * site is one predicted-not-taken branch on a plain bool; no record is
 * constructed, no allocation happens, and no RNG stream is touched, so
 * traced-off runs are bit-identical to builds that predate tracing.
 * Defining WIDIR_TRACE_DISABLED at compile time turns kTraceCompiled
 * into a constant false and lets the compiler delete the sites
 * entirely.
 *
 * Records carry both raw enum values (for machine checking, see
 * sys::checkTraceLegality) and static name strings (for exporters, see
 * src/system/trace_sinks.h). The sim layer deliberately knows nothing
 * about the core-layer enums: components pass their own values and
 * name strings, keeping the dependency arrow core -> sim.
 *
 * Thread-safety: a Tracer belongs to one Simulator and is only touched
 * from the thread running that simulation, exactly like every other
 * per-simulator object — safe under a parallel sys::SweepRunner
 * because each worker owns its simulator outright. The only
 * cross-simulator hook is the *thread-local* active-tracer pointer
 * (set by Simulator::run) that routes sim::warn() records into the
 * trace of whichever simulation this thread is currently running.
 *
 * Schema: widir-trace-v1 — field meanings per kind are documented in
 * docs/TRACING.md; the legal transition tables the checker enforces
 * are in docs/PROTOCOL.md.
 */

#ifndef WIDIR_SIM_TRACE_H
#define WIDIR_SIM_TRACE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace widir::sim {

class EventQueue;

/** Compile-time kill switch; see file comment. */
inline constexpr bool kTraceCompiled =
#ifdef WIDIR_TRACE_DISABLED
    false;
#else
    true;
#endif

/** Which component emitted a record (Chrome export: the "process"). */
enum class TraceComponent : std::uint8_t {
    L1,          ///< core::L1Controller
    Directory,   ///< core::DirectoryController
    DataChannel, ///< wireless::DataChannel (BRS MAC)
    ToneChannel, ///< wireless::ToneChannel (wired-OR ToneAck)
    Mesh,        ///< noc::Mesh (wired 2D mesh)
    Core,        ///< cpu::Core (ROB retirement)
    Log,         ///< sim::warn() routed into the trace
};

const char *traceComponentName(TraceComponent c);

/** What happened. One enumerator per instrumented event class. */
enum class TraceKind : std::uint8_t {
    MsgSend,        ///< wired coherence message enters the mesh
    MsgRecv,        ///< wired coherence message delivered
    L1Transition,   ///< L1 line changed stable state (from -> to)
    DirTransition,  ///< directory entry changed stable state
    MshrAlloc,      ///< L1 miss-tracking entry allocated
    MshrRetire,     ///< L1 miss-tracking entry retired
    DirTxnBegin,    ///< directory transient transaction opened
    DirTxnEnd,      ///< directory transient transaction closed
    FrameQueued,    ///< wireless frame handed to the BRS MAC
    FrameWin,       ///< frame acquired the channel (commit scheduled)
    FrameCollision, ///< frame lost arbitration; exponential backoff
    FrameJammed,    ///< frame rejected by selective data-channel jamming
    FrameDelivered, ///< frame payload delivered chip-wide
    FrameCancelled, ///< pending frame withdrawn before acquisition
    ToneCensusBegin,///< ToneAck census opened (BrWirUpgr)
    ToneCensusEnd,  ///< tone went silent; census complete
    NocSend,        ///< mesh-level transfer (hop/flit accounting)
    CoreOp,         ///< core retired a memory op (arg = latency)
    Warn,           ///< sim::warn() fired during this simulation
    FrameCrcError,  ///< injected payload corruption; CRC NACK + retry
    FramePreambleLoss, ///< injected preamble fade; retry via backoff
    FrameFaultDrop, ///< fault-retry budget exhausted; on_fail runs
    ToneRetry,      ///< initiator missed the silence pulse; re-polls
    WirelessFallback, ///< transaction re-routed onto the wired mesh
};

const char *traceKindName(TraceKind k);

/**
 * One trace record. Fixed fields cover every kind; unused fields hold
 * their defaults (kNodeNone / kAddrNone / 0 / nullptr). `op`, `from`
 * and `to` are component-local raw enum values with parallel static
 * name strings; see docs/TRACING.md for the per-kind field map.
 */
struct TraceRecord {
    Tick tick = 0;              ///< simulated cycle of the event
    TraceKind kind = TraceKind::Warn;
    TraceComponent comp = TraceComponent::Log;
    NodeId node = kNodeNone;    ///< emitting node (tid in Chrome export)
    NodeId peer = kNodeNone;    ///< other endpoint, where meaningful
    Addr line = kAddrNone;      ///< cache-line address, where meaningful
    std::uint8_t op = 0;        ///< msg type / frame kind / txn type / op
    std::uint8_t from = 0;      ///< previous state (transitions)
    std::uint8_t to = 0;        ///< next state (transitions)
    const char *opName = nullptr;   ///< static string for `op`
    const char *fromName = nullptr; ///< static string for `from`
    const char *toName = nullptr;   ///< static string for `to`
    std::uint64_t arg = 0;      ///< kind-specific scalar (latency, bits, ...)
    const char *note = nullptr; ///< static annotation ("evict", "fwd", ...)
    std::string text;           ///< dynamic payload (Warn message body)
};

/**
 * Per-simulator trace hub: an enabled flag, an inclusive cycle window
 * [windowLo, windowHi], and a list of sinks. emit() applies the window
 * filter and fans the record out to every sink in registration order.
 */
class Tracer
{
  public:
    /** Cheap hot-path check; see the file comment for the idiom. */
    bool enabled() const { return enabled_; }

    void setEnabled(bool on) { enabled_ = on; }

    /** Only records with windowLo <= tick <= windowHi reach the sinks. */
    void
    setWindow(Tick lo, Tick hi)
    {
        windowLo_ = lo;
        windowHi_ = hi;
    }

    Tick windowLo() const { return windowLo_; }
    Tick windowHi() const { return windowHi_; }

    using Sink = std::function<void(const TraceRecord &)>;

    /** Register a sink. Sinks must outlive the simulation. */
    void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

    void clearSinks() { sinks_.clear(); }

    /** Records that passed the window filter so far. */
    std::uint64_t emitted() const { return emitted_; }

    /** Deliver @p r to every sink (after the window filter). */
    void
    emit(const TraceRecord &r)
    {
        if (r.tick < windowLo_ || r.tick > windowHi_)
            return;
        if (t_buffer_) {
            // Bound phase of the domain scheduler: sinks are not
            // thread-safe, so park the record in this domain's private
            // buffer. The weave phase flush()es buffers in domain
            // order, which is what makes the merged stream identical
            // at every thread count (see sim/domains.h).
            t_buffer_->push_back(r);
            return;
        }
        ++emitted_;
        for (const Sink &sink : sinks_)
            sink(r);
    }

    /**
     * Deliver buffered bound-phase records to the sinks in buffer
     * order, then clear @p buf. Records were window-filtered at emit()
     * time. Weave-phase only (single-threaded).
     */
    void
    flush(std::vector<TraceRecord> &buf)
    {
        for (const TraceRecord &r : buf) {
            ++emitted_;
            for (const Sink &sink : sinks_)
                sink(r);
        }
        buf.clear();
    }

    /**
     * Redirect this thread's emit()s into @p buf (nullptr: straight to
     * the sinks, the default). Set by the domain scheduler around each
     * bound-phase sub-queue run; returns the previous buffer so nested
     * scopes restore correctly.
     */
    static std::vector<TraceRecord> *
    setThreadBuffer(std::vector<TraceRecord> *buf)
    {
        std::vector<TraceRecord> *prev = t_buffer_;
        t_buffer_ = buf;
        return prev;
    }

    /**
     * Override the clock clockNow() reads on this thread (nullptr:
     * fall back to the simulator-wide clock). During the bound phase
     * each domain's sub-queue is the authoritative clock for code --
     * like sim::warn() -- that stamps records outside a component.
     */
    static const EventQueue *
    setThreadClock(const EventQueue *queue)
    {
        const EventQueue *prev = t_clock_;
        t_clock_ = queue;
        return prev;
    }

    /**
     * The tracer of the simulation this thread is currently running,
     * or nullptr. Set by Simulator::run so that sim::warn() can route
     * a Warn record into the right trace even from deep inside
     * component code (and from parallel sweep workers, each of which
     * runs its own simulator). Returns the previous value so callers
     * can restore it.
     */
    static Tracer *setThreadActive(Tracer *tracer);
    static Tracer *threadActive();

    /**
     * Attach the owning simulator's event queue so out-of-component
     * emitters (sim::warn) can stamp records with the current cycle.
     * Set by Simulator's constructor; components stamp records
     * themselves via sim_.now().
     */
    void setClock(const EventQueue *queue) { clock_ = queue; }

    /** Current cycle of the attached clock (0 if none). */
    Tick clockNow() const;

  private:
    inline static thread_local std::vector<TraceRecord> *t_buffer_ =
        nullptr;
    inline static thread_local const EventQueue *t_clock_ = nullptr;

    const EventQueue *clock_ = nullptr;
    bool enabled_ = false;
    Tick windowLo_ = 0;
    Tick windowHi_ = kTickNever;
    std::uint64_t emitted_ = 0;
    std::vector<Sink> sinks_;
};

} // namespace widir::sim

#endif // WIDIR_SIM_TRACE_H
