#include "sim/domains.h"

#include <algorithm>

namespace widir::sim {

namespace {

/**
 * Minimum active domains in a window before the bound phase fans out
 * to the worker pool. Below this, one domain's events (~hundreds of
 * nanoseconds) cost less than a pool handshake, so the coordinator
 * runs the window inline. Wall-time heuristic only: inline execution
 * runs the exact same per-domain schedule, so results never depend on
 * which side of the threshold a window falls.
 */
constexpr std::size_t kMinParallelWindow = 8;

/** Min-heap order for (tick, domain) entries. */
constexpr auto heapCmp = [](const std::pair<Tick, std::uint32_t> &a,
                            const std::pair<Tick, std::uint32_t> &b) {
    return a.first > b.first;
};

} // namespace

DomainRuntime::DomainRuntime(EventQueue &boundary, Tracer &tracer,
                             std::uint32_t num_domains, unsigned threads)
    : boundary_(boundary), tracer_(tracer)
{
    WIDIR_ASSERT(num_domains > 0, "domain scheduler needs >= 1 domain");
    domains_.reserve(num_domains);
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        domains_.push_back(std::make_unique<Domain>());
        // A tile defers a handful of boundary ops per window and emits
        // a few dozen trace records; pre-sizing keeps the per-window
        // hot loops free of vector growth (docs/PERF.md).
        domains_.back()->defer.reserve(32);
        domains_.back()->traceBuf.reserve(64);
    }
    inWindow_.assign(num_domains, 0);
    ran_.reserve(num_domains);
    heap_.reserve(num_domains);

    threads_ = std::max(1u, std::min<unsigned>(threads, num_domains));
    // Participant 0 is the coordinator; the rest are pool workers.
    workers_.reserve(threads_ - 1);
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

DomainRuntime::~DomainRuntime()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
DomainRuntime::touch(std::uint32_t d)
{
    Tick t = domains_[d]->queue.nextTick();
    if (t == kTickNever)
        return;
    heap_.emplace_back(t, d);
    std::push_heap(heap_.begin(), heap_.end(), heapCmp);
}

void
DomainRuntime::scheduleForNode(NodeId node, Tick when, EventFn fn)
{
    WIDIR_ASSERT(node < domains_.size(),
                 "node %u has no domain (of %zu)", node,
                 domains_.size());
    EventQueue &q = domains_[node]->queue;
    // Idle domains no longer tick along with the window clock, so pull
    // the queue up to the current window before scheduling: that keeps
    // near-future events on the calendar wheel instead of spilling
    // them to the far-future heap. Safe because every domain's
    // nextTick is >= the global minimum, which is >= the boundary
    // clock.
    Tick floor = std::min(when, boundary_.now());
    if (q.now() < floor)
        q.advanceTo(floor);
    q.scheduleAt(when, std::move(fn));
    touch(node);
}

Tick
DomainRuntime::domainMinTick()
{
    // Drop stale tops: an entry that disagrees with the live queue
    // describes a tick the domain already ran past (a fresher entry,
    // pushed by touch() after the mutation, sits further down).
    while (!heap_.empty()) {
        const auto &[t, d] = heap_.front();
        if (domains_[d]->queue.nextTick() == t)
            return t;
        std::pop_heap(heap_.begin(), heap_.end(), heapCmp);
        heap_.pop_back();
    }
    return kTickNever;
}

void
DomainRuntime::runDomain(Domain &d, Tick m)
{
    if (d.queue.nextTick() != m)
        return;
    BoundContext ctx{&d.queue, &d.defer};
    BoundContext *prev_ctx = setBoundContext(&ctx);
    std::vector<TraceRecord> *prev_buf =
        Tracer::setThreadBuffer(&d.traceBuf);
    const EventQueue *prev_clock = Tracer::setThreadClock(&d.queue);
    d.queue.run(m);
    Tracer::setThreadClock(prev_clock);
    Tracer::setThreadBuffer(prev_buf);
    setBoundContext(prev_ctx);
}

void
DomainRuntime::runSlice(std::size_t participant, Tick m)
{
    // Static partition of this window's active domains: participant i
    // owns ran_[A*i/T, A*(i+1)/T). Depends only on (ran_, threads_),
    // both fixed per window, so the partition is deterministic -- and
    // irrelevant to results anyway, since bound-phase domains touch
    // disjoint state.
    std::size_t a = ran_.size();
    std::size_t first = a * participant / threads_;
    std::size_t last = a * (participant + 1) / threads_;
    for (std::size_t i = first; i < last; ++i)
        runDomain(*domains_[ran_[i]], m);
}

void
DomainRuntime::workerMain(std::size_t participant)
{
    // Route sim::warn() fired inside this worker's domains into the
    // owning simulation's trace, like the coordinator thread does.
    Tracer::setThreadActive(&tracer_);
    std::uint64_t seen = 0;
    for (;;) {
        epoch_.wait(seen, std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = epoch_.load(std::memory_order_acquire);
        runSlice(participant, windowTick_);
        if (outstanding_.fetch_sub(1, std::memory_order_release) == 1)
            outstanding_.notify_one();
    }
}

void
DomainRuntime::parallelBound(Tick m)
{
    windowTick_ = m;
    outstanding_.store(threads_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    runSlice(0, m);
    // Brief spin first: on a real multi-core host the workers finish
    // within microseconds of the coordinator's slice, so the futex
    // round-trip is usually avoidable.
    for (unsigned spin = 0; spin < 1024; ++spin) {
        if (outstanding_.load(std::memory_order_acquire) == 0)
            return;
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
    }
    for (;;) {
        unsigned o = outstanding_.load(std::memory_order_acquire);
        if (o == 0)
            return;
        outstanding_.wait(o, std::memory_order_acquire);
    }
}

bool
DomainRuntime::run(Tick limit)
{
    for (;;) {
        // The window tick: the global minimum over the boundary queue
        // and the dirty-domain heap.
        Tick dmin = domainMinTick();
        Tick m = std::min(dmin, boundary_.nextTick());
        if (m == kTickNever)
            return true;
        if (m > limit) {
            boundary_.advanceTo(limit);
            return false;
        }

        // Collect this window's active domains from the heap. Stale
        // and duplicate entries at m are dropped; survivors are
        // sorted so the weave below replays in domain-index order, the
        // canonical order the determinism contract names.
        ran_.clear();
        while (!heap_.empty() && heap_.front().first == m) {
            std::uint32_t d = heap_.front().second;
            std::pop_heap(heap_.begin(), heap_.end(), heapCmp);
            heap_.pop_back();
            if (domains_[d]->queue.nextTick() == m && !inWindow_[d]) {
                inWindow_[d] = 1;
                ran_.push_back(d);
            }
        }
        std::sort(ran_.begin(), ran_.end());
        for (std::uint32_t d : ran_)
            inWindow_[d] = 0;

        // BOUND: run every domain with work at m, fanning out to the
        // pool only when the window is busy enough to pay for the
        // handshake.
        if (threads_ > 1 && ran_.size() >= kMinParallelWindow) {
            parallelBound(m);
        } else {
            for (std::uint32_t d : ran_)
                runDomain(*domains_[d], m);
        }
        // Domains consumed their events at m; re-arm their heap
        // entries with the new nextTick.
        for (std::uint32_t d : ran_)
            touch(d);

        // WEAVE (single-threaded). Boundary clock first, so replayed
        // ops compute their delays relative to the window tick.
        boundary_.advanceTo(m);
        // Merge bound-phase trace records in domain order...
        for (std::uint32_t d : ran_) {
            if (!domains_[d]->traceBuf.empty())
                tracer_.flush(domains_[d]->traceBuf);
        }
        // ...then replay deferred boundary ops in (domain, FIFO)
        // order. Replayed work lands at >= m+1 in domain queues and at
        // >= m on the boundary queue.
        for (std::uint32_t d : ran_) {
            Domain &dom = *domains_[d];
            if (dom.defer.empty())
                continue;
            for (EventFn &op : dom.defer)
                op();
            dom.defer.clear();
        }
        // Finally the boundary's own events at m (channel evaluation,
        // frame commits, memory completions, ...).
        boundary_.run(m);
    }
}

std::uint64_t
DomainRuntime::executedEvents() const
{
    std::uint64_t total = 0;
    for (const auto &d : domains_)
        total += d->queue.executedEvents();
    return total;
}

} // namespace widir::sim
