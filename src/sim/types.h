/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef WIDIR_SIM_TYPES_H
#define WIDIR_SIM_TYPES_H

#include <cstdint>
#include <limits>

namespace widir::sim {

/** Simulated time, in core clock cycles (the chip runs at 1 GHz). */
using Tick = std::uint64_t;

/** Sentinel for "no tick" / "never". */
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Identifier of a node (tile) in the manycore. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kNodeNone = std::numeric_limits<NodeId>::max();

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kAddrNone = std::numeric_limits<Addr>::max();

} // namespace widir::sim

#endif // WIDIR_SIM_TYPES_H
