#include "sim/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/trace.h"

namespace widir::sim {

namespace {
// The only process-wide mutable state in the sim layer. Atomic so
// concurrent experiment sweeps (sys::SweepRunner) can log safely;
// each emit is a single fprintf, which stdio serializes.
std::atomic<LogLevel> g_threshold{LogLevel::Warn};

void
emit(LogLevel level, const char *tag, const char *fmt, std::va_list ap)
{
    if (level < g_threshold.load(std::memory_order_relaxed))
        return;
    std::string body = vstrfmt(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, body.c_str());
}
} // namespace

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

LogLevel
setLogThreshold(LogLevel level)
{
    return g_threshold.exchange(level, std::memory_order_relaxed);
}

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, "info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Debug, "debug", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, "warn", fmt, ap);
    va_end(ap);
    // Route the warning into the trace of the simulation this thread
    // is currently running (if any, and if it is tracing). This is
    // independent of the stderr threshold: traces are for post-hoc
    // analysis and should not lose records because a test quieted
    // the console.
    Tracer *tracer = Tracer::threadActive();
    if (kTraceCompiled && tracer && tracer->enabled()) {
        TraceRecord r;
        r.tick = tracer->clockNow();
        r.kind = TraceKind::Warn;
        r.comp = TraceComponent::Log;
        std::va_list ap2;
        va_start(ap2, fmt);
        r.text = vstrfmt(fmt, ap2);
        va_end(ap2);
        tracer->emit(r);
    }
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string body = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", body.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string body = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", body.c_str());
    std::abort();
}

} // namespace widir::sim
