/**
 * @file
 * InlineEvent: a small-buffer-optimized, move-only callable for the
 * discrete-event hot path.
 *
 * Every simulated cycle drains through EventQueue, and with
 * std::function every scheduled closure whose captures exceed the
 * implementation's tiny inline buffer (16 bytes on libstdc++) costs a
 * heap allocation plus a cold pointer chase at dispatch. InlineEvent
 * stores captures up to kInlineCapacity (48 bytes) directly inside the
 * event-queue entry, so the dominant schedules -- a `this` pointer plus
 * a few scalars, a pooled message index, a 40-byte wireless frame --
 * never allocate. Callables that do not fit fall back to a single heap
 * allocation (and bump a process-wide counter so tests and benchmarks
 * can assert the hot path stays allocation-free).
 *
 * Hot-path call sites that must stay inline should go through
 * Simulator::scheduleInline / scheduleAtInline, which static_assert the
 * capture budget at compile time.
 */

#ifndef WIDIR_SIM_INLINE_EVENT_H
#define WIDIR_SIM_INLINE_EVENT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace widir::sim {

/** Move-only `void()` callable with 48 bytes of inline storage. */
class InlineEvent
{
  public:
    /** Inline capture budget, in bytes. */
    static constexpr std::size_t kInlineCapacity = 48;

    /** True when a decayed callable takes the no-allocation path. */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= kInlineCapacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    InlineEvent() noexcept = default;
    InlineEvent(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineEvent(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<F>()) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(fn));
            vt_ = &inlineVTable<D>;
        } else {
            ptr() = new D(std::forward<F>(fn));
            vt_ = &heapVTable<D>;
            heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    InlineEvent(InlineEvent &&o) noexcept : vt_(o.vt_)
    {
        if (vt_) {
            vt_->relocate(storage_, o.storage_);
            o.vt_ = nullptr;
        }
    }

    InlineEvent &
    operator=(InlineEvent &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt_ = o.vt_;
            if (vt_) {
                vt_->relocate(storage_, o.storage_);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent() { reset(); }

    explicit operator bool() const noexcept { return vt_ != nullptr; }

    /** Invoke the callable (must be non-empty). */
    void
    operator()()
    {
        vt_->invoke(storage_);
    }

    /** True when the stored callable lives in the inline buffer. */
    bool
    isInline() const noexcept
    {
        return vt_ != nullptr && vt_->isInline;
    }

    /**
     * Process-wide count of callables that were too large for the
     * inline buffer and heap-allocated instead. Benchmarks and tests
     * snapshot this around a run to verify hot paths stay inline.
     */
    static std::uint64_t
    heapFallbacks() noexcept
    {
        return heapFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct dst from src and destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool isInline;
    };

    template <typename D>
    static constexpr VTable inlineVTable = {
        [](void *s) { (*std::launder(reinterpret_cast<D *>(s)))(); },
        [](void *dst, void *src) noexcept {
            D *from = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<D *>(s))->~D();
        },
        true,
    };

    template <typename D>
    static constexpr VTable heapVTable = {
        [](void *s) { (**static_cast<D **>(s))(); },
        [](void *dst, void *src) noexcept {
            *static_cast<D **>(dst) = *static_cast<D **>(src);
        },
        [](void *s) noexcept { delete *static_cast<D **>(s); },
        false,
    };

    void *&ptr() { return *reinterpret_cast<void **>(storage_); }

    void
    reset() noexcept
    {
        if (vt_) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

    const VTable *vt_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];

    inline static std::atomic<std::uint64_t> heapFallbacks_{0};
};

} // namespace widir::sim

#endif // WIDIR_SIM_INLINE_EVENT_H
