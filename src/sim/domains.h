/**
 * @file
 * Bound/weave parallel domain scheduler (zsim-style, HPCA'10).
 *
 * A single simulation is partitioned into D = numCores *domains*, one
 * per tile: a tile's core, L1 controller and home directory/LLC bank
 * all live in domain d = node id, each with its own EventQueue
 * sub-queue. Everything chip-wide -- the mesh links, the wireless data
 * and tone channels, main memory -- is a *boundary object* that stays
 * on the simulator's original queue (the boundary queue).
 *
 * Execution alternates two phases per occupied tick m (the global
 * minimum of every sub-queue's nextTick()):
 *
 *  - BOUND: every domain whose next event is at m runs its sub-queue
 *    up to m, in parallel across host threads. Domains only touch
 *    their own tile state; any call into a boundary object is not
 *    executed but appended to the domain's private *defer list*, and
 *    trace records are parked in the domain's private buffer.
 *
 *  - WEAVE (single-threaded): the boundary queue's clock is advanced
 *    to m, each domain's trace buffer is flushed in domain order, each
 *    domain's defer list is replayed in domain order (FIFO within a
 *    domain), and finally the boundary queue runs its own events at m.
 *
 * The skew horizon is a single tick because it has to be: a domain
 * event at tick m can make another domain execute at m+1 (a deferred
 * one-flit control message over one mesh hop with hopLatency = 1), so
 * no wider window is conservatively safe. Replayed boundary work
 * always lands at >= m+1 in other domains (every cross-domain path --
 * mesh hop, wireless slot, memory access, tone latency -- takes at
 * least one cycle), which is what makes the window loop make progress.
 *
 * Determinism: the merged order per tick -- [domain 0's events in seq
 * order, domain 1's, ..., then deferred ops in (domain, FIFO) order,
 * then boundary events in seq order] -- depends only on the domain
 * partition (fixed at numCores), never on the host thread count. Every
 * thread count therefore produces byte-identical stats, sweep JSON and
 * traces (tests/test_scheduler_determinism.cc pins this). The classic
 * single-queue kernel remains the default and is untouched; the domain
 * kernel is a second, equally deterministic canonical schedule. See
 * DESIGN.md and docs/PERF.md.
 */

#ifndef WIDIR_SIM_DOMAINS_H
#define WIDIR_SIM_DOMAINS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace widir::sim {

/**
 * Published (thread-locally) while a bound-phase domain event runs.
 * Boundary objects test boundContext() at their entry points: non-null
 * means "you are being called from inside a domain -- defer yourself".
 */
struct BoundContext
{
    EventQueue *queue;          ///< the executing domain's sub-queue
    std::vector<EventFn> *defer; ///< the domain's boundary-op FIFO
};

namespace detail {
inline thread_local BoundContext *t_bound_context = nullptr;
} // namespace detail

/** This thread's bound-phase context, or nullptr (weave / classic). */
inline BoundContext *
boundContext()
{
    return detail::t_bound_context;
}

/** Install @p ctx as this thread's context; returns the previous one. */
inline BoundContext *
setBoundContext(BoundContext *ctx)
{
    BoundContext *prev = detail::t_bound_context;
    detail::t_bound_context = ctx;
    return prev;
}

/**
 * Append a boundary operation to the executing domain's defer list.
 * Only legal during the bound phase (callers test boundContext()
 * first).
 */
inline void
deferOp(EventFn op)
{
    BoundContext *ctx = boundContext();
    WIDIR_ASSERT(ctx, "deferOp outside the bound phase");
    ctx->defer->push_back(std::move(op));
}

/**
 * The per-simulation domain runtime: owns the sub-queues, defer lists,
 * trace buffers and the persistent host worker pool, and drives the
 * window loop. Created by Simulator::enableDomains; one per simulator,
 * so parallel sys::SweepRunner workers each own an independent pool.
 */
class DomainRuntime
{
  public:
    /**
     * @param boundary The simulator's original queue (boundary objects
     *                 and the watchdog clock stay on it).
     * @param tracer   The simulator's trace hub (weave-phase flushes).
     * @param num_domains One sub-queue per tile; fixed by the system
     *                 topology, NOT by the thread count, so the merged
     *                 schedule is thread-count independent.
     * @param threads  Host threads for the bound phase (clamped to
     *                 [1, num_domains]); threads - 1 workers spawn.
     */
    DomainRuntime(EventQueue &boundary, Tracer &tracer,
                  std::uint32_t num_domains, unsigned threads);
    ~DomainRuntime();

    DomainRuntime(const DomainRuntime &) = delete;
    DomainRuntime &operator=(const DomainRuntime &) = delete;

    std::uint32_t numDomains() const
    {
        return static_cast<std::uint32_t>(domains_.size());
    }

    unsigned threads() const { return threads_; }

    /**
     * Schedule @p fn at absolute tick @p when into @p node's domain.
     * The single entry point for domain scheduling: it keeps the
     * dirty-domain heap (the structure the window loop uses to find
     * the next occupied tick without scanning every sub-queue) in sync
     * with the queue, so events scheduled behind its back would never
     * run. Weave/coordinator only -- domains schedule into themselves
     * through their own queue while bound.
     */
    void scheduleForNode(NodeId node, Tick when, EventFn fn);

    /**
     * The window loop: alternate bound and weave phases until every
     * queue drains (returns true) or the next occupied tick exceeds
     * @p limit (advances the boundary clock to @p limit and returns
     * false, exactly like EventQueue::run).
     */
    bool run(Tick limit);

    /** Events executed across all sub-queues (boundary not included). */
    std::uint64_t executedEvents() const;

  private:
    /**
     * One domain, cache-line aligned so parallel bound phases never
     * false-share queue hot fields across worker threads.
     */
    struct alignas(64) Domain
    {
        EventQueue queue;
        std::vector<EventFn> defer;
        std::vector<TraceRecord> traceBuf;
    };

    void runDomain(Domain &d, Tick m);
    void runSlice(std::size_t participant, Tick m);
    void parallelBound(Tick m);
    void workerMain(std::size_t participant);
    void touch(std::uint32_t d);
    Tick domainMinTick();

    EventQueue &boundary_;
    Tracer &tracer_;
    std::vector<std::unique_ptr<Domain>> domains_;

    unsigned threads_;
    std::vector<std::thread> workers_;

    /**
     * Lazy min-heap of (nextTick, domain) over the *dirty* domains:
     * every queue mutation (a domain running in the bound phase, the
     * weave scheduling into a domain) re-pushes the domain's current
     * nextTick. Entries are never updated in place -- a popped entry
     * that disagrees with the live queue is stale and dropped -- so
     * the window loop costs O(active log D) per window instead of a
     * full O(D) scan over mostly-idle domains.
     */
    std::vector<std::pair<Tick, std::uint32_t>> heap_;
    /** Domains with events at the current window tick, sorted. */
    std::vector<std::uint32_t> ran_;
    std::vector<std::uint8_t> inWindow_; ///< ran_ dedup scratch

    // Window handshake (futex-backed, C++20 atomic wait/notify, so an
    // oversubscribed host blocks instead of spin-starving the
    // coordinator). The coordinator publishes windowTick_ + ran_, then
    // release-increments epoch_ and notifies; workers acquire-load
    // epoch_ (which makes the window and all weave-phase queue
    // mutations visible), run their slice of ran_, and
    // release-decrement outstanding_; the coordinator briefly spins
    // then waits for outstanding_ == 0 (acquire, making the workers'
    // queue mutations visible).
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> outstanding_{0};
    std::atomic<bool> stop_{false};
    Tick windowTick_ = 0;
};

} // namespace widir::sim

#endif // WIDIR_SIM_DOMAINS_H
