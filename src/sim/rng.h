/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (exponential backoff jitter,
 * workload address streams, replacement tie-breaks) draws from an Rng
 * stream seeded from the experiment seed plus a stable stream id, so a
 * run is a pure function of (configuration, seed).
 *
 * The generator is xoshiro256**, which is small, fast, and has 256 bits
 * of state -- plenty for simulation purposes.
 */

#ifndef WIDIR_SIM_RNG_H
#define WIDIR_SIM_RNG_H

#include <cstdint>

namespace widir::sim {

/** xoshiro256** pseudo-random generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct a stream from a seed and a stream id. */
    explicit Rng(std::uint64_t seed = 1, std::uint64_t stream = 0)
    {
        // splitmix64 over (seed, stream) to fill the state.
        std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL
                                  + 0xbf58476d1ce4e5b9ULL);
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        // Avoid the all-zero state (cannot occur with splitmix64, but
        // keep the invariant explicit).
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-ish reduction; the bias
        // is negligible for simulation bounds (<< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace widir::sim

#endif // WIDIR_SIM_RNG_H
