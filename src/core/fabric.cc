#include "core/fabric.h"

#include <cstdio>

#include "core/directory_controller.h"
#include "core/l1_controller.h"
#include "sim/log.h"

namespace widir::coherence {

namespace {

/** True for opcodes consumed by a directory controller. */
bool
toDirectory(MsgType t)
{
    // The protocol table's event mapping doubles as the routing
    // relation: a type maps onto a directory event iff a directory
    // consumes it.
    DirEvent ev;
    return dirEventOf(t, ev);
}

} // namespace

void
CoherenceFabric::sendWired(const Msg &msg, sim::Tick delay)
{
    WIDIR_ASSERT(msg.src != sim::kNodeNone && msg.dst != sim::kNodeNone,
                 "wired message without endpoints");
    if (sim::boundContext()) {
        // Bound phase of the domain scheduler: the fabric is a
        // boundary object (shared message pool, per-pair order clamps,
        // the mesh), so replay this send in the weave. The weave runs
        // at the same tick the caller saw, and the delay is relative,
        // so message timing is unchanged.
        sim::deferOp([this, msg, delay] { sendWired(msg, delay); });
        return;
    }
    if (trace_) {
        std::fprintf(stderr, "%10llu  %2u -> %2u  %-10s line=%#llx%s\n",
                     static_cast<unsigned long long>(sim_.now()),
                     msg.src, msg.dst, msgTypeName(msg.type),
                     static_cast<unsigned long long>(msg.line),
                     msg.isSharer ? " (sharer)" : "");
    }
    sim::Tracer &tracer = sim_.tracer();
    if (sim::kTraceCompiled && tracer.enabled()) {
        sim::TraceRecord r;
        r.tick = sim_.now();
        r.kind = sim::TraceKind::MsgSend;
        r.comp = toDirectory(msg.type) ? sim::TraceComponent::Directory
                                       : sim::TraceComponent::L1;
        r.node = msg.src;
        r.peer = msg.dst;
        r.line = msg.line;
        r.op = static_cast<std::uint8_t>(msg.type);
        r.opName = msgTypeName(msg.type);
        r.arg = bitsFor(msg.type);
        if (msg.isSharer)
            r.note = "sharer";
        tracer.emit(r);
    }
    // Clamp the enqueue time so same-pair messages keep their send
    // order even when sender-side delays differ. The zero-initialized
    // flat array clamps exactly like the old map: ticks are unsigned,
    // so a never-used pair's 0 floor is a no-op.
    std::size_t pair =
        static_cast<std::size_t>(msg.src) * numNodes() + msg.dst;
    sim::Tick enqueue_at =
        std::max(sim_.now() + delay, lastEnqueue_[pair]);
    lastEnqueue_[pair] = enqueue_at;

    // The message rides through both per-hop closures as a pooled slot
    // index: capturing the ~100-byte Msg by value would force every
    // wired message onto the event queue's heap-fallback path.
    std::uint32_t slot = pool_.acquire(msg);
    sim_.scheduleAtInline(enqueue_at, [this, slot] {
        const Msg &m = pool_.at(slot);
        bool to_dir = toDirectory(m.type);
        auto deliver = [this, slot, to_dir] {
            const Msg &dm = pool_.at(slot);
            sim::Tracer &tr = sim_.tracer();
            if (sim::kTraceCompiled && tr.enabled()) {
                sim::TraceRecord r;
                r.tick = sim_.now();
                r.kind = sim::TraceKind::MsgRecv;
                r.comp = to_dir ? sim::TraceComponent::Directory
                                : sim::TraceComponent::L1;
                r.node = dm.dst;
                r.peer = dm.src;
                r.line = dm.line;
                r.op = static_cast<std::uint8_t>(dm.type);
                r.opName = msgTypeName(dm.type);
                tr.emit(r);
            }
            // receive() may sendWired() replies, which acquire fresh
            // slots; this slot stays live until it returns.
            if (to_dir)
                dir(dm.dst).receive(dm);
            else
                l1(dm.dst).receive(dm);
            if (sim::boundContext()) {
                // Domain mode delivers inside the receiver's bound
                // phase; the pool is shared, so the release waits for
                // the weave (reads of a live slot stay race-free).
                sim::deferOp([this, slot] { pool_.release(slot); });
            } else {
                pool_.release(slot);
            }
        };
        static_assert(sim::InlineEvent::fitsInline<decltype(deliver)>(),
                      "mesh delivery closure must stay inline");
        mesh_.send(m.src, m.dst, bitsFor(m.type), std::move(deliver));
    });
}

} // namespace widir::coherence
