/**
 * @file
 * Wired coherence messages exchanged between private-cache (L1)
 * controllers and directory controllers over the mesh.
 *
 * Wireless transactions use wireless::Frame instead; the wired types
 * here include WiDir's wired legs (WirUpgr, WirUpgrAck, WirDwgrAck,
 * PutW) from Tables I and II.
 */

#ifndef WIDIR_CORE_MESSAGES_H
#define WIDIR_CORE_MESSAGES_H

#include <cstdint>

#include "mem/line_data.h"
#include "sim/types.h"

namespace widir::coherence {

using sim::Addr;
using sim::NodeId;

/** Wired message opcodes. */
enum class MsgType : std::uint8_t
{
    // L1 -> directory requests
    GetS,        ///< read miss
    GetX,        ///< write miss / upgrade (isSharer flags an upgrade)
    PutS,        ///< clean shared eviction notification
    PutE,        ///< clean exclusive eviction notification
    PutM,        ///< dirty eviction write-back (carries data)
    PutW,        ///< WiDir: leaving wireless sharing (III-B2)

    // directory -> L1 responses/commands
    Data,        ///< grant with line data (granted state attached)
    Nack,        ///< bounce: directory entry busy, retry
    Inv,         ///< invalidate (needData set on an owner recall)
    FwdGetS,     ///< forwarded read: owner must supply data
    FwdGetX,     ///< forwarded write: owner supplies data + invalidates
    WirUpgr,     ///< WiDir: wireless upgrade + line via wired (Table I)

    // L1 -> directory responses
    InvAck,      ///< invalidation acknowledged (data if owner recall)
    OwnerData,   ///< owner's line in response to Fwd*
    WirUpgrAck,  ///< WiDir: ack of a W-state join (Table II)
    WirDwgrAck,  ///< WiDir: survivor id during W -> S (Table II)
};

/** Human-readable opcode name. */
const char *msgTypeName(MsgType t);

/** L1 cache state granted by a Data message. */
enum class GrantState : std::uint8_t { S, E, M };

/** One wired coherence message. */
struct Msg
{
    MsgType type = MsgType::GetS;
    NodeId src = sim::kNodeNone;
    NodeId dst = sim::kNodeNone;
    Addr line = sim::kAddrNone;     ///< line-aligned address

    /// @name Type-specific fields
    /// @{
    bool isSharer = false;          ///< GetX: requester already shares
    bool needData = false;          ///< Inv: recall, owner returns data
    bool needsAck = false;          ///< WirUpgr: reply with WirUpgrAck
    bool dirtyData = false;         ///< OwnerData/InvAck: line is dirty
    GrantState grant = GrantState::S; ///< Data: granted state
    NodeId requester = sim::kNodeNone; ///< Fwd*: final requester
    bool hasData = false;           ///< true if `data` is meaningful
    mem::LineData data;             ///< line payload
    /// @}
};

/** True for message types that carry a full cache line. */
inline bool
carriesLine(MsgType t)
{
    switch (t) {
      case MsgType::Data:
      case MsgType::PutM:
      case MsgType::OwnerData:
      case MsgType::WirUpgr:
        return true;
      default:
        return false;
    }
}

} // namespace widir::coherence

#endif // WIDIR_CORE_MESSAGES_H
