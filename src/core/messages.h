/**
 * @file
 * Wired coherence messages exchanged between private-cache (L1)
 * controllers and directory controllers over the mesh.
 *
 * Wireless transactions use wireless::Frame instead; the wired types
 * here include WiDir's wired legs (WirUpgr, WirUpgrAck, WirDwgrAck,
 * PutW) from Tables I and II.
 */

#ifndef WIDIR_CORE_MESSAGES_H
#define WIDIR_CORE_MESSAGES_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "mem/line_data.h"
#include "sim/types.h"

namespace widir::coherence {

using sim::Addr;
using sim::NodeId;

/** Wired message opcodes. */
enum class MsgType : std::uint8_t
{
    // L1 -> directory requests
    GetS,        ///< read miss
    GetX,        ///< write miss / upgrade (isSharer flags an upgrade)
    PutS,        ///< clean shared eviction notification
    PutE,        ///< clean exclusive eviction notification
    PutM,        ///< dirty eviction write-back (carries data)
    PutW,        ///< WiDir: leaving wireless sharing (III-B2)

    // directory -> L1 responses/commands
    Data,        ///< grant with line data (granted state attached)
    Nack,        ///< bounce: directory entry busy, retry
    Inv,         ///< invalidate (needData set on an owner recall)
    FwdGetS,     ///< forwarded read: owner must supply data
    FwdGetX,     ///< forwarded write: owner supplies data + invalidates
    WirUpgr,     ///< WiDir: wireless upgrade + line via wired (Table I)

    // L1 -> directory responses
    InvAck,      ///< invalidation acknowledged (data if owner recall)
    OwnerData,   ///< owner's line in response to Fwd*
    WirUpgrAck,  ///< WiDir: ack of a W-state join (Table II)
    WirDwgrAck,  ///< WiDir: survivor id during W -> S (Table II)
};

/** Human-readable opcode name. */
const char *msgTypeName(MsgType t);

/** L1 cache state granted by a Data message. */
enum class GrantState : std::uint8_t { S, E, M };

/** One wired coherence message. */
struct Msg
{
    MsgType type = MsgType::GetS;
    NodeId src = sim::kNodeNone;
    NodeId dst = sim::kNodeNone;
    Addr line = sim::kAddrNone;     ///< line-aligned address

    /// @name Type-specific fields
    /// @{
    bool isSharer = false;          ///< GetX: requester already shares
    bool needData = false;          ///< Inv: recall, owner returns data
    bool needsAck = false;          ///< WirUpgr: reply with WirUpgrAck
    bool dirtyData = false;         ///< OwnerData/InvAck: line is dirty
    GrantState grant = GrantState::S; ///< Data: granted state
    NodeId requester = sim::kNodeNone; ///< Fwd*: final requester
    bool hasData = false;           ///< true if `data` is meaningful
    mem::LineData data;             ///< line payload
    /// @}
};

/**
 * Free-list pool of in-flight messages.
 *
 * A Msg is ~100 bytes (it carries a full cache line), so capturing one
 * by value in the per-hop delivery closures would blow the event
 * queue's 48-byte inline budget and heap-allocate on every wired
 * message. The fabric instead parks the message here and threads a
 * 4-byte slot index through its closures; the slot is recycled once
 * the receiving controller returns.
 *
 * Slots live in a deque, so references stay valid while new messages
 * are acquired (a controller's receive() handler sends replies, which
 * acquire slots while the handler's own slot is still live).
 */
class MsgPool
{
  public:
    /**
     * Pre-populate @p n slots (all free) so steady-state traffic never
     * grows the deque. Growth past the watermark is benign but shows
     * up in grewBeyondReserve() so a sizing regression is visible.
     */
    void
    reserve(std::size_t n)
    {
        while (slots_.size() < n) {
            free_.push_back(static_cast<std::uint32_t>(slots_.size()));
            slots_.emplace_back();
        }
        reserved_ = slots_.size();
    }

    /** Slots allocated past the reserve() watermark. */
    std::size_t
    grewBeyondReserve() const
    {
        return slots_.size() - std::min(reserved_, slots_.size());
    }

    /** Copy @p m into a slot and return its index. */
    std::uint32_t
    acquire(const Msg &m)
    {
        ++live_;
        if (!free_.empty()) {
            std::uint32_t idx = free_.back();
            free_.pop_back();
            slots_[idx] = m;
            return idx;
        }
        slots_.push_back(m);
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    /** Access a live slot. */
    const Msg &at(std::uint32_t idx) const { return slots_[idx]; }

    /** Return a slot to the free list. */
    void
    release(std::uint32_t idx)
    {
        --live_;
        free_.push_back(idx);
    }

    /** Messages currently in flight. */
    std::size_t live() const { return live_; }

    /** High-water slot count (pool memory footprint). */
    std::size_t capacity() const { return slots_.size(); }

  private:
    std::deque<Msg> slots_;
    std::vector<std::uint32_t> free_;
    std::size_t live_ = 0;
    std::size_t reserved_ = 0;
};

/** True for message types that carry a full cache line. */
inline bool
carriesLine(MsgType t)
{
    switch (t) {
      case MsgType::Data:
      case MsgType::PutM:
      case MsgType::OwnerData:
      case MsgType::WirUpgr:
        return true;
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::PutW:
      case MsgType::Nack:
      case MsgType::Inv:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
      case MsgType::InvAck:
      case MsgType::WirUpgrAck:
      case MsgType::WirDwgrAck:
        return false;
    }
    return false;
}

} // namespace widir::coherence

#endif // WIDIR_CORE_MESSAGES_H
