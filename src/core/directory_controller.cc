#include "core/directory_controller.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mem/address.h"
#include "sim/log.h"

namespace widir::coherence {

using mem::CacheEntry;
using mem::lineAlign;
using sim::Addr;
using sim::NodeId;
using sim::Tick;

DirectoryController::DirectoryController(CoherenceFabric &fabric,
                                         sim::NodeId node,
                                         const LlcConfig &llc_cfg)
    : fabric_(fabric), node_(node),
      llc_(llc_cfg.sizeBytes, llc_cfg.assoc, fabric.numNodes())
{
    WIDIR_ASSERT(fabric.config().dirPointers <= SharerPtrs::kCapacity,
                 "dirPointers exceeds the inline sharer-pointer width");
    // The LLC slice is inclusive, so live directory entries are
    // bounded by the bank's line count: one reserve at construction
    // keeps the flat index rehash-free for the whole run. The
    // blocking directory holds at most a handful of in-flight
    // transactions per bank.
    entries_.reserve(llc_cfg.sizeBytes / mem::kLineBytes);
    txns_.reserve(256);
}

const DirEntry *
DirectoryController::entryOf(Addr line) const
{
    auto it = entries_.find(lineAlign(line));
    return it == entries_.end() ? nullptr : &it->second;
}

DirState
DirectoryController::stateOf(Addr line) const
{
    const DirEntry *e = entryOf(line);
    return e ? e->state : DirState::I;
}

bool
DirectoryController::busy(Addr line) const
{
    return txns_.count(lineAlign(line)) > 0;
}

DirectoryController::DirTxn *
DirectoryController::txnOf(Addr line)
{
    auto it = txns_.find(lineAlign(line));
    return it == txns_.end() ? nullptr : &it->second;
}

void
DirectoryController::traceState(Addr line, DirState from, DirState to,
                                const char *why, std::uint64_t arg)
{
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = fabric_.simulator().now();
    r.kind = sim::TraceKind::DirTransition;
    r.comp = sim::TraceComponent::Directory;
    r.node = node_;
    r.line = line;
    r.from = static_cast<std::uint8_t>(from);
    r.to = static_cast<std::uint8_t>(to);
    r.fromName = dirStateName(from);
    r.toName = dirStateName(to);
    r.note = why;
    r.arg = arg;
    tracer.emit(r);
}

DirectoryController::DirTxn &
DirectoryController::beginTxn(TxnType type, Addr line)
{
    auto [it, ok] = txns_.try_emplace(lineAlign(line));
    WIDIR_ASSERT(ok, "directory txn already in flight for the line");
    it->second.type = type;
    it->second.line = lineAlign(line);
    if (CacheEntry *e = llc_.lookup(line))
        e->locked = true;
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (sim::kTraceCompiled && tracer.enabled()) {
        sim::TraceRecord r;
        r.tick = fabric_.simulator().now();
        r.kind = sim::TraceKind::DirTxnBegin;
        r.comp = sim::TraceComponent::Directory;
        r.node = node_;
        r.line = it->second.line;
        r.op = static_cast<std::uint8_t>(type);
        r.opName = dirTxnTypeName(type);
        tracer.emit(r);
    }
    return it->second;
}

void
DirectoryController::endTxn(Addr line)
{
    auto it = txns_.find(lineAlign(line));
    WIDIR_ASSERT(it != txns_.end(), "ending unknown directory txn");
    if (it->second.jamming) {
        fabric_.dataChannel()->stopJamming(it->second.jamId);
        it->second.jamming = false;
    }
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (sim::kTraceCompiled && tracer.enabled()) {
        sim::TraceRecord r;
        r.tick = fabric_.simulator().now();
        r.kind = sim::TraceKind::DirTxnEnd;
        r.comp = sim::TraceComponent::Directory;
        r.node = node_;
        r.line = it->second.line;
        r.op = static_cast<std::uint8_t>(it->second.type);
        r.opName = dirTxnTypeName(it->second.type);
        tracer.emit(r);
    }
    txns_.erase(it);
    if (CacheEntry *e = llc_.lookup(line))
        e->locked = false;
}

void
DirectoryController::send(Msg msg, Tick extra_delay)
{
    msg.src = node_;
    fabric_.sendWired(msg, extra_delay);
}

void
DirectoryController::nack(const Msg &msg)
{
    ++stats_.nacksSent;
    if (const char *env = std::getenv("WIDIR_NACK_DEBUG")) {
        (void)env;
        DirTxn *t = txnOf(msg.line);
        std::fprintf(stderr, "NACK line=%llx txn=%d\n",
                     (unsigned long long)lineAlign(msg.line),
                     t ? (int)t->type : -1);
    }
    Msg resp;
    resp.type = MsgType::Nack;
    resp.dst = msg.src;
    resp.line = msg.line;
    send(resp, fabric_.config().dirProcLatency);
}

// ---------------------------------------------------------------------
// Incoming wired messages
// ---------------------------------------------------------------------

void
DirectoryController::receive(const Msg &msg)
{
    WIDIR_ASSERT(fabric_.homeOf(msg.line) == node_,
                 "message homed at the wrong directory slice");
    ++stats_.dirAccesses;
    DirEvent ev;
    if (!dirEventOf(msg.type, ev))
        sim::panic("directory %u received unexpected %s", node_,
                   msgTypeName(msg.type));
    // Select the action from the protocol table. The action is the
    // same in every state for these events (the handlers resolve the
    // per-state outcomes internally), so this lookup is structurally
    // equivalent to the old switch on the message type.
    switch (dirActionFor(stateOf(msg.line), ev)) {
      case DirAction::Request:
        handleRequest(msg);
        return;
      case DirAction::SharedEvictNotice:
        handlePutS(msg);
        return;
      case DirAction::OwnerEvictNotice:
        handlePutEM(msg);
        return;
      case DirAction::WirelessEvictNotice:
        handlePutW(msg);
        return;
      case DirAction::CollectInvAck:
        handleInvAck(msg);
        return;
      case DirAction::OwnerReturn:
        handleOwnerData(msg);
        return;
      case DirAction::CollectJoinAck:
        handleWirUpgrAck(msg);
        return;
      case DirAction::CollectDwgrAck:
        handleWirDwgrAck(msg);
        return;
      case DirAction::ObserveUpdate:
      case DirAction::ObserveWirInv:
      case DirAction::Recall:
      case DirAction::CensusFinish:
      case DirAction::WirelessFault:
        break;
    }
    sim::panic("directory %u: bad table action for %s", node_,
               msgTypeName(msg.type));
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

void
DirectoryController::handleRequest(const Msg &msg)
{
    if (msg.type == MsgType::GetS)
        ++stats_.getS;
    else
        ++stats_.getX;

    DirTxn *txn = txnOf(msg.line);
    if (txn) {
        // A W->W join in flight can admit further joiners: each gets
        // its own WirUpgr and its own WirUpgrAck, and SharerCount
        // increments are commutative, so batching them under one
        // transaction (with jamming held until the last ack) is safe
        // and avoids serializing a burst of first-time readers.
        if (txn->type == TxnType::WJoin &&
            !(msg.type == MsgType::GetX && msg.isSharer)) {
            admitJoiner(*txn, msg.src);
            return;
        }
        // Otherwise the blocking directory bounces. This includes
        // sharer GetX requests that race an in-flight S->W census:
        // the bounce releases the requester's tone (Section III-B1,
        // completion case iii names the bounced response explicitly),
        // and the retry resolves against the settled W state.
        nack(msg);
        return;
    }

    CacheEntry *llc_entry = llc_.lookup(msg.line);
    if (!llc_entry) {
        // LLC miss: fetch from memory (or bounce if the set is stuck
        // behind a recall).
        CacheEntry *room = makeRoom(msg.line);
        if (!room) {
            nack(msg);
            return;
        }
        startFetch(msg);
        return;
    }
    auto it = entries_.find(lineAlign(msg.line));
    WIDIR_ASSERT(it != entries_.end(),
                 "LLC entry without directory entry");
    handleCachedRequest(msg, llc_entry, it->second);
}

void
DirectoryController::grant(NodeId dst, Addr line, GrantState state,
                           const CacheEntry &llc_entry)
{
    Msg resp;
    resp.type = MsgType::Data;
    resp.dst = dst;
    resp.line = lineAlign(line);
    resp.grant = state;
    resp.hasData = true;
    resp.data = llc_entry.data;
    send(resp, fabric_.config().llcDataLatency);
}

void
DirectoryController::handleCachedRequest(const Msg &msg,
                                         CacheEntry *llc_entry,
                                         DirEntry &entry, bool force_wired)
{
    const auto &cfg = fabric_.config();
    llc_.touch(llc_entry, fabric_.simulator().now());

    switch (entry.state) {
      case DirState::I:
        // First reader gets Exclusive, first writer gets Modified.
        traceState(lineAlign(msg.line), DirState::I, DirState::EM,
                   msgTypeName(msg.type), msg.src);
        entry.state = DirState::EM;
        entry.owner = msg.src;
        llc_entry->state = static_cast<std::uint8_t>(DirState::EM);
        grant(msg.src, msg.line,
              msg.type == MsgType::GetS ? GrantState::E : GrantState::M,
              *llc_entry);
        return;

      case DirState::S: {
        if (msg.type == MsgType::GetS) {
            bool known = std::find(entry.sharers.begin(),
                                   entry.sharers.end(), msg.src) !=
                         entry.sharers.end();
            if (known) {
                grant(msg.src, msg.line, GrantState::S, *llc_entry);
                return;
            }
            if (cfg.wireless() && !force_wired && !entry.bcast &&
                entry.sharers.size() >= cfg.maxWiredSharers) {
                // Table II, S->W: the new sharer would push the count
                // past MaxWiredSharers. Never from a bcast entry: the
                // census seeds SharerCount from the pointer list, so
                // an imprecise entry (reachable only via the wired
                // fault fallback overflowing the pointers) would
                // undercount the group and dissolve it too early. Such
                // lines stay wired until a GetX restores precision.
                startToWireless(msg, entry);
                return;
            }
            if (entry.sharers.size() < cfg.dirPointers) {
                entry.sharers.push_back(msg.src);
            } else {
                // Dir_3_B overflow (Baseline): give up precision.
                entry.bcast = true;
            }
            grant(msg.src, msg.line, GrantState::S, *llc_entry);
            return;
        }

        // GetX in S: either a WiDir transition or an invalidation
        // collect.
        bool sharer = std::find(entry.sharers.begin(),
                                entry.sharers.end(), msg.src) !=
                      entry.sharers.end();
        if (cfg.wireless() && !force_wired && !sharer && !entry.bcast &&
            entry.sharers.size() >= cfg.maxWiredSharers) {
            startToWireless(msg, entry);
            return;
        }

        // Invalidation targets: a broadcast burst walks a fixed-width
        // bitset in ascending node order (the order the old heap
        // vector was built in); a precise entry keeps the pointers'
        // insertion order, which is the send order the mesh observes.
        SharerBits bcast_targets;
        std::uint32_t n_targets = 0;
        bool was_bcast = entry.bcast;
        if (was_bcast) {
            // Broadcast invalidation: every node but the requester.
            ++stats_.bcastInvBursts;
            for (NodeId n = 0; n < fabric_.numNodes(); ++n) {
                if (n != msg.src)
                    bcast_targets.set(n);
            }
            n_targets = bcast_targets.count();
        } else {
            for (NodeId n : entry.sharers) {
                if (n != msg.src)
                    ++n_targets;
            }
        }
        if (n_targets == 0) {
            // Requester is the sole sharer: immediate upgrade.
            traceState(lineAlign(msg.line), DirState::S, DirState::EM,
                       "upgrade", msg.src);
            entry.state = DirState::EM;
            entry.owner = msg.src;
            entry.sharers.clear();
            entry.bcast = false;
            llc_entry->state = static_cast<std::uint8_t>(DirState::EM);
            grant(msg.src, msg.line, GrantState::M, *llc_entry);
            return;
        }
        DirTxn &txn = beginTxn(TxnType::InvColl, msg.line);
        txn.requester = msg.src;
        txn.reqType = msg.type;
        txn.acksExpected = n_targets;
        stats_.invsSent += n_targets;
        auto send_inv = [&](NodeId n) {
            Msg inv;
            inv.type = MsgType::Inv;
            inv.dst = n;
            inv.line = lineAlign(msg.line);
            send(inv, cfg.dirProcLatency);
        };
        if (was_bcast) {
            bcast_targets.forEachSet(send_inv);
        } else {
            for (NodeId n : entry.sharers) {
                if (n != msg.src)
                    send_inv(n);
            }
        }
        entry.sharers.clear();
        entry.bcast = false;
        return;
      }

      case DirState::EM: {
        if (entry.owner == msg.src) {
            // The owner cannot want a line it still holds: its
            // PutE/PutM is in flight and this (smaller, faster)
            // request packet overtook the data-carrying writeback in
            // the mesh. Bounce it; the retry lands after the Put has
            // settled the entry back to I.
            nack(msg);
            return;
        }
        ++stats_.fwds;
        DirTxn &txn = beginTxn(msg.type == MsgType::GetS
                                   ? TxnType::FwdS
                                   : TxnType::FwdX,
                               msg.line);
        txn.requester = msg.src;
        txn.reqType = msg.type;
        Msg fwd;
        fwd.type = msg.type == MsgType::GetS ? MsgType::FwdGetS
                                             : MsgType::FwdGetX;
        fwd.dst = entry.owner;
        fwd.line = lineAlign(msg.line);
        fwd.requester = msg.src;
        send(fwd, cfg.dirProcLatency);
        return;
      }

      case DirState::W:
        if (msg.type == MsgType::GetX && msg.isSharer) {
            // Table II, W->W case 2: stale sharer upgrade; discard.
            return;
        }
        // Table II, W->W case 1: wired join of the wireless group.
        startWJoin(msg, entry);
        return;
    }
}

void
DirectoryController::startFetch(const Msg &msg)
{
    DirTxn &txn = beginTxn(TxnType::Fetch, msg.line);
    txn.requester = msg.src;
    txn.reqType = msg.type;
    txn.reqIsSharer = msg.isSharer;
    ++stats_.memFetches;
    Addr line = lineAlign(msg.line);
    fabric_.memory().readLine(line,
                              [this, line](const mem::LineData &data) {
        DirTxn *txn = txnOf(line);
        WIDIR_ASSERT(txn && txn->type == TxnType::Fetch,
                     "memory fill without fetch txn");
        NodeId requester = txn->requester;
        MsgType req_type = txn->reqType;
        endTxn(line);

        CacheEntry *frame = makeRoom(line);
        if (!frame) {
            // The set filled up while we were fetching (recalls in
            // flight). Bounce; the retry will find the set drained.
            Msg fake;
            fake.src = requester;
            fake.line = line;
            nack(fake);
            return;
        }
        llc_.fill(frame, line, static_cast<std::uint8_t>(DirState::EM),
                  data);
        traceState(line, DirState::I, DirState::EM, "fetch", requester);
        DirEntry &entry = entries_[line];
        entry.state = DirState::EM;
        entry.owner = requester;
        grant(requester, line,
              req_type == MsgType::GetS ? GrantState::E
                                        : GrantState::M,
              *frame);
    });
}

// ---------------------------------------------------------------------
// Eviction notifications
// ---------------------------------------------------------------------

void
DirectoryController::handlePutS(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    DirEntry &entry = it->second;

    // Always drop the evicting node from the sharer pointers if it is
    // recorded there -- even mid-transaction. Leaving stale pointers
    // would inflate a later S->W census snapshot (and the protocol
    // relies on the "always inform the directory" rule for exact
    // counts, Section III-B).
    auto sit = std::find(entry.sharers.begin(), entry.sharers.end(),
                         msg.src);
    bool was_recorded = sit != entry.sharers.end();
    if (was_recorded)
        entry.sharers.erase(sit);

    if (entry.state == DirState::W) {
        // The eviction predates the S->W transition: the node never
        // joined the wireless group, but the census counted it. This
        // must be accounted even while a W transaction (join,
        // downgrade) is in flight, or the count leaks a phantom
        // sharer and the eventual W->S downgrade waits forever.
        handlePutW(msg);
        return;
    }

    if (DirTxn *txn = txnOf(line)) {
        if (txn->type == TxnType::ToWireless && was_recorded) {
            // A counted sharer evicted while the census is in flight;
            // it will not become a wireless sharer.
            WIDIR_ASSERT(txn->censusSharers > 0, "census underflow");
            --txn->censusSharers;
        }
        // InvColl/Recall acks are tracked via InvAck; nothing else to
        // do here.
        return;
    }
    if (entry.state == DirState::S) {
        if (entry.sharers.empty() && !entry.bcast) {
            traceState(line, DirState::S, DirState::I, "PutS");
            entry.state = DirState::I;
            if (CacheEntry *e = llc_.lookup(line))
                e->state = static_cast<std::uint8_t>(DirState::I);
        }
        return;
    }
    // Stale notification (EM etc.); ignore.
}

void
DirectoryController::handlePutEM(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    if (DirTxn *txn = txnOf(line)) {
        // A PutE/PutM that races a Fwd* or an EM recall completes the
        // transaction in the owner's stead (the forward will find no
        // copy and be dropped).
        bool owner_txn = txn->type == TxnType::FwdS ||
                         txn->type == TxnType::FwdX ||
                         txn->type == TxnType::RecallEM;
        if (owner_txn) {
            completeOwnerTxn(msg, msg.type == MsgType::PutM);
        }
        return;
    }
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    DirEntry &entry = it->second;
    if (entry.state != DirState::EM || entry.owner != msg.src)
        return; // stale
    CacheEntry *e = llc_.lookup(line);
    WIDIR_ASSERT(e, "directory entry without LLC entry");
    if (msg.type == MsgType::PutM) {
        WIDIR_ASSERT(msg.hasData, "PutM without data");
        e->data = msg.data;
        e->dirty = true;
    }
    traceState(line, DirState::EM, DirState::I, msgTypeName(msg.type),
               msg.src);
    entry.state = DirState::I;
    entry.owner = sim::kNodeNone;
    e->state = static_cast<std::uint8_t>(DirState::I);
}

void
DirectoryController::handlePutW(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    if (DirTxn *txn = txnOf(line)) {
        switch (txn->type) {
          case TxnType::ToWireless:
            if (msg.src == txn->requester) {
                // The transition's own requester already evicted its
                // fresh W copy; do not count it at completion.
                txn->reqIsSharer = false; // reused as "requester alive"
                txn->censusRequesterLeft = true;
                return;
            }
            WIDIR_ASSERT(txn->censusSharers > 0, "census underflow");
            --txn->censusSharers;
            return;
          case TxnType::ToShared:
            // A sharer self-invalidated after the count trigger but
            // before (or while) WirDwgr landed: expect one less ack.
            if (txn->wired)
                return; // fallback Invs already cover every node
            WIDIR_ASSERT(txn->acksExpected > 0, "ack underflow");
            --txn->acksExpected;
            maybeFinishToShared(line);
            return;
          case TxnType::WJoin: {
            auto it = entries_.find(line);
            WIDIR_ASSERT(it != entries_.end(), "WJoin without entry");
            WIDIR_ASSERT(it->second.sharerCount > 0,
                         "SharerCount underflow");
            --it->second.sharerCount;
            // The downgrade check runs when the join completes.
            return;
          }
          case TxnType::Fetch:
          case TxnType::FwdS:
          case TxnType::FwdX:
          case TxnType::InvColl:
          case TxnType::RecallEM:
          case TxnType::RecallS:
          case TxnType::RecallW:
            return; // e.g. RecallW racing a self-invalidation
        }
    }
    auto it = entries_.find(line);
    if (it == entries_.end() || it->second.state != DirState::W)
        return; // stale (e.g. after WirInv)
    DirEntry &entry = it->second;
    WIDIR_ASSERT(entry.sharerCount > 0, "SharerCount underflow");
    --entry.sharerCount;
    traceState(line, DirState::W, DirState::W, "PutW",
               entry.sharerCount);
    // Table II, W->S: when the count falls back to MaxWiredSharers,
    // return the line to the wired protocol.
    maybeStartToShared(line);
}

// ---------------------------------------------------------------------
// Acks and data returns
// ---------------------------------------------------------------------

void
DirectoryController::completeOwnerTxn(const Msg &msg, bool has_data)
{
    Addr line = lineAlign(msg.line);
    DirTxn *txn = txnOf(line);
    WIDIR_ASSERT(txn, "owner completion without txn");
    CacheEntry *e = llc_.lookup(line);
    WIDIR_ASSERT(e, "owner txn without LLC entry");
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end(), "owner txn without dir entry");
    DirEntry &entry = it->second;

    if (has_data) {
        WIDIR_ASSERT(msg.hasData, "owner data missing payload");
        e->data = msg.data;
        if (msg.dirtyData || msg.type == MsgType::PutM)
            e->dirty = true;
    }

    switch (txn->type) {
      case TxnType::FwdS: {
        NodeId requester = txn->requester;
        traceState(line, DirState::EM, DirState::S, "FwdGetS",
                   requester);
        entry.state = DirState::S;
        entry.sharers.clear();
        // The old owner keeps an S copy unless it evicted (PutE/PutM
        // raced the forward).
        if (msg.type == MsgType::OwnerData)
            entry.sharers.push_back(entry.owner);
        entry.sharers.push_back(requester);
        entry.owner = sim::kNodeNone;
        e->state = static_cast<std::uint8_t>(DirState::S);
        endTxn(line);
        grant(requester, line, GrantState::S, *e);
        return;
      }
      case TxnType::FwdX: {
        NodeId requester = txn->requester;
        // Owner hand-off: EM->EM with a new owner (arg).
        traceState(line, DirState::EM, DirState::EM, "FwdGetX",
                   requester);
        entry.state = DirState::EM;
        entry.owner = requester;
        e->state = static_cast<std::uint8_t>(DirState::EM);
        endTxn(line);
        grant(requester, line, GrantState::M, *e);
        return;
      }
      case TxnType::RecallEM:
        finishRecall(line, false, nullptr, false);
        return;
      case TxnType::Fetch:
      case TxnType::InvColl:
      case TxnType::RecallS:
      case TxnType::RecallW:
      case TxnType::ToWireless:
      case TxnType::WJoin:
      case TxnType::ToShared:
        break;
    }
    sim::panic("owner completion on %s txn", dirTxnTypeName(txn->type));
}

void
DirectoryController::handleOwnerData(const Msg &msg)
{
    DirTxn *txn = txnOf(msg.line);
    if (!txn)
        return; // txn already completed by a racing PutE/PutM
    completeOwnerTxn(msg, true);
}

void
DirectoryController::handleInvAck(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    DirTxn *txn = txnOf(line);
    if (!txn)
        return; // stale ack (txn completed via a racing path)
    if (txn->type == TxnType::ToShared || txn->type == TxnType::RecallW) {
        // Wired fallback (docs/FAULTS.md): the wireless frame exhausted
        // its retry budget and the group is being invalidated with a
        // full Inv broadcast instead; completion is the ack count.
        if (!txn->wired)
            return; // stray ack while the wireless frame is in flight
        ++txn->acksReceived;
        if (txn->acksReceived < txn->acksExpected)
            return;
        if (txn->type == TxnType::ToShared)
            finishToShared(line);
        else
            finishRecall(line, false, nullptr, false);
        return;
    }
    if (txn->type != TxnType::InvColl && txn->type != TxnType::RecallS &&
        txn->type != TxnType::RecallEM) {
        return;
    }
    if (txn->type == TxnType::RecallEM) {
        // Owner recall: the ack itself may carry the dirty line; a
        // clean (E) owner acks without data.
        finishRecall(line, msg.hasData, msg.hasData ? &msg.data : nullptr,
                     msg.dirtyData);
        return;
    }
    if (msg.hasData) {
        CacheEntry *e = llc_.lookup(line);
        WIDIR_ASSERT(e, "InvAck data without LLC entry");
        e->data = msg.data;
        e->dirty = e->dirty || msg.dirtyData;
    }
    ++txn->acksReceived;
    if (txn->acksReceived < txn->acksExpected)
        return;

    if (txn->type == TxnType::InvColl) {
        NodeId requester = txn->requester;
        auto it = entries_.find(line);
        WIDIR_ASSERT(it != entries_.end(), "InvColl without entry");
        CacheEntry *e = llc_.lookup(line);
        WIDIR_ASSERT(e, "InvColl without LLC entry");
        traceState(line, DirState::S, DirState::EM, "InvColl",
                   requester);
        it->second.state = DirState::EM;
        it->second.owner = requester;
        it->second.sharers.clear();
        it->second.bcast = false;
        e->state = static_cast<std::uint8_t>(DirState::EM);
        endTxn(line);
        grant(requester, line, GrantState::M, *e);
        return;
    }
    // RecallS complete.
    finishRecall(line, false, nullptr, false);
}

void
DirectoryController::handleWirUpgrAck(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    DirTxn *txn = txnOf(line);
    WIDIR_ASSERT(txn && txn->type == TxnType::WJoin,
                 "WirUpgrAck without a WJoin txn");
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end() &&
                     it->second.state == DirState::W,
                 "WJoin on a non-W entry");
    ++it->second.sharerCount;
    // W->W join: SharerCount grew (arg = new count).
    traceState(line, DirState::W, DirState::W, "join",
               it->second.sharerCount);
    if (++txn->acksReceived < txn->acksExpected)
        return; // more joiners in flight under this transaction
    endTxn(line);
    // PutWs that drained during the join may have left the count at or
    // below the threshold.
    maybeStartToShared(line);
}

void
DirectoryController::handleWirDwgrAck(const Msg &msg)
{
    Addr line = lineAlign(msg.line);
    DirTxn *txn = txnOf(line);
    if (!txn || txn->type != TxnType::ToShared || txn->wired)
        return; // stale (or superseded by the wired fallback)
    txn->ackIds.push_back(msg.src);
    ++txn->acksReceived;
    maybeFinishToShared(line);
}

// ---------------------------------------------------------------------
// WiDir transitions (Table II)
// ---------------------------------------------------------------------

void
DirectoryController::startToWireless(const Msg &msg, DirEntry &entry)
{
    ++stats_.toWireless;
    auto *data_channel = fabric_.dataChannel();
    auto *tone = fabric_.toneChannel();
    WIDIR_ASSERT(data_channel && tone,
                 "S->W transition without wireless hardware");

    DirTxn &txn = beginTxn(TxnType::ToWireless, msg.line);
    txn.requester = msg.src;
    txn.reqType = msg.type;
    txn.censusSharers =
        static_cast<std::uint32_t>(entry.sharers.size());

    Addr line = lineAlign(msg.line);
    // Broadcast BrWirUpgr on the data channel. At the commit point:
    // start jamming the line, send WirUpgr + line to the requester
    // over the wired network (Table II, S->W row), and begin the
    // global ToneAck census -- it covers every node, and the wired-OR
    // tone falls silent once all of them (and any overlapping
    // censuses' nodes) resolved (Section III-B1).
    wireless::Frame frame;
    frame.src = node_;
    frame.kind = wireless::FrameKind::BrWirUpgr;
    frame.lineAddr = line;
    fabric_.dataChannel()->transmit(
        frame,
        [this, line] {
        DirTxn *txn = txnOf(line);
        WIDIR_ASSERT(txn && txn->type == TxnType::ToWireless,
                     "BrWirUpgr commit without ToWireless txn");
        txn->jamId = fabric_.dataChannel()->startJamming(node_, line);
        txn->jamming = true;

        CacheEntry *e = llc_.lookup(line);
        WIDIR_ASSERT(e, "S->W without LLC entry");
        Msg upg;
        upg.type = MsgType::WirUpgr;
        upg.dst = txn->requester;
        upg.line = line;
        upg.needsAck = false; // census covers the requester
        upg.hasData = true;
        upg.data = e->data;
        send(upg);

        fabric_.toneChannel()->beginCensus(
            fabric_.numNodes(),
            [this, line] { finishToWireless(line); });
        },
        [this, line] { abortToWireless(line); });
}

void
DirectoryController::finishToWireless(Addr line)
{
    DirTxn *txn = txnOf(line);
    WIDIR_ASSERT(txn && txn->type == TxnType::ToWireless,
                 "finishing unknown S->W transition");
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end(), "S->W without dir entry");
    DirEntry &entry = it->second;
    // Census = surviving pre-transition sharers + the requester
    // (unless the requester already evicted again).
    entry.state = DirState::W;
    entry.sharerCount =
        txn->censusSharers + (txn->censusRequesterLeft ? 0 : 1);
    traceState(line, DirState::S, DirState::W, "census",
               entry.sharerCount);
    entry.sharers.clear();
    entry.bcast = false;
    entry.owner = sim::kNodeNone;
    if (CacheEntry *e = llc_.lookup(line))
        e->state = static_cast<std::uint8_t>(DirState::W);
    endTxn(line); // also stops jamming
    // Self-invalidations during the census may already have drained
    // the group.
    maybeStartToShared(line);
}

void
DirectoryController::admitJoiner(DirTxn &txn, sim::NodeId requester)
{
    // Table II, W->W case 1: jam updates to the line so the copy we
    // ship stays coherent, send WirUpgr + line over the wired network,
    // and bump SharerCount when the ack returns.
    //
    // The line is read out of the LLC *after* the data-array latency:
    // jamming stops new wireless updates immediately, but a WirUpd
    // that had already committed when the join arrived is still in
    // flight and lands in the LLC a few cycles later -- reading early
    // would ship the joiner a stale copy.
    ++stats_.wJoins;
    ++txn.acksExpected;
    Addr line = txn.line;
    fabric_.simulator().scheduleInline(
        fabric_.config().llcDataLatency, [this, line, requester] {
            CacheEntry *e = llc_.lookup(line);
            WIDIR_ASSERT(e, "W join without LLC entry");
            Msg upg;
            upg.type = MsgType::WirUpgr;
            upg.dst = requester;
            upg.line = line;
            upg.needsAck = true;
            upg.hasData = true;
            upg.data = e->data;
            send(upg);
        });
}

void
DirectoryController::startWJoin(const Msg &msg, DirEntry &entry)
{
    (void)entry;
    DirTxn &txn = beginTxn(TxnType::WJoin, msg.line);
    txn.requester = msg.src;
    txn.reqType = msg.type;
    txn.jamId = fabric_.dataChannel()->startJamming(node_,
                                                    lineAlign(msg.line));
    txn.jamming = true;
    admitJoiner(txn, msg.src);
}

void
DirectoryController::maybeStartToShared(Addr line)
{
    auto it = entries_.find(line);
    if (it == entries_.end() || it->second.state != DirState::W)
        return;
    if (txnOf(line))
        return;
    if (it->second.sharerCount > fabric_.config().maxWiredSharers)
        return;
    startToShared(line);
}

void
DirectoryController::startToShared(Addr line)
{
    ++stats_.toShared;
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end() &&
                     it->second.state == DirState::W,
                 "W->S on a non-W line");
    DirTxn &txn = beginTxn(TxnType::ToShared, line);
    txn.acksExpected = it->second.sharerCount;
    wireless::Frame frame;
    frame.src = node_;
    frame.kind = wireless::FrameKind::WirDwgr;
    frame.lineAddr = line;
    txn.frameToken =
        fabric_.dataChannel()->transmit(frame, nullptr,
                                        [this, line] {
                                            fallbackToShared(line);
                                        });
    if (txn.acksExpected == 0) {
        // Every sharer already self-invalidated; nothing will ack.
        maybeFinishToShared(line);
    }
}

void
DirectoryController::maybeFinishToShared(Addr line)
{
    DirTxn *txn = txnOf(line);
    WIDIR_ASSERT(txn && txn->type == TxnType::ToShared,
                 "completing unknown W->S transition");
    if (txn->acksReceived < txn->acksExpected)
        return;
    if (!txn->frameResolved) {
        // Every expected ack is in (or racing PutWs drained the count
        // to zero) but the WirDwgr broadcast is still inside the MAC.
        // Withdraw it if it has not committed; otherwise hold the
        // transaction open until our own delivery resolves it --
        // completing now would orphan a chip-wide downgrade that could
        // land in the middle of this line's next wireless epoch.
        //
        // The cancel-or-continue is phrased through cancelPendingOr so
        // it also works from a bound-phase domain, where the outcome
        // only exists once the weave replays the cancel. The callback
        // re-validates the transaction: by replay time our own
        // delivery may already have resolved it (then the cancel
        // fails and nothing runs), and duplicate deferred cancels are
        // harmless because only the first one succeeds.
        fabric_.dataChannel()->cancelPendingOr(
            txn->frameToken, [this, line] {
                DirTxn *t = txnOf(line);
                if (!t || t->type != TxnType::ToShared ||
                    t->frameResolved) {
                    return;
                }
                if (t->acksReceived < t->acksExpected)
                    return;
                t->frameResolved = true;
                finishToShared(line);
            });
        return; // the cancel callback or handleFrame(WirDwgr) finishes
    }
    finishToShared(line);
}

void
DirectoryController::finishToShared(Addr line)
{
    DirTxn *txn = txnOf(line);
    WIDIR_ASSERT(txn && txn->type == TxnType::ToShared,
                 "finishing unknown W->S transition");
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end(), "W->S without dir entry");
    DirEntry &entry = it->second;
    entry.sharers = txn->ackIds;
    entry.sharerCount = 0;
    entry.owner = sim::kNodeNone;
    entry.bcast = false;
    CacheEntry *e = llc_.lookup(line);
    WIDIR_ASSERT(e, "W->S without LLC entry");
    if (entry.sharers.empty()) {
        traceState(line, DirState::W, DirState::I, "WirDwgr");
        entry.state = DirState::I;
        e->state = static_cast<std::uint8_t>(DirState::I);
    } else {
        traceState(line, DirState::W, DirState::S, "WirDwgr",
                   entry.sharers.size());
        entry.state = DirState::S;
        e->state = static_cast<std::uint8_t>(DirState::S);
    }
    // Table II, W->S row: a dirty LLC copy is written to memory.
    writebackIfDirty(e);
    endTxn(line);
}

// ---------------------------------------------------------------------
// Wired fallbacks under fault injection (docs/FAULTS.md)
// ---------------------------------------------------------------------

void
DirectoryController::traceFallback(Addr line, const char *frame_kind)
{
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = fabric_.simulator().now();
    r.kind = sim::TraceKind::WirelessFallback;
    r.comp = sim::TraceComponent::Directory;
    r.node = node_;
    r.line = line;
    r.opName = frame_kind;
    tracer.emit(r);
}

void
DirectoryController::broadcastFallbackInvs(DirTxn &txn)
{
    // The dropped frame would have identified the survivors for us
    // (WirDwgrAcks); without it we cannot tell who still holds a copy,
    // so invalidate the whole machine. Every L1 acks an Inv even on a
    // miss (the RecallS broadcast path relies on the same property),
    // so completion is exactly numNodes InvAcks.
    txn.wired = true;
    txn.ackIds.clear();
    txn.acksReceived = 0;
    txn.acksExpected = fabric_.numNodes();
    stats_.invsSent += fabric_.numNodes();
    for (NodeId n = 0; n < fabric_.numNodes(); ++n) {
        Msg inv;
        inv.type = MsgType::Inv;
        inv.dst = n;
        inv.line = txn.line;
        send(inv, fabric_.config().dirProcLatency);
    }
}

void
DirectoryController::abortToWireless(Addr line)
{
    DirTxn *txn = txnOf(line);
    if (!txn || txn->type != TxnType::ToWireless)
        return; // stale failure notification
    // The BrWirUpgr never committed, so no L1 saw anything: the entry
    // is still untouched in S and the requester is still waiting. Undo
    // the transaction and re-dispatch the original request with the
    // S->W transition suppressed -- it completes as a plain wired
    // GetS/GetX against the (possibly overflowing) sharer set.
    ++stats_.wirelessFallbacks;
    traceFallback(line, "BrWirUpgr");
    Msg req;
    req.type = txn->reqType;
    req.src = txn->requester;
    req.line = line;
    endTxn(line);
    CacheEntry *e = llc_.lookup(line);
    WIDIR_ASSERT(e, "aborted S->W without LLC entry");
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end(), "aborted S->W without dir entry");
    handleCachedRequest(req, e, it->second, /*force_wired=*/true);
}

void
DirectoryController::fallbackToShared(Addr line)
{
    DirTxn *txn = txnOf(line);
    if (!txn || txn->type != TxnType::ToShared || txn->wired)
        return; // stale failure notification
    ++stats_.wirelessFallbacks;
    traceFallback(line, "WirDwgr");
    broadcastFallbackInvs(*txn);
}

void
DirectoryController::fallbackRecallW(Addr line)
{
    DirTxn *txn = txnOf(line);
    if (!txn || txn->type != TxnType::RecallW || txn->wired)
        return; // stale failure notification
    ++stats_.wirelessFallbacks;
    traceFallback(line, "WirInv");
    broadcastFallbackInvs(*txn);
}

// ---------------------------------------------------------------------
// Wireless frames observed at the home slice
// ---------------------------------------------------------------------

void
DirectoryController::receiveFrame(const wireless::Frame &frame)
{
    if (fabric_.homeOf(frame.lineAddr) != node_)
        return;
    Addr line = lineAlign(frame.lineAddr);
    switch (frame.kind) {
      case wireless::FrameKind::WirUpd: {
        auto it = entries_.find(line);
        if (it == entries_.end() || it->second.state != DirState::W)
            return;
        CacheEntry *e = llc_.lookup(line);
        WIDIR_ASSERT(e, "W entry without LLC line");
        // Keep the LLC copy current so wired joins ship fresh data.
        // (The paper's Table II says SharerCount++ here; we treat that
        // as an erratum -- see DESIGN.md -- and leave the count to the
        // exact WirUpgrAck/PutW flows.)
        e->data.setWord(frame.wordAddr, frame.value);
        e->dirty = true;
        ++stats_.updatesObserved;
        // Fig. 5: how many other caches this write updated.
        WIDIR_ASSERT(it->second.sharerCount > 0,
                     "update on an empty wireless group");
        sharersUpdated_.sample(it->second.sharerCount - 1);
        return;
      }
      case wireless::FrameKind::WirInv: {
        // Our own W->I eviction completed its broadcast.
        DirTxn *txn = txnOf(line);
        if (txn && txn->type == TxnType::RecallW)
            finishRecall(line, false, nullptr, false);
        return;
      }
      case wireless::FrameKind::WirDwgr: {
        // Our own downgrade broadcast is on the air no longer; the
        // transition completes once the WirDwgrAcks are in -- which
        // may already be the case if racing PutWs drained the count.
        DirTxn *txn = txnOf(line);
        if (txn && txn->type == TxnType::ToShared && !txn->wired) {
            txn->frameResolved = true;
            maybeFinishToShared(line);
        }
        return;
      }
      case wireless::FrameKind::BrWirUpgr:
        // Our own census broadcast: it completes through the tone
        // callback, not through this delivery.
        return;
    }
}

// ---------------------------------------------------------------------
// LLC management
// ---------------------------------------------------------------------

void
DirectoryController::writebackIfDirty(CacheEntry *e)
{
    if (!e->dirty)
        return;
    ++stats_.memWritebacks;
    fabric_.memory().writeLine(e->line, e->data);
    e->dirty = false;
}

mem::CacheEntry *
DirectoryController::makeRoom(Addr line)
{
    if (CacheEntry *hit = llc_.lookup(line))
        return hit;
    CacheEntry *victim = llc_.pickVictim(line);
    if (!victim)
        return nullptr; // set fully locked by in-flight transactions
    if (!victim->valid)
        return victim;
    auto it = entries_.find(victim->line);
    WIDIR_ASSERT(it != entries_.end(),
                 "valid LLC entry without directory entry");
    if (it->second.state == DirState::I) {
        // No cached copies: silent replacement (write back if dirty).
        writebackIfDirty(victim);
        entries_.erase(it);
        llc_.invalidate(victim);
        return victim;
    }
    // Cached copies exist: recall them first; the requester bounces.
    startRecall(victim);
    return nullptr;
}

void
DirectoryController::startRecall(CacheEntry *victim)
{
    ++stats_.llcRecalls;
    Addr line = victim->line;
    auto it = entries_.find(line);
    WIDIR_ASSERT(it != entries_.end(), "recall without dir entry");
    DirEntry &entry = it->second;
    const auto &cfg = fabric_.config();

    switch (entry.state) {
      case DirState::EM: {
        DirTxn &txn = beginTxn(TxnType::RecallEM, line);
        txn.acksExpected = 1;
        Msg inv;
        inv.type = MsgType::Inv;
        inv.dst = entry.owner;
        inv.line = line;
        inv.needData = true;
        send(inv, cfg.dirProcLatency);
        return;
      }
      case DirState::S: {
        DirTxn &txn = beginTxn(TxnType::RecallS, line);
        // Imprecise entries recall with a full ascending broadcast
        // (bitset walk); precise ones walk the pointer list in
        // insertion order, exactly as the old target vector did.
        auto send_inv = [&](NodeId n) {
            Msg inv;
            inv.type = MsgType::Inv;
            inv.dst = n;
            inv.line = line;
            send(inv, cfg.dirProcLatency);
        };
        if (entry.bcast) {
            SharerBits targets;
            for (NodeId n = 0; n < fabric_.numNodes(); ++n)
                targets.set(n);
            txn.acksExpected = targets.count();
            stats_.invsSent += txn.acksExpected;
            targets.forEachSet(send_inv);
        } else {
            txn.acksExpected = entry.sharers.size();
            stats_.invsSent += txn.acksExpected;
            for (NodeId n : entry.sharers)
                send_inv(n);
        }
        if (txn.acksExpected == 0)
            finishRecall(line, false, nullptr, false);
        return;
      }
      case DirState::W: {
        // Table II, W->I: broadcast WirInv; no acknowledgments are
        // needed (reliable wireless broadcast); completion is the
        // frame's own delivery, observed in receiveFrame.
        ++stats_.wirInvs;
        beginTxn(TxnType::RecallW, line);
        wireless::Frame frame;
        frame.src = node_;
        frame.kind = wireless::FrameKind::WirInv;
        frame.lineAddr = line;
        fabric_.dataChannel()->transmit(frame, nullptr,
                                        [this, line] {
                                            fallbackRecallW(line);
                                        });
        return;
      }
      case DirState::I:
        sim::panic("recall of an idle line");
    }
}

void
DirectoryController::finishRecall(Addr line, bool merge_data,
                                  const mem::LineData *data,
                                  bool data_dirty)
{
    CacheEntry *e = llc_.lookup(line);
    WIDIR_ASSERT(e, "recall without LLC entry");
    if (merge_data) {
        e->data = *data;
        e->dirty = e->dirty || data_dirty;
    }
    writebackIfDirty(e);
    auto eit = entries_.find(line);
    if (eit != entries_.end()) {
        traceState(line, eit->second.state, DirState::I, "recall");
        entries_.erase(eit);
    }
    endTxn(line);
    llc_.invalidate(e);
}

} // namespace widir::coherence
