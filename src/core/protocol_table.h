/**
 * @file
 * Declarative transition table for both coherence state machines --
 * the single source of truth for the protocol's transition relation.
 *
 * Tables I and II of the paper are encoded as flat rule arrays: for
 * each (stable state, event) cell one or more `L1Rule` / `DirRule`
 * rows name the action the controller dispatches and every outcome
 * state the cell can produce. The same rows feed four consumers:
 *
 *  - `L1Controller::receive`/`receiveFrame`/CPU ops and
 *    `DirectoryController::receive` dispatch through
 *    `l1ActionFor()` / `dirActionFor()` (the action functors are the
 *    controllers' existing handlers, so behavior is unchanged);
 *  - `sys::checkTraceLegality` derives its legal-edge sets from
 *    `l1EdgeLegal()` / `dirEdgeLegal()` instead of a private copy;
 *  - `tools/gen_protocol_docs` renders the rows into the generated
 *    section of docs/PROTOCOL.md (the `docs_check` CTest fails when
 *    that section is stale);
 *  - `tests/test_state_explorer.cc` walks small machines and asserts
 *    the observed transition edges are exactly the noted rows.
 *
 * Rows with a non-null `note` are *traced edges*: the controller emits
 * an `L1Transition`/`DirTransition` record with that note when the
 * rule fires. Rows with a null note are tolerated no-ops, transient
 * bookkeeping, or panics. Flags mark rows only reachable under fault
 * injection (`kRuleFaultOnly`) and cells kept for dispatch whose
 * handler asserts they never fire (`kRuleUnreachable`).
 *
 * The protocol vocabulary (states, transaction kinds) and every
 * enum -> string helper live here as well, so a new enumerator has
 * exactly one place to be named (and `-Werror=switch` makes missing
 * one a build error).
 */

#ifndef WIDIR_CORE_PROTOCOL_TABLE_H
#define WIDIR_CORE_PROTOCOL_TABLE_H

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/messages.h"
#include "core/protocol_config.h"
#include "wireless/frame.h"

namespace widir::coherence {

// ---------------------------------------------------------------------
// Protocol vocabulary
// ---------------------------------------------------------------------

/** L1 line states (stored in mem::CacheEntry::state). */
enum class L1State : std::uint8_t
{
    I = 0,
    S,
    E,
    M,
    W, ///< WiDir Wireless Shared
};
inline constexpr std::size_t kNumL1States = 5;

/** Directory states for a line resident in an LLC slice. */
enum class DirState : std::uint8_t
{
    I = 0, ///< in LLC, no cached copies
    S,     ///< shared by the pointer set (or broadcast bit)
    EM,    ///< exclusive/modified at `owner`
    W,     ///< WiDir Wireless Shared: only SharerCount is known
};
inline constexpr std::size_t kNumDirStates = 4;

/** Multi-message directory transaction kinds (transient states). */
enum class DirTxnType : std::uint8_t
{
    Fetch,      ///< LLC miss: memory read in flight
    FwdS,       ///< GetS forwarded to owner
    FwdX,       ///< GetX forwarded to owner
    InvColl,    ///< collecting InvAcks for a GetX in S
    RecallEM,   ///< LLC eviction: retrieving the owner's copy
    RecallS,    ///< LLC eviction: invalidating sharers
    RecallW,    ///< LLC eviction of a W line (WirInv in flight)
    ToWireless, ///< S->W: BrWirUpgr census in flight (Table II)
    WJoin,      ///< W->W: WirUpgr sent, awaiting WirUpgrAck
    ToShared,   ///< W->S: WirDwgr sent, awaiting WirDwgrAcks
};

/// @name Enum -> string helpers (single home for all protocol names)
/// @{
const char *l1StateName(L1State s);
const char *dirStateName(DirState s);
const char *dirTxnTypeName(DirTxnType t);
const char *grantStateName(GrantState s);
const char *protocolName(Protocol p);
// msgTypeName(MsgType) is declared in messages.h; defined here too.
// frameKindName(FrameKind) stays in src/wireless (dependency order).
/// @}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/**
 * Everything that can happen to an L1 line: CPU operations, capacity
 * eviction, wired messages addressed to a cache, wireless frames, and
 * the data channel giving up on our WirUpd (fault injection).
 */
enum class L1Event : std::uint8_t
{
    CpuLoad = 0,
    CpuStore,
    CpuRmw,
    Evict,          ///< replacement selected this line as victim
    MsgData,
    MsgNack,
    MsgInv,
    MsgFwdGetS,
    MsgFwdGetX,
    MsgWirUpgr,
    FrameWirUpd,
    FrameBrWirUpgr,
    FrameWirDwgr,
    FrameWirInv,
    ChannelFault,   ///< own WirUpd exhausted its fault-retry budget
};
inline constexpr std::size_t kNumL1Events = 15;

/**
 * Everything that can happen to a directory entry: wired messages
 * addressed to a home slice, frames observed on the data channel, and
 * the internal events (LLC replacement, census completion, wireless
 * fault fallback) that drive transitions without a message arriving.
 */
enum class DirEvent : std::uint8_t
{
    MsgGetS = 0,
    MsgGetX,
    MsgPutS,
    MsgPutE,
    MsgPutM,
    MsgPutW,
    MsgInvAck,
    MsgOwnerData,
    MsgWirUpgrAck,
    MsgWirDwgrAck,
    FrameWirUpd,    ///< committed update observed at the home
    FrameWirInv,    ///< own W->I broadcast completed
    LlcEvict,       ///< replacement selected this line as victim
    CensusDone,     ///< ToneAck census fell silent (S->W commit)
    ChannelFault,   ///< own frame exhausted its fault-retry budget
};
inline constexpr std::size_t kNumDirEvents = 15;

const char *l1EventName(L1Event e);
const char *dirEventName(DirEvent e);

/**
 * Map a wired message type onto the receiving side's event.
 * @return false when that side never receives the type (the
 *         controllers panic on such arrivals, exactly as before).
 */
bool l1EventOf(MsgType t, L1Event &ev);
bool dirEventOf(MsgType t, DirEvent &ev);

/** Wireless frames map 1:1 onto L1 events. */
L1Event l1EventOf(wireless::FrameKind k);

// ---------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------

/**
 * What the L1 controller does for a (state, event) cell. Each action
 * names one of the controller's existing handlers; the handlers keep
 * all side effects (stats, messages, tracing) so dispatching through
 * the table is bit-identical to the old hand-written switches.
 */
enum class L1Action : std::uint8_t
{
    Hit = 0,        ///< serve from the cache (may silently upgrade)
    Miss,           ///< allocate a txn, send GetS/GetX
    Upgrade,        ///< sharer upgrade: GetX with isSharer
    Wireless,       ///< W-state store/RMW: broadcast WirUpd
    EvictNotify,    ///< send Put* and invalidate the frame
    FinishFill,     ///< Data/WirUpgr completes the outstanding txn
    NackRetry,      ///< bounce: back off and resend
    Invalidate,     ///< Inv: ack (with data on a recall), drop copy
    SupplyOwner,    ///< Fwd*: OwnerData, downgrade or invalidate
    ApplyUpdate,    ///< foreign WirUpd: merge word, UpdateCount++
    CensusJoin,     ///< BrWirUpgr: raise tone, S->W, resolve txns
    Downgrade,      ///< WirDwgr: ack survivor id, W->S
    WirelessInvalidate, ///< WirInv: drop W copy, squash + retry
    WirelessWriteFault, ///< own WirUpd dropped: PutW + wired retry
};

/** Directory-side actions; same contract as L1Action. */
enum class DirAction : std::uint8_t
{
    Request = 0,    ///< GetS/GetX: grant, forward, census, or join
    SharedEvictNotice,   ///< PutS bookkeeping
    OwnerEvictNotice,    ///< PutE/PutM: write back or complete txn
    WirelessEvictNotice, ///< PutW: SharerCount--, maybe W->S
    CollectInvAck,  ///< InvColl/Recall*/fallback ack counting
    OwnerReturn,    ///< OwnerData completes a Fwd*/RecallEM txn
    CollectJoinAck, ///< WirUpgrAck: SharerCount++
    CollectDwgrAck, ///< WirDwgrAck: record survivor
    ObserveUpdate,  ///< WirUpd at the home: LLC write-through
    ObserveWirInv,  ///< own WirInv delivery completes RecallW
    Recall,         ///< LLC eviction of a tracked line
    CensusFinish,   ///< ToneAck census complete: commit S->W
    WirelessFault,  ///< frame dropped: wired fallback path
};

const char *l1ActionName(L1Action a);
const char *dirActionName(DirAction a);

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// @name Rule flags
/// @{
inline constexpr std::uint8_t kRuleNone = 0;
/** Row only reachable with fault injection armed (docs/FAULTS.md). */
inline constexpr std::uint8_t kRuleFaultOnly = 1u << 0;
/**
 * Cell kept so dispatch is total, but the handler asserts it never
 * fires (protocol-impossible combination).
 */
inline constexpr std::uint8_t kRuleUnreachable = 1u << 1;
/// @}

/**
 * One row of Table I: in state `from`, event `event` dispatches
 * `action` and may leave the line in `to`. `note` is the exact string
 * the controller puts into the L1Transition trace record when this
 * outcome fires, or null when the outcome is not a traced transition
 * (no state change, transient bookkeeping, or a tolerated stale
 * arrival, in which case `to == from`).
 */
struct L1Rule
{
    L1State from;
    L1Event event;
    L1Action action;
    L1State to;
    const char *note;
    std::uint8_t flags;
};

/** One row of Table II; same contract as L1Rule. */
struct DirRule
{
    DirState from;
    DirEvent event;
    DirAction action;
    DirState to;
    const char *note;
    std::uint8_t flags;
};

/** The full rule sets (every (state, event) cell appears at least once). */
std::span<const L1Rule> l1Rules();
std::span<const DirRule> dirRules();

/**
 * Dispatch lookup: the action for a (state, event) cell. Every cell
 * is covered (rule rows for one cell always agree on the action;
 * validated once at startup).
 */
L1Action l1ActionFor(L1State s, L1Event e);
DirAction dirActionFor(DirState s, DirEvent e);

/**
 * Trace-legality relation derived from the noted rules: true when
 * some rule row traces a `from -> to` edge. Self-loops are legal only
 * where a row notes one (EM->EM owner hand-off, W->W count changes).
 */
bool l1EdgeLegal(L1State from, L1State to);
bool dirEdgeLegal(DirState from, DirState to);

} // namespace widir::coherence

#endif // WIDIR_CORE_PROTOCOL_TABLE_H
