/**
 * @file
 * CoherenceFabric: the wiring between the protocol controllers and the
 * transport/memory substrates.
 *
 * The system layer builds one fabric per simulated machine and hands a
 * reference to every controller. Controllers send wired messages by
 * destination node id; the fabric routes them over the mesh and invokes
 * the receiving controller when the message arrives.
 */

#ifndef WIDIR_CORE_FABRIC_H
#define WIDIR_CORE_FABRIC_H

#include <memory>
#include <vector>

#include "core/messages.h"
#include "core/protocol_config.h"
#include "mem/main_memory.h"
#include "noc/mesh.h"
#include "sim/simulator.h"
#include "wireless/data_channel.h"
#include "wireless/tone_channel.h"

namespace widir::coherence {

class L1Controller;
class DirectoryController;

/** Shared infrastructure handed to every controller. */
class CoherenceFabric
{
  public:
    CoherenceFabric(sim::Simulator &sim, const ProtocolConfig &cfg,
                    noc::Mesh &mesh, mem::MainMemory &memory,
                    wireless::DataChannel *data_channel,
                    wireless::ToneChannel *tone_channel)
        : sim_(sim), cfg_(cfg), mesh_(mesh), memory_(memory),
          dataChannel_(data_channel), toneChannel_(tone_channel),
          lastEnqueue_(static_cast<std::size_t>(mesh.numNodes()) *
                           mesh.numNodes(),
                       0)
    {
        // Steady-state wired traffic is bounded by the outstanding
        // transactions per tile; pre-sizing the pool keeps the hot
        // path free of deque growth (docs/PERF.md).
        pool_.reserve(static_cast<std::size_t>(mesh.numNodes()) * 4);
    }

    sim::Simulator &simulator() { return sim_; }
    const ProtocolConfig &config() const { return cfg_; }
    noc::Mesh &mesh() { return mesh_; }
    mem::MainMemory &memory() { return memory_; }

    /** Null when running the wired-only baseline. */
    wireless::DataChannel *dataChannel() { return dataChannel_; }
    wireless::ToneChannel *toneChannel() { return toneChannel_; }

    /** Register the controllers (called once by the system layer). */
    void
    attach(std::vector<L1Controller *> l1s,
           std::vector<DirectoryController *> dirs)
    {
        l1s_ = std::move(l1s);
        dirs_ = std::move(dirs);
    }

    std::uint32_t numNodes() const { return mesh_.numNodes(); }

    L1Controller &l1(sim::NodeId n) { return *l1s_.at(n); }
    DirectoryController &dir(sim::NodeId n) { return *dirs_.at(n); }

    /** Home directory slice for an address (cfg.homeMap policy). */
    sim::NodeId
    homeOf(sim::Addr addr) const
    {
        return mem::homeNodeOf(addr, mesh_.numNodes(), cfg_.homeMap);
    }

    /**
     * Send a wired message; delivery invokes the proper controller.
     *
     * @p delay models the sender-side processing latency (directory
     * tag access, LLC data array read) before the message enters the
     * network. The fabric clamps enqueue times so that messages
     * between the same (src, dst) pair enter the mesh in the order
     * they were sent even when their delays differ -- together with
     * the mesh's per-pair FIFO property this gives point-to-point
     * ordering, which the protocol relies on (e.g. a Data grant must
     * not be overtaken by a later Fwd or Inv to the same cache).
     */
    void sendWired(const Msg &msg, sim::Tick delay = 0);

    /**
     * Enable/disable a human-readable trace of every wired message and
     * its delivery, on stderr. Handy when debugging protocol races;
     * examples/protocol_trace.cc demonstrates it.
     */
    void setTrace(bool on) { trace_ = on; }
    bool trace() const { return trace_; }

    /** Wired bits for a message of this type. */
    std::uint32_t
    bitsFor(MsgType t) const
    {
        return carriesLine(t) ? cfg_.dataBits : cfg_.ctrlBits;
    }

    /**
     * Message-pool slots allocated beyond the construction-time
     * reserve (MsgPool::grewBeyondReserve()); surfaced in the sweep
     * JSON as host_msgpool_grew so a sizing regression shows up in
     * tracked bench output.
     */
    std::uint64_t
    msgPoolGrew() const
    {
        return pool_.grewBeyondReserve();
    }

  private:
    sim::Simulator &sim_;
    ProtocolConfig cfg_;
    noc::Mesh &mesh_;
    mem::MainMemory &memory_;
    wireless::DataChannel *dataChannel_;
    wireless::ToneChannel *toneChannel_;
    std::vector<L1Controller *> l1s_;
    std::vector<DirectoryController *> dirs_;
    /**
     * Last network-enqueue tick per (src, dst) pair, for FIFO
     * clamping. A flat numNodes^2 array: the map this replaces grew
     * one node allocation per communicating pair and made the
     * per-message clamp a hash probe (docs/PERF.md).
     */
    std::vector<sim::Tick> lastEnqueue_;
    /** In-flight wired messages (see MsgPool in core/messages.h). */
    MsgPool pool_;
    bool trace_ = false;
};

} // namespace widir::coherence

#endif // WIDIR_CORE_FABRIC_H
