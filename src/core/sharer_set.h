/**
 * @file
 * Fixed-width sharer containers for the directory (docs/PERF.md).
 *
 * Dir_3_B keeps at most dirPointers (<= 8 here, 3 in the paper)
 * precise sharer pointers per line before falling back to the bcast
 * bit (Section III-B), and a W->S downgrade collects at most
 * MaxWiredSharers acks -- yet both sets used to be heap-allocated
 * std::vector<NodeId>. SharerPtrs is the drop-in inline replacement:
 * a fixed-capacity array that preserves vector's insertion order and
 * erase semantics exactly, because the order sharers were recorded in
 * is the order invalidations are sent in, and that ordering is
 * visible in the simulated timing (mesh link contention).
 *
 * SharerBits is the companion for the *unordered* node sets that do
 * scale with the machine -- broadcast-invalidation target sets and
 * the coherence checker's holder sets. One bit per tile (up to
 * kMaxNodes = 1024), censused with popcount, iterated in ascending
 * node id order (the order the broadcast loops always used), so a
 * 1024-tile burst costs a 128-byte stack bitset instead of a
 * 1024-entry heap vector.
 */

#ifndef WIDIR_CORE_SHARER_SET_H
#define WIDIR_CORE_SHARER_SET_H

#include <array>
#include <bit>
#include <cstdint>

#include "sim/log.h"
#include "sim/types.h"

namespace widir::coherence {

/**
 * Insertion-ordered, fixed-capacity sharer-pointer set. Deliberately
 * mirrors the std::vector<NodeId> subset the directory uses
 * (push_back / erase-by-iterator shift / range-for / copy-assign) so
 * the observable iteration order is bit-for-bit the old one.
 */
class SharerPtrs
{
  public:
    /** >= the largest dirPointers any config uses (Table VI: 5). */
    static constexpr std::uint32_t kCapacity = 8;

    using iterator = sim::NodeId *;
    using const_iterator = const sim::NodeId *;

    iterator begin() { return ids_.data(); }
    iterator end() { return ids_.data() + count_; }
    const_iterator begin() const { return ids_.data(); }
    const_iterator end() const { return ids_.data() + count_; }

    std::uint32_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    void clear() { count_ = 0; }

    void
    push_back(sim::NodeId n)
    {
        WIDIR_ASSERT(count_ < kCapacity,
                     "sharer-pointer overflow (dirPointers exceeds "
                     "SharerPtrs::kCapacity)");
        ids_[count_++] = n;
    }

    /** vector::erase semantics: shift left, preserving order. */
    void
    erase(const_iterator it)
    {
        WIDIR_ASSERT(it >= begin() && it < end(),
                     "erasing outside the sharer set");
        std::uint32_t i = static_cast<std::uint32_t>(it - begin());
        for (; i + 1 < count_; ++i)
            ids_[i] = ids_[i + 1];
        --count_;
    }

  private:
    std::array<sim::NodeId, kCapacity> ids_{};
    std::uint32_t count_ = 0;
};

/**
 * Fixed-width node bitset: one bit per tile, censused with popcount.
 * Iteration (forEachSet) is ascending node id, matching the order the
 * directory's broadcast loops iterate nodes.
 */
class SharerBits
{
  public:
    /** Widest machine the flat layouts size for (32x32 mesh). */
    static constexpr std::uint32_t kMaxNodes = 1024;

    void
    set(sim::NodeId n)
    {
        WIDIR_ASSERT(n < kMaxNodes, "node %u exceeds SharerBits width",
                     n);
        words_[n >> 6] |= std::uint64_t(1) << (n & 63);
    }

    void
    reset(sim::NodeId n)
    {
        WIDIR_ASSERT(n < kMaxNodes, "node %u exceeds SharerBits width",
                     n);
        words_[n >> 6] &= ~(std::uint64_t(1) << (n & 63));
    }

    bool
    test(sim::NodeId n) const
    {
        WIDIR_ASSERT(n < kMaxNodes, "node %u exceeds SharerBits width",
                     n);
        return (words_[n >> 6] >> (n & 63)) & 1;
    }

    /** Popcount census over the whole set. */
    std::uint32_t
    count() const
    {
        std::uint32_t total = 0;
        for (std::uint64_t w : words_)
            total += static_cast<std::uint32_t>(std::popcount(w));
        return total;
    }

    bool any() const { return count() != 0; }
    bool none() const { return count() == 0; }
    void clear() { words_.fill(0); }

    /** Visit every set bit in ascending node id order. */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w != 0) {
                std::uint32_t bit =
                    static_cast<std::uint32_t>(std::countr_zero(w));
                fn(static_cast<sim::NodeId>((wi << 6) + bit));
                w &= w - 1;
            }
        }
    }

  private:
    std::array<std::uint64_t, kMaxNodes / 64> words_{};
};

} // namespace widir::coherence

#endif // WIDIR_CORE_SHARER_SET_H
