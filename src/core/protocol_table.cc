#include "core/protocol_table.h"

#include <array>

#include "sim/log.h"

namespace widir::coherence {

// ---------------------------------------------------------------------
// Enum -> string helpers
// ---------------------------------------------------------------------

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
      case L1State::W: return "W";
    }
    return "?";
}

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::I:  return "I";
      case DirState::S:  return "S";
      case DirState::EM: return "EM";
      case DirState::W:  return "W";
    }
    return "?";
}

const char *
dirTxnTypeName(DirTxnType t)
{
    switch (t) {
      case DirTxnType::Fetch:      return "Fetch";
      case DirTxnType::FwdS:       return "FwdS";
      case DirTxnType::FwdX:       return "FwdX";
      case DirTxnType::InvColl:    return "InvColl";
      case DirTxnType::RecallEM:   return "RecallEM";
      case DirTxnType::RecallS:    return "RecallS";
      case DirTxnType::RecallW:    return "RecallW";
      case DirTxnType::ToWireless: return "ToWireless";
      case DirTxnType::WJoin:      return "WJoin";
      case DirTxnType::ToShared:   return "ToShared";
    }
    return "?";
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS:       return "GetS";
      case MsgType::GetX:       return "GetX";
      case MsgType::PutS:       return "PutS";
      case MsgType::PutE:       return "PutE";
      case MsgType::PutM:       return "PutM";
      case MsgType::PutW:       return "PutW";
      case MsgType::Data:       return "Data";
      case MsgType::Nack:       return "Nack";
      case MsgType::Inv:        return "Inv";
      case MsgType::FwdGetS:    return "FwdGetS";
      case MsgType::FwdGetX:    return "FwdGetX";
      case MsgType::WirUpgr:    return "WirUpgr";
      case MsgType::InvAck:     return "InvAck";
      case MsgType::OwnerData:  return "OwnerData";
      case MsgType::WirUpgrAck: return "WirUpgrAck";
      case MsgType::WirDwgrAck: return "WirDwgrAck";
    }
    return "?";
}

const char *
grantStateName(GrantState s)
{
    switch (s) {
      case GrantState::S: return "S";
      case GrantState::E: return "E";
      case GrantState::M: return "M";
    }
    return "?";
}

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::BaselineMESI: return "baseline";
      case Protocol::WiDir:        return "widir";
    }
    return "?";
}

const char *
l1EventName(L1Event e)
{
    switch (e) {
      case L1Event::CpuLoad:        return "CpuLoad";
      case L1Event::CpuStore:       return "CpuStore";
      case L1Event::CpuRmw:         return "CpuRmw";
      case L1Event::Evict:          return "Evict";
      case L1Event::MsgData:        return "MsgData";
      case L1Event::MsgNack:        return "MsgNack";
      case L1Event::MsgInv:         return "MsgInv";
      case L1Event::MsgFwdGetS:     return "MsgFwdGetS";
      case L1Event::MsgFwdGetX:     return "MsgFwdGetX";
      case L1Event::MsgWirUpgr:     return "MsgWirUpgr";
      case L1Event::FrameWirUpd:    return "FrameWirUpd";
      case L1Event::FrameBrWirUpgr: return "FrameBrWirUpgr";
      case L1Event::FrameWirDwgr:   return "FrameWirDwgr";
      case L1Event::FrameWirInv:    return "FrameWirInv";
      case L1Event::ChannelFault:   return "ChannelFault";
    }
    return "?";
}

const char *
dirEventName(DirEvent e)
{
    switch (e) {
      case DirEvent::MsgGetS:       return "MsgGetS";
      case DirEvent::MsgGetX:       return "MsgGetX";
      case DirEvent::MsgPutS:       return "MsgPutS";
      case DirEvent::MsgPutE:       return "MsgPutE";
      case DirEvent::MsgPutM:       return "MsgPutM";
      case DirEvent::MsgPutW:       return "MsgPutW";
      case DirEvent::MsgInvAck:     return "MsgInvAck";
      case DirEvent::MsgOwnerData:  return "MsgOwnerData";
      case DirEvent::MsgWirUpgrAck: return "MsgWirUpgrAck";
      case DirEvent::MsgWirDwgrAck: return "MsgWirDwgrAck";
      case DirEvent::FrameWirUpd:   return "FrameWirUpd";
      case DirEvent::FrameWirInv:   return "FrameWirInv";
      case DirEvent::LlcEvict:      return "LlcEvict";
      case DirEvent::CensusDone:    return "CensusDone";
      case DirEvent::ChannelFault:  return "ChannelFault";
    }
    return "?";
}

const char *
l1ActionName(L1Action a)
{
    switch (a) {
      case L1Action::Hit:                return "Hit";
      case L1Action::Miss:               return "Miss";
      case L1Action::Upgrade:            return "Upgrade";
      case L1Action::Wireless:           return "Wireless";
      case L1Action::EvictNotify:        return "EvictNotify";
      case L1Action::FinishFill:         return "FinishFill";
      case L1Action::NackRetry:          return "NackRetry";
      case L1Action::Invalidate:         return "Invalidate";
      case L1Action::SupplyOwner:        return "SupplyOwner";
      case L1Action::ApplyUpdate:        return "ApplyUpdate";
      case L1Action::CensusJoin:         return "CensusJoin";
      case L1Action::Downgrade:          return "Downgrade";
      case L1Action::WirelessInvalidate: return "WirelessInvalidate";
      case L1Action::WirelessWriteFault: return "WirelessWriteFault";
    }
    return "?";
}

const char *
dirActionName(DirAction a)
{
    switch (a) {
      case DirAction::Request:             return "Request";
      case DirAction::SharedEvictNotice:   return "SharedEvictNotice";
      case DirAction::OwnerEvictNotice:    return "OwnerEvictNotice";
      case DirAction::WirelessEvictNotice: return "WirelessEvictNotice";
      case DirAction::CollectInvAck:       return "CollectInvAck";
      case DirAction::OwnerReturn:         return "OwnerReturn";
      case DirAction::CollectJoinAck:      return "CollectJoinAck";
      case DirAction::CollectDwgrAck:      return "CollectDwgrAck";
      case DirAction::ObserveUpdate:       return "ObserveUpdate";
      case DirAction::ObserveWirInv:       return "ObserveWirInv";
      case DirAction::Recall:              return "Recall";
      case DirAction::CensusFinish:        return "CensusFinish";
      case DirAction::WirelessFault:       return "WirelessFault";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Wire input -> event mapping
// ---------------------------------------------------------------------

bool
l1EventOf(MsgType t, L1Event &ev)
{
    switch (t) {
      case MsgType::Data:    ev = L1Event::MsgData; return true;
      case MsgType::Nack:    ev = L1Event::MsgNack; return true;
      case MsgType::Inv:     ev = L1Event::MsgInv; return true;
      case MsgType::FwdGetS: ev = L1Event::MsgFwdGetS; return true;
      case MsgType::FwdGetX: ev = L1Event::MsgFwdGetX; return true;
      case MsgType::WirUpgr: ev = L1Event::MsgWirUpgr; return true;
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::PutM:
      case MsgType::PutW:
      case MsgType::InvAck:
      case MsgType::OwnerData:
      case MsgType::WirUpgrAck:
      case MsgType::WirDwgrAck:
        return false;
    }
    return false;
}

bool
dirEventOf(MsgType t, DirEvent &ev)
{
    switch (t) {
      case MsgType::GetS:       ev = DirEvent::MsgGetS; return true;
      case MsgType::GetX:       ev = DirEvent::MsgGetX; return true;
      case MsgType::PutS:       ev = DirEvent::MsgPutS; return true;
      case MsgType::PutE:       ev = DirEvent::MsgPutE; return true;
      case MsgType::PutM:       ev = DirEvent::MsgPutM; return true;
      case MsgType::PutW:       ev = DirEvent::MsgPutW; return true;
      case MsgType::InvAck:     ev = DirEvent::MsgInvAck; return true;
      case MsgType::OwnerData:  ev = DirEvent::MsgOwnerData; return true;
      case MsgType::WirUpgrAck: ev = DirEvent::MsgWirUpgrAck; return true;
      case MsgType::WirDwgrAck: ev = DirEvent::MsgWirDwgrAck; return true;
      case MsgType::Data:
      case MsgType::Nack:
      case MsgType::Inv:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
      case MsgType::WirUpgr:
        return false;
    }
    return false;
}

L1Event
l1EventOf(wireless::FrameKind k)
{
    switch (k) {
      case wireless::FrameKind::WirUpd:    return L1Event::FrameWirUpd;
      case wireless::FrameKind::BrWirUpgr: return L1Event::FrameBrWirUpgr;
      case wireless::FrameKind::WirDwgr:   return L1Event::FrameWirDwgr;
      case wireless::FrameKind::WirInv:    return L1Event::FrameWirInv;
    }
    sim::panic("unknown frame kind %d", static_cast<int>(k));
}

// ---------------------------------------------------------------------
// Rules: Table I (L1 side)
// ---------------------------------------------------------------------

namespace {

constexpr L1State L1_I = L1State::I;
constexpr L1State L1_S = L1State::S;
constexpr L1State L1_E = L1State::E;
constexpr L1State L1_M = L1State::M;
constexpr L1State L1_W = L1State::W;

// Every (state, event) cell appears at least once; rows for one cell
// agree on the action (validated at startup) and enumerate the cell's
// possible outcome states. A null note means "no traced transition".
constexpr L1Rule kL1Rules[] = {
    // CPU load: hit everywhere but I (a W hit resets UpdateCount).
    {L1_I, L1Event::CpuLoad, L1Action::Miss, L1_I, nullptr, kRuleNone},
    {L1_S, L1Event::CpuLoad, L1Action::Hit, L1_S, nullptr, kRuleNone},
    {L1_E, L1Event::CpuLoad, L1Action::Hit, L1_E, nullptr, kRuleNone},
    {L1_M, L1Event::CpuLoad, L1Action::Hit, L1_M, nullptr, kRuleNone},
    {L1_W, L1Event::CpuLoad, L1Action::Hit, L1_W, nullptr, kRuleNone},

    // CPU store: silent E->M upgrade, wireless broadcast from W,
    // sharer upgrade from S, plain miss from I.
    {L1_I, L1Event::CpuStore, L1Action::Miss, L1_I, nullptr, kRuleNone},
    {L1_S, L1Event::CpuStore, L1Action::Upgrade, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::CpuStore, L1Action::Hit, L1_M, "store", kRuleNone},
    {L1_M, L1Event::CpuStore, L1Action::Hit, L1_M, nullptr, kRuleNone},
    {L1_W, L1Event::CpuStore, L1Action::Wireless, L1_W, nullptr,
     kRuleNone},

    // CPU RMW: like a store (a no-op RMW in W linearizes as a load).
    {L1_I, L1Event::CpuRmw, L1Action::Miss, L1_I, nullptr, kRuleNone},
    {L1_S, L1Event::CpuRmw, L1Action::Upgrade, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::CpuRmw, L1Action::Hit, L1_M, "rmw", kRuleNone},
    {L1_M, L1Event::CpuRmw, L1Action::Hit, L1_M, nullptr, kRuleNone},
    {L1_W, L1Event::CpuRmw, L1Action::Wireless, L1_W, nullptr,
     kRuleNone},

    // Capacity eviction: PutS/PutE/PutM/PutW to the home.
    {L1_I, L1Event::Evict, L1Action::EvictNotify, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::Evict, L1Action::EvictNotify, L1_I, "evict",
     kRuleNone},
    {L1_E, L1Event::Evict, L1Action::EvictNotify, L1_I, "evict",
     kRuleNone},
    {L1_M, L1Event::Evict, L1Action::EvictNotify, L1_I, "evict",
     kRuleNone},
    {L1_W, L1Event::Evict, L1Action::EvictNotify, L1_I, "evict",
     kRuleNone},

    // Data grant: fills the outstanding miss (I->granted state, or
    // S->M on an upgrade; I->W when a census counted the requester,
    // Section III-B1 case iii). In E/M/W the response is stale (the
    // transaction was already resolved another way) and is dropped.
    {L1_I, L1Event::MsgData, L1Action::FinishFill, L1_S, "fill",
     kRuleNone},
    {L1_I, L1Event::MsgData, L1Action::FinishFill, L1_E, "fill",
     kRuleNone},
    {L1_I, L1Event::MsgData, L1Action::FinishFill, L1_M, "fill",
     kRuleNone},
    {L1_I, L1Event::MsgData, L1Action::FinishFill, L1_W, "fill",
     kRuleNone},
    {L1_S, L1Event::MsgData, L1Action::FinishFill, L1_M, "fill",
     kRuleNone},
    {L1_E, L1Event::MsgData, L1Action::FinishFill, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::MsgData, L1Action::FinishFill, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::MsgData, L1Action::FinishFill, L1_W, nullptr,
     kRuleNone},

    // WirUpgr: wired leg of a W join; fills the miss in W.
    {L1_I, L1Event::MsgWirUpgr, L1Action::FinishFill, L1_W, "fill",
     kRuleNone},
    {L1_S, L1Event::MsgWirUpgr, L1Action::FinishFill, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::MsgWirUpgr, L1Action::FinishFill, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::MsgWirUpgr, L1Action::FinishFill, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::MsgWirUpgr, L1Action::FinishFill, L1_W, nullptr,
     kRuleNone},

    // Nack: back off and retry the outstanding request (releases a
    // held census tone). No state change in any state.
    {L1_I, L1Event::MsgNack, L1Action::NackRetry, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::MsgNack, L1Action::NackRetry, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::MsgNack, L1Action::NackRetry, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::MsgNack, L1Action::NackRetry, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::MsgNack, L1Action::NackRetry, L1_W, nullptr,
     kRuleNone},

    // Inv: ack (with data on an owner recall) and drop the copy; a
    // miss still acks (broadcast recalls target every node). An Inv
    // reaching a W copy only happens via the wired fault fallback.
    {L1_I, L1Event::MsgInv, L1Action::Invalidate, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::MsgInv, L1Action::Invalidate, L1_I, "Inv",
     kRuleNone},
    {L1_E, L1Event::MsgInv, L1Action::Invalidate, L1_I, "Inv",
     kRuleNone},
    {L1_M, L1Event::MsgInv, L1Action::Invalidate, L1_I, "Inv",
     kRuleNone},
    {L1_W, L1Event::MsgInv, L1Action::Invalidate, L1_I, "Inv",
     kRuleFaultOnly},

    // FwdGetS: the owner supplies data and downgrades. Only an owner
    // (or a node that already evicted, dropping the forward) can see
    // one; S/W would be a protocol bug (the handler asserts).
    {L1_I, L1Event::MsgFwdGetS, L1Action::SupplyOwner, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::MsgFwdGetS, L1Action::SupplyOwner, L1_S, nullptr,
     kRuleUnreachable},
    {L1_E, L1Event::MsgFwdGetS, L1Action::SupplyOwner, L1_S, "FwdGetS",
     kRuleNone},
    {L1_M, L1Event::MsgFwdGetS, L1Action::SupplyOwner, L1_S, "FwdGetS",
     kRuleNone},
    {L1_W, L1Event::MsgFwdGetS, L1Action::SupplyOwner, L1_W, nullptr,
     kRuleUnreachable},

    // FwdGetX: the owner supplies data and invalidates.
    {L1_I, L1Event::MsgFwdGetX, L1Action::SupplyOwner, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::MsgFwdGetX, L1Action::SupplyOwner, L1_S, nullptr,
     kRuleUnreachable},
    {L1_E, L1Event::MsgFwdGetX, L1Action::SupplyOwner, L1_I, "FwdGetX",
     kRuleNone},
    {L1_M, L1Event::MsgFwdGetX, L1Action::SupplyOwner, L1_I, "FwdGetX",
     kRuleNone},
    {L1_W, L1Event::MsgFwdGetX, L1Action::SupplyOwner, L1_W, nullptr,
     kRuleUnreachable},

    // Foreign WirUpd: W sharers apply the word (and may self-
    // invalidate once UpdateCount trips); everyone else ignores it.
    {L1_I, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_W, nullptr,
     kRuleNone},
    {L1_W, L1Event::FrameWirUpd, L1Action::ApplyUpdate, L1_I,
     "UpdateCount", kRuleNone},

    // BrWirUpgr census: every node raises the tone; current sharers
    // adopt W (case 1/2), nodes with a request in flight hold the
    // tone (case iii), everyone else drops it immediately (case i).
    {L1_I, L1Event::FrameBrWirUpgr, L1Action::CensusJoin, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::FrameBrWirUpgr, L1Action::CensusJoin, L1_W,
     "BrWirUpgr", kRuleNone},
    {L1_E, L1Event::FrameBrWirUpgr, L1Action::CensusJoin, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::FrameBrWirUpgr, L1Action::CensusJoin, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::FrameBrWirUpgr, L1Action::CensusJoin, L1_W, nullptr,
     kRuleNone},

    // WirDwgr: W sharers ack with their id and downgrade.
    {L1_I, L1Event::FrameWirDwgr, L1Action::Downgrade, L1_I, nullptr,
     kRuleNone},
    {L1_S, L1Event::FrameWirDwgr, L1Action::Downgrade, L1_S, nullptr,
     kRuleNone},
    {L1_E, L1Event::FrameWirDwgr, L1Action::Downgrade, L1_E, nullptr,
     kRuleNone},
    {L1_M, L1Event::FrameWirDwgr, L1Action::Downgrade, L1_M, nullptr,
     kRuleNone},
    {L1_W, L1Event::FrameWirDwgr, L1Action::Downgrade, L1_S, "WirDwgr",
     kRuleNone},

    // WirInv: W sharers invalidate and retry pending writes wired.
    {L1_I, L1Event::FrameWirInv, L1Action::WirelessInvalidate, L1_I,
     nullptr, kRuleNone},
    {L1_S, L1Event::FrameWirInv, L1Action::WirelessInvalidate, L1_S,
     nullptr, kRuleNone},
    {L1_E, L1Event::FrameWirInv, L1Action::WirelessInvalidate, L1_E,
     nullptr, kRuleNone},
    {L1_M, L1Event::FrameWirInv, L1Action::WirelessInvalidate, L1_M,
     nullptr, kRuleNone},
    {L1_W, L1Event::FrameWirInv, L1Action::WirelessInvalidate, L1_I,
     "WirInv", kRuleNone},

    // Own WirUpd exhausted its fault-retry budget: leave the group
    // like an UpdateCount expiry and retry the write wired. In any
    // other state the notification is stale (a racing WirDwgr/WirInv
    // already squashed the transmission).
    {L1_I, L1Event::ChannelFault, L1Action::WirelessWriteFault, L1_I,
     nullptr, kRuleFaultOnly},
    {L1_S, L1Event::ChannelFault, L1Action::WirelessWriteFault, L1_S,
     nullptr, kRuleFaultOnly},
    {L1_E, L1Event::ChannelFault, L1Action::WirelessWriteFault, L1_E,
     nullptr, kRuleFaultOnly},
    {L1_M, L1Event::ChannelFault, L1Action::WirelessWriteFault, L1_M,
     nullptr, kRuleFaultOnly},
    {L1_W, L1Event::ChannelFault, L1Action::WirelessWriteFault, L1_I,
     "fault", kRuleFaultOnly},
};

// ---------------------------------------------------------------------
// Rules: Table II (directory side)
// ---------------------------------------------------------------------

constexpr DirState D_I = DirState::I;
constexpr DirState D_S = DirState::S;
constexpr DirState D_EM = DirState::EM;
constexpr DirState D_W = DirState::W;

constexpr DirRule kDirRules[] = {
    // GetS: first reader gets E (traced with the request name, or
    // "fetch" on an LLC miss); in S the sharer set grows (or a census
    // begins); in EM a FwdS transaction opens; in W a join opens.
    // The S->W / EM->S / W->W transitions are traced when the census,
    // the owner return, or the join ack completes (see those events).
    {D_I, DirEvent::MsgGetS, DirAction::Request, D_EM, "GetS",
     kRuleNone},
    {D_I, DirEvent::MsgGetS, DirAction::Request, D_EM, "fetch",
     kRuleNone},
    {D_S, DirEvent::MsgGetS, DirAction::Request, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgGetS, DirAction::Request, D_EM, nullptr,
     kRuleNone},
    {D_W, DirEvent::MsgGetS, DirAction::Request, D_W, nullptr,
     kRuleNone},

    // GetX: like GetS, plus the immediate sole-sharer upgrade in S.
    {D_I, DirEvent::MsgGetX, DirAction::Request, D_EM, "GetX",
     kRuleNone},
    {D_I, DirEvent::MsgGetX, DirAction::Request, D_EM, "fetch",
     kRuleNone},
    {D_S, DirEvent::MsgGetX, DirAction::Request, D_EM, "upgrade",
     kRuleNone},
    {D_S, DirEvent::MsgGetX, DirAction::Request, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgGetX, DirAction::Request, D_EM, nullptr,
     kRuleNone},
    {D_W, DirEvent::MsgGetX, DirAction::Request, D_W, nullptr,
     kRuleNone},

    // PutS: drop the sharer pointer; the last sharer empties the
    // entry. A PutS finding the entry already in W predates the S->W
    // transition and is accounted like a PutW (delegation below).
    {D_I, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_I, "PutS",
     kRuleNone},
    {D_S, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_EM,
     nullptr, kRuleNone},
    {D_W, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_W, "PutW",
     kRuleNone},
    {D_W, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_W, nullptr,
     kRuleNone},
    {D_W, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_S,
     "WirDwgr", kRuleNone},
    {D_W, DirEvent::MsgPutS, DirAction::SharedEvictNotice, D_I,
     "WirDwgr", kRuleNone},

    // PutE: the owner evicted clean. A PutE racing a Fwd*/RecallEM
    // completes that transaction in the owner's stead.
    {D_I, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_I, "PutE",
     kRuleNone},
    {D_EM, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_S,
     "FwdGetS", kRuleNone},
    {D_EM, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_EM,
     "FwdGetX", kRuleNone},
    {D_EM, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_I,
     "recall", kRuleNone},
    {D_W, DirEvent::MsgPutE, DirAction::OwnerEvictNotice, D_W, nullptr,
     kRuleNone},

    // PutM: like PutE but carries the dirty line.
    {D_I, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_I, "PutM",
     kRuleNone},
    {D_EM, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_S,
     "FwdGetS", kRuleNone},
    {D_EM, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_EM,
     "FwdGetX", kRuleNone},
    {D_EM, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_I,
     "recall", kRuleNone},
    {D_W, DirEvent::MsgPutM, DirAction::OwnerEvictNotice, D_W, nullptr,
     kRuleNone},

    // PutW: SharerCount--; the count falling to MaxWiredSharers
    // triggers W->S, and a group emptied outright collapses W->I
    // (finishToShared with no survivors). During transactions the
    // decrement is transaction bookkeeping (no traced transition).
    {D_I, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_I,
     nullptr, kRuleNone},
    {D_S, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_S,
     nullptr, kRuleNone},
    {D_EM, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_EM,
     nullptr, kRuleNone},
    {D_W, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_W,
     "PutW", kRuleNone},
    {D_W, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_W,
     nullptr, kRuleNone},
    {D_W, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_S,
     "WirDwgr", kRuleNone},
    {D_W, DirEvent::MsgPutW, DirAction::WirelessEvictNotice, D_I,
     "WirDwgr", kRuleNone},

    // InvAck: completes InvColl (grant M), RecallS/RecallEM, and --
    // under the wired fault fallback -- ToShared/RecallW.
    {D_I, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_S, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_EM,
     "InvColl", kRuleNone},
    {D_S, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_I, "recall",
     kRuleNone},
    {D_EM, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_EM, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_I, "recall",
     kRuleNone},
    {D_W, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_W, nullptr,
     kRuleNone},
    {D_W, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_I, "WirDwgr",
     kRuleFaultOnly},
    {D_W, DirEvent::MsgInvAck, DirAction::CollectInvAck, D_I, "recall",
     kRuleFaultOnly},

    // OwnerData: completes FwdS (EM->S), FwdX (owner hand-off) or
    // RecallEM; stale after a racing PutE/PutM completed the txn.
    {D_I, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_S,
     "FwdGetS", kRuleNone},
    {D_EM, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_EM,
     "FwdGetX", kRuleNone},
    {D_EM, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_I,
     "recall", kRuleNone},
    {D_W, DirEvent::MsgOwnerData, DirAction::OwnerReturn, D_W, nullptr,
     kRuleNone},

    // WirUpgrAck: a join completed; SharerCount++ (W->W). Any other
    // state would be a protocol bug (the handler asserts).
    {D_I, DirEvent::MsgWirUpgrAck, DirAction::CollectJoinAck, D_I,
     nullptr, kRuleUnreachable},
    {D_S, DirEvent::MsgWirUpgrAck, DirAction::CollectJoinAck, D_S,
     nullptr, kRuleUnreachable},
    {D_EM, DirEvent::MsgWirUpgrAck, DirAction::CollectJoinAck, D_EM,
     nullptr, kRuleUnreachable},
    {D_W, DirEvent::MsgWirUpgrAck, DirAction::CollectJoinAck, D_W,
     "join", kRuleNone},

    // WirDwgrAck: a survivor identified itself; the last expected ack
    // commits W->S (survivors always exist here -- a group that
    // drained to zero finishes via the PutW path instead).
    {D_I, DirEvent::MsgWirDwgrAck, DirAction::CollectDwgrAck, D_I,
     nullptr, kRuleNone},
    {D_S, DirEvent::MsgWirDwgrAck, DirAction::CollectDwgrAck, D_S,
     nullptr, kRuleNone},
    {D_EM, DirEvent::MsgWirDwgrAck, DirAction::CollectDwgrAck, D_EM,
     nullptr, kRuleNone},
    {D_W, DirEvent::MsgWirDwgrAck, DirAction::CollectDwgrAck, D_W,
     nullptr, kRuleNone},
    {D_W, DirEvent::MsgWirDwgrAck, DirAction::CollectDwgrAck, D_S,
     "WirDwgr", kRuleNone},

    // WirUpd observed at the home: write the word through to the LLC
    // copy (W only; anything else is stale).
    {D_I, DirEvent::FrameWirUpd, DirAction::ObserveUpdate, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::FrameWirUpd, DirAction::ObserveUpdate, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::FrameWirUpd, DirAction::ObserveUpdate, D_EM,
     nullptr, kRuleNone},
    {D_W, DirEvent::FrameWirUpd, DirAction::ObserveUpdate, D_W, nullptr,
     kRuleNone},

    // Own WirInv delivery: the W recall's broadcast completed.
    {D_I, DirEvent::FrameWirInv, DirAction::ObserveWirInv, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::FrameWirInv, DirAction::ObserveWirInv, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::FrameWirInv, DirAction::ObserveWirInv, D_EM,
     nullptr, kRuleNone},
    {D_W, DirEvent::FrameWirInv, DirAction::ObserveWirInv, D_I,
     "recall", kRuleNone},

    // LLC eviction: silent replacement in I, a Recall* transaction
    // otherwise (completion is traced under the ack events above).
    {D_I, DirEvent::LlcEvict, DirAction::Recall, D_I, nullptr,
     kRuleNone},
    {D_S, DirEvent::LlcEvict, DirAction::Recall, D_S, nullptr,
     kRuleNone},
    {D_EM, DirEvent::LlcEvict, DirAction::Recall, D_EM, nullptr,
     kRuleNone},
    {D_W, DirEvent::LlcEvict, DirAction::Recall, D_W, nullptr,
     kRuleNone},

    // ToneAck census complete: commit S->W with the counted sharers.
    {D_I, DirEvent::CensusDone, DirAction::CensusFinish, D_I, nullptr,
     kRuleUnreachable},
    {D_S, DirEvent::CensusDone, DirAction::CensusFinish, D_W, "census",
     kRuleNone},
    {D_EM, DirEvent::CensusDone, DirAction::CensusFinish, D_EM, nullptr,
     kRuleUnreachable},
    {D_W, DirEvent::CensusDone, DirAction::CensusFinish, D_W, nullptr,
     kRuleUnreachable},

    // A directory frame exhausted its fault-retry budget: an aborted
    // BrWirUpgr re-dispatches the request wired (which can still
    // upgrade a sole sharer synchronously); a dropped WirDwgr/WirInv
    // becomes a wired Inv broadcast completed under MsgInvAck.
    {D_I, DirEvent::ChannelFault, DirAction::WirelessFault, D_I,
     nullptr, kRuleFaultOnly | kRuleUnreachable},
    {D_S, DirEvent::ChannelFault, DirAction::WirelessFault, D_S,
     nullptr, kRuleFaultOnly},
    {D_S, DirEvent::ChannelFault, DirAction::WirelessFault, D_EM,
     "upgrade", kRuleFaultOnly},
    {D_EM, DirEvent::ChannelFault, DirAction::WirelessFault, D_EM,
     nullptr, kRuleFaultOnly | kRuleUnreachable},
    {D_W, DirEvent::ChannelFault, DirAction::WirelessFault, D_W,
     nullptr, kRuleFaultOnly},
};

// ---------------------------------------------------------------------
// Dispatch tables and edge sets, derived once from the rules
// ---------------------------------------------------------------------

struct DerivedTables
{
    std::array<L1Action, kNumL1States * kNumL1Events> l1Dispatch;
    std::array<DirAction, kNumDirStates * kNumDirEvents> dirDispatch;
    // edge masks: bit `to` set in [from] when a noted rule traces it
    std::array<std::uint8_t, kNumL1States> l1Edges;
    std::array<std::uint8_t, kNumDirStates> dirEdges;
};

DerivedTables
buildTables()
{
    DerivedTables t{};
    constexpr auto kNoL1 = static_cast<L1Action>(0xff);
    constexpr auto kNoDir = static_cast<DirAction>(0xff);
    t.l1Dispatch.fill(kNoL1);
    t.dirDispatch.fill(kNoDir);
    t.l1Edges.fill(0);
    t.dirEdges.fill(0);

    for (const L1Rule &r : kL1Rules) {
        std::size_t cell = static_cast<std::size_t>(r.from) *
                               kNumL1Events +
                           static_cast<std::size_t>(r.event);
        WIDIR_ASSERT(t.l1Dispatch[cell] == kNoL1 ||
                         t.l1Dispatch[cell] == r.action,
                     "L1 rule rows for (%s, %s) disagree on the action",
                     l1StateName(r.from), l1EventName(r.event));
        t.l1Dispatch[cell] = r.action;
        if (r.note)
            t.l1Edges[static_cast<std::size_t>(r.from)] |=
                std::uint8_t{1} << static_cast<std::uint8_t>(r.to);
    }
    for (const DirRule &r : kDirRules) {
        std::size_t cell = static_cast<std::size_t>(r.from) *
                               kNumDirEvents +
                           static_cast<std::size_t>(r.event);
        WIDIR_ASSERT(t.dirDispatch[cell] == kNoDir ||
                         t.dirDispatch[cell] == r.action,
                     "dir rule rows for (%s, %s) disagree on the action",
                     dirStateName(r.from), dirEventName(r.event));
        t.dirDispatch[cell] = r.action;
        if (r.note)
            t.dirEdges[static_cast<std::size_t>(r.from)] |=
                std::uint8_t{1} << static_cast<std::uint8_t>(r.to);
    }
    for (std::size_t i = 0; i < t.l1Dispatch.size(); ++i)
        WIDIR_ASSERT(t.l1Dispatch[i] != kNoL1,
                     "L1 cell (%s, %s) has no rule",
                     l1StateName(static_cast<L1State>(i / kNumL1Events)),
                     l1EventName(static_cast<L1Event>(i % kNumL1Events)));
    for (std::size_t i = 0; i < t.dirDispatch.size(); ++i)
        WIDIR_ASSERT(
            t.dirDispatch[i] != kNoDir, "dir cell (%s, %s) has no rule",
            dirStateName(static_cast<DirState>(i / kNumDirEvents)),
            dirEventName(static_cast<DirEvent>(i % kNumDirEvents)));
    return t;
}

const DerivedTables &
tables()
{
    static const DerivedTables t = buildTables();
    return t;
}

} // namespace

std::span<const L1Rule>
l1Rules()
{
    return kL1Rules;
}

std::span<const DirRule>
dirRules()
{
    return kDirRules;
}

L1Action
l1ActionFor(L1State s, L1Event e)
{
    return tables().l1Dispatch[static_cast<std::size_t>(s) *
                                   kNumL1Events +
                               static_cast<std::size_t>(e)];
}

DirAction
dirActionFor(DirState s, DirEvent e)
{
    return tables().dirDispatch[static_cast<std::size_t>(s) *
                                    kNumDirEvents +
                                static_cast<std::size_t>(e)];
}

bool
l1EdgeLegal(L1State from, L1State to)
{
    return (tables().l1Edges[static_cast<std::size_t>(from)] >>
            static_cast<std::uint8_t>(to)) &
           1u;
}

bool
dirEdgeLegal(DirState from, DirState to)
{
    return (tables().dirEdges[static_cast<std::size_t>(from)] >>
            static_cast<std::uint8_t>(to)) &
           1u;
}

} // namespace widir::coherence
