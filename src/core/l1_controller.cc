#include "core/l1_controller.h"

#include <algorithm>
#include <memory>

#include "mem/address.h"
#include "sim/log.h"

namespace widir::coherence {

using mem::CacheEntry;
using mem::lineAlign;
using sim::Addr;
using sim::Tick;

L1Controller::L1Controller(CoherenceFabric &fabric, sim::NodeId node,
                           const CacheConfig &cache_cfg)
    : fabric_(fabric), node_(node),
      array_(cache_cfg.sizeBytes, cache_cfg.assoc),
      rng_(fabric.simulator().makeRng(0x11C0DE0000ULL + node))
{
    // Live transactions are bounded by the lines this cache can pin
    // (a txn locks its resident line), so the cache geometry gives a
    // rehash-free reserve for both flat maps.
    std::size_t lines = cache_cfg.sizeBytes / mem::kLineBytes;
    txns_.reserve(std::min<std::size_t>(lines, 1024));
    wirelessTxns_.reserve(std::min<std::size_t>(lines, 1024));
}

void
L1Controller::send(Msg msg)
{
    msg.src = node_;
    fabric_.sendWired(msg);
}

void
L1Controller::traceState(Addr line, L1State from, L1State to,
                         const char *why)
{
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = fabric_.simulator().now();
    r.kind = sim::TraceKind::L1Transition;
    r.comp = sim::TraceComponent::L1;
    r.node = node_;
    r.line = line;
    r.from = static_cast<std::uint8_t>(from);
    r.to = static_cast<std::uint8_t>(to);
    r.fromName = l1StateName(from);
    r.toName = l1StateName(to);
    r.note = why;
    tracer.emit(r);
}

void
L1Controller::traceMshr(sim::TraceKind kind, Addr line, const char *req,
                        const char *why)
{
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (!(sim::kTraceCompiled && tracer.enabled()))
        return;
    sim::TraceRecord r;
    r.tick = fabric_.simulator().now();
    r.kind = kind;
    r.comp = sim::TraceComponent::L1;
    r.node = node_;
    r.line = line;
    r.opName = req;
    r.note = why;
    tracer.emit(r);
}

void
L1Controller::complete(std::uint64_t token, std::uint64_t value)
{
    WIDIR_ASSERT(static_cast<bool>(complete_),
                 "L1 %u has no completion callback", node_);
    complete_(token, value);
}

L1State
L1Controller::stateOf(Addr addr) const
{
    const CacheEntry *e = array_.lookup(addr);
    return e ? static_cast<L1State>(e->state) : L1State::I;
}

bool
L1Controller::peekWord(Addr addr, std::uint64_t &value) const
{
    const CacheEntry *e = array_.lookup(addr);
    if (!e)
        return false;
    value = e->data.word(addr);
    return true;
}

bool
L1Controller::hasPendingTxn(Addr addr) const
{
    return txns_.count(lineAlign(addr)) > 0 ||
           wirelessTxns_.count(lineAlign(addr)) > 0;
}

// ---------------------------------------------------------------------
// CPU-facing operations
// ---------------------------------------------------------------------

void
L1Controller::read(Addr addr, std::uint64_t token)
{
    WIDIR_ASSERT(mem::wordAligned(addr), "unaligned load");
    ++stats_.loads;
    CacheEntry *e = array_.lookup(addr);
    L1State st = e ? static_cast<L1State>(e->state) : L1State::I;
    L1Action act = l1ActionFor(st, L1Event::CpuLoad);
    if (act == L1Action::Hit) {
        // Hit in S/E/M/W: serve after the L1 round trip. A local access
        // to a W line resets UpdateCount (Table I, W->W on read).
        ++stats_.loadHits;
        e->updateCount = 0;
        array_.touch(e, fabric_.simulator().now());
        std::uint64_t value = e->data.word(addr);
        fabric_.simulator().scheduleInline(
            fabric_.config().l1HitLatency,
            [this, token, value] { complete(token, value); });
        return;
    }
    WIDIR_ASSERT(act == L1Action::Miss, "bad table action for load");
    PendingOp op;
    op.kind = TxnKind::Read;
    op.token = token;
    op.addr = addr;
    startMiss(op, lineAlign(addr), false);
}

void
L1Controller::write(Addr addr, std::uint64_t value, std::uint64_t token)
{
    WIDIR_ASSERT(mem::wordAligned(addr), "unaligned store");
    ++stats_.stores;
    CacheEntry *e = array_.lookup(addr);
    L1State st = e ? static_cast<L1State>(e->state) : L1State::I;

    PendingOp op;
    op.kind = TxnKind::Write;
    op.token = token;
    op.addr = addr;
    op.storeValue = value;

    // Per-location store ordering: any outstanding transaction for the
    // line (wired or wireless) is the single ordering point -- later
    // same-line stores queue behind it no matter what the cache state
    // currently says. Otherwise a store could race ahead of older
    // stores parked in an in-flight upgrade or a backed-off wireless
    // transmission.
    Addr line = lineAlign(addr);
    if (auto tit = txns_.find(line); tit != txns_.end()) {
        tit->second.ops.push_back(op);
        return;
    }
    if (auto wit = wirelessTxns_.find(line); wit != wirelessTxns_.end()) {
        ++stats_.storeHits;
        wit->second.deferred.push_back(op);
        return;
    }

    L1Action act = l1ActionFor(st, L1Event::CpuStore);
    if (act == L1Action::Hit) {
        // Silent E->M upgrade plus local write.
        ++stats_.storeHits;
        if (st == L1State::E)
            traceState(line, L1State::E, L1State::M, "store");
        e->state = static_cast<std::uint8_t>(L1State::M);
        e->dirty = true;
        e->data.setWord(addr, value);
        array_.touch(e, fabric_.simulator().now());
        fabric_.simulator().scheduleInline(
            fabric_.config().l1HitLatency,
            [this, token, value] { complete(token, value); });
    } else if (act == L1Action::Wireless) {
        // Table I, W->W on write: broadcast the word via the WNoC; the
        // local copy merges only once transmission is guaranteed.
        ++stats_.storeHits;
        issueWirelessWrite(op);
    } else if (act == L1Action::Upgrade) {
        // Upgrade: GetX indicating we already share the line.
        startMiss(op, lineAlign(addr), true);
    } else {
        WIDIR_ASSERT(act == L1Action::Miss,
                     "bad table action for store");
        startMiss(op, lineAlign(addr), false);
    }
}

void
L1Controller::rmw(Addr addr,
                  std::function<std::uint64_t(std::uint64_t)> modify,
                  std::uint64_t token)
{
    WIDIR_ASSERT(mem::wordAligned(addr), "unaligned RMW");
    ++stats_.rmws;
    CacheEntry *e = array_.lookup(addr);
    L1State st = e ? static_cast<L1State>(e->state) : L1State::I;

    PendingOp op;
    op.kind = TxnKind::Rmw;
    op.token = token;
    op.addr = addr;
    op.modify = std::move(modify);

    // Same ordering-point rule as write(). (The core drains its write
    // buffer before issuing an RMW, so in practice nothing same-line
    // is outstanding here; this is belt-and-braces for direct users of
    // the L1 API.)
    Addr line = lineAlign(addr);
    if (auto tit = txns_.find(line); tit != txns_.end()) {
        tit->second.ops.push_back(op);
        return;
    }
    if (auto wit = wirelessTxns_.find(line); wit != wirelessTxns_.end()) {
        wit->second.deferred.push_back(op);
        return;
    }

    L1Action act = l1ActionFor(st, L1Event::CpuRmw);
    if (act == L1Action::Hit) {
        // Ownership makes the local update atomic.
        std::uint64_t old = e->data.word(addr);
        if (st == L1State::E)
            traceState(line, L1State::E, L1State::M, "rmw");
        e->state = static_cast<std::uint8_t>(L1State::M);
        e->dirty = true;
        e->data.setWord(addr, op.modify(old));
        array_.touch(e, fabric_.simulator().now());
        fabric_.simulator().scheduleInline(
            fabric_.config().l1HitLatency,
            [this, token, old] { complete(token, old); });
    } else if (act == L1Action::Wireless) {
        // A no-op RMW (e.g. a failed compare-and-swap: the modify
        // function returns the value unchanged) performs no store, so
        // nothing needs to broadcast; it linearizes at its local read
        // like an ordinary load.
        std::uint64_t cur = e->data.word(addr);
        if (op.modify(cur) == cur) {
            e->updateCount = 0;
            array_.touch(e, fabric_.simulator().now());
            fabric_.simulator().scheduleInline(
                fabric_.config().l1HitLatency,
                [this, token, cur] { complete(token, cur); });
            return;
        }
        // Section IV-C: wireless RMW. Pin the line, send the new value;
        // any intervening update/invalidate retries the whole RMW.
        e->locked = true;
        issueWirelessWrite(op);
    } else if (act == L1Action::Upgrade) {
        startMiss(op, lineAlign(addr), true);
    } else {
        WIDIR_ASSERT(act == L1Action::Miss, "bad table action for RMW");
        startMiss(op, lineAlign(addr), false);
    }
}

// ---------------------------------------------------------------------
// Wired miss path
// ---------------------------------------------------------------------

void
L1Controller::startMiss(const PendingOp &op, Addr line,
                        bool is_sharer_upgrade)
{
    auto it = txns_.find(line);
    if (it != txns_.end()) {
        // Coalesce behind the outstanding transaction. If a write joins
        // a read-only transaction we conservatively leave the request
        // type alone; the fill completes the read and the write then
        // re-executes against the filled state.
        it->second.ops.push_back(op);
        return;
    }
    Txn txn;
    txn.line = line;
    txn.request = (op.kind == TxnKind::Read) ? MsgType::GetS
                                             : MsgType::GetX;
    txn.isSharerUpgrade = is_sharer_upgrade;
    txn.ops.push_back(op);
    // Pin a resident copy (upgrade in flight) against replacement; the
    // fill or invalidation that ends the transaction unpins it.
    if (CacheEntry *e = array_.lookup(line))
        e->locked = true;
    if (op.kind == TxnKind::Read)
        ++stats_.readMisses;
    else
        ++stats_.writeMisses;
    auto [ins, ok] = txns_.try_emplace(line, std::move(txn));
    WIDIR_ASSERT(ok, "duplicate txn");
    traceMshr(sim::TraceKind::MshrAlloc, line,
              msgTypeName(ins->second.request),
              is_sharer_upgrade ? "upgrade" : nullptr);
    sendRequest(ins->second);
}

void
L1Controller::sendRequest(Txn &txn)
{
    // Recompute the sharer indication from the *current* cache state:
    // an Inv may have taken our copy while a previous send was in
    // flight, and a stale "I am a sharer" flag would let a W-state
    // directory discard the request as redundant (Table II, W->W
    // case 2) when it is not.
    CacheEntry *e = array_.lookup(txn.line);
    txn.isSharerUpgrade =
        e && static_cast<L1State>(e->state) == L1State::S;
    Msg msg;
    msg.type = txn.request;
    msg.dst = fabric_.homeOf(txn.line);
    msg.line = txn.line;
    msg.isSharer = txn.isSharerUpgrade;
    send(msg);
}

void
L1Controller::retryAfterNack(Addr line)
{
    auto it = txns_.find(line);
    if (it == txns_.end())
        return;
    Txn &txn = it->second;
    ++txn.retries;
    const auto &cfg = fabric_.config();
    // Exponential backoff: long directory transactions (joins,
    // censuses) would otherwise drown the mesh in retry traffic.
    Tick scale = Tick{1} << std::min<std::uint32_t>(txn.retries, 4);
    Tick delay = cfg.nackRetryBase * scale +
                 rng_.below((cfg.nackRetryJitter ? cfg.nackRetryJitter
                                                 : 1) *
                            scale);
    fabric_.simulator().scheduleInline(delay, [this, line] {
        auto it2 = txns_.find(line);
        if (it2 != txns_.end())
            sendRequest(it2->second);
    });
}

// ---------------------------------------------------------------------
// Completion plumbing
// ---------------------------------------------------------------------

void
L1Controller::completeOps(std::vector<PendingOp> ops)
{
    // Re-execute each queued op against the (now filled) cache state.
    // Reads complete immediately; writes/RMWs re-enter the normal path
    // so that e.g. a write that coalesced behind a GetS performs its
    // own upgrade if the fill granted only S.
    for (auto &op : ops) {
        switch (op.kind) {
          case TxnKind::Read: {
            CacheEntry *e = array_.lookup(op.addr);
            if (e && static_cast<L1State>(e->state) != L1State::I) {
                e->updateCount = 0;
                complete(op.token, e->data.word(op.addr));
            } else {
                // Line vanished between fill and drain (e.g. WirInv
                // raced the fill): retry as a fresh miss.
                --stats_.loads; // read() will count it again
                read(op.addr, op.token);
            }
            break;
          }
          case TxnKind::Write:
            --stats_.stores;
            write(op.addr, op.storeValue, op.token);
            break;
          case TxnKind::Rmw:
            --stats_.rmws;
            rmw(op.addr, std::move(op.modify), op.token);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Fills and evictions
// ---------------------------------------------------------------------


mem::CacheEntry *
L1Controller::makeRoom(Addr line)
{
    if (CacheEntry *hit = array_.lookup(line))
        return hit;
    CacheEntry *victim = array_.pickVictim(line);
    if (!victim)
        return nullptr;
    if (victim->valid)
        evict(victim);
    return victim;
}

void
L1Controller::evict(CacheEntry *victim)
{
    ++stats_.evictions;
    Msg msg;
    msg.line = victim->line;
    msg.dst = fabric_.homeOf(victim->line);
    switch (static_cast<L1State>(victim->state)) {
      case L1State::M:
        msg.type = MsgType::PutM;
        msg.hasData = true;
        msg.data = victim->data;
        msg.dirtyData = true;
        break;
      case L1State::E:
        msg.type = MsgType::PutE;
        break;
      case L1State::S:
        msg.type = MsgType::PutS;
        break;
      case L1State::W:
        // Table I, W->I on eviction: notify with PutW over the wired
        // network (III-B2: wired to save wireless bandwidth).
        msg.type = MsgType::PutW;
        ++stats_.putWSent;
        break;
      case L1State::I:
        array_.invalidate(victim);
        return;
    }
    traceState(victim->line, static_cast<L1State>(victim->state),
               L1State::I, "evict");
    array_.invalidate(victim);
    send(msg);
}

void
L1Controller::applyFillAs(const Msg &msg, bool force_w,
                          std::function<void()> done)
{
    CacheEntry *frame = makeRoom(msg.line);
    if (!frame) {
        // Every way is pinned (rare: RMW-pinned plus concurrent fill in
        // a 2-way set). Retry the fill shortly, carrying the completion
        // along. The ~100-byte Msg capture takes the event queue's
        // heap-fallback path; this is the cold exception, not the hot
        // fill path.
        Msg copy = msg;
        fabric_.simulator().schedule(
            4, [this, copy, force_w, done = std::move(done)]() mutable {
                applyFillAs(copy, force_w, std::move(done));
            });
        return;
    }
    L1State st = L1State::S;
    if (msg.type == MsgType::WirUpgr || force_w) {
        st = L1State::W;
    } else {
        switch (msg.grant) {
          case GrantState::S: st = L1State::S; break;
          case GrantState::E: st = L1State::E; break;
          case GrantState::M: st = L1State::M; break;
        }
    }
    WIDIR_ASSERT(msg.hasData, "fill without data");
    // The frame still holds the pre-fill copy on an in-place upgrade
    // (same line); a fresh or recycled frame fills from I.
    L1State old = (frame->valid && frame->line == msg.line)
        ? static_cast<L1State>(frame->state)
        : L1State::I;
    array_.fill(frame, msg.line, static_cast<std::uint8_t>(st),
                msg.data);
    if (st == L1State::M)
        frame->dirty = true;
    if (old != st)
        traceState(msg.line, old, st, "fill");
    if (done)
        done();
}

void
L1Controller::finishFill(const Msg &msg)
{
    auto it = txns_.find(msg.line);
    if (it == txns_.end()) {
        // Response for a transaction that BrWirUpgr already satisfied
        // and erased: drop it (the directory also discards the stale
        // request side).
        return;
    }
    Txn txn = std::move(it->second);
    txns_.erase(it);
    traceMshr(sim::TraceKind::MshrRetire, msg.line,
              msgTypeName(txn.request), "fill");
    bool fill_as_w = txn.fillAsW && msg.type == MsgType::Data;
    if (fill_as_w) {
        // The line arrived while we held the census tone: the census
        // counted us, so the copy enters W (case iii of III-B1). Only
        // an S grant can be in flight across an S->W transition.
        WIDIR_ASSERT(msg.grant == GrantState::S,
                     "non-S grant crossed a BrWirUpgr census");
    }
    // The tone, the join ack and the queued ops wait for the fill to
    // actually land (it can be postponed behind a fully pinned set):
    // draining the ops against a still-Invalid line would re-request a
    // grant the directory has already accounted for.
    bool join_ack = msg.type == MsgType::WirUpgr && msg.needsAck;
    NodeId ack_dst = msg.src;
    Addr ack_line = msg.line;
    applyFillAs(msg, fill_as_w,
                [this, join_ack, ack_dst, ack_line,
                 txn = std::move(txn)]() mutable {
        dropToneIfHeld(txn);
        if (join_ack) {
            // Table I, I->W when the directory is already in W: ack
            // the join so the directory can bump SharerCount (Table
            // II, W->W).
            Msg ack;
            ack.type = MsgType::WirUpgrAck;
            ack.dst = ack_dst;
            ack.line = ack_line;
            send(ack);
        }
        completeOps(std::move(txn.ops));
    });
}

// ---------------------------------------------------------------------
// Wireless write / RMW path (Section IV-C)
// ---------------------------------------------------------------------

void
L1Controller::issueWirelessWrite(const PendingOp &op)
{
    Addr line = lineAlign(op.addr);
    auto it = wirelessTxns_.find(line);
    if (it != wirelessTxns_.end()) {
        // A frame for this line is already in flight. Every wireless
        // write is its own WirUpd broadcast (sharers must observe each
        // value), so later same-line ops wait their turn.
        it->second.deferred.push_back(op);
        return;
    }

    CacheEntry *e = array_.lookup(op.addr);
    WIDIR_ASSERT(e && static_cast<L1State>(e->state) == L1State::W,
                 "wireless write on a non-W line");
    // Pin the line: it may not be evicted while its update is queued
    // at the transceiver (and Section IV-C pins RMW lines explicitly).
    e->locked = true;

    WirelessTxn wtxn;
    wtxn.line = line;
    wtxn.op = op;
    auto [ins, ok] = wirelessTxns_.try_emplace(line, std::move(wtxn));
    WIDIR_ASSERT(ok, "duplicate wireless txn");
    traceMshr(sim::TraceKind::MshrAlloc, line, "WirUpd",
              op.kind == TxnKind::Rmw ? "rmw" : "store");

    wireless::Frame frame;
    frame.src = node_;
    frame.kind = wireless::FrameKind::WirUpd;
    frame.lineAddr = line;
    frame.wordAddr = op.addr;
    // For RMWs the transmitted value is a function of the local word.
    // The local word cannot change between issue and commit: a remote
    // update in that window squashes and retries the RMW (the paper's
    // monitoring, Section IV-C), so computing the result here is
    // equivalent. `modify` must therefore be a pure function.
    frame.value = (op.kind == TxnKind::Rmw)
        ? ins->second.op.modify(e->data.word(op.addr))
        : op.storeValue;

    auto *channel = fabric_.dataChannel();
    WIDIR_ASSERT(channel, "wireless write without a wireless channel");
    ins->second.channelToken = channel->transmit(
        frame, [this, line] { wirelessCommit(line); },
        [this, line] { wirelessWriteFault(line); });
}

void
L1Controller::wirelessWriteFault(Addr line)
{
    // The channel exhausted the fault-retry budget for our WirUpd
    // (docs/FAULTS.md). The frame never committed, so no sharer saw
    // anything. Degrade gracefully: leave the wireless sharing group
    // exactly like an UpdateCount expiry (PutW to the home, W -> I)
    // and retry the queued ops -- with the line now Invalid they take
    // the wired GetX path.
    auto it = wirelessTxns_.find(line);
    if (it == wirelessTxns_.end())
        return; // a racing WirDwgr/WirInv already squashed us
    ++stats_.wirelessFallbacks;
    sim::Tracer &tracer = fabric_.simulator().tracer();
    if (sim::kTraceCompiled && tracer.enabled()) {
        sim::TraceRecord r;
        r.tick = fabric_.simulator().now();
        r.kind = sim::TraceKind::WirelessFallback;
        r.comp = sim::TraceComponent::L1;
        r.node = node_;
        r.line = line;
        r.opName = "WirUpd";
        tracer.emit(r);
    }
    squashWireless(line, true);
    CacheEntry *e = array_.lookup(line);
    if (e && static_cast<L1State>(e->state) == L1State::W) {
        ++stats_.putWSent;
        Msg put;
        put.type = MsgType::PutW;
        put.dst = fabric_.homeOf(line);
        put.line = line;
        traceState(line, L1State::W, L1State::I, "fault");
        array_.invalidate(e);
        send(put);
    }
}

void
L1Controller::wirelessCommit(Addr line)
{
    auto it = wirelessTxns_.find(line);
    if (it == wirelessTxns_.end())
        return; // squashed between channel grant and commit event
    WirelessTxn wtxn = std::move(it->second);
    wirelessTxns_.erase(it);
    traceMshr(sim::TraceKind::MshrRetire, line, "WirUpd", "commit");

    CacheEntry *e = array_.lookup(line);
    WIDIR_ASSERT(e && static_cast<L1State>(e->state) == L1State::W,
                 "wireless commit on a non-W line");
    ++stats_.wirelessWrites;
    e->locked = false;

    std::uint64_t completion_value;
    PendingOp &op = wtxn.op;
    if (op.kind == TxnKind::Rmw) {
        std::uint64_t old = e->data.word(op.addr);
        e->data.setWord(op.addr, op.modify(old));
        completion_value = old;
    } else {
        e->data.setWord(op.addr, op.storeValue);
        completion_value = op.storeValue;
    }
    e->updateCount = 0;
    array_.touch(e, fabric_.simulator().now());

    // Re-issue the next same-line write BEFORE completing the CPU
    // token: completion synchronously drains the core's write buffer,
    // and a younger same-line store arriving then must find this queue
    // in place or it would jump ahead of the deferred ops.
    if (!wtxn.deferred.empty()) {
        PendingOp next = std::move(wtxn.deferred.front());
        std::vector<PendingOp> rest(
            std::make_move_iterator(wtxn.deferred.begin() + 1),
            std::make_move_iterator(wtxn.deferred.end()));
        issueWirelessWrite(next);
        auto nit = wirelessTxns_.find(line);
        WIDIR_ASSERT(nit != wirelessTxns_.end(),
                     "deferred reissue lost its txn");
        for (auto &d : rest)
            nit->second.deferred.push_back(std::move(d));
    }
    complete(op.token, completion_value);
}

void
L1Controller::squashWireless(Addr line, bool retry_wired)
{
    auto it = wirelessTxns_.find(line);
    if (it == wirelessTxns_.end())
        return;
    WirelessTxn wtxn = std::move(it->second);
    wirelessTxns_.erase(it);
    traceMshr(sim::TraceKind::MshrRetire, line, "WirUpd", "squash");
    fabric_.dataChannel()->cancelPending(wtxn.channelToken);
    ++stats_.wirelessSquashes;

    if (CacheEntry *e = array_.lookup(line))
        e->locked = false;

    WIDIR_ASSERT(retry_wired,
                 "squashed wireless ops must be retried");
    // Section IV-C: squash the pending write and retry it; the retry
    // re-enters through the normal CPU path and takes whatever route
    // the new cache state dictates (wired GetX after a WirInv, wired
    // upgrade after a WirDwgr, or wireless again if still W).
    //
    // The retry is dispersed by a few cycles: squashes are triggered
    // by a broadcast delivery, so every squashed core would otherwise
    // re-arbitrate at the same tick and collide deterministically
    // (the pipeline replay of the RMW takes a few cycles anyway).
    auto ops = std::make_shared<std::vector<PendingOp>>();
    ops->push_back(std::move(wtxn.op));
    for (auto &d : wtxn.deferred)
        ops->push_back(std::move(d));
    Tick disperse = 1 + rng_.below(10);
    fabric_.simulator().scheduleInline(disperse, [this, ops] {
        for (auto &op : *ops) {
            switch (op.kind) {
              case TxnKind::Write:
                --stats_.stores;
                write(op.addr, op.storeValue, op.token);
                break;
              case TxnKind::Rmw:
                --stats_.rmws;
                rmw(op.addr, std::move(op.modify), op.token);
                break;
              case TxnKind::Read:
                sim::panic("read in wireless txn");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Incoming wired messages
// ---------------------------------------------------------------------

void
L1Controller::receive(const Msg &msg)
{
    L1Event ev;
    if (!l1EventOf(msg.type, ev))
        sim::panic("L1 %u received unexpected %s", node_,
                   msgTypeName(msg.type));
    // Select the action from the protocol table. The action is the
    // same in every state for these events (the handlers resolve the
    // per-state outcomes internally), so this lookup is structurally
    // equivalent to the old switch on the message type.
    L1Action act = l1ActionFor(stateOf(msg.line), ev);
    if (act == L1Action::FinishFill) {
        finishFill(msg);
    } else if (act == L1Action::NackRetry) {
        handleNack(msg);
    } else if (act == L1Action::Invalidate) {
        handleInv(msg);
    } else {
        WIDIR_ASSERT(act == L1Action::SupplyOwner,
                     "bad table action for %s", msgTypeName(msg.type));
        handleFwd(msg);
    }
}

void
L1Controller::handleNack(const Msg &msg)
{
    ++stats_.nacksSeen;
    auto it = txns_.find(msg.line);
    if (it == txns_.end())
        return;
    // A bounced response also releases a census tone held for this
    // request (Section III-B1, completion case iii). The census is
    // over for us: a fill delivered to the retried request is a fresh
    // post-census grant and must be installed as granted.
    dropToneIfHeld(it->second);
    it->second.fillAsW = false;
    retryAfterNack(msg.line);
}

void
L1Controller::handleInv(const Msg &msg)
{
    CacheEntry *e = array_.lookup(msg.line);
    Msg ack;
    ack.type = MsgType::InvAck;
    ack.dst = msg.src;
    ack.line = msg.line;
    if (e && static_cast<L1State>(e->state) != L1State::I) {
        if (static_cast<L1State>(e->state) == L1State::W) {
            // Wired-fallback invalidation (docs/FAULTS.md): the home
            // could not get a WirDwgr/WirInv frame onto the faulty
            // channel and broadcast wired Invs instead. Treat it like
            // a WirInv: invalidate, ack without data (the home's LLC
            // slice observes every committed WirUpd, so W data is
            // never lost), and squash-and-retry any pending write.
            traceState(msg.line, L1State::W, L1State::I, "Inv");
            array_.invalidate(e);
            send(ack);
            squashWireless(msg.line, true);
            return;
        }
        if (msg.needData &&
            (static_cast<L1State>(e->state) == L1State::M)) {
            ack.hasData = true;
            ack.data = e->data;
            ack.dirtyData = true;
        }
        traceState(msg.line, static_cast<L1State>(e->state),
                   L1State::I, "Inv");
        array_.invalidate(e);
    }
    send(ack);
}

void
L1Controller::handleFwd(const Msg &msg)
{
    CacheEntry *e = array_.lookup(msg.line);
    if (!e || static_cast<L1State>(e->state) == L1State::I) {
        // We already evicted: our PutE/PutM is in flight and will
        // complete the directory's transaction; drop the forward.
        return;
    }
    L1State st = static_cast<L1State>(e->state);
    WIDIR_ASSERT(st == L1State::E || st == L1State::M,
                 "Fwd to non-owner (state %s)", l1StateName(st));
    Msg resp;
    resp.type = MsgType::OwnerData;
    resp.dst = msg.src;
    resp.line = msg.line;
    resp.hasData = true;
    resp.data = e->data;
    resp.dirtyData = (st == L1State::M);
    if (msg.type == MsgType::FwdGetS) {
        traceState(msg.line, st, L1State::S, "FwdGetS");
        e->state = static_cast<std::uint8_t>(L1State::S);
        e->dirty = false;
    } else {
        traceState(msg.line, st, L1State::I, "FwdGetX");
        array_.invalidate(e);
    }
    send(resp);
}

// ---------------------------------------------------------------------
// Incoming wireless frames (Table I)
// ---------------------------------------------------------------------

void
L1Controller::receiveFrame(const wireless::Frame &frame)
{
    // As in receive(): the table action is uniform across states for
    // each frame kind; the handlers keep the per-state behavior.
    L1Action act =
        l1ActionFor(stateOf(frame.lineAddr), l1EventOf(frame.kind));
    if (act == L1Action::ApplyUpdate) {
        handleWirUpd(frame);
    } else if (act == L1Action::CensusJoin) {
        handleBrWirUpgr(frame);
    } else if (act == L1Action::Downgrade) {
        handleWirDwgr(frame);
    } else {
        WIDIR_ASSERT(act == L1Action::WirelessInvalidate,
                     "bad table action for frame");
        handleWirInv(frame);
    }
}

void
L1Controller::handleWirUpd(const wireless::Frame &frame)
{
    if (frame.src == node_)
        return; // own update was merged at commit
    CacheEntry *e = array_.lookup(frame.lineAddr);
    if (!e || static_cast<L1State>(e->state) != L1State::W)
        return;
    // Apply the fine-grain update.
    e->data.setWord(frame.wordAddr, frame.value);
    ++stats_.updatesApplied;

    // A pending local wireless RMW races this update: the paper's
    // hardware monitors for exactly this and retries the RMW with the
    // fresh value (Section IV-C). A pending plain write keeps its queue
    // slot (its value overwrites this one at its own commit).
    auto wit = wirelessTxns_.find(frame.lineAddr);
    if (wit != wirelessTxns_.end() &&
        wit->second.op.kind == TxnKind::Rmw) {
        squashWireless(frame.lineAddr, true);
        e = array_.lookup(frame.lineAddr); // retry path may not refill
    }

    // UpdateCount self-invalidation (Section III-B2): after too many
    // remote updates with no local access, leave the sharing group. A
    // line with local work queued is still "actively shared".
    if (e && wirelessTxns_.count(frame.lineAddr) == 0 && !e->locked) {
        if (++e->updateCount >=
            fabric_.config().updateCountThreshold) {
            ++stats_.selfInvalidations;
            ++stats_.putWSent;
            Msg put;
            put.type = MsgType::PutW;
            put.dst = fabric_.homeOf(frame.lineAddr);
            put.line = frame.lineAddr;
            traceState(frame.lineAddr, L1State::W, L1State::I,
                       "UpdateCount");
            array_.invalidate(e);
            send(put);
        }
    }
}

void
L1Controller::handleBrWirUpgr(const wireless::Frame &frame)
{
    // Global ToneAck census (Section III-B1). Every node participates;
    // the directory node began the census before this delivery.
    auto *tone = fabric_.toneChannel();
    WIDIR_ASSERT(tone, "BrWirUpgr without a tone channel");
    tone->raise();

    CacheEntry *e = array_.lookup(frame.lineAddr);
    auto tit = txns_.find(frame.lineAddr);

    if (e && static_cast<L1State>(e->state) == L1State::S) {
        // Table I, S->W case 1: a current sharer moves to W.
        traceState(frame.lineAddr, L1State::S, L1State::W, "BrWirUpgr");
        e->state = static_cast<std::uint8_t>(L1State::W);
        e->updateCount = 0;
        if (tit != txns_.end()) {
            // Table I, S->W case 2: our sharer-upgrade GetX raced the
            // transition; the directory discards it. Satisfy the write
            // through the wireless path instead.
            e->locked = false; // upgrade pin no longer needed
            Txn txn = std::move(tit->second);
            txns_.erase(tit);
            traceMshr(sim::TraceKind::MshrRetire, frame.lineAddr,
                      msgTypeName(txn.request), "BrWirUpgr");
            tone->drop();
            completeOps(std::move(txn.ops)); // re-executes as W ops
            return;
        }
        tone->drop();
        return;
    }

    if (tit != txns_.end()) {
        // Completion case (iii): we have a wired request in flight for
        // this line. Hold the tone until the line or a bounce arrives;
        // if the line arrives, it must be installed in W -- the
        // census counted us as a wireless sharer.
        tit->second.toneHeld = true;
        tit->second.fillAsW = true;
        return;
    }
    // Case (i): nothing to do.
    tone->drop();
}

void
L1Controller::dropToneIfHeld(Txn &txn)
{
    if (!txn.toneHeld)
        return;
    txn.toneHeld = false;
    auto *tone = fabric_.toneChannel();
    WIDIR_ASSERT(tone, "tone held without a tone channel");
    tone->drop();
}

void
L1Controller::handleWirDwgr(const wireless::Frame &frame)
{
    CacheEntry *e = array_.lookup(frame.lineAddr);
    if (!e || static_cast<L1State>(e->state) != L1State::W)
        return;
    // Table I, W->S: acknowledge with our core id over the wired
    // network and downgrade. Any queued wireless write re-issues after
    // the downgrade, so it takes the wired upgrade path as a plain S
    // sharer.
    traceState(frame.lineAddr, L1State::W, L1State::S, "WirDwgr");
    e->state = static_cast<std::uint8_t>(L1State::S);
    e->updateCount = 0;
    Msg ack;
    ack.type = MsgType::WirDwgrAck;
    ack.dst = frame.src;
    ack.line = frame.lineAddr;
    send(ack);
    squashWireless(frame.lineAddr, true);
}

void
L1Controller::handleWirInv(const wireless::Frame &frame)
{
    CacheEntry *e = array_.lookup(frame.lineAddr);
    if (!e || static_cast<L1State>(e->state) != L1State::W)
        return;
    // Table I, W->I: invalidate; squash any pending write and retry it
    // through the wired network (it will re-allocate the directory
    // entry).
    traceState(frame.lineAddr, L1State::W, L1State::I, "WirInv");
    array_.invalidate(e);
    squashWireless(frame.lineAddr, true);
}

} // namespace widir::coherence
