/**
 * @file
 * Configuration of the coherence protocol layer.
 *
 * The same controllers implement both evaluated protocols:
 *  - Baseline: MESI with a Dir_3_B directory (3 sharer pointers plus a
 *    broadcast bit) over the wired mesh only.
 *  - WiDir: the same protocol augmented with the Wireless (W) state and
 *    the wireless transactions of Tables I and II.
 */

#ifndef WIDIR_CORE_PROTOCOL_CONFIG_H
#define WIDIR_CORE_PROTOCOL_CONFIG_H

#include <cstdint>

#include "mem/address.h"
#include "sim/types.h"

namespace widir::coherence {

using sim::Tick;

/** Which protocol the manycore runs. */
enum class Protocol : std::uint8_t
{
    BaselineMESI, ///< Dir_3_B MESI, wired NoC only
    WiDir,        ///< MESI + Wireless state over the WNoC
};

/** Protocol-layer parameters (Table III defaults). */
struct ProtocolConfig
{
    Protocol protocol = Protocol::WiDir;

    /** Sharer pointers in a directory entry (i in Dir_iB). */
    std::uint32_t dirPointers = 3;

    /**
     * Directory-bank sharding policy: how lines map to home slices
     * (mem/address.h). Interleave keeps the historical modulo mapping.
     */
    mem::HomeMap homeMap = mem::HomeMap::Interleave;

    /**
     * WiDir: sharer count above which a line switches to the W state.
     * Must not exceed dirPointers (Section III-B).
     */
    std::uint32_t maxWiredSharers = 3;

    /**
     * WiDir: wireless updates received without a local access before a
     * cache self-invalidates its W copy (2-bit counter; Section
     * III-B2).
     */
    std::uint32_t updateCountThreshold = 4;

    /// @name Latencies (cycles)
    /// @{
    Tick l1HitLatency = 2;       ///< L1 round trip (Table III)
    Tick l1ProcLatency = 1;      ///< handling an incoming message at L1
    Tick dirProcLatency = 2;     ///< directory tag/state access
    Tick llcDataLatency = 10;    ///< LLC bank data array access
    /// @}

    /// @name Wired message sizes (bits)
    /// @{
    std::uint32_t ctrlBits = 72;          ///< header + address
    std::uint32_t dataBits = 72 + 512;    ///< header + 64B line
    /// @}

    /// @name Bounce (NACK) retry behaviour
    /// @{
    Tick nackRetryBase = 16;   ///< fixed retry delay
    Tick nackRetryJitter = 16; ///< plus uniform random [0, jitter)
    /// @}

    bool wireless() const { return protocol == Protocol::WiDir; }
};

} // namespace widir::coherence

#endif // WIDIR_CORE_PROTOCOL_CONFIG_H
