/**
 * @file
 * Private-cache (L1D) coherence controller.
 *
 * Implements the cache side of the MESI directory protocol plus the
 * WiDir Wireless (W) state: all the private-cache transitions of
 * Table I of the paper, the UpdateCount self-invalidation mechanism
 * (Section III-B2), and the wireless write / wireless RMW path with
 * squash-and-retry semantics (Section IV-C).
 *
 * The CPU model calls read()/write()/rmw(); each call carries an opaque
 * token and completes through the completion callback, after the L1 hit
 * latency on hits or after the full coherence transaction on misses.
 */

#ifndef WIDIR_CORE_L1_CONTROLLER_H
#define WIDIR_CORE_L1_CONTROLLER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/fabric.h"
#include "core/messages.h"
#include "core/protocol_table.h"
#include "mem/cache_array.h"
#include "mem/flat_addr_map.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "wireless/frame.h"

namespace widir::coherence {

/** Private L1 data cache + coherence controller for one tile. */
class L1Controller
{
  public:
    /**
     * Completion callback: (token, load_value). Stores/RMWs report the
     * pre-op / final value as documented per call.
     */
    using CompletionFn =
        std::function<void(std::uint64_t token, std::uint64_t value)>;

    struct CacheConfig
    {
        std::uint64_t sizeBytes = 64 * 1024; ///< Table III: 64 KB
        std::uint32_t assoc = 2;             ///< 2-way
    };

    L1Controller(CoherenceFabric &fabric, sim::NodeId node,
                 const CacheConfig &cache_cfg);

    sim::NodeId nodeId() const { return node_; }

    /** Register the CPU-side completion callback. */
    void setCompletion(CompletionFn fn) { complete_ = std::move(fn); }

    /// @name CPU-facing operations (all addresses 8-byte aligned)
    /// @{
    /** Load a 64-bit word; completes with the loaded value. */
    void read(sim::Addr addr, std::uint64_t token);

    /** Store a 64-bit word; completes with the stored value. */
    void write(sim::Addr addr, std::uint64_t value, std::uint64_t token);

    /**
     * Atomic read-modify-write: applies @p modify to the current word
     * value at the serialization point; completes with the OLD value.
     */
    void rmw(sim::Addr addr,
             std::function<std::uint64_t(std::uint64_t)> modify,
             std::uint64_t token);
    /// @}

    /** Wired message arrival (called by the fabric). */
    void receive(const Msg &msg);

    /** Wireless frame arrival (registered with the data channel). */
    void receiveFrame(const wireless::Frame &frame);

    /// @name Introspection for tests and checkers
    /// @{
    L1State stateOf(sim::Addr addr) const;
    /** Functional word value if present, or std::nullopt semantics via ok. */
    bool peekWord(sim::Addr addr, std::uint64_t &value) const;
    mem::CacheArray &array() { return array_; }
    bool hasPendingTxn(sim::Addr addr) const;
    /// @}

    /// @name Statistics
    /// @{
    struct Stats
    {
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t rmws = 0;
        std::uint64_t loadHits = 0;
        std::uint64_t storeHits = 0;
        std::uint64_t readMisses = 0;   ///< transactions begun by a read
        std::uint64_t writeMisses = 0;  ///< transactions begun by a write
        std::uint64_t nacksSeen = 0;
        std::uint64_t evictions = 0;
        std::uint64_t putWSent = 0;
        std::uint64_t selfInvalidations = 0; ///< UpdateCount expiries
        std::uint64_t wirelessWrites = 0;    ///< committed WirUpd frames
        std::uint64_t wirelessSquashes = 0;  ///< pending writes squashed
        std::uint64_t updatesApplied = 0;    ///< remote WirUpd applied
        /** WirUpds re-routed to the wired path (docs/FAULTS.md). */
        std::uint64_t wirelessFallbacks = 0;
    };
    const Stats &stats() const { return stats_; }

    /** Address-map index rehashes (host_map_rehashes, docs/PERF.md). */
    std::uint64_t
    mapRehashes() const
    {
        return txns_.rehashes() + wirelessTxns_.rehashes();
    }
    /// @}

  private:
    /** Why a wired transaction is outstanding. */
    enum class TxnKind : std::uint8_t { Read, Write, Rmw };

    /** One pending CPU operation attached to a transaction. */
    struct PendingOp
    {
        TxnKind kind;
        std::uint64_t token;
        std::uint64_t storeValue = 0;
        std::function<std::uint64_t(std::uint64_t)> modify;
        sim::Addr addr = sim::kAddrNone; ///< full word address
    };

    /** Outstanding wired transaction for one line (one max per line). */
    struct Txn
    {
        sim::Addr line;
        MsgType request;          ///< GetS or GetX
        bool isSharerUpgrade = false;
        bool toneHeld = false;    ///< census waits on this txn
        /**
         * A BrWirUpgr census caught this request in flight: a line
         * that arrives must be installed in W, not S (Section III-B1,
         * completion case iii -- the census already counted us).
         */
        bool fillAsW = false;
        std::vector<PendingOp> ops;
        std::uint32_t retries = 0;
    };

    /**
     * Pending wireless transmission state. Exactly one op rides the
     * in-flight frame; later same-line writes wait in `deferred` and
     * transmit their own frames in order (every wireless write is its
     * own WirUpd broadcast).
     */
    struct WirelessTxn
    {
        sim::Addr line;
        std::uint64_t channelToken = 0;
        PendingOp op;
        std::vector<PendingOp> deferred;
    };

    // -- CPU op entry points ------------------------------------------
    void startMiss(const PendingOp &op, sim::Addr line,
                   bool is_sharer_upgrade);
    void sendRequest(Txn &txn);
    void retryAfterNack(sim::Addr line);

    // -- wireless write path (Section IV-C) ---------------------------
    void issueWirelessWrite(const PendingOp &op);
    void wirelessCommit(sim::Addr line);
    void squashWireless(sim::Addr line, bool retry_wired);
    /** Channel gave up on our WirUpd: degrade to the wired path. */
    void wirelessWriteFault(sim::Addr line);

    // -- fills, hits, evictions ----------------------------------------
    void completeOps(std::vector<PendingOp> ops);
    void finishFill(const Msg &msg);
    /**
     * Install the granted line, retrying while every way in the set is
     * pinned. @p done runs once the fill has actually landed -- the
     * transaction's queued ops (and its tone/ack bookkeeping) must not
     * drain earlier, or they would re-issue a request for a line whose
     * grant the directory has already accounted (double-counting the
     * node in a census, for instance).
     */
    void applyFillAs(const Msg &msg, bool force_w,
                     std::function<void()> done = {});
    mem::CacheEntry *makeRoom(sim::Addr line);
    void evict(mem::CacheEntry *victim);

    // -- incoming wired handlers ---------------------------------------
    void handleNack(const Msg &msg);
    void handleInv(const Msg &msg);
    void handleFwd(const Msg &msg);

    // -- tracing (sim/trace.h; no-ops unless the tracer is enabled) ----
    void traceState(sim::Addr line, L1State from, L1State to,
                    const char *why);
    void traceMshr(sim::TraceKind kind, sim::Addr line, const char *req,
                   const char *why);

    // -- incoming wireless handlers (Table I) --------------------------
    void handleWirUpd(const wireless::Frame &frame);
    void handleBrWirUpgr(const wireless::Frame &frame);
    void handleWirDwgr(const wireless::Frame &frame);
    void handleWirInv(const wireless::Frame &frame);

    /** Drop the census tone held for @p txn if any. */
    void dropToneIfHeld(Txn &txn);

    void send(Msg msg);
    void complete(std::uint64_t token, std::uint64_t value);

    CoherenceFabric &fabric_;
    sim::NodeId node_;
    mem::CacheArray array_;
    sim::Rng rng_;
    CompletionFn complete_;
    mem::FlatAddrMap<Txn> txns_;
    mem::FlatAddrMap<WirelessTxn> wirelessTxns_;
    Stats stats_;
};

} // namespace widir::coherence

#endif // WIDIR_CORE_L1_CONTROLLER_H
