/**
 * @file
 * Directory + LLC-slice controller for one tile.
 *
 * Implements the directory side of the protocol:
 *  - the wired MESI directory with Dir_3_B sharer tracking (3 pointers
 *    plus a broadcast bit) used by the Baseline configuration,
 *  - the WiDir Wireless (W) state and every directory transition of
 *    Table II: S->W with ToneAck census + selective jamming, W->W
 *    joins, W->S downgrades, and W->I wireless invalidations,
 *  - the inclusive LLC slice (with recall of cached copies on LLC
 *    eviction) backed by main memory.
 *
 * The directory is *blocking per line*: while a transaction for a line
 * is in flight, new wired requests to that line are bounced (Nack) and
 * the requester retries -- the wired analog of the paper's jamming
 * primitive, as Section III-C1 notes.
 */

#ifndef WIDIR_CORE_DIRECTORY_CONTROLLER_H
#define WIDIR_CORE_DIRECTORY_CONTROLLER_H

#include <cstdint>

#include "core/fabric.h"
#include "core/messages.h"
#include "core/protocol_table.h"
#include "core/sharer_set.h"
#include "mem/cache_array.h"
#include "mem/flat_addr_map.h"
#include "sim/stats.h"
#include "wireless/frame.h"

namespace widir::coherence {

/** Directory metadata for one resident line (Fig. 3 of the paper). */
struct DirEntry
{
    DirState state = DirState::I;
    SharerPtrs sharers;               ///< up to dirPointers entries
    bool bcast = false;               ///< Dir_3_B overflow (Baseline)
    sim::NodeId owner = sim::kNodeNone;
    std::uint32_t sharerCount = 0;    ///< W state census (Fig. 3)
};

/** Directory slice + LLC bank controller. */
class DirectoryController
{
  public:
    struct LlcConfig
    {
        std::uint64_t sizeBytes = 512 * 1024; ///< per-tile bank
        std::uint32_t assoc = 8;
    };

    DirectoryController(CoherenceFabric &fabric, sim::NodeId node,
                        const LlcConfig &llc_cfg);

    sim::NodeId nodeId() const { return node_; }

    /** Wired message arrival (called by the fabric). */
    void receive(const Msg &msg);

    /** Wireless frame arrival (registered by the system layer). */
    void receiveFrame(const wireless::Frame &frame);

    /// @name Introspection for tests/checkers
    /// @{
    const DirEntry *entryOf(sim::Addr line) const;
    DirState stateOf(sim::Addr line) const;
    bool busy(sim::Addr line) const;
    mem::CacheArray &llc() { return llc_; }
    /**
     * Mutable directory metadata for @p line, created if absent.
     * Test support only: lets sys::checkCoherence's negative tests
     * corrupt a quiesced system's state.
     */
    DirEntry &mutableEntryForTest(sim::Addr line)
    {
        return entries_[line];
    }
    /// @}

    /// @name Statistics
    /// @{
    struct Stats
    {
        std::uint64_t getS = 0;
        std::uint64_t getX = 0;
        std::uint64_t nacksSent = 0;
        std::uint64_t invsSent = 0;
        std::uint64_t bcastInvBursts = 0; ///< broadcast-bit inv storms
        std::uint64_t fwds = 0;
        std::uint64_t memFetches = 0;
        std::uint64_t memWritebacks = 0;
        std::uint64_t llcRecalls = 0;
        std::uint64_t toWireless = 0;   ///< S->W transitions
        std::uint64_t toShared = 0;     ///< W->S transitions
        std::uint64_t wJoins = 0;       ///< W->W wired joins
        std::uint64_t wirInvs = 0;      ///< W->I evictions
        std::uint64_t updatesObserved = 0; ///< WirUpd applied to LLC
        std::uint64_t dirAccesses = 0;
        /** Txns re-routed to the wired mesh (docs/FAULTS.md). */
        std::uint64_t wirelessFallbacks = 0;
    };
    const Stats &stats() const { return stats_; }

    /** Address-map index rehashes (host_map_rehashes, docs/PERF.md). */
    std::uint64_t
    mapRehashes() const
    {
        return entries_.rehashes() + txns_.rehashes();
    }

    /**
     * Fig. 5: number of OTHER sharers updated by each wireless write
     * homed at this slice (bins: <=5, 6-10, 11-25, 26-49, 50+).
     */
    const sim::BinnedHistogram &
    sharersUpdatedHistogram() const
    {
        return sharersUpdated_;
    }
    /// @}

  private:
    /** Multi-message directory transaction kinds (protocol_table.h). */
    using TxnType = DirTxnType;

    struct DirTxn
    {
        TxnType type;
        sim::Addr line;
        sim::NodeId requester = sim::kNodeNone;
        MsgType reqType = MsgType::GetS;
        bool reqIsSharer = false;
        std::uint32_t acksExpected = 0;
        std::uint32_t acksReceived = 0;
        SharerPtrs ackIds;                ///< ToShared survivor ids
        std::uint32_t censusSharers = 0;  ///< ToWireless snapshot
        bool censusRequesterLeft = false; ///< requester evicted mid-census
        wireless::JamId jamId = 0;
        bool jamming = false;
        /**
         * ToShared only: cancellation token for the WirDwgr broadcast
         * and whether that frame has left the MAC (delivered back to
         * us, or withdrawn before committing). The transition must not
         * complete while the frame is still queued: racing PutWs can
         * drain the ack count to zero first, and an orphaned chip-wide
         * downgrade would ambush the line's next wireless epoch.
         */
        std::uint64_t frameToken = 0;
        bool frameResolved = false;
        /**
         * Wired fallback mode (docs/FAULTS.md): the transaction's
         * wireless frame exhausted its fault-retry budget and was
         * replaced by a wired Inv broadcast; completion is now counted
         * in InvAcks and wireless acks for the line are stale.
         */
        bool wired = false;
    };

    // -- request path ---------------------------------------------------
    void handleRequest(const Msg &msg);
    /**
     * @param force_wired Suppress the S->W wireless transition for
     *        this one dispatch (used when re-routing an aborted
     *        ToWireless onto the wired path, docs/FAULTS.md).
     */
    void handleCachedRequest(const Msg &msg, mem::CacheEntry *llc_entry,
                             DirEntry &entry, bool force_wired = false);
    void startFetch(const Msg &msg);
    void grant(sim::NodeId dst, sim::Addr line, GrantState state,
               const mem::CacheEntry &llc_entry);

    // -- eviction notifications ------------------------------------------
    void handlePutS(const Msg &msg);
    void handlePutEM(const Msg &msg);
    void handlePutW(const Msg &msg);

    // -- acks / data returns ----------------------------------------------
    void handleInvAck(const Msg &msg);
    void handleOwnerData(const Msg &msg);
    void handleWirUpgrAck(const Msg &msg);
    void handleWirDwgrAck(const Msg &msg);

    // -- WiDir transitions (Table II) --------------------------------------
    void startToWireless(const Msg &msg, DirEntry &entry);
    void finishToWireless(sim::Addr line);
    void startWJoin(const Msg &msg, DirEntry &entry);
    void admitJoiner(DirTxn &txn, sim::NodeId requester);
    void maybeStartToShared(sim::Addr line);
    void startToShared(sim::Addr line);
    void maybeFinishToShared(sim::Addr line);
    void finishToShared(sim::Addr line);

    // -- wired fallbacks under fault injection (docs/FAULTS.md) --------
    /** BrWirUpgr never got through: re-dispatch on the wired path. */
    void abortToWireless(sim::Addr line);
    /** WirDwgr never got through: invalidate the group over the mesh. */
    void fallbackToShared(sim::Addr line);
    /** WirInv never got through: invalidate the group over the mesh. */
    void fallbackRecallW(sim::Addr line);
    /** Broadcast wired Invs to every node for a fallback txn. */
    void broadcastFallbackInvs(DirTxn &txn);
    void traceFallback(sim::Addr line, const char *frame_kind);

    // -- LLC management -----------------------------------------------------
    /**
     * Find or create room for @p line in the LLC. Returns nullptr if
     * the set is blocked (recall started or all frames locked), in
     * which case the requester must be bounced.
     */
    mem::CacheEntry *makeRoom(sim::Addr line);
    void startRecall(mem::CacheEntry *victim);
    void finishRecall(sim::Addr line, bool merge_data,
                      const mem::LineData *data, bool data_dirty);
    void writebackIfDirty(mem::CacheEntry *e);

    // -- tracing (sim/trace.h; no-ops unless the tracer is enabled) ----
    void traceState(sim::Addr line, DirState from, DirState to,
                    const char *why, std::uint64_t arg = 0);

    // -- plumbing -------------------------------------------------------------
    DirTxn *txnOf(sim::Addr line);
    DirTxn &beginTxn(TxnType type, sim::Addr line);
    void endTxn(sim::Addr line);
    void nack(const Msg &msg);
    void send(Msg msg, sim::Tick extra_delay = 0);
    void completeOwnerTxn(const Msg &msg, bool has_data);

    CoherenceFabric &fabric_;
    sim::NodeId node_;
    mem::CacheArray llc_;
    mem::FlatAddrMap<DirEntry> entries_;
    mem::FlatAddrMap<DirTxn> txns_;
    Stats stats_;
    sim::BinnedHistogram sharersUpdated_{{5, 10, 25, 49}, true};
};

} // namespace widir::coherence

#endif // WIDIR_CORE_DIRECTORY_CONTROLLER_H
