/**
 * @file
 * Machine-readable experiment reports.
 *
 * Every bench binary dumps the full ExperimentResult set of its sweep
 * to bench/out/<name>.json so the perf trajectory of the repo can be
 * tracked across commits without scraping printed tables. The schema
 * is a single top-level object:
 *
 *   {
 *     "schema": "widir-sweep-v1",
 *     "name": "<bench name>",
 *     "results": [ { ...one object per ExperimentResult... } ]
 *   }
 *
 * Each result object carries every field the paper's evaluation
 * reports: cycles, the MPKI split, stall fractions, latency sums, the
 * hop and sharers-updated histograms, wireless behaviour (collision
 * probability, W-state transitions) and the energy breakdown.
 *
 * A small self-contained JSON value parser lives here too so tests
 * can round-trip the writer's output without external dependencies.
 */

#ifndef WIDIR_SYSTEM_REPORT_H
#define WIDIR_SYSTEM_REPORT_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "system/experiment.h"

namespace widir::sys {

namespace json {

/** A parsed JSON value (tree-owning, move-only via unique_ptr). */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    /** Exact integer payload when the literal had no '.'/exponent. */
    std::uint64_t uinteger = 0;
    bool isInteger = false;
    bool negative = false;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Number as uint64 (0 when not an unsigned integer literal). */
    std::uint64_t asUint() const;
};

/**
 * Parse @p text into a Value.
 * @param err receives a message on failure (may be null).
 * @return true on success.
 */
bool parse(const std::string &text, Value &out, std::string *err);

} // namespace json

/** Serialize one result as a JSON object. */
std::string resultToJson(const ExperimentResult &r, int indent = 0);

/** Serialize a whole sweep under the widir-sweep-v1 schema. */
std::string resultsToJson(const std::string &name,
                          const std::vector<ExperimentResult> &results);

/**
 * Write the widir-sweep-v1 document to @p path, creating parent
 * directories as needed.
 * @return true if the file was written.
 */
bool writeResultsJson(const std::string &path, const std::string &name,
                      const std::vector<ExperimentResult> &results);

} // namespace widir::sys

#endif // WIDIR_SYSTEM_REPORT_H
