#include "system/trace_sinks.h"

#include <cinttypes>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "core/directory_controller.h"
#include "core/l1_controller.h"
#include "sim/log.h"

namespace widir::sys {

namespace {

void
appendEscaped(std::string &out, const char *s)
{
    out += '"';
    for (; *s; ++s) {
        char c = *s;
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

/** Chrome event name: the most specific label the record carries. */
std::string
eventName(const sim::TraceRecord &r)
{
    switch (r.kind) {
      case sim::TraceKind::MsgSend:
      case sim::TraceKind::MsgRecv:
      case sim::TraceKind::CoreOp:
        return r.opName ? r.opName : sim::traceKindName(r.kind);
      case sim::TraceKind::L1Transition:
      case sim::TraceKind::DirTransition:
        return sim::strfmt("%s->%s", r.fromName ? r.fromName : "?",
                           r.toName ? r.toName : "?");
      case sim::TraceKind::MshrAlloc:
      case sim::TraceKind::MshrRetire:
      case sim::TraceKind::DirTxnBegin:
      case sim::TraceKind::DirTxnEnd:
      case sim::TraceKind::FrameQueued:
      case sim::TraceKind::FrameWin:
      case sim::TraceKind::FrameCollision:
      case sim::TraceKind::FrameJammed:
      case sim::TraceKind::FrameDelivered:
      case sim::TraceKind::FrameCancelled:
      case sim::TraceKind::ToneCensusBegin:
      case sim::TraceKind::ToneCensusEnd:
      case sim::TraceKind::NocSend:
      case sim::TraceKind::Warn:
      case sim::TraceKind::FrameCrcError:
      case sim::TraceKind::FramePreambleLoss:
      case sim::TraceKind::FrameFaultDrop:
      case sim::TraceKind::ToneRetry:
      case sim::TraceKind::WirelessFallback:
        break;
    }
    if (r.opName)
        return sim::strfmt("%s %s", sim::traceKindName(r.kind),
                           r.opName);
    return sim::traceKindName(r.kind);
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter()
{
    body_.reserve(1u << 16);
}

void
ChromeTraceWriter::add(const sim::TraceRecord &r)
{
    compSeen_[static_cast<std::size_t>(r.comp) %
              (sizeof(compSeen_) / sizeof(compSeen_[0]))] = true;
    if (events_++)
        body_ += ",\n";

    // CoreOp records span the op's latency (arg); everything else is
    // an instant. ts is the simulated cycle shown as a microsecond.
    bool complete = r.kind == sim::TraceKind::CoreOp;
    sim::Tick dur = complete ? r.arg : 0;
    sim::Tick ts = complete && r.arg <= r.tick ? r.tick - r.arg : r.tick;

    body_ += "{\"name\":";
    appendEscaped(body_, eventName(r).c_str());
    body_ += sim::strfmt(",\"cat\":\"%s\",\"ph\":\"%s\"",
                         sim::traceKindName(r.kind),
                         complete ? "X" : "i");
    if (!complete)
        body_ += ",\"s\":\"t\"";
    body_ += sim::strfmt(",\"pid\":%u,\"tid\":%u,\"ts\":%" PRIu64,
                         static_cast<unsigned>(r.comp),
                         r.node == sim::kNodeNone ? 0u : r.node,
                         static_cast<std::uint64_t>(ts));
    if (complete)
        body_ += sim::strfmt(",\"dur\":%" PRIu64,
                             static_cast<std::uint64_t>(dur));

    body_ += ",\"args\":{";
    bool first = true;
    auto arg = [&](const char *key, std::string value) {
        if (!first)
            body_ += ",";
        first = false;
        appendEscaped(body_, key);
        body_ += ":";
        body_ += value;
    };
    if (r.line != sim::kAddrNone)
        arg("line", sim::strfmt("\"0x%" PRIx64 "\"",
                                static_cast<std::uint64_t>(r.line)));
    if (r.peer != sim::kNodeNone)
        arg("peer", sim::strfmt("%u", r.peer));
    if (r.fromName) {
        arg("from", sim::strfmt("\"%s\"", r.fromName));
        arg("to", sim::strfmt("\"%s\"", r.toName ? r.toName : "?"));
    }
    if (r.opName && (r.kind == sim::TraceKind::MsgSend ||
                     r.kind == sim::TraceKind::MsgRecv))
        arg("msg", sim::strfmt("\"%s\"", r.opName));
    if (r.note)
        arg("note", sim::strfmt("\"%s\"", r.note));
    if (r.arg != 0 && !complete)
        arg("arg", sim::strfmt("%" PRIu64, r.arg));
    if (!r.text.empty()) {
        std::string esc;
        appendEscaped(esc, r.text.c_str());
        arg("text", esc);
    }
    body_ += "}}";
}

std::string
ChromeTraceWriter::json() const
{
    std::string out = "{\"schema\":\"widir-trace-v1\",\n"
                      "\"traceEvents\":[\n";
    bool any = false;
    for (std::size_t i = 0;
         i < sizeof(compSeen_) / sizeof(compSeen_[0]); ++i) {
        if (!compSeen_[i])
            continue;
        if (any)
            out += ",\n";
        any = true;
        out += sim::strfmt(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
            "\"args\":{\"name\":\"%s\"}}",
            i,
            sim::traceComponentName(
                static_cast<sim::TraceComponent>(i)));
    }
    if (!body_.empty()) {
        if (any)
            out += ",\n";
        out += body_;
    }
    out += "\n]}\n";
    return out;
}

bool
ChromeTraceWriter::write(const std::string &path) const
{
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream f(p, std::ios::trunc);
    if (!f) {
        sim::warn("cannot write trace %s", path.c_str());
        return false;
    }
    f << json();
    return static_cast<bool>(f);
}

// ---------------------------------------------------------------------
// Transition-legality checker (tables from docs/PROTOCOL.md)
// ---------------------------------------------------------------------

namespace {

using coherence::DirState;
using coherence::L1State;

// The legal-edge relation is NOT duplicated here: it is derived from
// the protocol table (core/protocol_table.h), the same rows that drive
// controller dispatch and the generated docs/PROTOCOL.md section.
using coherence::dirEdgeLegal;
using coherence::l1EdgeLegal;

/** (node, line) continuity key; line numbers fit well below 2^48. */
std::uint64_t
trackKey(sim::NodeId node, sim::Addr line)
{
    return (static_cast<std::uint64_t>(node) << 48) ^
           static_cast<std::uint64_t>(line);
}

} // namespace

std::vector<std::string>
checkTraceLegality(const TraceRing &ring, bool strict)
{
    std::vector<std::string> violations;
    auto flag = [&](std::string v) {
        if (violations.size() < 16)
            violations.push_back(std::move(v));
    };

    // Last traced `to` per (node, line) / per (home, line).
    std::unordered_map<std::uint64_t, L1State> l1Last;
    std::unordered_map<std::uint64_t, DirState> dirLast;
    // Trace-visible L1 copies per line (strict SWMR only).
    std::unordered_map<sim::Addr,
                       std::unordered_map<sim::NodeId, L1State>>
        copies;

    for (std::size_t i = 0; i < ring.size(); ++i) {
        const sim::TraceRecord &r = ring.at(i);
        if (r.kind == sim::TraceKind::L1Transition) {
            auto from = static_cast<L1State>(r.from);
            auto to = static_cast<L1State>(r.to);
            if (!l1EdgeLegal(from, to)) {
                flag(sim::strfmt(
                    "illegal L1 transition %s->%s (node %u line "
                    "%#" PRIx64 " tick %" PRIu64 " note %s)",
                    r.fromName, r.toName, r.node,
                    static_cast<std::uint64_t>(r.line),
                    static_cast<std::uint64_t>(r.tick),
                    r.note ? r.note : "-"));
            }
            if (strict) {
                auto [it, fresh] = l1Last.try_emplace(
                    trackKey(r.node, r.line), to);
                if (!fresh) {
                    if (it->second != from) {
                        flag(sim::strfmt(
                            "L1 continuity break: node %u line "
                            "%#" PRIx64 " was traced %s but "
                            "transitions from %s at tick %" PRIu64,
                            r.node,
                            static_cast<std::uint64_t>(r.line),
                            l1StateName(it->second), r.fromName,
                            static_cast<std::uint64_t>(r.tick)));
                    }
                    it->second = to;
                }
                auto &line = copies[r.line];
                if (to == L1State::I)
                    line.erase(r.node);
                else
                    line[r.node] = to;
                if (to == L1State::M || to == L1State::E ||
                    to == L1State::S || to == L1State::W) {
                    for (const auto &[n, st] : line) {
                        if (n == r.node)
                            continue;
                        bool other_excl = st == L1State::M ||
                                          st == L1State::E;
                        bool self_excl = to == L1State::M ||
                                         to == L1State::E;
                        if (other_excl || (self_excl &&
                                           st != L1State::I)) {
                            flag(sim::strfmt(
                                "SWMR violation: line %#" PRIx64
                                " is %s at node %u while %s at node "
                                "%u (tick %" PRIu64 ")",
                                static_cast<std::uint64_t>(r.line),
                                r.toName, r.node, l1StateName(st), n,
                                static_cast<std::uint64_t>(r.tick)));
                        }
                    }
                }
            }
        } else if (r.kind == sim::TraceKind::DirTransition) {
            auto from = static_cast<DirState>(r.from);
            auto to = static_cast<DirState>(r.to);
            if (!dirEdgeLegal(from, to)) {
                flag(sim::strfmt(
                    "illegal directory transition %s->%s (home %u "
                    "line %#" PRIx64 " tick %" PRIu64 " note %s)",
                    r.fromName, r.toName, r.node,
                    static_cast<std::uint64_t>(r.line),
                    static_cast<std::uint64_t>(r.tick),
                    r.note ? r.note : "-"));
            }
            if (strict) {
                auto [it, fresh] = dirLast.try_emplace(
                    trackKey(r.node, r.line), to);
                if (!fresh) {
                    if (it->second != from) {
                        flag(sim::strfmt(
                            "directory continuity break: home %u "
                            "line %#" PRIx64 " was traced %s but "
                            "transitions from %s at tick %" PRIu64,
                            r.node,
                            static_cast<std::uint64_t>(r.line),
                            dirStateName(it->second), r.fromName,
                            static_cast<std::uint64_t>(r.tick)));
                    }
                    it->second = to;
                }
            }
        }
    }
    return violations;
}

} // namespace widir::sys
