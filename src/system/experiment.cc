#include "system/experiment.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>

#include <memory>

#include "frontend/mtrace.h"
#include "sim/log.h"
#include "system/checker.h"
#include "system/manycore.h"
#include "system/trace_sinks.h"

namespace widir::sys {

double
ExperimentResult::mpki() const
{
    return instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(readMisses + writeMisses) /
              static_cast<double>(instructions);
}

double
ExperimentResult::readMpki() const
{
    return instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(readMisses) /
              static_cast<double>(instructions);
}

double
ExperimentResult::writeMpki() const
{
    return instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(writeMisses) /
              static_cast<double>(instructions);
}

double
ExperimentResult::memStallFraction() const
{
    return totalCoreCycles == 0
        ? 0.0
        : static_cast<double>(memStallCycles) /
              static_cast<double>(totalCoreCycles);
}

std::string
TraceOptions::validate() const
{
    std::string err;
    auto add = [&err](const char *msg) {
        if (!err.empty())
            err += "; ";
        err += msg;
    };
    if (start > end)
        add("trace.start is past trace.end");
    if (!enabled && !file.empty())
        add("trace.file set but trace.enabled is false");
    return err;
}

std::string
ExperimentSpec::validate() const
{
    std::string err;
    auto add = [&err](const std::string &msg) {
        if (msg.empty())
            return;
        if (!err.empty())
            err += "; ";
        err += msg;
    };
    if (app == nullptr)
        add("no app selected");
    if (cores == 0)
        add("cores must be positive");
    if (scale == 0)
        add("scale must be positive");
    if (meshConcentration == 0)
        add("meshConcentration must be positive");
    else if (cores % meshConcentration != 0)
        add("meshConcentration must divide cores");
    if (wirelessChannels == 0)
        add("wirelessChannels must be positive");
    const bool is_replay =
        frontend == frontend::FrontendKind::ReplayFull ||
        frontend == frontend::FrontendKind::ReplayFast;
    const bool trace_app = app != nullptr && app->traceSource != nullptr;
    if (frontend == frontend::FrontendKind::Record) {
        if (recordPath.empty())
            add("frontend=record needs a recordPath");
        if (trace_app)
            add("cannot record a trace-driven app (it has no kernel)");
    } else if (!recordPath.empty()) {
        add("recordPath set but frontend is not record");
    }
    if (is_replay) {
        if (replayPath.empty() && !trace_app)
            add("replay frontend needs a replayPath "
                "(or a trace-driven app)");
    } else if (!replayPath.empty()) {
        add("replayPath set but frontend is not a replay kind");
    }
    if (trace_app && !replayPath.empty())
        add("trace-driven app already supplies its trace; "
            "replayPath must be empty");
    if (app != nullptr && app->kernel == nullptr && !trace_app)
        add("app has neither a kernel nor a trace source");
    add(trace.validate());
    add(fault.validate());
    return err;
}

bool
parseEnvInt(const char *text, long min, long max, long &out)
{
    if (text == nullptr || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    // end == text catches "abc"; *end != '\0' catches "4abc" and
    // "4 " (strtol stops at the first non-digit and reports success);
    // ERANGE catches values strtol saturated to LONG_MIN/LONG_MAX.
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    if (v < min || v > max)
        return false;
    out = v;
    return true;
}

std::uint32_t
benchScale(std::uint32_t fallback)
{
    if (const char *env = std::getenv("WIDIR_BENCH_SCALE")) {
        long v = 0;
        if (parseEnvInt(env, 1, 1'000'000, v))
            return static_cast<std::uint32_t>(v);
        sim::warn("ignoring invalid WIDIR_BENCH_SCALE='%s'", env);
    }
    return fallback;
}

namespace {

/**
 * Resolve the kernel choice for one run: an explicit spec value wins;
 * otherwise WIDIR_SIM_THREADS selects the bound/weave kernel for the
 * whole process (0 or unset keeps the classic kernel). Invalid values
 * warn and fall back to classic rather than silently picking a thread
 * count the user never asked for.
 */
unsigned
resolveSimThreads(unsigned from_spec)
{
    if (from_spec > 0)
        return from_spec;
    if (const char *env = std::getenv("WIDIR_SIM_THREADS")) {
        long v = 0;
        if (parseEnvInt(env, 0, 4096, v))
            return static_cast<unsigned>(v);
        sim::warn("ignoring invalid WIDIR_SIM_THREADS='%s'", env);
    }
    return 0;
}

} // namespace

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    if (std::string err = spec.validate(); !err.empty())
        sim::fatal("invalid ExperimentSpec: %s", err.c_str());

    // Resolve the effective frontend: a trace-driven app upgrades the
    // default Coroutine frontend to full-fidelity replay of its trace.
    frontend::FrontendKind fk = spec.frontend;
    std::string replay_path = spec.replayPath;
    if (spec.app->traceSource != nullptr) {
        replay_path = spec.app->traceSource->path;
        if (fk == frontend::FrontendKind::Coroutine)
            fk = frontend::FrontendKind::ReplayFull;
    }
    const bool is_replay = fk == frontend::FrontendKind::ReplayFull ||
                           fk == frontend::FrontendKind::ReplayFast;

    // Effective machine knobs: the spec's, unless a replayed trace
    // carries the recorded machine -- then the recording wins so the
    // replay reproduces the recorded run (docs/FRONTEND.md).
    std::string app_name = spec.app->name;
    coherence::Protocol protocol = spec.protocol;
    std::uint32_t cores = spec.cores;
    std::uint32_t scale = spec.scale;
    std::uint64_t seed = spec.seed;
    std::uint32_t max_wired = spec.maxWiredSharers;
    std::uint32_t uct = spec.updateCountThreshold;
    std::uint32_t mesh_conc = spec.meshConcentration;
    std::uint32_t wchan = spec.wirelessChannels;
    mem::HomeMap home_map = spec.homeMap;

    frontend::MemTrace trace;
    if (is_replay) {
        std::string terr;
        if (!frontend::loadTraceFile(replay_path, trace, terr))
            sim::fatal("experiment %s: %s", app_name.c_str(),
                       terr.c_str());
        if (trace.header.hasMachine) {
            const frontend::TraceHeader &h = trace.header;
            app_name = h.app;
            protocol = static_cast<coherence::Protocol>(h.protocol);
            home_map = static_cast<mem::HomeMap>(h.homeMap);
            cores = h.cores;
            scale = h.scale;
            seed = h.seed;
            max_wired = h.maxWiredSharers;
            uct = h.updateCountThreshold;
            mesh_conc = h.meshConcentration;
            wchan = h.wirelessChannels;
        }
        if (std::string verr = frontend::validateTrace(trace, cores);
            !verr.empty())
            sim::fatal("experiment %s: %s", app_name.c_str(),
                       verr.c_str());
    }

    SystemConfig cfg = protocol == coherence::Protocol::WiDir
        ? SystemConfig::widir(cores)
        : SystemConfig::baseline(cores);
    cfg.seed = seed;
    cfg.protocol.maxWiredSharers = max_wired;
    if (uct > 0)
        cfg.protocol.updateCountThreshold = uct;
    // Table VI sweeps the threshold; the paper's constraint is
    // MaxWiredSharers <= sharer pointers, so grow Dir_iB accordingly.
    cfg.protocol.dirPointers =
        std::max(cfg.protocol.dirPointers, max_wired);
    cfg.fault = spec.fault;
    cfg.simThreads = resolveSimThreads(spec.simThreads);
    // The fast replayer's gate and stats -- and full replay's gate for
    // headerless synced traces -- are shared across every tile, so
    // those modes require the classic single-queue kernel.
    if (fk == frontend::FrontendKind::ReplayFast ||
        (fk == frontend::FrontendKind::ReplayFull &&
         !trace.header.hasMachine && trace.hasSync()))
        cfg.simThreads = 0;
    cfg.mesh.concentration = mesh_conc;
    cfg.wnoc.numChannels = wchan;
    cfg.protocol.homeMap = home_map;

    Manycore m(cfg);
    if (fk != frontend::FrontendKind::Coroutine) {
        frontend::FrontendSpec fs;
        fs.kind = fk;
        fs.trace = is_replay ? &trace : nullptr;
        m.installFrontend(fs);
    }
    workload::WorkloadParams params;
    params.scale = scale;

    // Tracing: a ring buffer always feeds the legality checker; the
    // Chrome exporter is attached only when an output path was given.
    // Tracing never touches the RNG streams, so a traced run's stats
    // are bit-identical to the same run untraced.
    TraceRing ring;
    std::unique_ptr<ChromeTraceWriter> chrome;
    if (spec.trace.enabled) {
        sim::Tracer &tracer = m.simulator().tracer();
        tracer.setEnabled(true);
        tracer.setWindow(spec.trace.start, spec.trace.end);
        tracer.addSink(ring.sink());
        if (!spec.trace.file.empty()) {
            chrome = std::make_unique<ChromeTraceWriter>();
            tracer.addSink(chrome->sink());
        }
    }

    ExperimentResult r;
    r.app = app_name;
    r.protocol = protocol;
    r.cores = cores;
    r.seed = seed;
    r.scale = scale;
    r.maxWiredSharers = max_wired;
    r.updateCountThreshold = cfg.protocol.updateCountThreshold;
    r.meshConcentration = mesh_conc;
    r.wirelessChannels = wchan;
    r.homeMap = home_map;
    r.frontendKind = fk;
    r.recordPath = spec.recordPath;
    r.replayPath = is_replay ? replay_path : std::string();
    // The replay frontends ignore the program; a trace app has no
    // kernel to wrap, so only build one when it will actually run.
    cpu::Program program;
    if (!is_replay)
        program = workload::makeProgram(*spec.app, params);
    auto host_start = std::chrono::steady_clock::now();
    r.cycles = m.run(program, 2'000'000'000ull);
    std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;
    r.executedEvents = m.simulator().executedEvents();
    r.hostSeconds = host_elapsed.count();
    r.hostEventsPerSec = r.hostSeconds > 0.0
        ? static_cast<double>(r.executedEvents) / r.hostSeconds
        : 0.0;
    r.hostMsgpoolGrew = m.hostMsgpoolGrew();
    r.hostMapRehashes = m.hostMapRehashes();

    if (fk == frontend::FrontendKind::Record) {
        frontend::TraceHeader h;
        h.hasMachine = true;
        h.app = app_name;
        h.protocol = static_cast<std::uint8_t>(protocol);
        h.homeMap = static_cast<std::uint8_t>(home_map);
        h.cores = cores;
        h.scale = scale;
        h.maxWiredSharers = max_wired;
        h.updateCountThreshold = cfg.protocol.updateCountThreshold;
        h.meshConcentration = mesh_conc;
        h.wirelessChannels = wchan;
        h.seed = seed;
        frontend::MemTrace rec = m.frontend()->recorder()->finish(h);
        std::string werr;
        if (!frontend::writeMtrace(spec.recordPath, rec, werr))
            sim::fatal("experiment %s: %s", app_name.c_str(),
                       werr.c_str());
    }

    auto violations = checkCoherence(m);
    if (!violations.empty()) {
        sim::fatal("experiment %s left the machine incoherent: %s",
                   app_name.c_str(), violations.front().c_str());
    }

    if (spec.trace.enabled) {
        // Continuity and SWMR need the whole history: only apply them
        // when the window covered the full run and nothing fell out of
        // the ring.
        bool strict = ring.dropped() == 0 && spec.trace.start == 0 &&
                      spec.trace.end == sim::kTickNever;
        auto trace_violations = checkTraceLegality(ring, strict);
        if (!trace_violations.empty()) {
            sim::fatal("experiment %s produced an illegal trace: %s",
                       app_name.c_str(),
                       trace_violations.front().c_str());
        }
        if (chrome)
            chrome->write(spec.trace.file);
        r.traceRecords = m.simulator().tracer().emitted();
        r.traceDropped = ring.dropped();
    }

    auto cpu = m.cpuTotals();
    auto l1 = m.l1Totals();
    auto dir = m.dirTotals();

    r.instructions = cpu.instructions;
    r.loads = cpu.loads;
    r.stores = cpu.stores + cpu.rmws;
    r.readMisses = l1.readMisses;
    r.writeMisses = l1.writeMisses;
    r.memStallCycles = cpu.memStallCycles;
    r.totalCoreCycles =
        static_cast<std::uint64_t>(r.cycles) * cores;
    r.loadLatencySum = cpu.loadLatencySum;
    r.storeLatencySum = cpu.storeLatencySum;

    for (const auto &bin : m.mesh().hopHistogram().bins())
        r.hopBinCounts.push_back(bin.count);
    r.wiredMessages = m.mesh().messages();

    auto sharers = m.sharersUpdatedTotals();
    for (const auto &bin : sharers.bins())
        r.sharersUpdatedBins.push_back(bin.count);
    r.wirelessWrites = l1.wirelessWrites;
    r.selfInvalidations = l1.selfInvalidations;
    r.toWireless = dir.toWireless;
    r.toShared = dir.toShared;
    if (auto *ch = m.dataChannel())
        r.collisionProbability = ch->collisionProbability();

    r.faultInjection = m.faultModel() != nullptr;
    r.fault = spec.fault;
    if (auto *ch = m.dataChannel()) {
        r.frameCrcErrors = ch->crcErrors();
        r.framePreambleLosses = ch->preambleLosses();
        r.faultRetries = ch->faultRetries();
        r.frameFaultDrops = ch->faultDrops();
    }
    if (auto *tc = m.toneChannel())
        r.toneRetries = tc->toneRetries();
    r.wirelessFallbacks = l1.wirelessFallbacks + dir.wirelessFallbacks;

    energy::EnergyInputs ein;
    ein.cycles = r.cycles;
    ein.numCores = cores;
    ein.instructions = cpu.instructions;
    ein.l1Accesses = l1.loads + l1.stores + l1.rmws;
    ein.l2Accesses = dir.dirAccesses;
    ein.l2DataAccesses = dir.getS + dir.getX + dir.memFetches +
                         dir.memWritebacks + dir.updatesObserved;
    ein.routerTraversals = m.mesh().routerTraversals();
    ein.flitHops = m.mesh().flitHops();
    if (auto *ch = m.dataChannel()) {
        ein.wnocBusyCycles = ch->busyCycles();
        ein.wnocFrames = ch->successes();
        ein.wnocPresent = true;
    }
    r.energy = energy::computeEnergy(ein);
    return r;
}

} // namespace widir::sys
