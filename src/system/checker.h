/**
 * @file
 * Whole-machine coherence invariant checker.
 *
 * Run at quiescence (no in-flight transactions), it validates the
 * classic directory-protocol invariants plus the WiDir-specific ones:
 *
 *  - SWMR: a line with an M or E copy has exactly one cached copy.
 *  - Directory/cache agreement: EM entries name the actual owner;
 *    S entries' pointers cover the actual sharers (exactly, when the
 *    broadcast bit is clear); W entries' SharerCount equals the number
 *    of caches holding the line in W.
 *  - Data-value agreement: S and W copies are identical to the home
 *    LLC copy; a clean LLC copy matches memory.
 *  - No stranded transactions or locked frames.
 */

#ifndef WIDIR_SYSTEM_CHECKER_H
#define WIDIR_SYSTEM_CHECKER_H

#include <string>
#include <vector>

namespace widir::sys {

class Manycore;

/**
 * Check all invariants; returns human-readable violation descriptions
 * (empty == coherent).
 */
std::vector<std::string> checkCoherence(Manycore &machine);

} // namespace widir::sys

#endif // WIDIR_SYSTEM_CHECKER_H
