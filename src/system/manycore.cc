#include "system/manycore.h"

#include "sim/log.h"

namespace widir::sys {

Manycore::Manycore(const SystemConfig &cfg) : cfg_(cfg)
{
    WIDIR_ASSERT(cfg_.numCores > 0, "machine needs cores");
    WIDIR_ASSERT(cfg_.protocol.maxWiredSharers <=
                     cfg_.protocol.dirPointers,
                 "MaxWiredSharers must fit in the sharer pointers "
                 "(Section III-B)");

    sim_ = std::make_unique<sim::Simulator>(cfg_.seed);
    if (cfg_.simThreads > 0) {
        // Bound/weave parallel kernel: one domain per tile, executed
        // by min(simThreads, numCores) host threads. Must precede all
        // component construction so nothing schedules into the
        // single-queue layout first.
        sim_->enableDomains(cfg_.numCores, cfg_.simThreads);
    }

    cfg_.mesh.numNodes = cfg_.numCores;
    mesh_ = std::make_unique<noc::Mesh>(*sim_, cfg_.mesh);

    memory_ = std::make_unique<mem::MainMemory>(*sim_, cfg_.memory);

    if (cfg_.protocol.wireless()) {
        cfg_.wnoc.numNodes = cfg_.numCores;
        dataChannel_ =
            std::make_unique<wireless::DataChannel>(*sim_, cfg_.wnoc);
        toneChannel_ = std::make_unique<wireless::ToneChannel>(
            *sim_, cfg_.numCores);
        if (cfg_.fault.enabled()) {
            // Dedicated RNG stream: the fault layer must not perturb
            // the draws of the clean-machine streams (docs/FAULTS.md).
            faultModel_ = std::make_unique<fault::FaultModel>(
                cfg_.fault,
                sim_->makeRng(0xFA171E57ULL + cfg_.fault.seed));
            dataChannel_->setFaultModel(faultModel_.get());
            toneChannel_->setFaultModel(faultModel_.get());
        }
    }

    fabric_ = std::make_unique<coherence::CoherenceFabric>(
        *sim_, cfg_.protocol, *mesh_, *memory_, dataChannel_.get(),
        toneChannel_.get());

    std::vector<coherence::L1Controller *> l1_ptrs;
    std::vector<coherence::DirectoryController *> dir_ptrs;
    for (sim::NodeId n = 0; n < cfg_.numCores; ++n) {
        dirs_.push_back(
            std::make_unique<coherence::DirectoryController>(
                *fabric_, n, cfg_.llc));
        l1s_.push_back(std::make_unique<coherence::L1Controller>(
            *fabric_, n, cfg_.l1));
        dir_ptrs.push_back(dirs_.back().get());
        l1_ptrs.push_back(l1s_.back().get());
    }
    fabric_->attach(l1_ptrs, dir_ptrs);

    if (dataChannel_) {
        for (sim::NodeId n = 0; n < cfg_.numCores; ++n) {
            auto *l1 = l1_ptrs[n];
            auto *dir = dir_ptrs[n];
            dataChannel_->setReceiver(
                n, [l1, dir](const wireless::Frame &frame) {
                    // Both the private cache and the local directory
                    // slice observe every broadcast frame.
                    l1->receiveFrame(frame);
                    dir->receiveFrame(frame);
                });
        }
    }

}

Manycore::~Manycore() = default;

void
Manycore::installFrontend(const frontend::FrontendSpec &spec)
{
    WIDIR_ASSERT(!frontend_, "frontend installed twice");
    std::vector<coherence::L1Controller *> l1_ptrs;
    l1_ptrs.reserve(l1s_.size());
    for (const auto &l1 : l1s_)
        l1_ptrs.push_back(l1.get());
    frontend_ =
        frontend::makeFrontend(spec, *sim_, l1_ptrs, cfg_.core);
}

cpu::Core &
Manycore::core(sim::NodeId n)
{
    WIDIR_ASSERT(frontend_, "no frontend installed");
    cpu::Core *c = frontend_->core(n);
    WIDIR_ASSERT(c != nullptr,
                 "frontend '%s' has no core models",
                 frontend::frontendKindName(frontend_->kind()));
    return *c;
}

sim::Tick
Manycore::run(const Program &program, sim::Tick watchdog_cycles)
{
    if (!frontend_)
        installFrontend(frontend::FrontendSpec{});
    frontend_->start(program);
    sim_->runOrDie(watchdog_cycles, "manycore program");
    WIDIR_ASSERT(frontend_->allFinished(),
                 "machine quiesced with an unfinished core "
                 "(thread deadlocked on memory values?)");
    return frontend_->finishTick();
}

cpu::Core::Stats
Manycore::cpuTotals() const
{
    WIDIR_ASSERT(frontend_, "no frontend installed");
    return frontend_->cpuTotals();
}

std::uint64_t
Manycore::hostMsgpoolGrew() const
{
    return fabric_->msgPoolGrew();
}

std::uint64_t
Manycore::hostMapRehashes() const
{
    std::uint64_t n = memory_->mapRehashes();
    for (const auto &l1 : l1s_)
        n += l1->mapRehashes();
    for (const auto &dir : dirs_)
        n += dir->mapRehashes();
    return n;
}

coherence::L1Controller::Stats
Manycore::l1Totals() const
{
    coherence::L1Controller::Stats total;
    for (const auto &l1 : l1s_) {
        const auto &s = l1->stats();
        total.loads += s.loads;
        total.stores += s.stores;
        total.rmws += s.rmws;
        total.loadHits += s.loadHits;
        total.storeHits += s.storeHits;
        total.readMisses += s.readMisses;
        total.writeMisses += s.writeMisses;
        total.nacksSeen += s.nacksSeen;
        total.evictions += s.evictions;
        total.putWSent += s.putWSent;
        total.selfInvalidations += s.selfInvalidations;
        total.wirelessWrites += s.wirelessWrites;
        total.wirelessSquashes += s.wirelessSquashes;
        total.updatesApplied += s.updatesApplied;
        total.wirelessFallbacks += s.wirelessFallbacks;
    }
    return total;
}

coherence::DirectoryController::Stats
Manycore::dirTotals() const
{
    coherence::DirectoryController::Stats total;
    for (const auto &dir : dirs_) {
        const auto &s = dir->stats();
        total.getS += s.getS;
        total.getX += s.getX;
        total.nacksSent += s.nacksSent;
        total.invsSent += s.invsSent;
        total.bcastInvBursts += s.bcastInvBursts;
        total.fwds += s.fwds;
        total.memFetches += s.memFetches;
        total.memWritebacks += s.memWritebacks;
        total.llcRecalls += s.llcRecalls;
        total.toWireless += s.toWireless;
        total.toShared += s.toShared;
        total.wJoins += s.wJoins;
        total.wirInvs += s.wirInvs;
        total.updatesObserved += s.updatesObserved;
        total.dirAccesses += s.dirAccesses;
        total.wirelessFallbacks += s.wirelessFallbacks;
    }
    return total;
}

sim::BinnedHistogram
Manycore::sharersUpdatedTotals() const
{
    sim::BinnedHistogram total({5, 10, 25, 49}, true);
    for (const auto &dir : dirs_) {
        const auto &h = dir->sharersUpdatedHistogram();
        const auto &bins = h.bins();
        for (const auto &bin : bins) {
            // Re-sample by bin midpoint weight-preserving: bins are
            // identical across slices, so add counts directly.
            (void)bin;
        }
        // Identical binning: merge counts via sample() of lower bound.
        for (const auto &bin : bins) {
            if (bin.count > 0)
                total.sample(bin.lo, bin.count);
        }
    }
    return total;
}

} // namespace widir::sys
