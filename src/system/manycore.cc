#include "system/manycore.h"

#include "sim/log.h"

namespace widir::sys {

Manycore::Manycore(const SystemConfig &cfg) : cfg_(cfg)
{
    WIDIR_ASSERT(cfg_.numCores > 0, "machine needs cores");
    WIDIR_ASSERT(cfg_.protocol.maxWiredSharers <=
                     cfg_.protocol.dirPointers,
                 "MaxWiredSharers must fit in the sharer pointers "
                 "(Section III-B)");

    sim_ = std::make_unique<sim::Simulator>(cfg_.seed);
    if (cfg_.simThreads > 0) {
        // Bound/weave parallel kernel: one domain per tile, executed
        // by min(simThreads, numCores) host threads. Must precede all
        // component construction so nothing schedules into the
        // single-queue layout first.
        sim_->enableDomains(cfg_.numCores, cfg_.simThreads);
    }

    cfg_.mesh.numNodes = cfg_.numCores;
    mesh_ = std::make_unique<noc::Mesh>(*sim_, cfg_.mesh);

    memory_ = std::make_unique<mem::MainMemory>(*sim_, cfg_.memory);

    if (cfg_.protocol.wireless()) {
        cfg_.wnoc.numNodes = cfg_.numCores;
        dataChannel_ =
            std::make_unique<wireless::DataChannel>(*sim_, cfg_.wnoc);
        toneChannel_ = std::make_unique<wireless::ToneChannel>(
            *sim_, cfg_.numCores);
        if (cfg_.fault.enabled()) {
            // Dedicated RNG stream: the fault layer must not perturb
            // the draws of the clean-machine streams (docs/FAULTS.md).
            faultModel_ = std::make_unique<fault::FaultModel>(
                cfg_.fault,
                sim_->makeRng(0xFA171E57ULL + cfg_.fault.seed));
            dataChannel_->setFaultModel(faultModel_.get());
            toneChannel_->setFaultModel(faultModel_.get());
        }
    }

    fabric_ = std::make_unique<coherence::CoherenceFabric>(
        *sim_, cfg_.protocol, *mesh_, *memory_, dataChannel_.get(),
        toneChannel_.get());

    std::vector<coherence::L1Controller *> l1_ptrs;
    std::vector<coherence::DirectoryController *> dir_ptrs;
    for (sim::NodeId n = 0; n < cfg_.numCores; ++n) {
        dirs_.push_back(
            std::make_unique<coherence::DirectoryController>(
                *fabric_, n, cfg_.llc));
        l1s_.push_back(std::make_unique<coherence::L1Controller>(
            *fabric_, n, cfg_.l1));
        dir_ptrs.push_back(dirs_.back().get());
        l1_ptrs.push_back(l1s_.back().get());
    }
    fabric_->attach(l1_ptrs, dir_ptrs);

    if (dataChannel_) {
        for (sim::NodeId n = 0; n < cfg_.numCores; ++n) {
            auto *l1 = l1_ptrs[n];
            auto *dir = dir_ptrs[n];
            dataChannel_->setReceiver(
                n, [l1, dir](const wireless::Frame &frame) {
                    // Both the private cache and the local directory
                    // slice observe every broadcast frame.
                    l1->receiveFrame(frame);
                    dir->receiveFrame(frame);
                });
        }
    }

    for (sim::NodeId n = 0; n < cfg_.numCores; ++n) {
        cores_.push_back(std::make_unique<cpu::Core>(
            *sim_, *l1s_[n], n, cfg_.core));
    }
}

Manycore::~Manycore() = default;

sim::Tick
Manycore::run(const Program &program, sim::Tick watchdog_cycles)
{
    for (sim::NodeId n = 0; n < cfg_.numCores; ++n)
        cores_[n]->start(program, cfg_.numCores, 0);
    sim_->runOrDie(watchdog_cycles, "manycore program");
    sim::Tick end = 0;
    for (const auto &core : cores_) {
        WIDIR_ASSERT(core->finished(),
                     "machine quiesced with an unfinished core "
                     "(thread deadlocked on memory values?)");
        end = std::max(end, core->finishTick());
    }
    return end;
}

cpu::Core::Stats
Manycore::cpuTotals() const
{
    cpu::Core::Stats total;
    for (const auto &core : cores_) {
        const auto &s = core->stats();
        total.instructions += s.instructions;
        total.loads += s.loads;
        total.stores += s.stores;
        total.rmws += s.rmws;
        total.memStallCycles += s.memStallCycles;
        total.loadLatencySum += s.loadLatencySum;
        total.storeLatencySum += s.storeLatencySum;
    }
    return total;
}

coherence::L1Controller::Stats
Manycore::l1Totals() const
{
    coherence::L1Controller::Stats total;
    for (const auto &l1 : l1s_) {
        const auto &s = l1->stats();
        total.loads += s.loads;
        total.stores += s.stores;
        total.rmws += s.rmws;
        total.loadHits += s.loadHits;
        total.storeHits += s.storeHits;
        total.readMisses += s.readMisses;
        total.writeMisses += s.writeMisses;
        total.nacksSeen += s.nacksSeen;
        total.evictions += s.evictions;
        total.putWSent += s.putWSent;
        total.selfInvalidations += s.selfInvalidations;
        total.wirelessWrites += s.wirelessWrites;
        total.wirelessSquashes += s.wirelessSquashes;
        total.updatesApplied += s.updatesApplied;
        total.wirelessFallbacks += s.wirelessFallbacks;
    }
    return total;
}

coherence::DirectoryController::Stats
Manycore::dirTotals() const
{
    coherence::DirectoryController::Stats total;
    for (const auto &dir : dirs_) {
        const auto &s = dir->stats();
        total.getS += s.getS;
        total.getX += s.getX;
        total.nacksSent += s.nacksSent;
        total.invsSent += s.invsSent;
        total.bcastInvBursts += s.bcastInvBursts;
        total.fwds += s.fwds;
        total.memFetches += s.memFetches;
        total.memWritebacks += s.memWritebacks;
        total.llcRecalls += s.llcRecalls;
        total.toWireless += s.toWireless;
        total.toShared += s.toShared;
        total.wJoins += s.wJoins;
        total.wirInvs += s.wirInvs;
        total.updatesObserved += s.updatesObserved;
        total.dirAccesses += s.dirAccesses;
        total.wirelessFallbacks += s.wirelessFallbacks;
    }
    return total;
}

sim::BinnedHistogram
Manycore::sharersUpdatedTotals() const
{
    sim::BinnedHistogram total({5, 10, 25, 49}, true);
    for (const auto &dir : dirs_) {
        const auto &h = dir->sharersUpdatedHistogram();
        const auto &bins = h.bins();
        for (const auto &bin : bins) {
            // Re-sample by bin midpoint weight-preserving: bins are
            // identical across slices, so add counts directly.
            (void)bin;
        }
        // Identical binning: merge counts via sample() of lower bound.
        for (const auto &bin : bins) {
            if (bin.count > 0)
                total.sample(bin.lo, bin.count);
        }
    }
    return total;
}

} // namespace widir::sys
