#include "system/sweep.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "sim/log.h"

namespace widir::sys {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("WIDIR_BENCH_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
        sim::warn("ignoring invalid WIDIR_BENCH_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    std::vector<ExperimentResult> results(specs.size());
    if (specs.empty())
        return results;

    unsigned workers = jobs_;
    if (workers > specs.size())
        workers = static_cast<unsigned>(specs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runExperiment(specs[i]);
        return results;
    }

    // Dynamic scheduling, deterministic output: workers claim the next
    // unclaimed spec index and write into their slot. Each simulation
    // builds its own Manycore, so runs share nothing mutable.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            results[i] = runExperiment(specs[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace widir::sys
