#include "system/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/protocol_table.h"
#include "sim/log.h"

namespace widir::sys {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("WIDIR_BENCH_JOBS")) {
        long v = 0;
        // Strict parse: "4abc" used to silently run 4 jobs and an
        // overflowing value wrapped through the unsigned cast; both
        // now warn and fall back to hardware_concurrency.
        if (parseEnvInt(env, 1, 4096, v))
            return static_cast<unsigned>(v);
        sim::warn("ignoring invalid WIDIR_BENCH_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    return run(specs, [](const ExperimentSpec &spec) {
        return runExperiment(spec);
    });
}

std::vector<ExperimentResult>
SweepRunner::run(
    const std::vector<ExperimentSpec> &specs,
    const std::function<ExperimentResult(const ExperimentSpec &)>
        &run_fn) const
{
    std::vector<ExperimentResult> results(specs.size());
    if (specs.empty())
        return results;

    // First failure wins; later workers stop claiming work once a
    // failure is recorded so the pool drains quickly instead of
    // finishing a long sweep whose output will be thrown away.
    std::exception_ptr failure;
    std::atomic<bool> failed{false};
    std::mutex failure_mu;
    std::string failed_spec;

    auto run_one = [&](std::size_t i) {
        try {
            results[i] = run_fn(specs[i]);
        } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mu);
            if (!failure) {
                failure = std::current_exception();
                failed_spec = specs[i].app != nullptr
                    ? specs[i].app->name
                    : "<no app>";
                failed_spec += "/";
                failed_spec +=
                    coherence::protocolName(specs[i].protocol);
            }
            failed.store(true, std::memory_order_release);
        }
    };

    unsigned workers = jobs_;
    if (workers > specs.size())
        workers = static_cast<unsigned>(specs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            run_one(i);
            if (failed.load(std::memory_order_acquire))
                break;
        }
    } else {
        // Dynamic scheduling, deterministic output: workers claim the
        // next unclaimed spec index and write into their slot. Each
        // simulation builds its own Manycore, so runs share nothing
        // mutable.
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                if (failed.load(std::memory_order_acquire))
                    return;
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size())
                    return;
                run_one(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (failure) {
        try {
            std::rethrow_exception(failure);
        } catch (...) {
            std::throw_with_nested(std::runtime_error(
                "sweep failed while running spec '" + failed_spec +
                "'"));
        }
    }
    return results;
}

} // namespace widir::sys
