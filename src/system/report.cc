#include "system/report.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/protocol_table.h"
#include "sim/log.h"

namespace widir::sys {

namespace {

using coherence::protocolName;

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

struct ObjectWriter
{
    std::string &out;
    std::string pad;
    bool first = true;

    ObjectWriter(std::string &o, int indent)
        : out(o), pad(static_cast<std::size_t>(indent), ' ')
    {
        out += "{";
    }

    void
    key(const char *k)
    {
        if (!first)
            out += ",";
        first = false;
        out += "\n" + pad + "  ";
        appendEscaped(out, k);
        out += ": ";
    }

    void
    field(const char *k, std::uint64_t v)
    {
        key(k);
        out += sim::strfmt("%" PRIu64, v);
    }

    void
    field(const char *k, double v)
    {
        key(k);
        // JSON has no NaN/Infinity literals; clamp so the document
        // stays parseable by any reader (and by json::parse below).
        if (!std::isfinite(v))
            v = 0.0;
        // %.17g round-trips doubles exactly; trim to readable forms
        // where possible.
        out += sim::strfmt("%.17g", v);
    }

    void
    field(const char *k, const std::string &v)
    {
        key(k);
        appendEscaped(out, v);
    }

    void
    field(const char *k, const std::vector<std::uint64_t> &v)
    {
        key(k);
        out += "[";
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                out += ", ";
            out += sim::strfmt("%" PRIu64, v[i]);
        }
        out += "]";
    }

    void
    close()
    {
        out += "\n" + pad + "}";
    }
};

} // namespace

std::string
resultToJson(const ExperimentResult &r, int indent)
{
    std::string out;
    ObjectWriter w(out, indent);
    w.field("app", r.app);
    w.field("protocol", std::string(protocolName(r.protocol)));
    w.field("cores", static_cast<std::uint64_t>(r.cores));
    w.field("seed", r.seed);
    w.field("scale", static_cast<std::uint64_t>(r.scale));
    w.field("max_wired_sharers",
            static_cast<std::uint64_t>(r.maxWiredSharers));
    w.field("update_count_threshold",
            static_cast<std::uint64_t>(r.updateCountThreshold));
    w.field("cycles", static_cast<std::uint64_t>(r.cycles));
    w.field("instructions", r.instructions);
    w.field("loads", r.loads);
    w.field("stores", r.stores);
    w.field("read_misses", r.readMisses);
    w.field("write_misses", r.writeMisses);
    w.field("mpki", r.mpki());
    w.field("read_mpki", r.readMpki());
    w.field("write_mpki", r.writeMpki());
    w.field("mem_stall_cycles", r.memStallCycles);
    w.field("total_core_cycles", r.totalCoreCycles);
    w.field("mem_stall_fraction", r.memStallFraction());
    w.field("load_latency_sum", r.loadLatencySum);
    w.field("store_latency_sum", r.storeLatencySum);
    w.field("hop_bin_counts", r.hopBinCounts);
    w.field("wired_messages", r.wiredMessages);
    w.field("sharers_updated_bins", r.sharersUpdatedBins);
    w.field("wireless_writes", r.wirelessWrites);
    w.field("self_invalidations", r.selfInvalidations);
    w.field("collision_probability", r.collisionProbability);
    w.field("to_wireless", r.toWireless);
    w.field("to_shared", r.toShared);
    if (r.meshConcentration != 1 || r.wirelessChannels != 1 ||
        r.homeMap != mem::HomeMap::Interleave) {
        // Emitted only when a scale-out topology knob is non-default,
        // so classic-machine sweeps stay byte-identical to documents
        // written before these knobs existed (same contract as the
        // fault block below).
        w.key("topology");
        ObjectWriter t(out, indent + 2);
        t.field("mesh_concentration",
                static_cast<std::uint64_t>(r.meshConcentration));
        t.field("wireless_channels",
                static_cast<std::uint64_t>(r.wirelessChannels));
        t.field("home_map",
                std::string(r.homeMap == mem::HomeMap::Hash
                                ? "hash"
                                : "interleave"));
        t.close();
    }
    // Host-perf block. executed_events is deterministic; the host_*
    // figures describe the host process, not the simulated machine --
    // strip them before byte-diffing two sweeps for identity
    // (docs/PERF.md).
    w.field("executed_events", r.executedEvents);
    w.field("host_wall_seconds", r.hostSeconds);
    w.field("host_events_per_sec", r.hostEventsPerSec);
    w.field("host_msgpool_grew", r.hostMsgpoolGrew);
    w.field("host_map_rehashes", r.hostMapRehashes);
    if (r.frontendKind != frontend::FrontendKind::Coroutine) {
        // Emitted only for a non-default stimulus source, so classic
        // sweeps stay byte-identical to documents written before
        // frontends existed (docs/FRONTEND.md).
        w.key("frontend");
        ObjectWriter f(out, indent + 2);
        f.field("kind",
                std::string(frontend::frontendKindName(r.frontendKind)));
        if (!r.recordPath.empty())
            f.field("record_path", r.recordPath);
        if (!r.replayPath.empty())
            f.field("replay_path", r.replayPath);
        f.close();
    }
    if (r.faultInjection) {
        // Emitted only when the fault layer was armed, so clean-run
        // outputs stay byte-identical to documents written before
        // fault injection existed (docs/FAULTS.md).
        w.key("fault");
        ObjectWriter f(out, indent + 2);
        f.field("ber", r.fault.ber);
        f.field("preamble_loss_prob", r.fault.preambleLossProb);
        f.field("tone_loss_prob", r.fault.toneLossProb);
        f.field("burst_ber", r.fault.burstBer);
        f.field("burst_enter_prob", r.fault.burstEnterProb);
        f.field("burst_exit_prob", r.fault.burstExitProb);
        f.field("frame_bits",
                static_cast<std::uint64_t>(r.fault.frameBits));
        f.field("retry_budget",
                static_cast<std::uint64_t>(r.fault.retryBudget));
        f.field("fault_seed", r.fault.seed);
        f.field("frame_crc_errors", r.frameCrcErrors);
        f.field("frame_preamble_losses", r.framePreambleLosses);
        f.field("fault_retries", r.faultRetries);
        f.field("frame_fault_drops", r.frameFaultDrops);
        f.field("tone_retries", r.toneRetries);
        f.field("wireless_fallbacks", r.wirelessFallbacks);
        f.close();
    }
    w.key("energy");
    {
        ObjectWriter e(out, indent + 2);
        e.field("core", r.energy.core);
        e.field("l1", r.energy.l1);
        e.field("l2dir", r.energy.l2dir);
        e.field("noc", r.energy.noc);
        e.field("wnoc", r.energy.wnoc);
        e.field("total", r.energy.total());
        e.close();
    }
    w.close();
    return out;
}

std::string
resultsToJson(const std::string &name,
              const std::vector<ExperimentResult> &results)
{
    std::string out = "{\n  \"schema\": \"widir-sweep-v1\",\n  "
                      "\"name\": ";
    appendEscaped(out, name);
    out += ",\n  \"results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ",";
        out += "\n    ";
        out += resultToJson(results[i], 4);
    }
    out += results.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
writeResultsJson(const std::string &path, const std::string &name,
                 const std::vector<ExperimentResult> &results)
{
    std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream f(p, std::ios::trunc);
    if (!f) {
        sim::warn("cannot write %s", path.c_str());
        return false;
    }
    f << resultsToJson(name, results);
    return static_cast<bool>(f);
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (objects, arrays, strings,
// numbers, booleans, null; enough to validate and round-trip the
// writer above).

namespace json {

const Value *
Value::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::uint64_t
Value::asUint() const
{
    return (type == Type::Number && isInteger && !negative) ? uinteger
                                                            : 0;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = sim::strfmt("%s at offset %zu", what.c_str(), pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(sim::strfmt("expected '%c'", c));
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            char esc = text[pos++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only emits \u00xx control codes; decode
                // the latin-1 subset and reject the rest.
                if (code > 0xff)
                    return fail("unsupported \\u escape");
                out += static_cast<char>(code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        skipWs();
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        std::string tok = text.substr(start, pos - start);
        out.type = Value::Type::Number;
        out.number = std::strtod(tok.c_str(), nullptr);
        out.negative = tok[0] == '-';
        out.isInteger =
            tok.find_first_of(".eE") == std::string::npos;
        if (out.isInteger && !out.negative)
            out.uinteger = std::strtoull(tok.c_str(), nullptr, 10);
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.type = Value::Type::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                Value member;
                if (!parseValue(member))
                    return false;
                out.object.emplace(std::move(key), std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.type = Value::Type::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                Value elem;
                if (!parseValue(elem))
                    return false;
                out.array.push_back(std::move(elem));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.type = Value::Type::String;
            return parseString(out.string);
        }
        if (text.compare(pos, 4, "true") == 0) {
            out.type = Value::Type::Bool;
            out.boolean = true;
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            out.type = Value::Type::Bool;
            out.boolean = false;
            pos += 5;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            out.type = Value::Type::Null;
            pos += 4;
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *err)
{
    // Callers reuse Value holders across parses; parseValue appends
    // members, so a stale tree would silently merge with the new one.
    out = Value{};
    Parser p(text);
    if (!p.parseValue(out)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = sim::strfmt("trailing garbage at offset %zu", p.pos);
        return false;
    }
    return true;
}

} // namespace json

} // namespace widir::sys
