/**
 * @file
 * ExperimentRunner: run one (application, protocol, core count)
 * configuration and collect every metric the paper's evaluation
 * reports -- execution time with its memory-stall split (Fig. 8),
 * MPKI split by reads/writes (Fig. 6), memory-operation latency
 * (Fig. 7), the hops-per-leg histogram (Table V), the
 * sharers-updated-per-wireless-write histogram (Fig. 5), the wireless
 * collision probability (Table VI), and the energy breakdown
 * (Fig. 9).
 */

#ifndef WIDIR_SYSTEM_EXPERIMENT_H
#define WIDIR_SYSTEM_EXPERIMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol_config.h"
#include "energy/energy_model.h"
#include "fault/fault.h"
#include "frontend/frontend.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "workload/params.h"
#include "workload/registry.h"

namespace widir::sys {

/** Everything measured in one run. */
struct ExperimentResult
{
    std::string app;
    coherence::Protocol protocol;
    std::uint32_t cores = 0;
    std::uint64_t seed = 0;
    std::uint32_t scale = 1;
    std::uint32_t maxWiredSharers = 3;
    std::uint32_t updateCountThreshold = 0; ///< effective value

    /// @name Scale-out topology knobs (all defaulted: classic machine)
    ///
    /// Serialized into widir-sweep-v1 as a "topology" object only when
    /// any knob is non-default, so existing sweeps stay byte-identical
    /// to documents written before these knobs existed.
    /// @{
    std::uint32_t meshConcentration = 1; ///< tiles per mesh router
    std::uint32_t wirelessChannels = 1;  ///< frequency-multiplexed bands
    mem::HomeMap homeMap = mem::HomeMap::Interleave;
    /// @}

    sim::Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /// @name Fig. 6: misses per kilo-instruction
    /// @{
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    double mpki() const;
    double readMpki() const;
    double writeMpki() const;
    /// @}

    /// @name Fig. 8: cycle breakdown (summed over cores)
    /// @{
    std::uint64_t memStallCycles = 0;
    std::uint64_t totalCoreCycles = 0; ///< cycles x cores
    double memStallFraction() const;
    /// @}

    /// @name Fig. 7: memory-op latency (ROB entry -> retire)
    /// @{
    std::uint64_t loadLatencySum = 0;
    std::uint64_t storeLatencySum = 0;
    /// @}

    /// @name Table V: wired hops per message leg
    /// @{
    std::vector<std::uint64_t> hopBinCounts; ///< 0-2,3-5,6-8,9-11,12-16
    std::uint64_t wiredMessages = 0;
    /// @}

    /// @name Fig. 5 / Table VI: wireless behaviour
    /// @{
    std::vector<std::uint64_t> sharersUpdatedBins; ///< <=5,...,50+
    std::uint64_t wirelessWrites = 0;
    std::uint64_t selfInvalidations = 0; ///< UpdateCount expiries
    double collisionProbability = 0.0;
    std::uint64_t toWireless = 0;
    std::uint64_t toShared = 0;
    /// @}

    /// @name Fig. 9: energy
    /// @{
    energy::EnergyBreakdown energy;
    /// @}

    /// @name Tracing (not part of the widir-sweep-v1 JSON schema)
    /// @{
    std::uint64_t traceRecords = 0; ///< records past the window filter
    std::uint64_t traceDropped = 0; ///< ring-buffer overwrites
    /// @}

    /// @name Fault injection and resilience (docs/FAULTS.md)
    ///
    /// Serialized into widir-sweep-v1 as a "fault" object only when
    /// faultInjection is true, so clean sweeps stay byte-identical to
    /// outputs produced before fault injection existed.
    /// @{
    bool faultInjection = false;  ///< fault layer armed for this run
    fault::FaultSpec fault;       ///< echo of the injected spec
    std::uint64_t frameCrcErrors = 0;      ///< corrupted data frames
    std::uint64_t framePreambleLosses = 0; ///< undetected frame starts
    std::uint64_t faultRetries = 0;        ///< frame re-transmissions
    std::uint64_t frameFaultDrops = 0;     ///< retry budget exhausted
    std::uint64_t toneRetries = 0;         ///< missed silence re-polls
    std::uint64_t wirelessFallbacks = 0;   ///< L1 + directory re-routes
    /// @}

    /// @name Host performance (docs/PERF.md)
    ///
    /// executedEvents is deterministic for a given configuration; the
    /// host_* figures are wall-clock or host-allocator measurements
    /// and are stripped before diffing sweep outputs for bit-identity
    /// (the watermarks are deterministic, but they describe the host
    /// process, not the simulated machine).
    /// @{
    std::uint64_t executedEvents = 0; ///< simulator events run
    double hostSeconds = 0.0;         ///< wall time of the run() call
    double hostEventsPerSec = 0.0;    ///< executedEvents / hostSeconds
    std::uint64_t hostMsgpoolGrew = 0;  ///< MsgPool growth past reserve
    std::uint64_t hostMapRehashes = 0;  ///< FlatAddrMap index rehashes
    /// @}

    /// @name Frontend echo (docs/FRONTEND.md)
    ///
    /// Serialized into widir-sweep-v1 as a "frontend" object only when
    /// the run used a non-default stimulus source, so classic sweeps
    /// stay byte-identical to documents written before frontends
    /// existed.
    /// @{
    frontend::FrontendKind frontendKind =
        frontend::FrontendKind::Coroutine;
    std::string recordPath; ///< mtrace written (Record only)
    std::string replayPath; ///< trace replayed (Replay* only)
    /// @}
};

/** Tracing controls (docs/TRACING.md), nested in ExperimentSpec. */
struct TraceOptions
{
    bool enabled = false;     ///< enable the sim::Tracer
    sim::Tick start = 0;      ///< inclusive cycle window
    sim::Tick end = sim::kTickNever;
    /** Chrome trace-event JSON output path (empty: no export). */
    std::string file;

    /** Empty when consistent, else a "; "-joined problem list. */
    std::string validate() const;
};

/**
 * One experiment configuration.
 *
 * Call validate() (or let runExperiment do it, fatally) after filling
 * in the fields; the nested trace and fault blocks carry their own
 * invariants.
 */
struct ExperimentSpec
{
    const workload::AppInfo *app = nullptr;
    coherence::Protocol protocol = coherence::Protocol::BaselineMESI;
    std::uint32_t cores = 64;
    std::uint32_t scale = 1;
    std::uint64_t seed = 1;
    std::uint32_t maxWiredSharers = 3; ///< Table VI sweeps this
    /** 0 keeps the ProtocolConfig default (ablation bench sweeps it). */
    std::uint32_t updateCountThreshold = 0;

    /**
     * Tiles per mesh router (`--mesh-concentration`, docs/PERF.md).
     * 1 is the classic one-router-per-tile mesh; c > 1 routes over a
     * cores/c concentrated grid. Must divide cores.
     */
    std::uint32_t meshConcentration = 1;

    /**
     * Frequency-multiplexed wireless data sub-channels
     * (`--wireless-channels`). 1 is the paper's single broadcast
     * medium. Ignored by wired-only protocols.
     */
    std::uint32_t wirelessChannels = 1;

    /** Directory-bank sharding policy (`--home-map`, mem/address.h). */
    mem::HomeMap homeMap = mem::HomeMap::Interleave;

    /** Tracing (docs/TRACING.md). */
    TraceOptions trace;

    /**
     * Wireless fault injection (docs/FAULTS.md). Ignored by wired-only
     * protocols (there is no wireless channel to disturb), so a sweep
     * can apply one FaultSpec to every leg, Baseline included.
     */
    fault::FaultSpec fault;

    /**
     * Host threads for the bound/weave parallel kernel (sim/domains.h,
     * `--sim-threads`). 0 (the default) defers to the WIDIR_SIM_THREADS
     * environment variable, and falls back to the classic single-queue
     * kernel when that is unset too. Any value >= 1 selects the domain
     * kernel; results are byte-identical across all >= 1 values (and
     * deterministic, but a *different* -- equally valid -- event
     * schedule from the classic kernel, see docs/PERF.md). Not part of
     * the widir-sweep-v1 result schema: like forceHeapForTest, it
     * selects an execution strategy, not an experiment.
     */
    unsigned simThreads = 0;

    /// @name Frontend selection (docs/FRONTEND.md)
    /// @{
    /**
     * Stimulus source. Coroutine (default) runs the app's kernel on
     * the core model; Record does the same while writing a
     * widir-mtrace-v1 op stream to recordPath; the replay kinds drive
     * the machine from replayPath (or the app's trace source). An app
     * registered from an external trace (registerTraceApp /
     * `--trace-in`) auto-upgrades Coroutine to ReplayFull. When a
     * replayed trace carries a machine header, its machine knobs
     * (protocol, cores, seed, scale, sharer limits, topology) override
     * this spec so the replayed run reproduces the recorded one.
     */
    frontend::FrontendKind frontend =
        frontend::FrontendKind::Coroutine;

    /** widir-mtrace-v1 output path; required iff frontend is Record. */
    std::string recordPath;

    /**
     * Trace input path (mtrace or text format); required for the
     * replay kinds unless the app itself is trace-driven.
     */
    std::string replayPath;
    /// @}

    /** Empty when runnable, else a "; "-joined problem list. */
    std::string validate() const;
};

/**
 * Run one configuration to completion and gather the metrics.
 * Fatal on an invalid spec (spec.validate() reports the problems).
 */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/**
 * Bench sizing: reads WIDIR_BENCH_SCALE from the environment
 * (default @p fallback) so the full suite can be run small or large.
 */
std::uint32_t benchScale(std::uint32_t fallback = 1);

/**
 * Strict decimal-integer parse for environment knobs: accepts @p text
 * only when it is a complete integer (optional sign, digits, nothing
 * else) that fits in [@p min, @p max]. Rejects empty strings, trailing
 * garbage ("4abc"), and out-of-range values -- including the ones
 * strtol silently saturates -- and returns false without touching
 * @p out. Shared by benchScale, sweep::defaultJobs, and the
 * WIDIR_SIM_THREADS resolution so every env knob fails loudly the
 * same way.
 */
bool parseEnvInt(const char *text, long min, long max, long &out);

} // namespace widir::sys

#endif // WIDIR_SYSTEM_EXPERIMENT_H
