/**
 * @file
 * Manycore: assembles a full simulated machine (Fig. 2 of the paper):
 * per tile an OoO core, a private L1 + coherence controller, an LLC
 * slice + directory controller, a mesh router port, and -- for WiDir --
 * a transceiver on the shared wireless data/tone channels.
 *
 * The system layer also owns run orchestration: start one thread
 * program per core, run to quiescence, and collect the statistics the
 * paper's evaluation reports.
 */

#ifndef WIDIR_SYSTEM_MANYCORE_H
#define WIDIR_SYSTEM_MANYCORE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/directory_controller.h"
#include "core/fabric.h"
#include "core/l1_controller.h"
#include "core/protocol_config.h"
#include "cpu/core.h"
#include "cpu/task.h"
#include "cpu/thread.h"
#include "fault/fault.h"
#include "frontend/frontend.h"
#include "mem/main_memory.h"
#include "noc/mesh.h"
#include "sim/simulator.h"
#include "wireless/data_channel.h"
#include "wireless/tone_channel.h"

namespace widir::sys {

/** Full-machine configuration (Table III defaults). */
struct SystemConfig
{
    std::uint32_t numCores = 64;
    std::uint64_t seed = 1;
    coherence::ProtocolConfig protocol;
    cpu::CoreConfig core;
    coherence::L1Controller::CacheConfig l1;
    coherence::DirectoryController::LlcConfig llc;
    noc::MeshConfig mesh;          ///< numNodes overridden by numCores
    wireless::DataChannelConfig wnoc; ///< numNodes overridden too
    mem::MainMemory::Config memory;
    /**
     * Wireless fault injection (docs/FAULTS.md). Disabled by default;
     * a machine built with the default spec is event-for-event
     * identical to one built before fault injection existed.
     */
    fault::FaultSpec fault;

    /**
     * Host threads for the bound/weave domain scheduler
     * (sim/domains.h): 0 (default) keeps the classic single-queue
     * kernel with its original event order; any value >= 1 partitions
     * the machine into one domain per tile and runs bound phases on
     * min(simThreads, numCores) threads. Every simThreads >= 1 value
     * produces byte-identical results to simThreads == 1.
     */
    unsigned simThreads = 0;

    /** Convenience: baseline (wired-only MESI Dir_3_B) machine. */
    static SystemConfig
    baseline(std::uint32_t cores = 64)
    {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.protocol.protocol = coherence::Protocol::BaselineMESI;
        return cfg;
    }

    /** Convenience: WiDir machine. */
    static SystemConfig
    widir(std::uint32_t cores = 64)
    {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.protocol.protocol = coherence::Protocol::WiDir;
        return cfg;
    }
};

/** A thread program: one coroutine body per core. */
using Program = cpu::Program;

/** One assembled machine instance. */
class Manycore
{
  public:
    explicit Manycore(const SystemConfig &cfg);
    ~Manycore();

    Manycore(const Manycore &) = delete;
    Manycore &operator=(const Manycore &) = delete;

    const SystemConfig &config() const { return cfg_; }
    sim::Simulator &simulator() { return *sim_; }
    noc::Mesh &mesh() { return *mesh_; }
    mem::MainMemory &memory() { return *memory_; }
    wireless::DataChannel *dataChannel() { return dataChannel_.get(); }
    wireless::ToneChannel *toneChannel() { return toneChannel_.get(); }
    /** Fault sampler, or null when fault injection is disabled. */
    fault::FaultModel *faultModel() { return faultModel_.get(); }
    coherence::CoherenceFabric &fabric() { return *fabric_; }

    coherence::L1Controller &l1(sim::NodeId n) { return *l1s_.at(n); }
    coherence::DirectoryController &dir(sim::NodeId n)
    {
        return *dirs_.at(n);
    }
    /** Tile @p n's core model (coroutine-family frontends only). */
    cpu::Core &core(sim::NodeId n);
    std::uint32_t numCores() const { return cfg_.numCores; }

    /**
     * Select the stimulus source (docs/FRONTEND.md). Must be called
     * before run(); without it, run() installs the default coroutine
     * frontend -- the classic machine, byte-identical to the
     * pre-frontend build. A FrontendSpec trace must outlive the run.
     */
    void installFrontend(const frontend::FrontendSpec &spec);

    /** The installed frontend, or null before installation. */
    frontend::Frontend *frontend() { return frontend_.get(); }

    /**
     * Run @p program on every core (thread id == core id) until all
     * cores finish and the machine quiesces. Replay frontends ignore
     * @p program and drive their installed trace instead.
     *
     * @param watchdog_cycles fatal() if the machine has not quiesced
     *        by this simulated cycle (protocol hang detector).
     * @return execution time in cycles (max over cores).
     */
    sim::Tick run(const Program &program,
                  sim::Tick watchdog_cycles = 500'000'000);

    /// @name Aggregate statistics (summed over tiles)
    /// @{
    cpu::Core::Stats cpuTotals() const;
    coherence::L1Controller::Stats l1Totals() const;
    coherence::DirectoryController::Stats dirTotals() const;
    /** Fig. 5 histogram merged over all home slices. */
    sim::BinnedHistogram sharersUpdatedTotals() const;
    /// @}

    /// @name Host allocator watermarks (docs/PERF.md)
    /// @{
    /** Fabric message-pool slots grown past the reserve. */
    std::uint64_t hostMsgpoolGrew() const;
    /** FlatAddrMap rehashes summed over L1s, directories, memory. */
    std::uint64_t hostMapRehashes() const;
    /// @}

  private:
    SystemConfig cfg_;
    std::unique_ptr<sim::Simulator> sim_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<mem::MainMemory> memory_;
    std::unique_ptr<wireless::DataChannel> dataChannel_;
    std::unique_ptr<wireless::ToneChannel> toneChannel_;
    std::unique_ptr<fault::FaultModel> faultModel_;
    std::unique_ptr<coherence::CoherenceFabric> fabric_;
    std::vector<std::unique_ptr<coherence::DirectoryController>> dirs_;
    std::vector<std::unique_ptr<coherence::L1Controller>> l1s_;
    std::unique_ptr<frontend::Frontend> frontend_;
};

} // namespace widir::sys

#endif // WIDIR_SYSTEM_MANYCORE_H
