/**
 * @file
 * System-layer sinks for sim::Tracer (schema widir-trace-v1):
 *
 *  - TraceRing: bounded in-memory ring buffer that keeps the newest
 *    records; sys::checkTraceLegality consumes it to validate SWMR and
 *    transition legality against the tables in docs/PROTOCOL.md.
 *  - ChromeTraceWriter: streams records into a Chrome trace-event JSON
 *    document (the "traceEvents" array format) loadable in
 *    chrome://tracing and https://ui.perfetto.dev. One simulated cycle
 *    is displayed as one microsecond; components map to processes and
 *    nodes to threads. See docs/TRACING.md for the full mapping.
 *
 * Both are plain Sink factories: construct one, register it with
 * Tracer::addSink(obj.sink()), and keep the object alive for the whole
 * simulation.
 */

#ifndef WIDIR_SYSTEM_TRACE_SINKS_H
#define WIDIR_SYSTEM_TRACE_SINKS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace widir::sys {

/**
 * Fixed-capacity ring of the most recent TraceRecords. Memory is
 * allocated lazily as records arrive, so an unused ring costs nothing.
 * Once full, each new record overwrites the oldest and bumps
 * dropped(); the legality checker uses dropped() == 0 to decide
 * whether it may apply the strict (continuity and SWMR) checks or only
 * per-record transition legality.
 */
class TraceRing
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    explicit TraceRing(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /** Sink to register with Tracer::addSink. Must outlive the run. */
    sim::Tracer::Sink
    sink()
    {
        return [this](const sim::TraceRecord &r) { push(r); };
    }

    void
    push(const sim::TraceRecord &r)
    {
        if (buf_.size() < capacity_) {
            buf_.push_back(r);
            return;
        }
        buf_[head_] = r;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    std::size_t size() const { return buf_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Records overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** i-th record in arrival order, oldest (still held) first. */
    const sim::TraceRecord &
    at(std::size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
        dropped_ = 0;
    }

  private:
    std::size_t capacity_;
    std::size_t head_ = 0; ///< oldest record once the ring is full
    std::uint64_t dropped_ = 0;
    std::vector<sim::TraceRecord> buf_;
};

/**
 * Serializes records into Chrome trace-event JSON as they arrive (one
 * growing string, no per-record allocation beyond it), then write()s
 * the finished document. Mapping (docs/TRACING.md):
 *
 *  - pid = component, with process_name metadata ("L1", "Directory",
 *    "DataChannel", "ToneChannel", "Mesh", "Core", "Log");
 *  - tid = node id (0 when the record has no node);
 *  - ts  = simulated cycle, displayed as microseconds;
 *  - CoreOp records become complete ("X") events spanning the op's
 *    ROB-entry-to-retire latency; everything else is an instant ("i").
 */
class ChromeTraceWriter
{
  public:
    ChromeTraceWriter();

    /** Sink to register with Tracer::addSink. Must outlive the run. */
    sim::Tracer::Sink
    sink()
    {
        return [this](const sim::TraceRecord &r) { add(r); };
    }

    /** Serialize one record (called by the sink). */
    void add(const sim::TraceRecord &r);

    std::uint64_t events() const { return events_; }

    /** The complete JSON document (metadata + all events). */
    std::string json() const;

    /** Write json() to @p path, creating parent directories. */
    bool write(const std::string &path) const;

  private:
    std::string body_;      ///< serialized events, comma-separated
    std::uint64_t events_ = 0;
    bool compSeen_[7] = {}; ///< components needing process_name metadata
};

/**
 * Validate a captured trace against the protocol reference
 * (docs/PROTOCOL.md): every L1Transition / DirTransition record must
 * be a legal edge of the documented state machines. When @p strict is
 * set (full-run window, no ring drops) the checker additionally
 * enforces per-line transition continuity (each record's `from` equals
 * the previous record's `to`) and trace-level SWMR (while any L1 holds
 * a line in M or E, no other L1 holds it at all).
 *
 * @return human-readable violations (empty == trace is legal).
 */
std::vector<std::string> checkTraceLegality(const TraceRing &ring,
                                            bool strict);

} // namespace widir::sys

#endif // WIDIR_SYSTEM_TRACE_SINKS_H
