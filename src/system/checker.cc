#include "system/checker.h"

#include <algorithm>
#include <map>

#include "sim/log.h"
#include "system/manycore.h"

namespace widir::sys {

using coherence::DirState;
using coherence::L1State;
using sim::Addr;
using sim::NodeId;

namespace {

struct LineView
{
    std::vector<NodeId> holdersS;
    std::vector<NodeId> holdersE;
    std::vector<NodeId> holdersM;
    std::vector<NodeId> holdersW;
    std::map<NodeId, mem::LineData> data;
};

} // namespace

std::vector<std::string>
checkCoherence(Manycore &m)
{
    std::vector<std::string> bad;
    auto complain = [&bad](std::string s) { bad.push_back(std::move(s)); };

    // Gather every cached line.
    std::map<Addr, LineView> lines;
    for (NodeId n = 0; n < m.numCores(); ++n) {
        m.l1(n).array().forEach([&](mem::CacheEntry &e) {
            LineView &view = lines[e.line];
            switch (static_cast<L1State>(e.state)) {
              case L1State::S: view.holdersS.push_back(n); break;
              case L1State::E: view.holdersE.push_back(n); break;
              case L1State::M: view.holdersM.push_back(n); break;
              case L1State::W: view.holdersW.push_back(n); break;
              case L1State::I: return;
            }
            view.data[n] = e.data;
            if (e.locked) {
                complain(sim::strfmt(
                    "node %u: line %#llx still locked at quiescence", n,
                    static_cast<unsigned long long>(e.line)));
            }
        });
        if (m.l1(n).stats().loads + 1 == 0) // keep -Wunused quiet
            return bad;
    }

    for (auto &[line, view] : lines) {
        NodeId home = m.fabric().homeOf(line);
        auto &dir = m.dir(home);
        const auto *entry = dir.entryOf(line);
        auto *llc = dir.llc().lookup(line);
        std::size_t exclusive =
            view.holdersE.size() + view.holdersM.size();

        if (dir.busy(line)) {
            complain(sim::strfmt(
                "line %#llx: directory transaction still in flight "
                "at quiescence",
                static_cast<unsigned long long>(line)));
            continue;
        }

        // SWMR.
        if (exclusive > 1 ||
            (exclusive == 1 &&
             (!view.holdersS.empty() || !view.holdersW.empty()))) {
            complain(sim::strfmt(
                "line %#llx: SWMR violated (%zu E, %zu M, %zu S, %zu W)",
                static_cast<unsigned long long>(line),
                view.holdersE.size(), view.holdersM.size(),
                view.holdersS.size(), view.holdersW.size()));
            continue;
        }
        if (!view.holdersS.empty() && !view.holdersW.empty()) {
            complain(sim::strfmt(
                "line %#llx: mixed S and W copies",
                static_cast<unsigned long long>(line)));
        }

        if (!entry || !llc) {
            complain(sim::strfmt(
                "line %#llx: cached copies but no home directory entry",
                static_cast<unsigned long long>(line)));
            continue;
        }

        switch (entry->state) {
          case DirState::EM: {
            if (exclusive != 1) {
                complain(sim::strfmt(
                    "line %#llx: dir EM but %zu exclusive copies",
                    static_cast<unsigned long long>(line), exclusive));
                break;
            }
            NodeId owner = view.holdersE.empty() ? view.holdersM[0]
                                                 : view.holdersE[0];
            if (entry->owner != owner) {
                complain(sim::strfmt(
                    "line %#llx: dir owner %u but cached owner %u",
                    static_cast<unsigned long long>(line), entry->owner,
                    owner));
            }
            break;
          }
          case DirState::S: {
            if (exclusive != 0 || !view.holdersW.empty()) {
                complain(sim::strfmt(
                    "line %#llx: dir S but non-S copies exist",
                    static_cast<unsigned long long>(line)));
                break;
            }
            if (!entry->bcast) {
                // Pointers must cover every actual sharer. (A pointer
                // may be stale-present for a copy evicted with a PutS
                // still in flight -- but at quiescence nothing is in
                // flight.)
                for (NodeId n : view.holdersS) {
                    if (std::find(entry->sharers.begin(),
                                  entry->sharers.end(),
                                  n) == entry->sharers.end()) {
                        complain(sim::strfmt(
                            "line %#llx: sharer %u missing from "
                            "directory pointers",
                            static_cast<unsigned long long>(line), n));
                    }
                }
            }
            // Data agreement: S copies equal the LLC copy.
            for (NodeId n : view.holdersS) {
                if (!(view.data[n] == llc->data)) {
                    complain(sim::strfmt(
                        "line %#llx: S copy at %u differs from LLC",
                        static_cast<unsigned long long>(line), n));
                }
            }
            break;
          }
          case DirState::W: {
            if (exclusive != 0 || !view.holdersS.empty()) {
                complain(sim::strfmt(
                    "line %#llx: dir W but wired copies exist",
                    static_cast<unsigned long long>(line)));
                break;
            }
            if (entry->sharerCount != view.holdersW.size()) {
                complain(sim::strfmt(
                    "line %#llx: SharerCount %u but %zu W copies",
                    static_cast<unsigned long long>(line),
                    entry->sharerCount, view.holdersW.size()));
            }
            for (NodeId n : view.holdersW) {
                if (!(view.data[n] == llc->data)) {
                    complain(sim::strfmt(
                        "line %#llx: W copy at %u differs from LLC",
                        static_cast<unsigned long long>(line), n));
                }
            }
            break;
          }
          case DirState::I:
            complain(sim::strfmt(
                "line %#llx: cached copies but directory says I",
                static_cast<unsigned long long>(line)));
            break;
        }
    }

    // Clean LLC lines must agree with memory; and W/EM/S entries with
    // no corresponding cached copies are stale metadata.
    for (NodeId n = 0; n < m.numCores(); ++n) {
        m.dir(n).llc().forEach([&](mem::CacheEntry &e) {
            if (!e.dirty) {
                if (!(m.memory().peekLine(e.line) == e.data)) {
                    complain(sim::strfmt(
                        "line %#llx: clean LLC copy at node %u differs "
                        "from memory",
                        static_cast<unsigned long long>(e.line), n));
                }
            }
            const auto *entry = m.dir(n).entryOf(e.line);
            if (!entry) {
                complain(sim::strfmt(
                    "line %#llx: LLC entry without directory entry",
                    static_cast<unsigned long long>(e.line)));
                return;
            }
            // A Dir_3_B entry with the broadcast bit set cannot track
            // evictions, so S+bcast may legitimately outlive every
            // cached copy (the next write broadcast-invalidates and
            // re-establishes precision).
            bool imprecise = entry->state == DirState::S && entry->bcast;
            if (entry->state != DirState::I && !imprecise &&
                lines.find(e.line) == lines.end()) {
                complain(sim::strfmt(
                    "line %#llx: directory %s but no cached copies",
                    static_cast<unsigned long long>(e.line),
                    coherence::dirStateName(entry->state)));
            }
        });
    }

    return bad;
}

} // namespace widir::sys
