/**
 * @file
 * SweepRunner: run a batch of independent experiment configurations
 * concurrently on a fixed thread pool.
 *
 * Every simulation is a pure function of (configuration, seed): a
 * Manycore owns its Simulator, event queue and Rng streams, so two
 * runs never share mutable state. The remaining process-wide state
 * (the log threshold in sim/log.cc, the lazily-built workload
 * registry) is read-mostly and audited for thread safety, which makes
 * runExperiment re-entrant and a sweep's results bit-identical to
 * running the same specs serially -- results come back in spec order
 * regardless of which worker finished first.
 */

#ifndef WIDIR_SYSTEM_SWEEP_H
#define WIDIR_SYSTEM_SWEEP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "system/experiment.h"

namespace widir::sys {

/**
 * Number of worker threads a sweep uses when the caller does not pick
 * one: WIDIR_BENCH_JOBS from the environment if set and positive,
 * otherwise std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/** Fixed-size thread pool over sys::runExperiment. */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /** Resolved worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run every spec to completion and return the results in spec
     * order. Workers pull specs from a shared index, so the schedule
     * is dynamic but the output is deterministic: slot i always holds
     * runExperiment(specs[i]).
     *
     * If a run throws, the exception no longer escapes the worker
     * thread (which would std::terminate the process): the first
     * failure is captured, the remaining workers drain, the pool is
     * joined, and the exception is rethrown on the calling thread
     * nested under a std::runtime_error naming the failing spec.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /**
     * Test seam: same pool, scheduling, and exception handling, but
     * @p run_fn replaces runExperiment. The production sim reports
     * errors through sim::fatal (which exits) rather than exceptions,
     * so the throwing path can only be exercised through here.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs,
        const std::function<ExperimentResult(const ExperimentSpec &)>
            &run_fn) const;

  private:
    unsigned jobs_;
};

} // namespace widir::sys

#endif // WIDIR_SYSTEM_SWEEP_H
