# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_wireless[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_mesi[1]_include.cmake")
include("/root/repo/build/tests/test_widir_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_property_stress[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_model[1]_include.cmake")
include("/root/repo/build/tests/test_sync_library[1]_include.cmake")
include("/root/repo/build/tests/test_energy_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_widir_races[1]_include.cmake")
