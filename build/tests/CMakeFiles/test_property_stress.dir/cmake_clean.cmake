file(REMOVE_RECURSE
  "CMakeFiles/test_property_stress.dir/test_property_stress.cc.o"
  "CMakeFiles/test_property_stress.dir/test_property_stress.cc.o.d"
  "test_property_stress"
  "test_property_stress.pdb"
  "test_property_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
