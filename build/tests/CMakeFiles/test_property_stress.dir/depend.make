# Empty dependencies file for test_property_stress.
# This may be replaced when dependencies are built.
