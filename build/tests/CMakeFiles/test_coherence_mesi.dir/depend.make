# Empty dependencies file for test_coherence_mesi.
# This may be replaced when dependencies are built.
