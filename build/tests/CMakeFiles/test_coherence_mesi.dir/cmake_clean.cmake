file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_mesi.dir/test_coherence_mesi.cc.o"
  "CMakeFiles/test_coherence_mesi.dir/test_coherence_mesi.cc.o.d"
  "test_coherence_mesi"
  "test_coherence_mesi.pdb"
  "test_coherence_mesi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_mesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
