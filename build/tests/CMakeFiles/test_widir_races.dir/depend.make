# Empty dependencies file for test_widir_races.
# This may be replaced when dependencies are built.
