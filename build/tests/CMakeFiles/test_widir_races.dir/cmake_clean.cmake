file(REMOVE_RECURSE
  "CMakeFiles/test_widir_races.dir/test_widir_races.cc.o"
  "CMakeFiles/test_widir_races.dir/test_widir_races.cc.o.d"
  "test_widir_races"
  "test_widir_races.pdb"
  "test_widir_races[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_widir_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
