# Empty dependencies file for test_widir_protocol.
# This may be replaced when dependencies are built.
