file(REMOVE_RECURSE
  "CMakeFiles/test_widir_protocol.dir/test_widir_protocol.cc.o"
  "CMakeFiles/test_widir_protocol.dir/test_widir_protocol.cc.o.d"
  "test_widir_protocol"
  "test_widir_protocol.pdb"
  "test_widir_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_widir_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
