# Empty dependencies file for test_sync_library.
# This may be replaced when dependencies are built.
