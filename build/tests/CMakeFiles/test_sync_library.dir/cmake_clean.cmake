file(REMOVE_RECURSE
  "CMakeFiles/test_sync_library.dir/test_sync_library.cc.o"
  "CMakeFiles/test_sync_library.dir/test_sync_library.cc.o.d"
  "test_sync_library"
  "test_sync_library.pdb"
  "test_sync_library[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
