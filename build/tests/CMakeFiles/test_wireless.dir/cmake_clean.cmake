file(REMOVE_RECURSE
  "CMakeFiles/test_wireless.dir/test_wireless.cc.o"
  "CMakeFiles/test_wireless.dir/test_wireless.cc.o.d"
  "test_wireless"
  "test_wireless.pdb"
  "test_wireless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
