# Empty dependencies file for test_wireless.
# This may be replaced when dependencies are built.
