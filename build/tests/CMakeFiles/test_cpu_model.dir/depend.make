# Empty dependencies file for test_cpu_model.
# This may be replaced when dependencies are built.
