file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_model.dir/test_cpu_model.cc.o"
  "CMakeFiles/test_cpu_model.dir/test_cpu_model.cc.o.d"
  "test_cpu_model"
  "test_cpu_model.pdb"
  "test_cpu_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
