file(REMOVE_RECURSE
  "CMakeFiles/test_energy_experiment.dir/test_energy_experiment.cc.o"
  "CMakeFiles/test_energy_experiment.dir/test_energy_experiment.cc.o.d"
  "test_energy_experiment"
  "test_energy_experiment.pdb"
  "test_energy_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
