# Empty dependencies file for test_energy_experiment.
# This may be replaced when dependencies are built.
