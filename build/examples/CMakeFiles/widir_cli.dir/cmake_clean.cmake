file(REMOVE_RECURSE
  "CMakeFiles/widir_cli.dir/widir_cli.cpp.o"
  "CMakeFiles/widir_cli.dir/widir_cli.cpp.o.d"
  "widir_cli"
  "widir_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
