# Empty compiler generated dependencies file for widir_cli.
# This may be replaced when dependencies are built.
