file(REMOVE_RECURSE
  "CMakeFiles/lock_contention.dir/lock_contention.cpp.o"
  "CMakeFiles/lock_contention.dir/lock_contention.cpp.o.d"
  "lock_contention"
  "lock_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
