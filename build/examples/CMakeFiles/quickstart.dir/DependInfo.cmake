
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/widir_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/widir_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/widir_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/widir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/widir_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/widir_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/widir_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/widir_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
