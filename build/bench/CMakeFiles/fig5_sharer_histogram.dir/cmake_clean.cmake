file(REMOVE_RECURSE
  "CMakeFiles/fig5_sharer_histogram.dir/fig5_sharer_histogram.cc.o"
  "CMakeFiles/fig5_sharer_histogram.dir/fig5_sharer_histogram.cc.o.d"
  "fig5_sharer_histogram"
  "fig5_sharer_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sharer_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
