# Empty dependencies file for fig5_sharer_histogram.
# This may be replaced when dependencies are built.
