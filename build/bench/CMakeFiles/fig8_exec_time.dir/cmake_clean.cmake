file(REMOVE_RECURSE
  "CMakeFiles/fig8_exec_time.dir/fig8_exec_time.cc.o"
  "CMakeFiles/fig8_exec_time.dir/fig8_exec_time.cc.o.d"
  "fig8_exec_time"
  "fig8_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
