# Empty compiler generated dependencies file for fig8_exec_time.
# This may be replaced when dependencies are built.
