# Empty compiler generated dependencies file for fig6_mpki.
# This may be replaced when dependencies are built.
