file(REMOVE_RECURSE
  "CMakeFiles/fig6_mpki.dir/fig6_mpki.cc.o"
  "CMakeFiles/fig6_mpki.dir/fig6_mpki.cc.o.d"
  "fig6_mpki"
  "fig6_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
