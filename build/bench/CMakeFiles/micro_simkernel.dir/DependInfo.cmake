
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_simkernel.cc" "bench/CMakeFiles/micro_simkernel.dir/micro_simkernel.cc.o" "gcc" "bench/CMakeFiles/micro_simkernel.dir/micro_simkernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/widir_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/widir_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/widir_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
