file(REMOVE_RECURSE
  "CMakeFiles/table5_hops.dir/table5_hops.cc.o"
  "CMakeFiles/table5_hops.dir/table5_hops.cc.o.d"
  "table5_hops"
  "table5_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
