# Empty dependencies file for table5_hops.
# This may be replaced when dependencies are built.
