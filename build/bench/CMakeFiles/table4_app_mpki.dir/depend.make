# Empty dependencies file for table4_app_mpki.
# This may be replaced when dependencies are built.
