file(REMOVE_RECURSE
  "CMakeFiles/table4_app_mpki.dir/table4_app_mpki.cc.o"
  "CMakeFiles/table4_app_mpki.dir/table4_app_mpki.cc.o.d"
  "table4_app_mpki"
  "table4_app_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_app_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
