# Empty compiler generated dependencies file for motivation_sharing.
# This may be replaced when dependencies are built.
