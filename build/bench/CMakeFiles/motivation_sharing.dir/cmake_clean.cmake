file(REMOVE_RECURSE
  "CMakeFiles/motivation_sharing.dir/motivation_sharing.cc.o"
  "CMakeFiles/motivation_sharing.dir/motivation_sharing.cc.o.d"
  "motivation_sharing"
  "motivation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
