file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_count.dir/ablation_update_count.cc.o"
  "CMakeFiles/ablation_update_count.dir/ablation_update_count.cc.o.d"
  "ablation_update_count"
  "ablation_update_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
