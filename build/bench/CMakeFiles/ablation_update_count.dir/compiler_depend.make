# Empty compiler generated dependencies file for ablation_update_count.
# This may be replaced when dependencies are built.
