# Empty dependencies file for table6_sensitivity.
# This may be replaced when dependencies are built.
