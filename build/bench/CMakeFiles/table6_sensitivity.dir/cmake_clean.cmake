file(REMOVE_RECURSE
  "CMakeFiles/table6_sensitivity.dir/table6_sensitivity.cc.o"
  "CMakeFiles/table6_sensitivity.dir/table6_sensitivity.cc.o.d"
  "table6_sensitivity"
  "table6_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
