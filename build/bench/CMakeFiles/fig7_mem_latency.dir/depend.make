# Empty dependencies file for fig7_mem_latency.
# This may be replaced when dependencies are built.
