file(REMOVE_RECURSE
  "CMakeFiles/fig7_mem_latency.dir/fig7_mem_latency.cc.o"
  "CMakeFiles/fig7_mem_latency.dir/fig7_mem_latency.cc.o.d"
  "fig7_mem_latency"
  "fig7_mem_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mem_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
