file(REMOVE_RECURSE
  "CMakeFiles/widir_sim.dir/log.cc.o"
  "CMakeFiles/widir_sim.dir/log.cc.o.d"
  "libwidir_sim.a"
  "libwidir_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
