file(REMOVE_RECURSE
  "libwidir_sim.a"
)
