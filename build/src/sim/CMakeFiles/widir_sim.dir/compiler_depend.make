# Empty compiler generated dependencies file for widir_sim.
# This may be replaced when dependencies are built.
