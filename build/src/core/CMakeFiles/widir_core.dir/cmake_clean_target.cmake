file(REMOVE_RECURSE
  "libwidir_core.a"
)
