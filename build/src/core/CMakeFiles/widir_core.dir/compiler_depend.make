# Empty compiler generated dependencies file for widir_core.
# This may be replaced when dependencies are built.
