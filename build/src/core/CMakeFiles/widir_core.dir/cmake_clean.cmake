file(REMOVE_RECURSE
  "CMakeFiles/widir_core.dir/directory_controller.cc.o"
  "CMakeFiles/widir_core.dir/directory_controller.cc.o.d"
  "CMakeFiles/widir_core.dir/fabric.cc.o"
  "CMakeFiles/widir_core.dir/fabric.cc.o.d"
  "CMakeFiles/widir_core.dir/l1_controller.cc.o"
  "CMakeFiles/widir_core.dir/l1_controller.cc.o.d"
  "libwidir_core.a"
  "libwidir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
