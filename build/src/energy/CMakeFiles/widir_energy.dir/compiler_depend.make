# Empty compiler generated dependencies file for widir_energy.
# This may be replaced when dependencies are built.
