file(REMOVE_RECURSE
  "libwidir_energy.a"
)
