file(REMOVE_RECURSE
  "CMakeFiles/widir_energy.dir/energy_model.cc.o"
  "CMakeFiles/widir_energy.dir/energy_model.cc.o.d"
  "libwidir_energy.a"
  "libwidir_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
