# Empty compiler generated dependencies file for widir_cpu.
# This may be replaced when dependencies are built.
