file(REMOVE_RECURSE
  "CMakeFiles/widir_cpu.dir/core.cc.o"
  "CMakeFiles/widir_cpu.dir/core.cc.o.d"
  "libwidir_cpu.a"
  "libwidir_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
