file(REMOVE_RECURSE
  "libwidir_cpu.a"
)
