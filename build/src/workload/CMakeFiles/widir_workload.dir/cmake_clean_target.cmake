file(REMOVE_RECURSE
  "libwidir_workload.a"
)
