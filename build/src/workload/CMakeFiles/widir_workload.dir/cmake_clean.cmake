file(REMOVE_RECURSE
  "CMakeFiles/widir_workload.dir/apps/parsec_canneal_fluid.cc.o"
  "CMakeFiles/widir_workload.dir/apps/parsec_canneal_fluid.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/parsec_compute.cc.o"
  "CMakeFiles/widir_workload.dir/apps/parsec_compute.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/parsec_pipeline.cc.o"
  "CMakeFiles/widir_workload.dir/apps/parsec_pipeline.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_barnes_fmm.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_barnes_fmm.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_fft_radix.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_fft_radix.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_lu_cholesky.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_lu_cholesky.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_ocean.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_ocean.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_radiosity.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_radiosity.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_raytrace_volrend.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_raytrace_volrend.cc.o.d"
  "CMakeFiles/widir_workload.dir/apps/splash_water.cc.o"
  "CMakeFiles/widir_workload.dir/apps/splash_water.cc.o.d"
  "CMakeFiles/widir_workload.dir/registry.cc.o"
  "CMakeFiles/widir_workload.dir/registry.cc.o.d"
  "libwidir_workload.a"
  "libwidir_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
